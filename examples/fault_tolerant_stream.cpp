/// Fault-tolerant streaming demo: the supervised session surviving the
/// failures an unsupervised one would die on.
///
/// The same synthetic-pulsar stream as streaming_search, but with the
/// watchdog ladder enabled (retry → skip-with-gap → degrade) and faults
/// injected at scripted points through the deterministic failpoint
/// framework (resilience/fault_injection.hpp), in three acts:
///
///   act 1  clean streaming on the tiled engine;
///   act 2  a single transient glitch — absorbed by rung 1 (retry), the
///          sink never notices;
///   act 3  a brownout (six consecutive chunk-compute failures) — retries
///          exhaust, chunks are skipped with their gaps accounted (rung 2),
///          and after two consecutive skips the session degrades to the
///          subband engine (rung 3) and finishes the stream there.
///
/// The session ends alive: the health snapshot names every gap and the
/// engine switch, and the latency report separates observation time lost
/// to gaps from the time actually processed.
///
///   ./fault_tolerant_stream [--dms 64] [--dm 4.5] [--seconds 3]
///                           [--chunk-seconds 0.25] [--threads 0]

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "resilience/fault_injection.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"
#include "stream/streaming_dedisperser.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("fault_tolerant_stream",
          "supervised streaming under injected faults: retry, skip, degrade");
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("dm", "true pulsar dispersion measure [pc/cm^3]", "4.5");
  cli.add_option("seconds", "seconds of data to stream", "3");
  cli.add_option("chunk-seconds", "output chunk length in seconds", "0.25");
  cli.add_option("threads", "kernel worker threads (0 = machine-sized)", "0");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto seconds = static_cast<std::size_t>(cli.get_int("seconds"));
  const auto chunk_samples = static_cast<std::size_t>(
      cli.get_double("chunk-seconds") * obs.sampling_rate());
  const double true_dm = cli.get_double("dm");

  const std::size_t total_out = seconds * obs.samples_per_second();
  const dedisp::Plan batch_plan =
      dedisp::Plan::with_output_samples(obs, dms, total_out);
  const dedisp::Plan chunk_plan = batch_plan.with_chunk(chunk_samples);
  dedisp::KernelConfig config{1, 1, 1, 1, 32, 4};
  for (const dedisp::KernelConfig& candidate :
       {dedisp::KernelConfig{50, 2, 4, 2, 32, 4},
        dedisp::KernelConfig{10, 2, 10, 2, 32, 4},
        dedisp::KernelConfig{5, 1, 5, 1, 32, 4}}) {
    if (candidate.divides(chunk_plan)) {
      config = candidate;
      break;
    }
  }
  const std::size_t chunks_expected = total_out / chunk_plan.out_samples();

  sky::PulsarParams pulsar;
  pulsar.dm = true_dm;
  pulsar.period_s = 0.25;
  pulsar.width_s = 0.0002;
  pulsar.amplitude = 2.0;
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  const Array2D<float> data =
      sky::make_observation_data(obs, batch_plan.in_samples(), pulsar, noise);

  // Supervised session, synchronous: chunks run inline on the pushing
  // thread, so the acts below arm their faults at deterministic stream
  // positions. The watchdog ladder: 1 retry, then skip with gap
  // accounting, then degrade after 2 consecutive skipped chunks.
  stream::StreamingOptions opts;
  opts.engine = "cpu_tiled";
  opts.detect = true;
  opts.async = false;
  opts.cpu.threads = static_cast<std::size_t>(cli.get_int("threads"));
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 1;
  opts.supervision.skip_failed_chunks = true;
  opts.supervision.degrade_after = 2;

  TextTable chunks({"chunk", "window [s]", "best DM", "peak S/N", "compute"});
  stream::StreamingDedisperser session(
      chunk_plan, config,
      [&](const stream::StreamChunk& chunk) {
        const double t0 =
            static_cast<double>(chunk.first_sample) / obs.sampling_rate();
        const double t1 = t0 + chunk.timing.data_seconds;
        chunks.add_row(
            {std::to_string(chunk.index),
             TextTable::num(t0, 2) + " - " + TextTable::num(t1, 2),
             TextTable::num(obs.dm_value(chunk.detection->best_trial), 2),
             TextTable::num(chunk.detection->best_snr, 1),
             TextTable::num(chunk.timing.compute_seconds * 1e3, 1) + " ms"});
      },
      opts);

  std::cout << "== supervised streaming of " << seconds << " s of "
            << obs.name() << ", " << dms << " trial DMs, ~" << chunks_expected
            << " chunks, engine " << opts.engine
            << " (fallback: auto-selected) ==\n";

  // The script: feed in receiver-sized blocks, advancing the acts by how
  // many chunks the session has processed (emitted + skipped) so far.
  auto& faults = resilience::FaultInjector::instance();
  const std::size_t block = obs.samples_per_second() / 100;
  std::size_t fed = 0;
  int act = 1;
  while (fed < data.cols()) {
    const resilience::StreamHealth h = session.health();
    const std::size_t processed = h.chunks_emitted + h.chunks_skipped;
    if (act == 1 && processed >= chunks_expected / 3) {
      std::cout << "\n-- act 2: injecting one transient chunk failure --\n";
      resilience::FaultSpec glitch;  // fires once; the retry lands
      glitch.max_fires = 1;
      faults.arm("stream.chunk", glitch);
      act = 2;
    } else if (act == 2 && processed >= 2 * chunks_expected / 3) {
      std::cout << "\n-- act 3: brownout, 6 consecutive compute failures --\n";
      resilience::FaultSpec brownout;  // outlasts every chunk's retry budget
      brownout.max_fires = 6;
      faults.arm("stream.chunk", brownout);
      act = 3;
    }
    const std::size_t n = std::min(block, data.cols() - fed);
    session.push(ConstView2D<float>(&data.cview()(0, fed), data.rows(), n,
                                    data.pitch()));
    fed += n;
  }
  faults.disarm_all();
  session.close();
  std::cout << "\n";
  chunks.print(std::cout);

  const resilience::StreamHealth health = session.health();
  const stream::LatencyReport report = session.latency();
  std::cout << "\nsession health: " << health.chunks_emitted
            << " chunks emitted, " << health.retries << " retr"
            << (health.retries == 1 ? "y" : "ies") << " absorbed, "
            << health.chunks_skipped << " skipped, " << health.degradations
            << " engine switch(es); active engine: " << health.active_engine
            << (health.degraded ? " (degraded)" : "") << "\n";
  for (const resilience::ChunkGap& gap : health.gaps) {
    std::cout << "  gap: chunk " << gap.index << " (samples "
              << gap.first_sample << " - "
              << gap.first_sample + gap.out_samples - 1 << ") lost\n";
  }
  std::cout << "data processed: " << TextTable::num(report.data_seconds, 2)
            << " s; lost to gaps: "
            << TextTable::num(report.gap_data_seconds, 2) << " s ("
            << report.gap_chunks << " chunks)\nreal-time margin over the "
            << "processed data: " << TextTable::num(report.real_time_margin, 1)
            << "x\n\nan unsupervised session would have died at the first "
            << "injected failure;\nthis one finished the observation on the "
            << "fallback engine with every gap accounted.\n";
  return 0;
}
