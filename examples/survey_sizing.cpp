/// Reproduces the §V-D deployment analysis: "Apertif will need to
/// dedisperse in real-time 2,000 DMs, for 450 different beams … dedispersion
/// for Apertif could be implemented today with just 50 GPUs, instead of the
/// 1,800 CPUs that would be necessary otherwise."
///
///   ./survey_sizing [--dms 2000] [--beams 450]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ocl/device_presets.hpp"
#include "pipeline/survey.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("survey_sizing", "how many accelerators does a survey need?");
  cli.add_option("dms", "trial DMs per beam", "2000");
  cli.add_option("beams", "simultaneous beams", "450");
  cli.add_option("setup", "apertif or lofar", "apertif");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs =
      cli.get("setup") == "lofar" ? sky::lofar() : sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto beams = static_cast<std::size_t>(cli.get_int("beams"));

  std::cout << "== real-time survey sizing: " << obs.name() << ", " << dms
            << " DMs x " << beams << " beams ==\n\n";

  TextTable table({"platform", "t(1s, 1 beam)", "beams/dev (compute)",
                   "beams/dev (memory)", "devices needed"});
  for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
    const pipeline::SurveySizing s =
        pipeline::size_survey(dev, obs, dms, beams);
    table.add_row(
        {dev.name, TextTable::num(s.seconds_per_beam * 1e3, 1) + " ms",
         std::to_string(s.beams_per_device_compute),
         std::to_string(s.beams_per_device_memory),
         s.feasible ? std::to_string(s.devices_needed) : "infeasible"});
  }
  table.print(std::cout);

  const std::size_t cpus =
      pipeline::cpus_needed(ocl::intel_xeon_e5_2620(), obs, dms, beams);
  std::cout << "\nCPU-only deployment (E5-2620 baseline): " << cpus
            << " CPUs\n"
            << "(the paper quotes ~50 HD7970 GPUs vs ~1,800 CPUs for this "
               "survey)\n";
  return 0;
}
