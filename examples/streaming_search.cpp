/// Streaming search demo: the real-time deployment shape of the paper's
/// scenario (§V-D), end to end — a producer thread synthesizes a dispersed
/// pulsar and pushes raw samples into a bounded ring at survey granularity;
/// the consumer drives a StreamingDedisperser that assembles overlap-carry
/// chunks, dedisperses them with the tiled SIMD kernel, scans each chunk
/// for candidates and prints the per-chunk verdict plus the session's
/// latency percentiles and real-time margin.
///
///   ./streaming_search [--dms 64] [--dm 4.5] [--seconds 2]
///                      [--chunk-seconds 0.25] [--threads 0]
///                      [--ring-seconds 0.5]

#include <cmath>
#include <iostream>
#include <thread>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/streaming_dedisperser.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("streaming_search",
          "real-time chunked dedispersion search on a synthetic pulsar");
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("dm", "true pulsar dispersion measure [pc/cm^3]", "4.5");
  cli.add_option("seconds", "seconds of data to stream", "2");
  cli.add_option("chunk-seconds", "output chunk length in seconds", "0.25");
  cli.add_option("engine", "streaming-capable execution engine", "cpu_tiled");
  cli.add_option("threads", "kernel worker threads (0 = machine-sized)", "0");
  cli.add_option("ring-seconds", "ingest ring capacity in seconds", "0.5");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto seconds = static_cast<std::size_t>(cli.get_int("seconds"));
  const auto chunk_samples = static_cast<std::size_t>(
      cli.get_double("chunk-seconds") * obs.sampling_rate());
  const auto ring_samples = static_cast<std::size_t>(
      cli.get_double("ring-seconds") * obs.sampling_rate());
  const double true_dm = cli.get_double("dm");

  // One plan describes the whole stream; its chunk variant drives the
  // session. A 1×1-safe tile shape is chosen small enough to divide any
  // chunk the CLI asks for.
  const std::size_t total_out = seconds * obs.samples_per_second();
  const dedisp::Plan batch_plan =
      dedisp::Plan::with_output_samples(obs, dms, total_out);
  const dedisp::Plan chunk_plan = batch_plan.with_chunk(chunk_samples);
  dedisp::KernelConfig config{1, 1, 1, 1, 32, 4};
  for (const dedisp::KernelConfig& candidate :
       {dedisp::KernelConfig{50, 2, 4, 2, 32, 4},
        dedisp::KernelConfig{10, 2, 10, 2, 32, 4},
        dedisp::KernelConfig{5, 1, 5, 1, 32, 4}}) {
    if (candidate.divides(chunk_plan)) {
      config = candidate;
      break;
    }
  }

  std::cout << "== streaming " << seconds << " s of " << obs.name() << ", "
            << dms << " trial DMs, " << cli.get("chunk-seconds")
            << " s chunks (overlap " << chunk_plan.max_delay()
            << " samples), config " << config.to_string() << " ==\n";

  // The full synthetic observation: noise plus a dispersed pulsar.
  sky::PulsarParams pulsar;
  pulsar.dm = true_dm;
  pulsar.period_s = 0.25;
  pulsar.width_s = 0.0002;
  pulsar.amplitude = 2.0;
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  const Array2D<float> data =
      sky::make_observation_data(obs, batch_plan.in_samples(), pulsar, noise);

  // Sink: one line per chunk with its strongest candidate.
  TextTable chunks({"chunk", "window [s]", "best DM", "peak S/N",
                    "compute", "latency"});
  stream::StreamingOptions opts;
  opts.engine = cli.get("engine");
  opts.detect = true;
  opts.cpu.threads = static_cast<std::size_t>(cli.get_int("threads"));
  stream::StreamingDedisperser session(
      chunk_plan, config,
      [&](const stream::StreamChunk& chunk) {
        const double t0 =
            static_cast<double>(chunk.first_sample) / obs.sampling_rate();
        const double t1 = t0 + chunk.timing.data_seconds;
        chunks.add_row(
            {std::to_string(chunk.index),
             TextTable::num(t0, 2) + " - " + TextTable::num(t1, 2),
             TextTable::num(obs.dm_value(chunk.detection->best_trial), 2),
             TextTable::num(chunk.detection->best_snr, 1),
             TextTable::num(chunk.timing.compute_seconds * 1e3, 1) + " ms",
             TextTable::num(chunk.timing.latency_seconds * 1e3, 1) + " ms"});
      },
      opts);

  // Producer: a receiver thread pushing survey-granularity blocks (10 ms)
  // into the bounded ring; the ring's capacity bound is the backpressure
  // that surfaces a consumer that cannot keep up.
  stream::SampleRing ring(obs.channels(), ring_samples);
  std::thread producer([&] {
    const std::size_t block = obs.samples_per_second() / 100;
    std::size_t t = 0;
    while (t < data.cols()) {
      const std::size_t n = std::min(block, data.cols() - t);
      ring.push(ConstView2D<float>(&data.cview()(0, t), data.rows(), n,
                                   data.pitch()));
      t += n;
    }
    ring.close();
  });

  session.consume(ring);
  producer.join();
  session.close();
  chunks.print(std::cout);

  const stream::LatencyReport report = session.latency();
  std::cout << "\nsession: " << report.chunks << " chunks, "
            << TextTable::num(report.data_seconds, 2) << " s of sky in "
            << TextTable::num(report.compute_seconds, 3)
            << " s of compute\nlatency p50/p95/p99: "
            << TextTable::num(report.p50_latency * 1e3, 1) << " / "
            << TextTable::num(report.p95_latency * 1e3, 1) << " / "
            << TextTable::num(report.p99_latency * 1e3, 1)
            << " ms\nreal-time margin: "
            << TextTable::num(report.real_time_margin, 1)
            << "x (keeps up: " << (report.real_time_margin > 1.0 ? "yes" : "NO")
            << "); measured seconds per data second "
            << TextTable::num(report.seconds_per_data_second, 4) << "\n";
  return 0;
}
