/// Observability demo: one supervised, DM-sharded streaming session under
/// injected faults, watched end-to-end through the telemetry subsystem.
///
/// Everything the pipeline does here lands in the process-wide registry and
/// trace buffer: engine executions (per-engine GFLOP/s), shard attempts and
/// retries, chunk latencies, ring backpressure, the watchdog's recoveries.
/// After the stream closes, the same numbers are exported three ways —
///
///   <prefix>.prom        Prometheus text exposition (scrape-endpoint body)
///   <prefix>.json        JSON snapshot of every metric + trace status
///   <prefix>.trace.json  Chrome trace_event timeline: open it in
///                        chrome://tracing or https://ui.perfetto.dev to see
///                        stream.chunk > shard.task > engine.execute spans
///                        nested per worker thread, with shard.retry markers
///                        at the injected faults
///
/// and the session's own report() views are printed next to them: they are
/// assembled from the same registry objects, so they cannot disagree.
///
///   ./observability_demo [--dms 64] [--seconds 2] [--chunk-seconds 0.25]
///                        [--shard-workers 3] [--out-prefix telemetry]

#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "resilience/fault_injection.hpp"
#include "sky/signal.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace {

void write_text(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  DDMC_REQUIRE(os.good(), "cannot write " + path);
  os << body;
  DDMC_REQUIRE(os.good(), "short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("observability_demo",
          "sharded streaming under faults, exported as Prometheus text, "
          "JSON and a Chrome trace");
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("seconds", "seconds of data to stream", "2");
  cli.add_option("chunk-seconds", "output chunk length in seconds", "0.25");
  cli.add_option("shard-workers", "DM-shard worker threads", "3");
  cli.add_option("out-prefix", "prefix for the exported files", "telemetry");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto seconds = static_cast<std::size_t>(cli.get_int("seconds"));
  const auto shard_workers =
      static_cast<std::size_t>(cli.get_int("shard-workers"));
  const auto chunk_samples = static_cast<std::size_t>(
      cli.get_double("chunk-seconds") * obs.sampling_rate());
  const std::string prefix = cli.get("out-prefix");

  const std::size_t total_out = seconds * obs.samples_per_second();
  const dedisp::Plan batch_plan =
      dedisp::Plan::with_output_samples(obs, dms, total_out);
  const dedisp::Plan chunk_plan = batch_plan.with_chunk(chunk_samples);
  dedisp::KernelConfig config{1, 1, 1, 1, 32, 4};
  for (const dedisp::KernelConfig& candidate :
       {dedisp::KernelConfig{50, 2, 4, 2, 32, 4},
        dedisp::KernelConfig{10, 2, 10, 2, 32, 4}}) {
    if (candidate.divides(chunk_plan)) {
      config = candidate;
      break;
    }
  }

  sky::PulsarParams pulsar;
  pulsar.dm = 4.5;
  pulsar.period_s = 0.25;
  pulsar.width_s = 0.0002;
  pulsar.amplitude = 2.0;
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  const Array2D<float> data =
      sky::make_observation_data(obs, batch_plan.in_samples(), pulsar, noise);

  // Everything below is recorded: flip the tracer on before the session
  // exists so even shard planning shows up on the timeline.
  telemetry::Tracer::instance().set_enabled(true);
  telemetry::Tracer::instance().clear();
  telemetry::MetricsRegistry::instance().reset();

  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.shard_workers = shard_workers;
  opts.shard_supervision.retry.max_attempts = 2;  // absorb at shard level
  opts.shard_supervision.retry.backoff_seconds = 0.0;
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 1;
  opts.supervision.skip_failed_chunks = true;

  std::size_t emitted = 0;
  stream::StreamingDedisperser session(
      chunk_plan, config,
      [&](const stream::StreamChunk& chunk) { emitted += chunk.out_samples; },
      opts);

  // Two transient shard faults mid-stream: the supervised executor absorbs
  // them by retry, and both the retries and their cost are on record.
  resilience::FaultSpec glitch;
  glitch.skip = 5;  // let a few shard attempts pass first
  glitch.max_fires = 2;
  resilience::FaultInjector::instance().arm("shard.task", glitch);

  session.push(data.cview());
  session.close();
  resilience::FaultInjector::instance().disarm_all();

  // ---- the session's own views ------------------------------------------
  const stream::LatencyReport latency = session.latency();
  const resilience::StreamHealth health = session.health();
  const engine::SessionTraffic traffic = session.telemetry();
  std::cout << "== observability demo: " << seconds << " s of " << obs.name()
            << ", " << dms << " trial DMs, " << shard_workers
            << " shard workers, 2 injected shard faults ==\n\n"
            << "chunks emitted     " << health.chunks_emitted << " ("
            << emitted << " samples)\n"
            << "shard retries      "
            << static_cast<std::size_t>(
                   telemetry::MetricsRegistry::instance()
                       .counter("ddmc.shard.retries_total")
                       ->value())
            << " absorbed (chunk-level retries: " << health.retries << ")\n"
            << "engine runs        " << traffic.runs << " ("
            << TextTable::num(traffic.gflops(), 2) << " GFLOP/s over "
            << TextTable::num(traffic.engine_seconds * 1e3, 1)
            << " ms busy)\n"
            << "real-time margin   " << TextTable::num(latency.real_time_margin, 1)
            << "x (p95 latency "
            << TextTable::num(latency.p95_latency * 1e3, 1) << " ms)\n\n";

  // ---- the exports -------------------------------------------------------
  const std::string prom = telemetry::export_prometheus();
  write_text(prefix + ".prom", prom);
  json::write_file(prefix + ".json", telemetry::snapshot_json());
  write_text(prefix + ".trace.json", telemetry::export_chrome_trace());
  telemetry::Tracer::instance().set_enabled(false);

  std::cout << "wrote " << prefix << ".prom, " << prefix << ".json, "
            << prefix << ".trace.json ("
            << telemetry::Tracer::instance().events().size()
            << " trace events)\n\nscrape excerpt:\n";
  // Print the engine and shard families — the lines a Prometheus scrape of
  // a production session would alert on.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("ddmc_engine_", 0) == 0 ||
        line.rfind("ddmc_shard_", 0) == 0 ||
        line.find("TYPE ddmc_engine") != std::string::npos ||
        line.find("TYPE ddmc_shard") != std::string::npos) {
      std::cout << "  " << line << "\n";
    }
  }
  std::cout << "\nopen " << prefix
            << ".trace.json in chrome://tracing or ui.perfetto.dev: the "
               "stream.chunk spans\nnest the shard attempts and engine "
               "executions per worker, and the shard.retry\nmarkers sit "
               "exactly where the faults were injected.\n";
  return 0;
}
