/// Quickstart: plan → tune → dedisperse → detect, in ~40 lines of API use.
///
/// Generates one second of a synthetic Apertif-like observation containing
/// a dispersed pulsar, auto-tunes the kernel for a chosen device model,
/// dedisperses on the selected engine and reports the recovered DM.
///
///   ./quickstart [--device HD7970] [--engine cpu_tiled] [--dms 64]
///                [--dm 4.5] [--threads 0] [--list-engines]

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "pipeline/dedisperser.hpp"
#include "sky/delay.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("quickstart", "dedisperse a synthetic pulsar and recover its DM");
  cli.add_option("device", "device model to tune for", "HD7970");
  cli.add_option("engine", "execution engine (see --list-engines)",
                 engine::kDefaultEngineId);
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("dm", "true pulsar dispersion measure [pc/cm^3]", "4.5");
  cli.add_option("threads", "kernel worker threads (0 = machine-sized)", "0");
  cli.add_flag("list-engines", "print the registered engine ids and exit");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get_flag("list-engines")) {
    for (const std::string& id : engine::EngineRegistry::instance().ids()) {
      std::cout << id << "\n";
    }
    return 0;
  }

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const double true_dm = cli.get_double("dm");

  // 1. Plan the instance (one second of data) on the selected engine and
  // tune for the device. The modeled optimum drives the tunable engines;
  // the others ignore the tile shape.
  pipeline::Dedisperser dd(obs, dms, cli.get("engine"));
  dedisp::CpuKernelOptions cpu_options;
  cpu_options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  dd.set_cpu_options(cpu_options);
  const ocl::DeviceModel device = ocl::device_by_name(cli.get("device"));
  const tuner::TuningResult tuned = dd.tune_for(device);
  std::cout << "engine " << dd.engine_id() << " (variant "
            << dd.engine().variant() << "), tuned for " << device.name
            << ": " << tuned.best.config.to_string() << "\n"
            << "modeled: " << tuned.best.perf.gflops << " GFLOP/s over "
            << tuned.evaluated << " configurations\n";

  // 2. Synthesize the observation: noise + a dispersed pulsar. The pulse
  // must be narrow to localize the DM: a w-sample boxcar tolerates ±w
  // samples of delay error, and one Apertif DM step shifts the band edge by
  // only ~3 samples.
  sky::PulsarParams pulsar;
  pulsar.dm = true_dm;
  pulsar.period_s = 0.25;
  pulsar.width_s = 0.0002;  // 4 samples at 20 k samples/s
  pulsar.amplitude = 2.0;
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  const Array2D<float> data = sky::make_observation_data(
      obs, dd.plan().in_samples(), pulsar, noise);

  // 3. Dedisperse on the real host kernel and time it.
  Stopwatch clock;
  const Array2D<float> out = dd.dedisperse(data.cview());
  std::cout << "host dedispersion of " << dms << " trials x "
            << dd.plan().out_samples() << " samples took "
            << clock.milliseconds() << " ms\n";

  // 4. Detect: the brute-force search over trial DMs (§II).
  const sky::DetectionResult res = sky::detect_best_dm(out.cview());
  const double found_dm = obs.dm_value(res.best_trial);
  // DM localization is physically limited by the pulse width: a w-second
  // boxcar cannot distinguish trials whose band-edge delays differ by < w.
  const double sweep_per_dm =
      sky::dispersion_delay_seconds(1.0, obs.f_min_mhz(), obs.f_max_mhz());
  const double dm_tolerance =
      std::max(obs.dm_step(), pulsar.width_s / sweep_per_dm);
  std::cout << "best trial: " << res.best_trial << " (DM " << found_dm
            << " pc/cm^3) with peak S/N " << res.best_snr << "\n"
            << "injected DM: " << true_dm << " (tolerance +-" << dm_tolerance
            << ") -> "
            << ((std::abs(found_dm - true_dm) <= dm_tolerance) ? "recovered"
                                                               : "MISSED")
            << "\n";
  return 0;
}
