/// Platform shoot-out (§V's "comparison of modern accelerators based on a
/// real scientific application"): tune every Table I device on both setups
/// at a chosen instance and print the full comparison, including the
/// real-time verdict and the speedup over the E5-2620 CPU baseline.
///
///   ./compare_platforms [--dms 1024]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"
#include "tuner/tuner.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("compare_platforms",
          "tuned comparison of all Table I accelerators");
  cli.add_option("dms", "number of trial DMs", "1024");
  if (!cli.parse(argc, argv)) return 0;
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));

  const ocl::DeviceModel cpu = ocl::intel_xeon_e5_2620();
  for (const sky::Observation& obs : {sky::apertif(), sky::lofar()}) {
    const dedisp::Plan plan(obs, dms);
    const ocl::PlanAnalysis analysis(plan);
    const double rt = ocl::real_time_gflops(obs, dms);
    const double cpu_gflops = ocl::estimate_cpu_baseline(cpu, plan).gflops;

    std::cout << "== " << obs.name() << ", " << dms
              << " DMs (real-time needs " << TextTable::num(rt, 1)
              << " GFLOP/s; CPU baseline " << TextTable::num(cpu_gflops, 1)
              << " GFLOP/s) ==\n";
    TextTable table({"platform", "best config", "GFLOP/s", "t(1s data)",
                     "real-time", "vs CPU", "bound"});
    for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
      if (!ocl::fits_in_memory(dev, plan)) {
        table.add_row({dev.name, "out of device memory", "-", "-", "-", "-",
                       "-"});
        continue;
      }
      const tuner::TuningResult r = tuner::tune(dev, analysis);
      table.add_row(
          {dev.name, r.best.config.to_string(),
           TextTable::num(r.best.perf.gflops, 1),
           TextTable::num(r.best.perf.seconds * 1e3, 1) + " ms",
           r.best.perf.gflops >= rt ? "yes" : "NO",
           TextTable::num(r.best.perf.gflops / cpu_gflops, 1) + "x",
           r.best.perf.memory_bound ? "mem" : "compute"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
