/// Auto-tuning explorer: run the §IV-A sweep for one (device, setup, #DMs)
/// and inspect the result — the optimal tuple, the population statistics,
/// the top-N configurations, and the generated OpenCL kernel source for the
/// winner (the paper's run-time code generation).
///
///   ./tune_device --device K20 --setup lofar --dms 1024 --top 10 --kernel

#include <algorithm>
#include <iostream>

#include "codegen/opencl_codegen.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/intensity.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "tuner/results_io.hpp"
#include "tuner/tuner.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("tune_device", "auto-tune dedispersion for a device model");
  cli.add_option("device", "HD7970, XeonPhi, GTX680, K20, Titan", "HD7970");
  cli.add_option("setup", "apertif or lofar", "apertif");
  cli.add_option("dms", "number of trial DMs", "1024");
  cli.add_option("top", "print the N best configurations", "10");
  cli.add_flag("kernel", "print the generated OpenCL source of the winner");
  cli.add_flag("zero-dm", "use the perfect-reuse 0-DM variant (§IV-C)");
  if (!cli.parse(argc, argv)) return 0;

  const ocl::DeviceModel device = ocl::device_by_name(cli.get("device"));
  sky::Observation obs =
      cli.get("setup") == "lofar" ? sky::lofar() : sky::apertif();
  if (cli.get_flag("zero-dm")) obs = obs.zero_dm_variant();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));

  const dedisp::Plan plan(obs, dms);
  const ocl::PlanAnalysis analysis(plan);
  tuner::TuningOptions opt;
  opt.keep_population = true;
  const tuner::TuningResult result = tuner::tune(device, analysis, opt);

  std::cout << "== tuning " << device.name << " / " << obs.name() << " / "
            << dms << " DMs ==\n"
            << "configurations: " << result.evaluated << " meaningful, "
            << result.skipped << " rejected\n"
            << "best: " << result.best.config.to_string() << " -> "
            << TextTable::num(result.best.perf.gflops, 1) << " GFLOP/s ("
            << (result.best.perf.memory_bound ? "memory" : "compute")
            << "-bound, occupancy limited by "
            << to_string(result.best.perf.occupancy.limiter) << ")\n"
            << "population: mean " << TextTable::num(result.stats.mean, 1)
            << ", sd " << TextTable::num(result.stats.stddev, 1)
            << ", SNR of optimum "
            << TextTable::num(result.snr_of_optimum(), 2) << "\n";

  const dedisp::IntensityReport ai =
      dedisp::analyze_intensity(plan, result.best.config);
  std::cout << "arithmetic intensity: naive "
            << TextTable::num(ai.ai_naive, 3) << " (Eq. 2 bound 0.25), tiled "
            << TextTable::num(ai.ai_tiled, 3) << ", reuse factor "
            << TextTable::num(ai.reuse_factor, 2) << " (Eq. 3 bound "
            << TextTable::num(
                   dedisp::ai_upper_bound_eq3(
                       static_cast<double>(plan.dms()),
                       static_cast<double>(plan.out_samples()),
                       static_cast<double>(plan.channels())),
                   1)
            << ")\n\n";

  const auto top_n = static_cast<std::size_t>(cli.get_int("top"));
  std::vector<tuner::ConfigPerf> sorted = result.population;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.perf.gflops > b.perf.gflops;
            });
  TextTable table({"rank", "config", "GFLOP/s", "reuse", "occupancy",
                   "bound"});
  for (std::size_t i = 0; i < std::min(top_n, sorted.size()); ++i) {
    const auto& cp = sorted[i];
    table.add_row({std::to_string(i + 1), cp.config.to_string(),
                   TextTable::num(cp.perf.gflops, 1),
                   TextTable::num(cp.perf.traffic.reuse_factor, 1),
                   TextTable::num(cp.perf.occupancy.fraction, 2),
                   cp.perf.memory_bound ? "mem" : "compute"});
  }
  table.print(std::cout);

  // Persist the tuple the way a pipeline deployment would.
  std::cout << "\nresult row (CSV):\n";
  tuner::save_results(std::cout, {tuner::to_row(result)});

  if (cli.get_flag("kernel")) {
    codegen::CodegenOptions copt;
    copt.staged = result.best.config.tile_dm() > 1;
    std::cout << "\n-- generated OpenCL kernel --\n"
              << codegen::generate_opencl_kernel(plan, result.best.config,
                                                 copt);
  }
  return 0;
}
