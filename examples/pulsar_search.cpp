/// Pulsar search demo: a full single-beam search over a DM ladder, showing
/// *why* the brute-force search of §II is necessary — the S/N collapses off
/// the true trial, so the DM grid cannot be pruned.
///
/// Prints the per-trial peak S/N profile around the injected DM, plus the
/// smearing behaviour that motivates fine DM steps.
///
///   ./pulsar_search [--dms 128] [--dm 9.25] [--engine cpu_tiled]
///                   [--threads 0] [--snr-table]

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "pipeline/dedisperser.hpp"
#include "sky/delay.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("pulsar_search", "brute-force DM search on a synthetic pulsar");
  cli.add_option("dms", "number of trial DMs", "128");
  cli.add_option("dm", "true pulsar dispersion measure [pc/cm^3]", "9.25");
  cli.add_option("amplitude", "pulse amplitude over a sigma=1 floor", "1.5");
  cli.add_option("engine", "execution engine (registry id)", "cpu_tiled");
  cli.add_option("threads", "kernel worker threads (0 = machine-sized)", "0");
  cli.add_flag("snr-table", "print the whole per-trial S/N profile");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const double true_dm = cli.get_double("dm");

  pipeline::Dedisperser dd(obs, dms, cli.get("engine"));
  dd.set_config(dedisp::KernelConfig{50, 2, 4, 2});
  dedisp::CpuKernelOptions cpu_options;
  cpu_options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  dd.set_cpu_options(cpu_options);

  sky::PulsarParams pulsar;
  pulsar.dm = true_dm;
  pulsar.period_s = 0.2;
  pulsar.width_s = 0.0002;  // 4 samples: narrow enough to localize the DM
  pulsar.amplitude = cli.get_double("amplitude");
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  noise.seed = 2024;
  const Array2D<float> data = sky::make_observation_data(
      obs, dd.plan().in_samples(), pulsar, noise);

  const Array2D<float> out = dd.dedisperse(data.cview());

  // Per-trial S/N profile.
  std::vector<double> snr(dms);
  for (std::size_t trial = 0; trial < dms; ++trial) {
    snr[trial] = sky::series_snr(out.row(trial));
  }
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(snr.begin(), snr.end()) - snr.begin());

  // The physical DM resolution: a w-second boxcar cannot separate trials
  // whose band-edge delays differ by less than w.
  const double sweep_per_dm =
      sky::dispersion_delay_seconds(1.0, obs.f_min_mhz(), obs.f_max_mhz());
  const double dm_resolution = pulsar.width_s / sweep_per_dm;
  std::cout << "injected DM " << true_dm << " pc/cm^3; searching " << dms
            << " trials with step " << obs.dm_step()
            << " (pulse width limits localization to +-" << dm_resolution
            << ")\n"
            << "best trial: " << best << " (DM " << obs.dm_value(best)
            << ") with S/N " << snr[best] << " -> "
            << (std::abs(obs.dm_value(best) - true_dm) <=
                        std::max(dm_resolution, obs.dm_step())
                    ? "recovered"
                    : "MISSED")
            << "\n\n";

  // The smearing profile around the peak: §II's "slightly off" collapse.
  std::cout << "S/N around the detection (note the collapse off-peak):\n";
  TextTable profile({"trial", "DM", "peak S/N", "bar"});
  const std::size_t lo = best >= 6 ? best - 6 : 0;
  const std::size_t hi = std::min(dms, best + 7);
  for (std::size_t trial = lo; trial < hi; ++trial) {
    const std::size_t bar_len = static_cast<std::size_t>(
        std::max(0.0, snr[trial]) * 50.0 / std::max(1.0, snr[best]));
    profile.add_row({std::to_string(trial),
                     TextTable::num(obs.dm_value(trial), 2),
                     TextTable::num(snr[trial], 2),
                     std::string(bar_len, '#') +
                         (trial == best ? "  <- detection" : "")});
  }
  profile.print(std::cout);

  if (cli.get_flag("snr-table")) {
    std::cout << "\nfull profile:\n";
    TextTable full({"trial", "DM", "peak S/N"});
    for (std::size_t trial = 0; trial < dms; ++trial) {
      full.add_row({std::to_string(trial),
                    TextTable::num(obs.dm_value(trial), 2),
                    TextTable::num(snr[trial], 2)});
    }
    full.print(std::cout);
  }
  return 0;
}
