/// Subband (two-stage) dedispersion trade-off: the classic follow-up to the
/// paper's brute-force kernel. Compares FLOP counts, measured wall-clock
/// and detection quality of brute force vs. two-stage for several coarse
/// steps — showing the compute saving and the smearing cost.
///
///   ./subband_tradeoff [--dms 64] [--subbands 32] [--threads 0]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/reference.hpp"
#include "dedisp/subband.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("subband_tradeoff", "brute force vs two-stage dedispersion");
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("subbands", "subbands for the two-stage method", "32");
  cli.add_option("out-samples", "output window in samples", "5000");
  cli.add_option("threads", "kernel worker threads (0 = machine-sized)", "0");
  if (!cli.parse(argc, argv)) return 0;

  const sky::Observation obs = sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto subbands = static_cast<std::size_t>(cli.get_int("subbands"));
  const auto out_samples =
      static_cast<std::size_t>(cli.get_int("out-samples"));
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(obs, dms, out_samples);

  // A pulsar on a noisy floor; padded input for the split-delay reads.
  sky::PulsarParams pulsar;
  pulsar.dm = obs.dm_value(dms / 2);
  pulsar.period_s = 0.1;
  pulsar.width_s = 0.0005;
  pulsar.amplitude = 2.0;
  sky::NoiseParams noise;
  noise.sigma = 1.0;
  Array2D<float> data(obs.channels(), plan.in_samples() + 4);
  sky::generate_noise(obs, data.view(), noise);
  sky::inject_pulsar(obs, data.view(), pulsar);

  // Brute force (tiled host kernel).
  dedisp::CpuKernelOptions cpu_options;
  cpu_options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  Stopwatch clock;
  const Array2D<float> brute = dedisp::dedisperse_cpu(
      plan, dedisp::KernelConfig{50, 2, 4, 2}, data.cview(), cpu_options);
  const double brute_ms = clock.milliseconds();
  const sky::DetectionResult brute_hit = sky::detect_best_dm(brute.cview());

  std::cout << "== brute force vs two-stage, " << obs.name() << ", " << dms
            << " DMs x " << out_samples << " samples ==\n"
            << "brute force: " << TextTable::num(plan.total_flop() * 1e-6, 0)
            << " MFLOP, " << TextTable::num(brute_ms, 1) << " ms, detected DM "
            << obs.dm_value(brute_hit.best_trial) << " at S/N "
            << TextTable::num(brute_hit.best_snr, 1) << "\n\n";

  TextTable table({"coarse step", "MFLOP", "vs brute", "time", "smear",
                   "detected DM", "S/N"});
  for (std::size_t step : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    if (dms % step != 0) continue;
    const dedisp::SubbandConfig cfg{subbands, step};
    clock.reset();
    const Array2D<float> two_stage =
        dedisp::dedisperse_subband(plan, cfg, data.cview());
    const double ms = clock.milliseconds();
    const sky::DetectionResult hit = sky::detect_best_dm(two_stage.cview());
    const double flop = dedisp::subband_flop(plan, cfg);
    table.add_row(
        {std::to_string(step), TextTable::num(flop * 1e-6, 0),
         TextTable::num(plan.total_flop() / flop, 1) + "x less",
         TextTable::num(ms, 1) + " ms",
         std::to_string(dedisp::subband_max_delay_error(plan, cfg)) +
             " samples",
         TextTable::num(obs.dm_value(hit.best_trial), 2),
         TextTable::num(hit.best_snr, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(the smear column bounds the intra-subband delay error; "
               "once it passes the pulse width, S/N degrades)\n";
  return 0;
}
