#!/usr/bin/env python3
"""Validate the telemetry exporters' output (CI gate, stdlib only).

Checks a Prometheus text-exposition file against the format the scrape
endpoint would have to serve, and a Chrome trace_event JSON file against
the subset of the trace-event schema the exporter emits. Exits non-zero
with a line-numbered complaint on the first violation.

Usage:
  check_telemetry_exports.py --prometheus telemetry.prom \
      --chrome-trace telemetry.trace.json \
      [--require-span engine.execute --require-span shard.task ...]
"""

import argparse
import json
import re
import sys

METRIC_NAME = re.compile(r"^[a-z_][a-z0-9_]*$")
# Label values may use exactly the three escapes the exposition format
# defines: \\ , \" and \n. Anything else (JSON-style \uXXXX, \t, ...) is an
# exporter bug a scraper would ingest literally, so reject it.
LABEL_PAIR = re.compile(r'^[a-z_][a-z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"$')
NUMBER = re.compile(r"^-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\d+)$")
SAMPLE = re.compile(r"^(?P<name>[a-z_][a-z0-9_]*)(?:\{(?P<labels>[^}]*)\})?"
                    r" (?P<value>\S+)$")
KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}


def fail(what):
    print(f"check_telemetry_exports: {what}", file=sys.stderr)
    sys.exit(1)


def base_family(name):
    """Summary series share their family's TYPE line: strip _sum/_count."""
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prometheus(path):
    typed = {}
    samples = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                _, _, name, kind = parts
                if not METRIC_NAME.match(name):
                    fail(f"{path}:{lineno}: invalid metric name {name!r}")
                if kind not in KINDS:
                    fail(f"{path}:{lineno}: unknown metric kind {kind!r}")
                if name in typed:
                    fail(f"{path}:{lineno}: duplicate TYPE for {name!r}")
                typed[name] = kind
                continue
            if line.startswith("#"):
                continue  # comment
            m = SAMPLE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
            name = m.group("name")
            family = base_family(name)
            if family not in typed and name not in typed:
                fail(f"{path}:{lineno}: sample {name!r} has no TYPE line")
            kind = typed.get(family, typed.get(name))
            if kind == "counter" and not name.endswith("_total"):
                fail(f"{path}:{lineno}: counter {name!r} does not end in "
                     "'_total'")
            if m.group("labels"):
                for pair in m.group("labels").split(","):
                    if not LABEL_PAIR.match(pair):
                        fail(f"{path}:{lineno}: malformed label {pair!r}")
            if not NUMBER.match(m.group("value")):
                fail(f"{path}:{lineno}: non-numeric value "
                     f"{m.group('value')!r}")
            samples += 1
    if not typed:
        fail(f"{path}: no TYPE lines — not a Prometheus exposition?")
    if samples == 0:
        fail(f"{path}: no samples")
    print(f"{path}: OK ({len(typed)} families, {samples} samples)")


def check_chrome_trace(path, required_spans):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing the traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
    seen = set()
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: empty name")
        if ev["ph"] not in ("X", "i"):
            fail(f"{where}: unexpected phase {ev['ph']!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{where}: complete event without dur")
        if ev["ph"] == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(f"{where}: instant without a valid scope")
        for key in ("ts", "dur"):
            if key in ev and not isinstance(ev[key], (int, float)):
                fail(f"{where}: {key} is not a number")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where}: args is not an object")
        seen.add(ev["name"])
    for span in required_spans:
        if span not in seen:
            fail(f"{path}: required span {span!r} never recorded "
                 f"(saw: {', '.join(sorted(seen)) or 'nothing'})")
    print(f"{path}: OK ({len(events)} events, "
          f"{len(seen)} distinct span names)")


def selftest():
    """Gate the label grammar itself on hostile values.

    A label value containing a quote, a backslash and a newline must pass
    when escaped with the exposition format's three escapes — and must FAIL
    when escaped JSON-style (\\uXXXX / \\t), which is exactly the exporter
    bug this checker exists to catch.
    """
    import tempfile, os

    def run_on(text):
        with tempfile.NamedTemporaryFile("w", suffix=".prom",
                                         delete=False) as f:
            f.write(text)
            path = f.name
        try:
            check_prometheus(path)
            return True
        except SystemExit:
            return False
        finally:
            os.unlink(path)

    hostile_ok = ('# TYPE ddmc_engine_executions_total counter\n'
                  'ddmc_engine_executions_total'
                  '{engine="we\\"ird\\\\name\\nline"} 1\n')
    if not run_on(hostile_ok):
        fail("selftest: properly escaped hostile label was rejected")
    json_style = ('# TYPE ddmc_engine_executions_total counter\n'
                  'ddmc_engine_executions_total'
                  '{engine="we\\u0022ird\\u005cname\\u000aline"} 1\n')
    if run_on(json_style):
        fail("selftest: JSON-style \\uXXXX label escapes were accepted")
    tab_escape = ('# TYPE ddmc_engine_executions_total counter\n'
                  'ddmc_engine_executions_total{engine="a\\tb"} 1\n')
    if run_on(tab_escape):
        fail("selftest: undefined \\t label escape was accepted")
    print("selftest: OK (hostile label accepted only with exposition "
          "escaping)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prometheus", help="Prometheus text file to validate")
    ap.add_argument("--chrome-trace", help="Chrome trace JSON to validate")
    ap.add_argument("--require-span", action="append", default=[],
                    help="span name that must appear in the Chrome trace "
                         "(repeatable)")
    ap.add_argument("--selftest", action="store_true",
                    help="validate the label grammar against hostile values")
    args = ap.parse_args()
    if not args.prometheus and not args.chrome_trace and not args.selftest:
        ap.error("nothing to check: pass --prometheus, --chrome-trace "
                 "and/or --selftest")
    if args.selftest:
        selftest()
    if args.prometheus:
        check_prometheus(args.prometheus)
    if args.chrome_trace:
        check_chrome_trace(args.chrome_trace, args.require_span)


if __name__ == "__main__":
    main()
