// Unit tests for the radio-astronomy substrate: observational setups,
// dispersion delays (Eq. 1), the delay table and its tile-spread statistics,
// synthetic signal generation and detection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/expect.hpp"
#include "common/statistics.hpp"
#include "sky/delay.hpp"
#include "sky/detection.hpp"
#include "sky/observation.hpp"
#include "sky/signal.hpp"
#include "test_util.hpp"

namespace ddmc::sky {
namespace {

// ------------------------------------------------------------ observation --

TEST(Observation, ApertifMatchesPaperSetup) {
  const Observation obs = apertif();
  EXPECT_EQ(obs.samples_per_second(), 20000u);
  EXPECT_EQ(obs.channels(), 1024u);
  EXPECT_DOUBLE_EQ(obs.f_min_mhz(), 1420.0);
  EXPECT_DOUBLE_EQ(obs.f_max_mhz(), 1720.0);  // 1420 + 1024 × (300/1024)
  EXPECT_NEAR(obs.channel_bw_mhz(), 0.293, 0.001);
  EXPECT_DOUBLE_EQ(obs.dm_first(), 0.0);
  EXPECT_DOUBLE_EQ(obs.dm_step(), 0.25);
  // §IV: "20 MFLOP per DM".
  EXPECT_NEAR(obs.flop_per_dm_per_second(), 20.48e6, 1.0);
}

TEST(Observation, LofarMatchesPaperSetup) {
  const Observation obs = lofar();
  EXPECT_EQ(obs.samples_per_second(), 200000u);
  EXPECT_EQ(obs.channels(), 32u);
  EXPECT_DOUBLE_EQ(obs.f_min_mhz(), 138.0);
  EXPECT_DOUBLE_EQ(obs.f_max_mhz(), 144.0);  // 138 + 32 × (6/32)
  // §IV: "6 MFLOP per DM" (s·c = 6.4e6).
  EXPECT_NEAR(obs.flop_per_dm_per_second(), 6.4e6, 1.0);
}

TEST(Observation, ChannelFrequenciesAscend) {
  const Observation obs = testing::mini_obs();
  for (std::size_t ch = 1; ch < obs.channels(); ++ch) {
    EXPECT_GT(obs.channel_freq_mhz(ch), obs.channel_freq_mhz(ch - 1));
  }
  EXPECT_THROW(obs.channel_freq_mhz(obs.channels()), invalid_argument);
}

TEST(Observation, DmGridIsAffine) {
  const Observation obs("o", 100.0, 4, 100.0, 1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(obs.dm_value(0), 2.0);
  EXPECT_DOUBLE_EQ(obs.dm_value(3), 3.5);
}

TEST(Observation, ZeroDmVariantKillsTheGrid) {
  const Observation z = apertif().zero_dm_variant();
  EXPECT_DOUBLE_EQ(z.dm_first(), 0.0);
  EXPECT_DOUBLE_EQ(z.dm_step(), 0.0);
  EXPECT_DOUBLE_EQ(z.dm_value(4095), 0.0);
  EXPECT_NE(z.name(), apertif().name());
  // Everything else is untouched.
  EXPECT_EQ(z.channels(), 1024u);
  EXPECT_EQ(z.samples_per_second(), 20000u);
}

TEST(Observation, RejectsNonPhysicalParameters) {
  EXPECT_THROW(Observation("x", 0.0, 4, 100, 1, 0, 1), invalid_argument);
  EXPECT_THROW(Observation("x", 100, 0, 100, 1, 0, 1), invalid_argument);
  EXPECT_THROW(Observation("x", 100, 4, -5, 1, 0, 1), invalid_argument);
  EXPECT_THROW(Observation("x", 100, 4, 100, 0, 0, 1), invalid_argument);
  EXPECT_THROW(Observation("x", 100, 4, 100, 1, -1, 1), invalid_argument);
  EXPECT_THROW(Observation("x", 100, 4, 100, 1, 0, -1), invalid_argument);
}

TEST(Observation, PaperInstancesLadder) {
  const auto instances = paper_instances();
  ASSERT_EQ(instances.size(), 12u);  // §IV-A: 12 input instances
  EXPECT_EQ(instances.front(), 2u);
  EXPECT_EQ(instances.back(), 4096u);
  for (std::size_t i = 1; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i], instances[i - 1] * 2);
  }
  EXPECT_THROW(paper_instances(1), invalid_argument);
}

// ------------------------------------------------------------------ delay --

TEST(Delay, MatchesEquationOne) {
  // k = 4150 · DM · (f⁻² − f_h⁻²), hand-evaluated.
  const double k = dispersion_delay_seconds(10.0, 100.0, 200.0);
  const double expected = 4150.0 * 10.0 * (1.0 / 1e4 - 1.0 / 4e4);
  EXPECT_NEAR(k, expected, 1e-12);
}

TEST(Delay, ZeroDmAndReferenceFrequencyGiveZero) {
  EXPECT_DOUBLE_EQ(dispersion_delay_seconds(0.0, 100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(dispersion_delay_seconds(50.0, 150.0, 150.0), 0.0);
}

TEST(Delay, MonotoneIncreasingInDm) {
  double prev = -1.0;
  for (double dm = 0.0; dm <= 100.0; dm += 12.5) {
    const double k = dispersion_delay_seconds(dm, 120.0, 180.0);
    EXPECT_GT(k, prev);
    prev = k;
  }
}

TEST(Delay, LowerFrequenciesLagMore) {
  const double low = dispersion_delay_seconds(30.0, 110.0, 200.0);
  const double mid = dispersion_delay_seconds(30.0, 150.0, 200.0);
  EXPECT_GT(low, mid);
  EXPECT_GT(mid, 0.0);
}

TEST(Delay, RejectsInvalidArguments) {
  EXPECT_THROW(dispersion_delay_seconds(-1.0, 100, 200), invalid_argument);
  EXPECT_THROW(dispersion_delay_seconds(1.0, 0.0, 200), invalid_argument);
  EXPECT_THROW(dispersion_delay_seconds(1.0, 300, 200), invalid_argument);
  EXPECT_THROW(dispersion_delay_samples(1.0, 100, 200, 0.0),
               invalid_argument);
}

TEST(Delay, SampleRoundingIsNearest) {
  // Pick dm so the delay is 2.6 samples: expect 3.
  const double seconds = dispersion_delay_seconds(1.0, 100.0, 200.0);
  const double rate = 2.6 / seconds;
  EXPECT_EQ(dispersion_delay_samples(1.0, 100.0, 200.0, rate), 3);
}

// ------------------------------------------------------------ delay table --

TEST(DelayTable, ShapeAndMonotonicity) {
  const Observation obs = testing::mini_obs();
  const DelayTable table(obs, 8);
  EXPECT_EQ(table.dms(), 8u);
  EXPECT_EQ(table.channels(), obs.channels());
  for (std::size_t ch = 0; ch < table.channels(); ++ch) {
    for (std::size_t dm = 1; dm < table.dms(); ++dm) {
      EXPECT_GE(table.delay(dm, ch), table.delay(dm - 1, ch))
          << "dm=" << dm << " ch=" << ch;
    }
  }
  for (std::size_t dm = 0; dm < table.dms(); ++dm) {
    for (std::size_t ch = 1; ch < table.channels(); ++ch) {
      EXPECT_LE(table.delay(dm, ch), table.delay(dm, ch - 1))
          << "higher channels must not lag more";
    }
  }
}

TEST(DelayTable, FirstRowIsZeroWhenDmStartsAtZero) {
  const DelayTable table(testing::mini_obs(), 4);
  for (std::size_t ch = 0; ch < table.channels(); ++ch) {
    EXPECT_EQ(table.delay(0, ch), 0);
  }
}

TEST(DelayTable, MaxDelaySitsAtLowestChannelHighestDm) {
  const Observation obs = testing::mini_obs();
  const DelayTable table(obs, 8);
  EXPECT_EQ(table.max_delay(), table.delay(7, 0));
  EXPECT_GT(table.max_delay(), 0);
}

TEST(DelayTable, ZeroDmVariantHasAllZeroDelays) {
  const DelayTable table(testing::mini_obs().zero_dm_variant(), 8);
  for (std::size_t dm = 0; dm < 8; ++dm)
    for (std::size_t ch = 0; ch < table.channels(); ++ch)
      EXPECT_EQ(table.delay(dm, ch), 0);
  EXPECT_EQ(table.max_delay(), 0);
}

TEST(DelayTable, TileSpreadsDegenerateForSingleTrialTiles) {
  const DelayTable table(testing::mini_obs(), 8);
  const SpreadStats s = table.tile_spreads(1);
  EXPECT_DOUBLE_EQ(s.total_spread, 0.0);
  EXPECT_EQ(s.max_spread, 0);
  EXPECT_EQ(s.rows, 8u * table.channels());
}

TEST(DelayTable, TileSpreadsMatchHandComputation) {
  const Observation obs = testing::mini_obs();
  const DelayTable table(obs, 8);
  const SpreadStats s = table.tile_spreads(4);
  double expected_total = 0.0;
  std::int64_t expected_max = 0;
  for (std::size_t tile = 0; tile < 2; ++tile) {
    for (std::size_t ch = 0; ch < obs.channels(); ++ch) {
      const std::int64_t spread =
          table.delay(tile * 4 + 3, ch) - table.delay(tile * 4, ch);
      expected_total += static_cast<double>(spread);
      expected_max = std::max(expected_max, spread);
    }
  }
  EXPECT_DOUBLE_EQ(s.total_spread, expected_total);
  EXPECT_EQ(s.max_spread, expected_max);
  EXPECT_EQ(s.rows, 2u * obs.channels());
}

TEST(DelayTable, LargerTilesSpreadAtLeastAsMuchPerRow) {
  const DelayTable table(testing::mini_obs(), 8);
  const SpreadStats s2 = table.tile_spreads(2);
  const SpreadStats s8 = table.tile_spreads(8);
  const double per_row2 = s2.total_spread / static_cast<double>(s2.rows);
  const double per_row8 = s8.total_spread / static_cast<double>(s8.rows);
  EXPECT_GE(per_row8, per_row2);
  EXPECT_GE(s8.max_spread, s2.max_spread);
}

TEST(DelayTable, TileSpreadsRejectNonDividingTiles) {
  const DelayTable table(testing::mini_obs(), 8);
  EXPECT_THROW(table.tile_spreads(3), invalid_argument);
  EXPECT_THROW(table.tile_spreads(0), invalid_argument);
}

TEST(DelayTable, ApertifDelaysSmallerThanLofar) {
  // The physical reason Apertif offers more reuse (§IV): higher band ⇒
  // smaller per-trial delay steps.
  const DelayTable ap(apertif(), 64);
  const DelayTable lo(lofar(), 64);
  EXPECT_LT(ap.tile_spreads(64).total_spread /
                static_cast<double>(ap.channels()),
            lo.tile_spreads(64).total_spread /
                static_cast<double>(lo.channels()));
}

// ----------------------------------------------------------------- signal --

TEST(Signal, NoiseIsDeterministicPerSeed) {
  const Observation obs = testing::mini_obs();
  Array2D<float> a(obs.channels(), 128), b(obs.channels(), 128);
  generate_noise(obs, a.view(), NoiseParams{1.0, 0.0, 5});
  generate_noise(obs, b.view(), NoiseParams{1.0, 0.0, 5});
  testing::expect_same_matrix(a, b);
}

TEST(Signal, NoiseMomentsRoughlyMatch) {
  const Observation obs = testing::mini_obs();
  Array2D<float> m(obs.channels(), 4096);
  generate_noise(obs, m.view(), NoiseParams{2.0, 10.0, 3});
  RunningStats rs;
  for (std::size_t ch = 0; ch < m.rows(); ++ch)
    for (float v : m.row(ch)) rs.add(v);
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Signal, PulsarLandsAtDispersedArrivalTimes) {
  const Observation obs = testing::mini_obs();
  Array2D<float> m(obs.channels(), 256);  // starts all-zero
  PulsarParams p;
  p.dm = 1.0;
  p.period_s = 10.0;  // only one pulse inside the window
  p.width_s = 0.01;   // one sample wide
  p.amplitude = 3.0;
  p.first_pulse_s = 0.2;
  inject_pulsar(obs, m.view(), p);
  const double f_top = obs.f_max_mhz();
  for (std::size_t ch = 0; ch < obs.channels(); ++ch) {
    const std::int64_t delay = dispersion_delay_samples(
        p.dm, obs.channel_freq_mhz(ch), f_top, obs.sampling_rate());
    const auto start = static_cast<std::size_t>(20 + delay);
    ASSERT_LT(start, m.cols());
    EXPECT_EQ(m(ch, start), 3.0f) << "channel " << ch;
  }
}

TEST(Signal, PulsesClipAtMatrixEdge) {
  const Observation obs = testing::mini_obs();
  Array2D<float> m(obs.channels(), 16);  // too short for the delays
  PulsarParams p;
  p.dm = 5.0;  // max delay far beyond 16 samples
  p.first_pulse_s = 0.0;
  EXPECT_NO_THROW(inject_pulsar(obs, m.view(), p));
}

TEST(Signal, MakeObservationDataCombinesNoiseAndPulse) {
  const Observation obs = testing::mini_obs();
  PulsarParams p;
  p.dm = 0.0;
  p.amplitude = 50.0;
  p.first_pulse_s = 0.3;
  p.period_s = 10.0;
  p.width_s = 0.01;
  const Array2D<float> m =
      make_observation_data(obs, 128, p, NoiseParams{0.1, 0.0, 1});
  // At DM 0 every channel pulses at the same sample.
  for (std::size_t ch = 0; ch < obs.channels(); ++ch) {
    EXPECT_GT(m(ch, 30), 40.0f);
  }
}

TEST(Signal, RejectsWrongShapesAndParameters) {
  const Observation obs = testing::mini_obs();
  Array2D<float> wrong(obs.channels() + 1, 64);
  EXPECT_THROW(generate_noise(obs, wrong.view(), NoiseParams{}),
               invalid_argument);
  Array2D<float> ok(obs.channels(), 64);
  PulsarParams bad;
  bad.period_s = 0.0;
  EXPECT_THROW(inject_pulsar(obs, ok.view(), bad), invalid_argument);
  bad.period_s = 1.0;
  bad.width_s = 0.0;
  EXPECT_THROW(inject_pulsar(obs, ok.view(), bad), invalid_argument);
}

// -------------------------------------------------------------- detection --

TEST(Detection, SeriesSnrOfConstantIsZero) {
  const std::vector<float> flat(100, 2.0f);
  EXPECT_EQ(series_snr(flat), 0.0);
}

TEST(Detection, SeriesSnrGrowsWithPeakHeight) {
  std::vector<float> a(100, 0.0f), b(100, 0.0f);
  for (std::size_t i = 0; i < 100; ++i) {
    a[i] = static_cast<float>((i * 37 % 11)) * 0.01f;
    b[i] = a[i];
  }
  a[50] += 5.0f;
  b[50] += 15.0f;
  EXPECT_GT(series_snr(b), series_snr(a));
}

TEST(Detection, EmptySeriesRejected) {
  const std::vector<float> empty;
  EXPECT_THROW(series_snr(empty), invalid_argument);
}

TEST(Detection, EvenLengthMedianAveragesTheMiddlePair) {
  // Regression: median_inplace used to take the upper-middle element of an
  // even-length series, biasing the baseline high and the MAD·1.4826 σ
  // estimate with it. For {0, 1, 2, 10} (every step exact in binary):
  //   baseline = (1 + 2) / 2           = 1.5
  //   |x − 1.5| = {1.5, 0.5, 0.5, 8.5} → MAD = (0.5 + 1.5) / 2 = 1.0
  //   σ = 1.4826,  SNR = (10 − 1.5) / 1.4826
  const std::vector<float> series = {0.0f, 1.0f, 2.0f, 10.0f};
  EXPECT_DOUBLE_EQ(series_snr(series), (10.0 - 1.5) / 1.4826);
  // The upper-middle bias would have produced (10 − 2) / (1.4826 · 2).
  EXPECT_NE(series_snr(series), (10.0 - 2.0) / (1.4826 * 2.0));

  // Odd lengths keep the single middle element: {0, 1, 10} → baseline 1,
  // |x − 1| = {1, 0, 9} → MAD 1, σ = 1.4826.
  const std::vector<float> odd = {0.0f, 1.0f, 10.0f};
  EXPECT_DOUBLE_EQ(series_snr(odd), (10.0 - 1.0) / 1.4826);
}

TEST(Detection, FindsRowWithStrongestPeak) {
  Array2D<float> m(4, 64);
  Rng rng(2);
  for (std::size_t r = 0; r < 4; ++r)
    for (auto& v : m.row(r)) v = rng.next_float(-0.1f, 0.1f);
  m(2, 17) = 9.0f;
  const DetectionResult res = detect_best_dm(m.cview());
  EXPECT_EQ(res.best_trial, 2u);
  EXPECT_EQ(res.peak_sample, 17u);
  EXPECT_GT(res.best_snr, 5.0);
}

}  // namespace
}  // namespace ddmc::sky
