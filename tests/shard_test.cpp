// Tests for DM-sharded execution (pipeline/sharding.hpp): planner cost
// balance and the differential guarantee — sharded output is bitwise
// identical to the single-engine batch path across shard counts, uneven DM
// grids, multi-beam batching and streaming chunked mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/random.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "engine/engine_config.hpp"
#include "pipeline/dedisperser.hpp"
#include "pipeline/multibeam.hpp"
#include "pipeline/sharding.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "test_util.hpp"

namespace ddmc::pipeline {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::expect_same_matrix;
using testing::mini_obs;
using testing::random_input;

/// Single-engine reference: one kernel call over the whole plan, one thread.
Array2D<float> single_engine(const Plan& plan, const KernelConfig& config,
                             const Array2D<float>& input) {
  dedisp::CpuKernelOptions cpu;
  cpu.threads = 1;
  return dedisp::dedisperse_cpu(plan, config, input.cview(), cpu);
}

// ------------------------------------------------------------------ plan --

TEST(DmShardPlan, SlicesTheParentDelayTableBitForBit) {
  const Plan parent = Plan::with_output_samples(mini_obs(), 12, 60);
  const Plan shard = parent.dm_shard(5, 4);
  EXPECT_EQ(shard.dms(), 4u);
  EXPECT_EQ(shard.out_samples(), parent.out_samples());
  EXPECT_EQ(shard.channels(), parent.channels());
  for (std::size_t dm = 0; dm < shard.dms(); ++dm) {
    for (std::size_t ch = 0; ch < shard.channels(); ++ch) {
      ASSERT_EQ(shard.delays().delay(dm, ch),
                parent.delays().delay(5 + dm, ch))
          << "dm " << dm << " ch " << ch;
    }
  }
  // The shard's input window is its own sweep, not the parent's: low-DM
  // shards carry less history.
  EXPECT_EQ(shard.in_samples(),
            shard.out_samples() +
                static_cast<std::size_t>(shard.delays().max_delay()));
  EXPECT_LE(shard.in_samples(), parent.in_samples());
  const Plan low = parent.dm_shard(0, 4);
  EXPECT_LT(low.in_samples(), parent.in_samples());
  // The shard observation's grid starts at the sliced trial.
  EXPECT_DOUBLE_EQ(shard.observation().dm_first(),
                   parent.observation().dm_value(5));

  EXPECT_THROW(parent.dm_shard(5, 8), invalid_argument);
  EXPECT_THROW(parent.dm_shard(0, 0), invalid_argument);
}

// --------------------------------------------------------------- planner --

TEST(DmShardPlanner, PartitionCoversTheGridContiguously) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 24, 60);
  const DmShardPlanner planner(plan);
  for (std::size_t workers : {1u, 2u, 3u, 5u, 7u, 24u, 40u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const ShardLayout layout = planner.partition(workers);
    // One shard per worker, clamped to the trial count.
    EXPECT_EQ(layout.shards.size(), std::min<std::size_t>(workers, 24));
    std::size_t next = 0;
    for (const DmShard& s : layout.shards) {
      EXPECT_EQ(s.first_dm, next);
      EXPECT_GE(s.dms, 1u);
      EXPECT_GT(s.modeled_seconds, 0.0);
      next += s.dms;
    }
    EXPECT_EQ(next, 24u);
  }
}

TEST(DmShardPlanner, ModeledCostIsBalancedWithinTolerance) {
  // A steep DM grid (large step) makes the top shard's input window much
  // larger than the bottom's, which is exactly what the cost model must
  // absorb: the balanced layout's critical path must not exceed the mean
  // by more than the contiguity granularity allows.
  const Plan plan =
      Plan::with_output_samples(mini_obs(8, /*dm_step=*/4.0), 64, 50);
  const DmShardPlanner planner(plan);
  for (std::size_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const ShardLayout layout = planner.partition(workers);
    ASSERT_EQ(layout.shards.size(), workers);
    EXPECT_LT(layout.imbalance(), 1.25);
  }
}

TEST(DmShardPlanner, BeatsOrMatchesEqualCountSplits) {
  const Plan plan =
      Plan::with_output_samples(mini_obs(8, /*dm_step=*/4.0), 64, 50);
  const DmShardPlanner planner(plan);
  for (std::size_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    double equal_max = 0.0;
    const std::size_t per = 64 / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      equal_max = std::max(equal_max, planner.shard_seconds(w * per, per));
    }
    const ShardLayout layout = planner.partition(workers);
    EXPECT_LE(layout.modeled_max_seconds, equal_max * (1.0 + 1e-12));
  }
}

TEST(DmShardPlanner, MoreWorkersNeverRaiseTheCriticalPath) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 32, 60);
  const DmShardPlanner planner(plan);
  double prev = planner.partition(1).modeled_max_seconds;
  for (std::size_t workers : {2u, 3u, 4u, 6u, 8u}) {
    const double now = planner.partition(workers).modeled_max_seconds;
    EXPECT_LE(now, prev * (1.0 + 1e-12)) << "workers=" << workers;
    prev = now;
  }
}

TEST(DmShardPlanner, HigherShardsCostMoreAtEqualCounts) {
  const Plan plan =
      Plan::with_output_samples(mini_obs(8, /*dm_step=*/4.0), 64, 50);
  const DmShardPlanner planner(plan);
  EXPECT_GT(planner.shard_seconds(48, 16), planner.shard_seconds(0, 16));
  EXPECT_THROW(planner.shard_seconds(60, 8), invalid_argument);
  EXPECT_THROW(planner.shard_seconds(0, 0), invalid_argument);
}

// -------------------------------------------------------------- executor --

TEST(ShardedDedisperser, BitwiseIdenticalAcrossShardCounts) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  const KernelConfig config{5, 2, 4, 2};
  const Array2D<float> expected = single_engine(plan, config, input);

  // 1, 2, primes, and more workers than trials.
  for (std::size_t workers : {1u, 2u, 3u, 5u, 7u, 12u, 19u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ShardedOptions opts;
    opts.workers = workers;
    const ShardedDedisperser sharded(plan, config, opts);
    EXPECT_EQ(sharded.shard_count(),
              sharded.layout().shards.size());
    expect_same_matrix(expected, sharded.dedisperse(input.cview()));
  }
}

TEST(ShardedDedisperser, HandlesUnevenAndPrimeDmGrids) {
  for (std::size_t dms : {1u, 7u, 13u}) {
    SCOPED_TRACE("dms=" + std::to_string(dms));
    const Plan plan = Plan::with_output_samples(mini_obs(), dms, 60);
    const Array2D<float> input = random_input(plan);
    const KernelConfig config{5, 1, 4, 1};
    const Array2D<float> expected = single_engine(plan, config, input);
    ShardedOptions opts;
    opts.workers = 3;
    const ShardedDedisperser sharded(plan, config, opts);
    expect_same_matrix(expected, sharded.dedisperse(input.cview()));
  }
}

TEST(ShardedDedisperser, AdaptsTheDmTileToEachShard) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const KernelConfig config{5, 2, 4, 2};  // tile_dm = 4
  ShardedOptions opts;
  opts.workers = 5;  // 12 trials over 5 shards: some shard breaks tile 4
  const ShardedDedisperser sharded(plan, config, opts);
  for (std::size_t i = 0; i < sharded.shard_count(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    const KernelConfig c =
        engine::decode_kernel_config(sharded.shard_config(i));
    EXPECT_EQ(c.tile_time(), config.tile_time());  // time tile untouched
    EXPECT_EQ(sharded.shard_plan(i).dms() % c.tile_dm(), 0u);
    EXPECT_NO_THROW(c.validate(sharded.shard_plan(i)));
  }
  // A config that does not validate against the parent plan is rejected.
  EXPECT_THROW(ShardedDedisperser(plan, KernelConfig{7, 1, 1, 1}, opts),
               config_error);
}

TEST(ShardedDedisperser, RejectsWrongShapes) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 8, 60);
  const Array2D<float> input = random_input(plan);
  ShardedOptions opts;
  opts.workers = 2;
  const ShardedDedisperser sharded(plan, KernelConfig{1, 1, 1, 1}, opts);
  Array2D<float> bad_rows(plan.dms() + 1, plan.out_samples());
  EXPECT_THROW(sharded.dedisperse(input.cview(), bad_rows.view()),
               invalid_argument);
  Array2D<float> short_in(plan.channels(), plan.in_samples() - 1);
  EXPECT_THROW(sharded.dedisperse(short_in.cview()), invalid_argument);
  EXPECT_THROW(sharded.dedisperse_batch({}), invalid_argument);
}

TEST(ShardedDedisperser, TunesEachShardThroughTheCache) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  const Array2D<float> expected =
      single_engine(plan, KernelConfig{1, 1, 1, 1}, input);

  tuner::TuningCache cache;
  tuner::GuidedTuningOptions tuning;
  tuning.host.repetitions = 1;
  tuning.host.warmup_runs = 0;
  tuning.strategy = tuner::StrategyKind::kRandom;
  tuning.random_samples = 2;
  ShardedOptions opts;
  opts.workers = 3;

  const ShardedDedisperser cold(plan, cache, opts, tuning);
  ASSERT_EQ(cold.tuning_outcomes().size(), cold.shard_count());
  // Cold cache: the first shard always searches; later shards either
  // transfer from a neighbor (distinct PlanSignature, zero measurements)
  // or search when no neighbor's config divides their trial count.
  EXPECT_EQ(cold.tuning_outcomes().front().source,
            tuner::GuidedTuningOutcome::Source::kSearch);
  for (const auto& outcome : cold.tuning_outcomes()) {
    if (outcome.source == tuner::GuidedTuningOutcome::Source::kTransfer) {
      EXPECT_EQ(outcome.configs_evaluated, 0u);
      EXPECT_TRUE(outcome.transfer_distance.has_value());
    }
  }
  EXPECT_EQ(cache.size(),
            static_cast<std::size_t>(std::count_if(
                cold.tuning_outcomes().begin(), cold.tuning_outcomes().end(),
                [](const auto& o) {
                  return o.source ==
                         tuner::GuidedTuningOutcome::Source::kSearch;
                })));
  expect_same_matrix(expected, cold.dedisperse(input.cview()));

  // Same plan, same engine, warm cache: no shard measures anything —
  // shards whose search was stored are exact hits, the rest transfer.
  const ShardedDedisperser warm(plan, cache, opts, tuning);
  EXPECT_EQ(warm.tuning_outcomes().front().source,
            tuner::GuidedTuningOutcome::Source::kCacheHit);
  for (const auto& outcome : warm.tuning_outcomes()) {
    EXPECT_NE(outcome.source, tuner::GuidedTuningOutcome::Source::kSearch);
    EXPECT_EQ(outcome.configs_evaluated, 0u);
  }
  expect_same_matrix(expected, warm.dedisperse(input.cview()));
}

TEST(ShardedDedisperser, BatchedBeamsMatchThePerBeamPath) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const KernelConfig config{5, 2, 4, 2};
  std::vector<Array2D<float>> inputs;
  std::vector<ConstView2D<float>> views;
  for (std::size_t b = 0; b < 3; ++b) {
    inputs.push_back(random_input(plan, 100 + b));
    views.push_back(inputs.back().cview());
  }
  ShardedOptions opts;
  opts.workers = 4;
  const ShardedDedisperser sharded(plan, config, opts);
  const std::vector<Array2D<float>> got = sharded.dedisperse_batch(views);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    SCOPED_TRACE("beam " + std::to_string(b));
    expect_same_matrix(single_engine(plan, config, inputs[b]), got[b]);
  }
}

// ---------------------------------------------------------------- wiring --

TEST(Dedisperser, ShardedExecutionKnobIsBitwiseIdentical) {
  const sky::Observation obs = mini_obs();
  Dedisperser single =
      Dedisperser::with_output_samples(obs, 12, 60, "cpu_tiled");
  single.set_config(KernelConfig{5, 2, 4, 2});
  const Array2D<float> input = random_input(single.plan());
  const Array2D<float> expected = single.dedisperse(input.cview());

  Dedisperser sharded =
      Dedisperser::with_output_samples(obs, 12, 60, "cpu_tiled");
  sharded.set_config(KernelConfig{5, 2, 4, 2});
  sharded.set_execution(Execution::kDmSharded, 3);
  EXPECT_EQ(sharded.execution(), Execution::kDmSharded);
  expect_same_matrix(expected, sharded.dedisperse(input.cview()));

  // Back to single: the knob is reversible.
  sharded.set_execution(Execution::kSingle);
  expect_same_matrix(expected, sharded.dedisperse(input.cview()));
}

TEST(Dedisperser, ShardedExecutionRequiresTheShardingCapability) {
  // Regression for the old silent-ignore wiring: an engine whose
  // capabilities report !supports_sharding is rejected with an error that
  // names the missing capability, instead of quietly dropping the workers.
  for (const char* id : {"subband", "ocl_sim"}) {
    SCOPED_TRACE(id);
    Dedisperser dd = Dedisperser::with_output_samples(mini_obs(), 8, 64, id);
    try {
      dd.set_execution(Execution::kDmSharded, 2);
      FAIL() << "set_execution accepted an engine without supports_sharding";
    } catch (const invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("supports_sharding"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find(id), std::string::npos);
    }
    EXPECT_NO_THROW(dd.set_execution(Execution::kSingle));
  }
  // The capability, not the engine id, is what gates: every
  // sharding-capable engine takes the knob.
  for (const char* id : {"cpu_tiled", "cpu_baseline", "reference"}) {
    SCOPED_TRACE(id);
    Dedisperser dd = Dedisperser::with_output_samples(mini_obs(), 8, 64, id);
    EXPECT_NO_THROW(dd.set_execution(Execution::kDmSharded, 2));
  }
}

TEST(MultiBeamDedisperser, ShardedBatchMatchesTheBeamParallelPath) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  MultiBeamDedisperser mb(plan, KernelConfig{5, 2, 4, 2});
  std::vector<Array2D<float>> inputs;
  std::vector<ConstView2D<float>> views;
  for (std::size_t b = 0; b < 3; ++b) {
    inputs.push_back(random_input(plan, 500 + b));
    views.push_back(inputs.back().cview());
  }
  const std::vector<Array2D<float>> expected = mb.dedisperse(views, 1);
  const std::vector<Array2D<float>> got = mb.dedisperse_sharded(views, 4);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t b = 0; b < got.size(); ++b) {
    SCOPED_TRACE("beam " + std::to_string(b));
    expect_same_matrix(expected[b], got[b]);
  }
}

// ------------------------------------------------------------- streaming --

/// Reassemble sink chunks into one dms × total matrix by first_sample.
struct Collector {
  Array2D<float> total;
  std::size_t emitted = 0;

  Collector(std::size_t dms, std::size_t out) : total(dms, out) {}

  void operator()(const stream::StreamChunk& chunk) {
    ASSERT_LE(chunk.first_sample + chunk.out_samples, total.cols());
    for (std::size_t dm = 0; dm < total.rows(); ++dm) {
      for (std::size_t t = 0; t < chunk.out_samples; ++t) {
        total(dm, chunk.first_sample + t) = chunk.output(dm, t);
      }
    }
    emitted += chunk.out_samples;
  }
};

TEST(StreamingDedisperser, ShardedChunksAreBitwiseEqualToBatch) {
  const std::size_t total_out = 145;  // 4 full chunks of 32 + partial 17
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);
  dedisp::CpuKernelOptions cpu;
  cpu.threads = 1;
  const Array2D<float> expected = dedisp::dedisperse_cpu(
      batch, KernelConfig{1, 1, 1, 1}, input.cview(), cpu);

  for (bool async : {false, true}) {
    SCOPED_TRACE(async ? "async" : "sync");
    Collector collect(batch.dms(), total_out);
    stream::StreamingOptions opts;
    opts.async = async;
    opts.cpu.threads = 1;
    opts.shard_workers = 3;
    stream::StreamingDedisperser session(batch.with_chunk(32),
                                         KernelConfig{8, 2, 4, 2},
                                         std::ref(collect), opts);
    session.push(input.cview());
    session.close();
    EXPECT_EQ(collect.emitted, total_out);
    expect_same_matrix(expected, collect.total);
  }
}

TEST(MultiBeamStreamingDedisperser, ShardedChunksMatchTheUnshardedSession) {
  const std::size_t total_out = 80;  // 2 full chunks of 32 + partial 16
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const std::size_t beams = 2;
  std::vector<Array2D<float>> inputs;
  std::vector<ConstView2D<float>> views;
  for (std::size_t b = 0; b < beams; ++b) {
    inputs.push_back(random_input(batch, 900 + b));
    views.push_back(inputs.back().cview());
  }

  const auto run = [&](std::size_t shard_workers) {
    std::vector<Array2D<float>> totals;
    for (std::size_t b = 0; b < beams; ++b) {
      totals.emplace_back(batch.dms(), total_out);
    }
    stream::StreamingOptions opts;
    opts.cpu.threads = 1;
    opts.shard_workers = shard_workers;
    stream::MultiBeamStreamingDedisperser session(
        batch.with_chunk(32), KernelConfig{8, 2, 4, 2}, beams,
        [&](const stream::MultiBeamStreamChunk& chunk) {
          for (std::size_t b = 0; b < beams; ++b) {
            for (std::size_t dm = 0; dm < batch.dms(); ++dm) {
              for (std::size_t t = 0; t < chunk.out_samples; ++t) {
                totals[b](dm, chunk.first_sample + t) =
                    (*chunk.outputs)[b](dm, t);
              }
            }
          }
        },
        opts);
    session.push(views);
    session.close();
    return totals;
  };

  const std::vector<Array2D<float>> plain = run(0);
  const std::vector<Array2D<float>> sharded = run(3);
  for (std::size_t b = 0; b < beams; ++b) {
    SCOPED_TRACE("beam " + std::to_string(b));
    expect_same_matrix(plain[b], sharded[b]);
  }
}

// --------------------------------------------------------------- traffic --

TEST(ShardedDedisperser, TrafficAggregatesEveryShardRun) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const KernelConfig config{5, 2, 4, 2};
  ShardedOptions opts;
  opts.workers = 3;
  const ShardedDedisperser sharded(plan, config, opts);
  EXPECT_EQ(sharded.telemetry().runs, 0u);

  const Array2D<float> input = random_input(plan);
  sharded.dedisperse(input.cview());
  const engine::SessionTraffic t1 = sharded.telemetry();
  EXPECT_EQ(t1.runs, sharded.shard_count());
  EXPECT_GT(t1.flop, 0.0);
  EXPECT_GT(t1.bytes, 0.0);
  EXPECT_GT(t1.engine_seconds, 0.0);
  EXPECT_GT(t1.gflops(), 0.0);

  sharded.dedisperse(input.cview());
  EXPECT_EQ(sharded.telemetry().runs, 2 * sharded.shard_count());
}

TEST(Dedisperser, TelemetrySurvivesReconfiguration) {
  Dedisperser dd = Dedisperser::with_output_samples(mini_obs(), 12, 60);
  dd.set_config(KernelConfig{5, 2, 4, 2});
  dd.set_execution(Execution::kDmSharded, 3);
  const Array2D<float> input = random_input(dd.plan());
  dd.dedisperse(input.cview());
  const std::size_t sharded_runs = dd.telemetry().runs;
  EXPECT_GT(sharded_runs, 1u);  // one engine run per shard

  // Switching back to single invalidates the sharded executor; the traffic
  // it accumulated must be absorbed, not lost.
  dd.set_execution(Execution::kSingle);
  dd.dedisperse(input.cview());
  const engine::SessionTraffic total = dd.telemetry();
  EXPECT_EQ(total.runs, sharded_runs + 1);
  EXPECT_GT(total.gflops(), 0.0);
}

TEST(StreamingDedisperser, TelemetryCountsEveryChunkRun) {
  const std::size_t total_out = 145;  // 4 full chunks of 32 + partial 17
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);

  for (std::size_t shard_workers : {std::size_t{0}, std::size_t{3}}) {
    SCOPED_TRACE("shard_workers " + std::to_string(shard_workers));
    Collector collect(batch.dms(), total_out);
    stream::StreamingOptions opts;
    opts.cpu.threads = 1;
    opts.shard_workers = shard_workers;
    stream::StreamingDedisperser session(batch.with_chunk(32),
                                         KernelConfig{8, 2, 4, 2},
                                         std::ref(collect), opts);
    session.push(input.cview());
    session.close();
    const engine::SessionTraffic traffic = session.telemetry();
    const std::size_t chunks = 5;  // 145 / 32 rounded up
    if (shard_workers == 0) {
      EXPECT_EQ(traffic.runs, chunks);
    } else {
      EXPECT_GE(traffic.runs, chunks);  // >= one engine run per shard/chunk
    }
    EXPECT_GT(traffic.flop, 0.0);
    EXPECT_GT(traffic.gflops(), 0.0);
  }
}

// ------------------------------------------------------- randomized sweep --

TEST(ShardedRandomSlowTier, RandomInstancesStayBitwiseIdentical) {
  // Random plan shapes (uneven grids, prime trial counts, varied DM steps)
  // × random worker counts: the sharded path must never diverge from the
  // single-engine path by a single bit.
  Rng rng(20260730);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t dms = 1 + static_cast<std::size_t>(rng.next_below(40));
    const std::size_t out = 16 + static_cast<std::size_t>(rng.next_below(80));
    const double dm_step = 0.25 * (1.0 + static_cast<double>(
                                             rng.next_below(12)));
    const std::size_t workers =
        1 + static_cast<std::size_t>(rng.next_below(9));
    SCOPED_TRACE("iter=" + std::to_string(iter) + " dms=" +
                 std::to_string(dms) + " out=" + std::to_string(out) +
                 " step=" + std::to_string(dm_step) + " workers=" +
                 std::to_string(workers));
    const Plan plan =
        Plan::with_output_samples(mini_obs(8, dm_step), dms, out);
    const Array2D<float> input = random_input(plan, 7000 + iter);
    const KernelConfig config{1, 1, 1, 1};
    const Array2D<float> expected = single_engine(plan, config, input);
    ShardedOptions opts;
    opts.workers = workers;
    const ShardedDedisperser sharded(plan, config, opts);
    expect_same_matrix(expected, sharded.dedisperse(input.cview()));
  }
}

}  // namespace
}  // namespace ddmc::pipeline
