// Tests for the high-level Dedisperser API and the §V-D survey sizing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "dedisp/fdmt.hpp"
#include "ocl/device_presets.hpp"
#include "pipeline/dedisperser.hpp"
#include "pipeline/survey.hpp"
#include "test_util.hpp"

namespace ddmc::pipeline {
namespace {

using dedisp::KernelConfig;
using testing::expect_same_matrix;
using testing::mini_obs;
using testing::random_input;

Dedisperser small(const std::string& engine) {
  return Dedisperser::with_output_samples(mini_obs(), 8, 64, engine);
}

TEST(Dedisperser, AllBitwiseEnginesAgreeBitExactly) {
  Dedisperser ref = small("reference");
  const Array2D<float> in = random_input(ref.plan());
  const Array2D<float> expected = ref.dedisperse(in.cview());

  for (const char* id : {"cpu_tiled", "cpu_baseline", "ocl_sim"}) {
    SCOPED_TRACE(id);
    Dedisperser dd = small(id);
    dd.set_config(KernelConfig{8, 2, 4, 2});
    const Array2D<float> got = dd.dedisperse(in.cview());
    expect_same_matrix(expected, got);
  }
}

TEST(Dedisperser, TuneForSetsTheOptimalConfig) {
  Dedisperser dd = small("cpu_tiled");
  const tuner::TuningResult r = dd.tune_for(ocl::amd_hd7970());
  EXPECT_EQ(dd.config(), engine::encode_kernel_config(r.best.config));
  EXPECT_GT(r.evaluated, 0u);
  // The tuned config must execute.
  const Array2D<float> in = random_input(dd.plan());
  EXPECT_NO_THROW(dd.dedisperse(in.cview()));
}

TEST(Dedisperser, TuneCachedHitsTheCacheOnSecondUse) {
  tuner::TuningCache cache;
  tuner::GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.strategy = tuner::StrategyKind::kRandom;
  opt.random_samples = 3;

  Dedisperser first = small("cpu_tiled");
  dedisp::CpuKernelOptions cpu;
  cpu.threads = 1;
  first.set_cpu_options(cpu);
  const tuner::GuidedTuningOutcome cold = first.tune_cached(cache, opt);
  EXPECT_EQ(cold.source, tuner::GuidedTuningOutcome::Source::kSearch);
  EXPECT_EQ(first.config(), cold.config);

  // A second pipeline over the same plan and engine tunes for free…
  Dedisperser second = small("cpu_tiled");
  second.set_cpu_options(cpu);
  const tuner::GuidedTuningOutcome warm = second.tune_cached(cache, opt);
  EXPECT_EQ(warm.source, tuner::GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(warm.configs_evaluated, 0u);
  EXPECT_EQ(second.config(), first.config());

  // …and the tuned config changes nothing about correctness.
  Dedisperser ref = small("reference");
  const Array2D<float> in = random_input(ref.plan());
  expect_same_matrix(ref.dedisperse(in.cview()),
                     second.dedisperse(in.cview()));

  // A different engine signature (thread count) is a different cache key.
  Dedisperser other = small("cpu_tiled");
  dedisp::CpuKernelOptions two;
  two.threads = 2;
  other.set_cpu_options(two);
  const tuner::GuidedTuningOutcome miss = other.tune_cached(cache, opt);
  EXPECT_EQ(miss.source, tuner::GuidedTuningOutcome::Source::kSearch);
}

TEST(Dedisperser, TuneCachedRacesNonTunableEnginesAsSingleCandidates) {
  // Engines without tunable knobs used to be rejected outright; with
  // engine-native config spaces they race as single-candidate entries —
  // the empty config, "the engine's defaults" — so a cross-engine race can
  // include e.g. the reference baseline without special-casing.
  tuner::TuningCache cache;
  tuner::GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  for (const char* id : {"reference", "cpu_baseline", "ocl_sim"}) {
    SCOPED_TRACE(id);
    Dedisperser dd = small(id);
    const tuner::GuidedTuningOutcome o = dd.tune_cached(cache, opt);
    EXPECT_EQ(o.engine_id, id);
    EXPECT_EQ(o.source, tuner::GuidedTuningOutcome::Source::kSearch);
    EXPECT_EQ(o.configs_evaluated, 1u);
    EXPECT_TRUE(o.config.empty()) << o.config.to_string();
  }
  EXPECT_EQ(cache.size(), 3u);  // one defaults entry per engine
}

TEST(Dedisperser, TuneCachedSearchesTheSubbandNativeAxes) {
  // The acceptance seam of the engine-native refactor: tuning the subband
  // engine searches *its* axes (subbands × coarse_step), not the tiled
  // kernel shape that is meaningless to it.
  tuner::TuningCache cache;
  tuner::GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  Dedisperser dd = small("subband");
  dedisp::CpuKernelOptions cpu;
  cpu.threads = 1;
  dd.set_cpu_options(cpu);
  const tuner::GuidedTuningOutcome o = dd.tune_cached(cache, opt);
  EXPECT_EQ(o.engine_id, "subband");
  EXPECT_EQ(o.source, tuner::GuidedTuningOutcome::Source::kSearch);
  EXPECT_GT(o.configs_evaluated, 1u);
  for (const auto& [name, value] : o.config.axes) {
    EXPECT_TRUE(name == "subbands" || name == "coarse_step") << name;
  }
  EXPECT_EQ(dd.config(), o.config);
  // The tuned session still computes: the adopted split is valid.
  const Array2D<float> in = random_input(dd.plan());
  EXPECT_NO_THROW(dd.dedisperse(in.cview()));
}

// ---------------------------------------------------------- engine adoption --

tuner::GuidedTuningOptions race_options(std::vector<std::string> engines) {
  tuner::GuidedTuningOptions opt;
  opt.engines = std::move(engines);
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  return opt;
}

/// Rewrite every cached entry of \p engine_id to report \p seconds, so a
/// warm multi-engine race has a deterministic winner (store() replaces by
/// (host, plan) signature).
void pin_cached_seconds(tuner::TuningCache& cache, const std::string& engine_id,
                        double seconds) {
  const std::vector<tuner::CacheEntry> entries = cache.entries();
  for (tuner::CacheEntry entry : entries) {
    if (entry.host.engine_id == engine_id) {
      entry.seconds = seconds;
      cache.store(entry);
    }
  }
}

TEST(Dedisperser, TuneCachedAdoptsTheRaceWinner) {
  // When tune_cached races several engines, the winner is part of the
  // tuning decision: the Dedisperser switches to it, so subsequent
  // dedisperse() calls run the winning engine — here deliberately not the
  // engine the Dedisperser was constructed with.
  tuner::TuningCache cache;
  for (const char* id : {"cpu_tiled", "cpu_baseline"}) {
    Dedisperser dd = small(id);
    dd.tune_cached(cache, race_options({id}));
  }
  pin_cached_seconds(cache, "cpu_baseline", 1e-9);
  pin_cached_seconds(cache, "cpu_tiled", 1.0);

  Dedisperser dd = small("cpu_tiled");
  const tuner::GuidedTuningOutcome o =
      dd.tune_cached(cache, race_options({"cpu_tiled", "cpu_baseline"}));
  EXPECT_EQ(o.engine_id, "cpu_baseline");
  EXPECT_EQ(dd.engine_id(), "cpu_baseline");  // adopted != requested
  EXPECT_EQ(o.source, tuner::GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(o.configs_evaluated, 0u);  // whole race answered from the cache

  // The adopted engine computes the same science (bitwise here: both the
  // requested and the adopted engine are bitwise-exact).
  Dedisperser ref = small("reference");
  const Array2D<float> in = random_input(ref.plan());
  expect_same_matrix(ref.dedisperse(in.cview()), dd.dedisperse(in.cview()));
}

TEST(Dedisperser, TuneCachedAdoptsAFdmtRaceWinnerEndToEnd) {
  // The Fourier-domain engine participates in cross-engine adoption like
  // any other: when its cached row wins the race, the session switches to
  // it and subsequent dedisperse() calls run the transform path. fdmt is
  // not bitwise-exact, so the adopted output is checked against its
  // documented error bound rather than bit-for-bit.
  tuner::TuningCache cache;
  for (const char* id : {"cpu_tiled", "fdmt"}) {
    Dedisperser dd = small(id);
    dd.tune_cached(cache, race_options({id}));
  }
  pin_cached_seconds(cache, "fdmt", 1e-9);
  pin_cached_seconds(cache, "cpu_tiled", 1.0);

  Dedisperser dd = small("cpu_tiled");
  const tuner::GuidedTuningOutcome o =
      dd.tune_cached(cache, race_options({"cpu_tiled", "fdmt"}));
  EXPECT_EQ(o.engine_id, "fdmt");
  EXPECT_EQ(dd.engine_id(), "fdmt");
  EXPECT_EQ(o.source, tuner::GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(o.configs_evaluated, 0u);

  // Recover the adopted split from the winning config's native axes to
  // evaluate the bound the engine documents for it.
  dedisp::SubbandConfig split;
  const auto sb = o.config.axes.find("subbands");
  if (sb != o.config.axes.end()) split.subbands = static_cast<std::size_t>(sb->second);
  const auto cs = o.config.axes.find("coarse_step");
  if (cs != o.config.axes.end()) split.coarse_step = static_cast<std::size_t>(cs->second);

  Dedisperser ref = small("reference");
  const Array2D<float> in = random_input(ref.plan());
  const Array2D<float> expected = ref.dedisperse(in.cview());
  const Array2D<float> got = dd.dedisperse(in.cview());
  const double bound =
      dedisp::fdmt_error_bound(dd.plan(), split, /*max_abs=*/1.0);
  ASSERT_EQ(expected.rows(), got.rows());
  ASSERT_EQ(expected.cols(), got.cols());
  for (std::size_t r = 0; r < expected.rows(); ++r) {
    for (std::size_t c = 0; c < expected.cols(); ++c) {
      ASSERT_NEAR(expected(r, c), got(r, c), bound)
          << "outside the fdmt bound at (" << r << ", " << c << ")";
    }
  }
}

TEST(Dedisperser, ShardedExecutionRejectsANonShardingRaceWinner) {
  // Adoption must honor the already-selected execution mode: a winner
  // whose capabilities cannot shard fails fast, naming the capability —
  // not later inside a worker pool.
  tuner::TuningCache cache;
  for (const char* id : {"cpu_tiled", "subband"}) {
    Dedisperser dd = small(id);
    dd.tune_cached(cache, race_options({id}));
  }
  pin_cached_seconds(cache, "subband", 1e-9);
  pin_cached_seconds(cache, "cpu_tiled", 1.0);

  Dedisperser dd = small("cpu_tiled");
  dd.set_execution(Execution::kDmSharded, 2);
  try {
    dd.tune_cached(cache, race_options({"cpu_tiled", "subband"}));
    FAIL() << "a non-sharding winner was adopted under kDmSharded";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("supports_sharding"), std::string::npos) << what;
    EXPECT_NE(what.find("subband"), std::string::npos) << what;
  }
  // The session stays on its original engine and remains usable.
  EXPECT_EQ(dd.engine_id(), "cpu_tiled");
  const Array2D<float> in = random_input(dd.plan());
  EXPECT_NO_THROW(dd.dedisperse(in.cview()));
}

TEST(Dedisperser, SetConfigValidates) {
  Dedisperser dd = small("cpu_tiled");
  EXPECT_THROW(dd.set_config(KernelConfig{5, 1, 1, 1}), config_error);
  EXPECT_NO_THROW(dd.set_config(KernelConfig{8, 2, 2, 2}));
}

TEST(Dedisperser, SimulatedEngineExposesCounters) {
  Dedisperser dd = small("ocl_sim");
  dd.set_config(KernelConfig{8, 2, 4, 2});
  dd.set_device(ocl::amd_hd7970());
  const Array2D<float> in = random_input(dd.plan());
  dd.dedisperse(in.cview());
  ASSERT_TRUE(dd.last_counters().has_value());
  EXPECT_EQ(dd.last_counters()->flops,
            static_cast<std::uint64_t>(dd.plan().total_flop()));

  Dedisperser cpu = small("cpu_tiled");
  cpu.dedisperse(in.cview());
  EXPECT_FALSE(cpu.last_counters().has_value());
}

TEST(Dedisperser, FullSecondsConstructorMatchesPlanShape) {
  const Dedisperser dd(mini_obs(), 4, "reference", 2);
  EXPECT_EQ(dd.plan().out_samples(), 200u);  // two seconds at 100 Hz
  EXPECT_EQ(dd.plan().dms(), 4u);
}

// ------------------------------------------------------------ survey (§V-D) --

TEST(Survey, ApertifSizingIsFeasibleOnHd7970) {
  // The paper: 2,000 DMs, 450 beams, HD7970 ⇒ ~0.1 s per beam-second,
  // several beams per GPU, tens of GPUs in total.
  const SurveySizing s =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 2000, 450);
  EXPECT_TRUE(s.feasible);
  EXPECT_LT(s.seconds_per_beam, 1.0);
  EXPECT_GE(s.beams_per_device, 1u);
  EXPECT_LE(s.devices_needed, 450u);
  EXPECT_GE(s.devices_needed, 450u / std::max<std::size_t>(
                                         s.beams_per_device, 1) /
                                  2);
}

TEST(Survey, MemoryAndComputeBothLimitBeams) {
  const SurveySizing s =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 2000, 450);
  EXPECT_EQ(s.beams_per_device,
            std::min(s.beams_per_device_compute, s.beams_per_device_memory));
}

TEST(Survey, MoreBeamsNeedMoreDevices) {
  const SurveySizing few =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 500, 50);
  const SurveySizing many =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 500, 400);
  EXPECT_LE(few.devices_needed, many.devices_needed);
}

TEST(Survey, CpusVastlyOutnumberAccelerators) {
  // §V-D: "50 GPUs, instead of the 1,800 CPUs".
  const SurveySizing gpus =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 2000, 450);
  const std::size_t cpus =
      cpus_needed(ocl::intel_xeon_e5_2620(), sky::apertif(), 2000, 450);
  EXPECT_GT(cpus, 10 * gpus.devices_needed);
}

TEST(Survey, RejectsZeroBeams) {
  EXPECT_THROW(size_survey(ocl::amd_hd7970(), sky::apertif(), 64, 0),
               invalid_argument);
}

TEST(Survey, FastDevicePathPinsThePackingFormula) {
  // Regression guard for the fast regime: nothing about beam packing
  // changed — floor-packed beams per device, ceil-divided device count,
  // and the fractional pressure is the exact reciprocal of the beam time.
  const SurveySizing s =
      size_survey(ocl::amd_hd7970(), sky::apertif(), 2000, 450);
  ASSERT_TRUE(s.feasible);
  ASSERT_LT(s.seconds_per_beam, 1.0);
  EXPECT_DOUBLE_EQ(s.beams_per_device_realtime, 1.0 / s.seconds_per_beam);
  EXPECT_EQ(s.beams_per_device_compute,
            static_cast<std::size_t>(std::floor(s.beams_per_device_realtime)));
  EXPECT_EQ(s.devices_needed, ceil_div<std::size_t>(450, s.beams_per_device));
}

TEST(Survey, SlowDevicesShareBeamsInsteadOfBeingInfeasible) {
  // Regression: a device needing > 1 s per beam-second used to make the
  // whole survey "infeasible" (beams_per_device_compute == 0), while
  // cpus_needed correctly let several devices share one beam. Both paths
  // now agree on the sharing semantics.
  ocl::DeviceModel slow = ocl::intel_xeon_e5_2620();
  slow.name = "E5-2620/100";
  slow.clock_ghz /= 100.0;
  slow.peak_gflops /= 100.0;
  slow.peak_bandwidth_gbs /= 100.0;
  const SurveySizing s = size_survey(slow, sky::apertif(), 2000, 450);
  ASSERT_GT(s.seconds_per_beam, 1.0);
  EXPECT_EQ(s.beams_per_device_compute, 0u);
  EXPECT_GT(s.beams_per_device_realtime, 0.0);
  EXPECT_LT(s.beams_per_device_realtime, 1.0);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.devices_needed,
            static_cast<std::size_t>(
                std::ceil(s.seconds_per_beam * 450.0)));
  EXPECT_GT(s.devices_needed, 450u);  // sharing: more devices than beams

  // Only a beam that cannot fit device memory is genuinely infeasible.
  ocl::DeviceModel tiny = ocl::amd_hd7970();
  tiny.memory_gb = 1e-6;
  const SurveySizing none = size_survey(tiny, sky::apertif(), 2000, 450);
  EXPECT_FALSE(none.feasible);
  EXPECT_EQ(none.beams_per_device_memory, 0u);
  EXPECT_EQ(none.devices_needed, 0u);
}

}  // namespace
}  // namespace ddmc::pipeline
