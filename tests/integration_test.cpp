// End-to-end tests across modules: pulsar injection → dedispersion →
// detection; tuner → simulator → codegen; measured vs analytic traffic.

#include <gtest/gtest.h>

#include "codegen/opencl_codegen.hpp"
#include "common/expect.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/intensity.hpp"
#include "dedisp/reference.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "ocl/sim_dedisp.hpp"
#include "pipeline/dedisperser.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"
#include "test_util.hpp"
#include "tuner/tuner.hpp"

namespace ddmc {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::expect_same_matrix;
using testing::mini_obs;

/// A mini observation with a pulsar injected at a known trial index.
struct PulsarScenario {
  Plan plan;
  Array2D<float> data;
  std::size_t true_trial;
};

PulsarScenario make_scenario() {
  const sky::Observation obs = mini_obs();
  Plan plan = Plan::with_output_samples(obs, 8, 128);
  const std::size_t true_trial = 4;  // DM = 2.0 with the 0.5 step

  sky::PulsarParams pulsar;
  pulsar.dm = obs.dm_value(true_trial);
  pulsar.period_s = 0.4;
  pulsar.width_s = 0.01;
  pulsar.amplitude = 6.0;
  pulsar.first_pulse_s = 0.05;
  sky::NoiseParams noise;
  noise.sigma = 0.5;
  noise.seed = 99;

  Array2D<float> data =
      sky::make_observation_data(obs, plan.in_samples(), pulsar, noise);
  return {std::move(plan), std::move(data), true_trial};
}

TEST(Integration, BruteForceSearchRecoversInjectedDm) {
  const PulsarScenario sc = make_scenario();
  const Array2D<float> out =
      dedisp::dedisperse_reference(sc.plan, sc.data.cview());
  const sky::DetectionResult res = sky::detect_best_dm(out.cview());
  EXPECT_EQ(res.best_trial, sc.true_trial);
  EXPECT_GT(res.best_snr, 5.0);
}

TEST(Integration, WrongTrialsSmearThePulse) {
  // §II: "when the DM is only slightly off, the source signal will be
  // smeared" — the matched trial's peak S/N beats every other trial's.
  const PulsarScenario sc = make_scenario();
  const Array2D<float> out =
      dedisp::dedisperse_reference(sc.plan, sc.data.cview());
  const double matched = sky::series_snr(out.row(sc.true_trial));
  for (std::size_t trial = 0; trial < out.rows(); ++trial) {
    if (trial == sc.true_trial) continue;
    EXPECT_LT(sky::series_snr(out.row(trial)), matched) << trial;
  }
}

TEST(Integration, EveryBackendFindsTheSamePulsar) {
  const PulsarScenario sc = make_scenario();
  const Array2D<float> expected =
      dedisp::dedisperse_reference(sc.plan, sc.data.cview());

  const KernelConfig cfg{16, 2, 4, 2};
  const Array2D<float> tiled =
      dedisp::dedisperse_cpu(sc.plan, cfg, sc.data.cview());
  expect_same_matrix(expected, tiled);

  const Array2D<float> baseline =
      dedisp::dedisperse_cpu_baseline(sc.plan, sc.data.cview());
  expect_same_matrix(expected, baseline);

  Array2D<float> simulated(sc.plan.dms(), sc.plan.out_samples());
  ocl::simulate_dedisp(ocl::amd_hd7970(), sc.plan, cfg, sc.data.cview(),
                       simulated.view());
  expect_same_matrix(expected, simulated);

  const sky::DetectionResult res = sky::detect_best_dm(simulated.cview());
  EXPECT_EQ(res.best_trial, sc.true_trial);
}

TEST(Integration, ZeroDmObservationYieldsIdenticalTrials) {
  // §IV-C: with every trial forced to DM 0, "every dedispersed time-series
  // is exactly the same and uses exactly the same input".
  const sky::Observation zero = mini_obs().zero_dm_variant();
  const Plan plan = Plan::with_output_samples(zero, 8, 64);
  const Array2D<float> in = testing::random_input(plan);
  const Array2D<float> out = dedisp::dedisperse_reference(plan, in.cview());
  for (std::size_t trial = 1; trial < out.rows(); ++trial) {
    for (std::size_t t = 0; t < out.cols(); ++t) {
      ASSERT_EQ(out(trial, t), out(0, t));
    }
  }
}

TEST(Integration, TunedConfigRunsOnSimulatorAndGeneratesSource) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 8, 64);
  const ocl::PlanAnalysis analysis(plan);
  const tuner::TuningResult tuned = tuner::tune(ocl::amd_hd7970(), analysis);

  // The model's optimum must actually execute on the functional simulator…
  const Array2D<float> in = testing::random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_NO_THROW(ocl::simulate_dedisp(ocl::amd_hd7970(), plan,
                                       tuned.best.config, in.cview(),
                                       out.view()));
  const Array2D<float> expected =
      dedisp::dedisperse_reference(plan, in.cview());
  expect_same_matrix(expected, out);

  // …and the code generator must emit a kernel for it.
  codegen::CodegenOptions opt;
  opt.staged = tuned.best.config.tile_dm() > 1;
  const std::string src =
      codegen::generate_opencl_kernel(plan, tuned.best.config, opt);
  EXPECT_NE(src.find("__kernel"), std::string::npos);
}

TEST(Integration, MeasuredIntensityMatchesAnalyticAccounting) {
  // analyze_intensity's unique-read accounting equals the loads the
  // functional simulator performs with staging on.
  const Plan plan = Plan::with_output_samples(mini_obs(), 8, 64);
  const Array2D<float> in = testing::random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  for (const auto& cfg :
       {KernelConfig{8, 2, 4, 2}, KernelConfig{4, 4, 4, 2},
        KernelConfig{16, 8, 2, 1}}) {
    const ocl::SimRunResult run = ocl::simulate_dedisp_variant(
        ocl::amd_hd7970(), plan, cfg, in.cview(), out.view(), true);
    const dedisp::IntensityReport report =
        dedisp::analyze_intensity(plan, cfg);
    const double measured_unique =
        static_cast<double>(run.counters.global_loads);
    // unique_bytes = 4·(unique input reads) + output bytes + Δ-table bytes.
    const double output_bytes = 4.0 * static_cast<double>(plan.dms()) *
                                static_cast<double>(plan.out_samples());
    const double delay_bytes = 4.0 * static_cast<double>(plan.dms()) *
                               static_cast<double>(plan.channels());
    const double predicted_unique =
        (report.unique_bytes - output_bytes - delay_bytes) / 4.0;
    EXPECT_DOUBLE_EQ(measured_unique, predicted_unique) << cfg.to_string();
  }
}

TEST(Integration, PipelineQuickstartFlow) {
  // The README quickstart, as a test: plan → tune → dedisperse → detect.
  const PulsarScenario sc = make_scenario();
  pipeline::Dedisperser dd = pipeline::Dedisperser::with_output_samples(
      mini_obs(), sc.plan.dms(), sc.plan.out_samples(), "cpu_tiled");
  dd.tune_for(ocl::nvidia_gtx_titan());
  const Array2D<float> out = dd.dedisperse(sc.data.cview());
  const sky::DetectionResult res = sky::detect_best_dm(out.cview());
  EXPECT_EQ(res.best_trial, sc.true_trial);
}

}  // namespace
}  // namespace ddmc
