// Tests for the fault-injection framework and supervised execution
// (src/resilience/): failpoint trigger semantics, the typed error taxonomy,
// the supervised sharded executor (retry, reacquisition, aggregated
// failure reporting, bitwise identity under any absorbed fault pattern),
// the streaming watchdog ladder (retry → skip-with-gap → degrade), the
// SampleRing poison path, and the tuning-cache quarantine/rename seams.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "engine/registry.hpp"
#include "pipeline/sharding.hpp"
#include "resilience/error.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/supervisor.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "test_util.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using resilience::ErrorClass;
using resilience::FaultInjector;
using resilience::FaultSpec;
using resilience::ScopedFault;
using testing::expect_same_matrix;
using testing::mini_obs;
using testing::random_input;

/// Single-engine reference: one kernel call over the whole plan, one thread.
Array2D<float> single_engine(const Plan& plan, const KernelConfig& config,
                             const Array2D<float>& input) {
  dedisp::CpuKernelOptions cpu;
  cpu.threads = 1;
  return dedisp::dedisperse_cpu(plan, config, input.cview(), cpu);
}

// -------------------------------------------------------------- taxonomy --

TEST(ErrorTaxonomy, ClassifiesEveryKind) {
  const auto classify_thrown = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return resilience::classify(std::current_exception());
    }
    return ErrorClass::kUnknown;
  };
  EXPECT_EQ(classify_thrown([] { throw resilience::TransientError("t"); }),
            ErrorClass::kTransient);
  EXPECT_EQ(classify_thrown([] { throw resilience::ConfigError("c"); }),
            ErrorClass::kConfig);
  EXPECT_EQ(classify_thrown([] { throw resilience::DataError("d"); }),
            ErrorClass::kData);
  // The library's pre-existing contract types fold into kConfig so legacy
  // throws get the right (fail-fast) policy without being rewritten.
  EXPECT_EQ(classify_thrown([] { throw ddmc::invalid_argument("i"); }),
            ErrorClass::kConfig);
  EXPECT_EQ(classify_thrown([] { throw ddmc::config_error("e"); }),
            ErrorClass::kConfig);
  EXPECT_EQ(classify_thrown([] { throw std::runtime_error("r"); }),
            ErrorClass::kUnknown);
  EXPECT_EQ(classify_thrown([] { throw 42; }), ErrorClass::kUnknown);
  EXPECT_EQ(resilience::classify(nullptr), ErrorClass::kUnknown);

  EXPECT_STREQ(resilience::to_string(ErrorClass::kTransient), "transient");
  EXPECT_STREQ(resilience::to_string(ErrorClass::kConfig), "config");
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  resilience::RetryPolicy policy;
  policy.backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.003;
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 0.001);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 0.002);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 0.003);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_for(9), 0.003);
  policy.backoff_seconds = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_for(5), 0.0);
}

// --------------------------------------------------------- fault injector --

TEST(FaultInjector, CountdownFiresAfterSkipThenExhausts) {
  ScopedFault fault("test.countdown", [] {
    FaultSpec spec;
    spec.skip = 2;       // let two hits pass
    spec.max_fires = 1;  // then fire exactly once
    return spec;
  }());
  auto& inj = FaultInjector::instance();
  EXPECT_NO_THROW(inj.fire("test.countdown"));
  EXPECT_NO_THROW(inj.fire("test.countdown"));
  EXPECT_THROW(inj.fire("test.countdown"), resilience::TransientError);
  EXPECT_NO_THROW(inj.fire("test.countdown"));  // exhausted
  EXPECT_EQ(fault.stats().hits, 4u);
  EXPECT_EQ(fault.stats().fires, 1u);
}

TEST(FaultInjector, ContextFilterMatchesOnlyThatContext) {
  ScopedFault fault("test.context", [] {
    FaultSpec spec;
    spec.context = 3;
    spec.max_fires = 0;  // unlimited
    return spec;
  }());
  auto& inj = FaultInjector::instance();
  EXPECT_NO_THROW(inj.fire("test.context", 2));
  EXPECT_NO_THROW(inj.fire("test.context"));  // context-free hit: no match
  EXPECT_THROW(inj.fire("test.context", 3), resilience::TransientError);
  EXPECT_THROW(inj.fire("test.context", 3), resilience::TransientError);
  // Non-matching hits are not even counted: the stats describe the
  // filtered stream a test is reasoning about.
  EXPECT_EQ(fault.stats().hits, 2u);
  EXPECT_EQ(fault.stats().fires, 2u);
}

TEST(FaultInjector, ThrowsTheConfiguredTaxonomyError) {
  for (const auto kind : {ErrorClass::kConfig, ErrorClass::kData}) {
    FaultSpec spec;
    spec.error = kind;
    spec.message = "simulated";
    ScopedFault fault("test.kind", spec);
    try {
      FaultInjector::instance().fire("test.kind", 7);
      FAIL() << "armed failpoint did not fire";
    } catch (const resilience::Error& e) {
      EXPECT_EQ(resilience::classify(std::current_exception()), kind);
      const std::string what = e.what();
      EXPECT_NE(what.find("test.kind"), std::string::npos);
      EXPECT_NE(what.find("context 7"), std::string::npos);
      EXPECT_NE(what.find("simulated"), std::string::npos);
    }
  }
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  const auto pattern = [] {
    FaultSpec spec;
    spec.trigger = FaultSpec::Trigger::kProbability;
    spec.probability = 0.5;
    spec.seed = 99;
    spec.max_fires = 0;
    ScopedFault fault("test.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FaultInjector::instance().triggered("test.prob"));
    }
    return fired;
  };
  const std::vector<bool> first = pattern();
  EXPECT_EQ(first, pattern());  // same seed, same faults — bit for bit
  const std::size_t fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 16u);  // p=0.5 over 64 draws: loose deterministic bounds
  EXPECT_LT(fires, 48u);

  FaultSpec never;
  never.trigger = FaultSpec::Trigger::kProbability;
  never.probability = 0.0;
  never.max_fires = 0;
  ScopedFault off("test.prob", never);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(FaultInjector::instance().triggered("test.prob"));
  }
}

TEST(FaultInjector, ScopedFaultDisarmsOnScopeExit) {
  {
    ScopedFault fault("test.scoped", FaultSpec{});
    EXPECT_TRUE(FaultInjector::instance().armed("test.scoped"));
  }
  EXPECT_FALSE(FaultInjector::instance().armed("test.scoped"));
  EXPECT_NO_THROW(FaultInjector::instance().fire("test.scoped"));
}

TEST(FaultInjector, EngineExecuteSeamCoversEveryBuiltin) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 4, 32);
  const Array2D<float> input = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  for (const std::string& id : engine::EngineRegistry::instance().ids()) {
    SCOPED_TRACE(id);
    FaultSpec spec;
    spec.max_fires = 0;
    ScopedFault fault("engine.execute", spec);
    const auto engine = engine::make_engine(id);
    EXPECT_THROW(engine->execute(plan, KernelConfig{1, 1, 1, 1},
                                 input.cview(), out.view()),
                 resilience::TransientError);
  }
}

// ---------------------------------------------------- sharded supervision --

TEST(SupervisedSharding, FaultAtEveryShardPositionIsAbsorbedBitwise) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  const KernelConfig config{5, 2, 4, 2};
  const Array2D<float> expected = single_engine(plan, config, input);

  pipeline::ShardedOptions opts;
  opts.workers = 3;
  opts.supervision.retry.max_attempts = 2;
  opts.supervision.retry.backoff_seconds = 0.0;
  const pipeline::ShardedDedisperser sharded(plan, config, opts);

  for (std::size_t shard = 0; shard < sharded.shard_count(); ++shard) {
    SCOPED_TRACE("fault at shard " + std::to_string(shard));
    FaultSpec spec;
    spec.context = shard;  // kill exactly this shard's first attempt
    spec.max_fires = 1;
    ScopedFault fault("shard.task", spec);
    expect_same_matrix(expected, sharded.dedisperse(input.cview()));
    const resilience::ShardExecutionReport report = sharded.last_report();
    EXPECT_EQ(report.jobs, sharded.shard_count());
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(report.shards[shard].retries, 1u);
    EXPECT_EQ(report.shards[shard].attempts, 2u);
    for (const auto& s : report.shards) EXPECT_FALSE(s.failed);
  }
  // No fault armed: the clean run reports one attempt per shard.
  expect_same_matrix(expected, sharded.dedisperse(input.cview()));
  EXPECT_TRUE(sharded.last_report().clean());
}

TEST(SupervisedSharding, DeadWorkerShardIsReacquiredBitwise) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  const KernelConfig config{5, 2, 4, 2};
  const Array2D<float> expected = single_engine(plan, config, input);

  pipeline::ShardedOptions opts;
  opts.workers = 3;
  opts.supervision.retry.max_attempts = 2;
  opts.supervision.retry.backoff_seconds = 0.0;
  opts.supervision.reacquire = true;
  opts.supervision.reacquire_splits = 2;
  const pipeline::ShardedDedisperser sharded(plan, config, opts);

  for (std::size_t shard = 0; shard < sharded.shard_count(); ++shard) {
    SCOPED_TRACE("dead worker at shard " + std::to_string(shard));
    FaultSpec spec;
    spec.context = shard;
    spec.max_fires = 0;  // permanently dead: every first-assignment attempt
    ScopedFault fault("shard.task", spec);
    expect_same_matrix(expected, sharded.dedisperse(input.cview()));
    const resilience::ShardExecutionReport report = sharded.last_report();
    EXPECT_EQ(report.reassignments, 1u);
    EXPECT_EQ(report.shards[shard].reassignments, 1u);
    EXPECT_EQ(report.shards[shard].retries, 1u);  // the exhausted retry
    for (const auto& s : report.shards) EXPECT_FALSE(s.failed);
    // The dead worker burned its full retry budget before reacquisition.
    EXPECT_EQ(fault.stats().fires, opts.supervision.retry.max_attempts);
  }
}

TEST(SupervisedSharding, ExhaustionAggregatesEveryFailedShard) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  pipeline::ShardedOptions opts;
  opts.workers = 3;
  opts.supervision.retry.max_attempts = 2;
  opts.supervision.retry.backoff_seconds = 0.0;
  const pipeline::ShardedDedisperser sharded(plan, KernelConfig{1, 1, 1, 1},
                                             opts);

  FaultSpec spec;
  spec.max_fires = 0;  // context-free: every shard's every attempt fails
  ScopedFault fault("shard.task", spec);
  try {
    sharded.dedisperse(input.cview());
    FAIL() << "every shard failed but dedisperse returned";
  } catch (const resilience::ShardExecutionError& e) {
    // Satellite regression: the old executor rethrew only the *first*
    // worker failure; the aggregate must name every failed shard index.
    ASSERT_EQ(e.failures().size(), sharded.shard_count());
    const std::string what = e.what();
    for (std::size_t shard = 0; shard < sharded.shard_count(); ++shard) {
      EXPECT_EQ(e.failures()[shard].shard, shard);
      EXPECT_EQ(e.failures()[shard].attempts, 2u);
      EXPECT_EQ(e.failures()[shard].kind, ErrorClass::kTransient);
      EXPECT_NE(what.find("shard " + std::to_string(shard)),
                std::string::npos);
    }
  }
  const resilience::ShardExecutionReport report = sharded.last_report();
  for (const auto& s : report.shards) EXPECT_TRUE(s.failed);
}

TEST(SupervisedSharding, FatalErrorsAreNeitherRetriedNorReacquired) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 8, 60);
  const Array2D<float> input = random_input(plan);
  pipeline::ShardedOptions opts;
  opts.workers = 2;
  opts.supervision.retry.max_attempts = 3;
  opts.supervision.retry.backoff_seconds = 0.0;
  opts.supervision.reacquire = true;
  const pipeline::ShardedDedisperser sharded(plan, KernelConfig{1, 1, 1, 1},
                                             opts);

  FaultSpec spec;
  spec.context = 0;
  spec.max_fires = 0;
  spec.error = ErrorClass::kConfig;  // a poisoned request, not a dead worker
  ScopedFault fault("shard.task", spec);
  try {
    sharded.dedisperse(input.cview());
    FAIL() << "config fault did not surface";
  } catch (const resilience::ShardExecutionError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].kind, ErrorClass::kConfig);
    EXPECT_EQ(e.failures()[0].attempts, 1u);  // never retried
  }
  EXPECT_EQ(sharded.last_report().reassignments, 0u);  // never reacquired
  EXPECT_EQ(fault.stats().fires, 1u);
}

// Satellite regression: last_report() must be safe (and coherent) while a
// dedisperse is in flight — the old executor swapped in a fresh report at
// the *end* of the run, so a concurrent reader raced the swap. The report
// is now mutated live under a mutex: a mid-flight reader sees a consistent
// partial report whose invariants already hold.
TEST(SupervisedSharding, LastReportIsSafeToReadMidFlight) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  const KernelConfig config{5, 2, 4, 2};
  pipeline::ShardedOptions opts;
  opts.workers = 3;
  opts.supervision.retry.max_attempts = 3;
  opts.supervision.retry.backoff_seconds = 0.0;
  const pipeline::ShardedDedisperser sharded(plan, config, opts);

  FaultSpec spec;
  spec.trigger = FaultSpec::Trigger::kProbability;
  spec.probability = 0.5;  // plenty of retries to interleave with reads
  spec.seed = 99;
  spec.max_fires = 8;
  ScopedFault fault("shard.task", spec);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const resilience::ShardExecutionReport report = sharded.last_report();
      // Coherence invariants that must hold at *any* instant of the run.
      EXPECT_LE(report.retries, report.attempts);
      std::size_t shard_attempts = 0;
      for (const auto& shard : report.shards) {
        shard_attempts += shard.attempts;
        EXPECT_LE(shard.retries, shard.attempts);
      }
      EXPECT_EQ(shard_attempts, report.attempts);
      reads.fetch_add(1);
    }
  });

  const Array2D<float> expected = single_engine(plan, config, input);
  for (int run = 0; run < 20; ++run) {
    try {
      expect_same_matrix(expected, sharded.dedisperse(input.cview()));
    } catch (const resilience::ShardExecutionError&) {
      // Retry budget exhausted under the injected fault rate: fine — the
      // reader's invariants are what this test is about.
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(SupervisedSharding, FailedReacquisitionKeepsTheShardFailed) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> input = random_input(plan);
  pipeline::ShardedOptions opts;
  opts.workers = 3;
  opts.supervision.retry.max_attempts = 1;
  opts.supervision.reacquire = true;
  opts.supervision.reacquire_splits = 2;
  const pipeline::ShardedDedisperser sharded(plan, KernelConfig{1, 1, 1, 1},
                                             opts);

  FaultSpec dead;
  dead.context = 1;
  dead.max_fires = 0;
  ScopedFault worker("shard.task", dead);
  ScopedFault rescue("shard.reacquire.task", dead);  // the rescue dies too
  try {
    sharded.dedisperse(input.cview());
    FAIL() << "shard 1 had no surviving path but dedisperse returned";
  } catch (const resilience::ShardExecutionError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].shard, 1u);
    EXPECT_NE(std::string(e.what()).find("reacquisition failed"),
              std::string::npos);
  }
  const resilience::ShardExecutionReport report = sharded.last_report();
  EXPECT_EQ(report.reassignments, 1u);  // the rescue was attempted
  EXPECT_TRUE(report.shards[1].failed);
}

// ------------------------------------------------------------ ring poison --

TEST(SampleRingPoison, FailUnblocksAProducerStuckOnBackpressure) {
  // Satellite regression: a producer blocked against a full ring whose
  // consumer died used to wait forever — nothing ever popped and close()
  // belongs to the producer side. fail() must wake it with the reason.
  stream::SampleRing ring(2, 16);
  std::atomic<bool> threw{false};
  std::string message;
  std::thread producer([&] {
    Array2D<float> block(2, 64);  // 4× capacity: must block mid-push
    try {
      ring.push(block.cview());
    } catch (const resilience::TransientError& e) {
      threw = true;
      message = e.what();
    }
  });
  while (ring.size() < ring.capacity()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ring.fail("consumer died");
  producer.join();
  EXPECT_TRUE(threw);
  EXPECT_NE(message.find("consumer died"), std::string::npos);
  EXPECT_TRUE(ring.failed());
  // Poison is sticky on both sides and idempotent.
  Array2D<float> one(2, 1);
  EXPECT_THROW(ring.push(one.cview()), resilience::TransientError);
  EXPECT_THROW(ring.pop(one.view()), resilience::TransientError);
  ring.fail("second reason");  // first reason wins
  try {
    ring.pop(one.view());
  } catch (const resilience::TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("consumer died"),
              std::string::npos);
  }
}

TEST(SampleRingPoison, ConsumeFailurePoisonsTheRingForTheProducer) {
  // End-to-end deadlock regression: the consumer (a streaming session
  // draining the ring) dies on a fatal chunk error while the producer
  // keeps pushing an endless stream. consume() must poison the ring so
  // the producer aborts instead of blocking forever on backpressure.
  const Plan chunk = Plan::with_output_samples(mini_obs(), 4, 32);
  stream::SampleRing ring(chunk.channels(), 64);
  std::atomic<bool> producer_threw{false};
  std::thread producer([&] {
    Array2D<float> block(chunk.channels(), 16);
    try {
      for (;;) ring.push(block.cview());  // endless stream, never closes
    } catch (const resilience::TransientError&) {
      producer_threw = true;
    }
  });

  FaultSpec spec;
  spec.error = ErrorClass::kConfig;  // fatal: no watchdog rung applies
  ScopedFault fault("stream.chunk", spec);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  stream::StreamingDedisperser session(chunk, KernelConfig{1, 1, 1, 1},
                                       nullptr, opts);
  EXPECT_THROW(session.consume(ring), resilience::ConfigError);
  producer.join();  // deadlock here = the bug this test pins down
  EXPECT_TRUE(producer_threw);
  EXPECT_TRUE(ring.failed());
}

// ------------------------------------------------------ streaming watchdog --

/// Reassemble sink chunks into one dms × total matrix by first_sample,
/// remembering which chunk indices arrived.
struct Collector {
  Array2D<float> total;
  std::vector<std::size_t> indices;
  std::size_t emitted = 0;

  Collector(std::size_t dms, std::size_t out) : total(dms, out) {}

  void operator()(const stream::StreamChunk& chunk) {
    ASSERT_LE(chunk.first_sample + chunk.out_samples, total.cols());
    for (std::size_t dm = 0; dm < total.rows(); ++dm) {
      for (std::size_t t = 0; t < chunk.out_samples; ++t) {
        total(dm, chunk.first_sample + t) = chunk.output(dm, t);
      }
    }
    indices.push_back(chunk.index);
    emitted += chunk.out_samples;
  }
};

TEST(StreamingWatchdog, TransientChunkFaultIsRetriedInvisibly) {
  const std::size_t total_out = 96;  // 3 full chunks of 32
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      single_engine(batch, KernelConfig{1, 1, 1, 1}, input);

  FaultSpec spec;
  spec.context = 1;  // chunk 1's first attempt
  spec.max_fires = 1;
  ScopedFault fault("stream.chunk", spec);

  Collector collect(batch.dms(), total_out);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 1;
  opts.supervision.degrade_after = 0;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{8, 2, 4, 2},
                                       std::ref(collect), opts);
  session.push(input.cview());
  session.close();

  EXPECT_EQ(collect.emitted, total_out);
  expect_same_matrix(expected, collect.total);  // the retry left no trace
  const resilience::StreamHealth health = session.health();
  EXPECT_EQ(health.chunks_emitted, 3u);
  EXPECT_EQ(health.retries, 1u);
  EXPECT_EQ(health.chunks_retried, 1u);
  EXPECT_EQ(health.chunks_skipped, 0u);
  EXPECT_TRUE(health.gaps.empty());
  EXPECT_FALSE(health.degraded);
}

TEST(StreamingWatchdog, ExhaustedChunkIsSkippedWithGapAccounting) {
  const std::size_t total_out = 128;  // 4 full chunks of 32
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      single_engine(batch, KernelConfig{1, 1, 1, 1}, input);

  FaultSpec spec;
  spec.context = 1;
  spec.max_fires = 0;  // chunk 1 fails on every attempt
  ScopedFault fault("stream.chunk", spec);

  Collector collect(batch.dms(), total_out);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 1;
  opts.supervision.degrade_after = 0;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{8, 2, 4, 2},
                                       std::ref(collect), opts);
  session.push(input.cview());
  session.close();  // must complete: the failure was absorbed as a gap

  EXPECT_EQ(collect.indices, (std::vector<std::size_t>{0, 2, 3}));
  const resilience::StreamHealth health = session.health();
  EXPECT_EQ(health.chunks_emitted, 3u);
  EXPECT_EQ(health.chunks_skipped, 1u);
  ASSERT_EQ(health.gaps.size(), 1u);
  EXPECT_EQ(health.gaps[0].index, 1u);
  EXPECT_EQ(health.gaps[0].first_sample, 32u);
  EXPECT_EQ(health.gaps[0].out_samples, 32u);
  EXPECT_FALSE(health.gaps[0].reason.empty());
  // The gap is in the latency report too: 32 samples at 100 samples/s.
  const stream::LatencyReport latency = session.latency();
  EXPECT_EQ(latency.gap_chunks, 1u);
  EXPECT_NEAR(latency.gap_data_seconds, 0.32, 1e-12);
  EXPECT_NEAR(health.gap_data_seconds, 0.32, 1e-12);
  // Delivered chunks are bitwise exact; the skipped range is simply absent.
  for (std::size_t dm = 0; dm < batch.dms(); ++dm) {
    for (std::size_t t = 0; t < total_out; ++t) {
      if (t >= 32 && t < 64) continue;  // the gap
      ASSERT_EQ(expected(dm, t), collect.total(dm, t))
          << "mismatch at (" << dm << ", " << t << ")";
    }
  }
}

TEST(StreamingWatchdog, RetryRungPrecedesSkipRung) {
  const std::size_t total_out = 96;
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      single_engine(batch, KernelConfig{1, 1, 1, 1}, input);

  // Two fires against a budget of two retries: attempts 1 and 2 fail,
  // attempt 3 succeeds — the ladder must exhaust retries before it ever
  // considers dropping the chunk.
  FaultSpec spec;
  spec.context = 1;
  spec.max_fires = 2;
  ScopedFault fault("stream.chunk", spec);

  Collector collect(batch.dms(), total_out);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 2;
  opts.supervision.degrade_after = 0;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{8, 2, 4, 2},
                                       std::ref(collect), opts);
  session.push(input.cview());
  session.close();

  expect_same_matrix(expected, collect.total);
  const resilience::StreamHealth health = session.health();
  EXPECT_EQ(health.retries, 2u);
  EXPECT_EQ(health.chunks_retried, 1u);
  EXPECT_EQ(health.chunks_skipped, 0u);
}

TEST(StreamingWatchdog, ConsecutiveSkipsDegradeToTheCheaperEngine) {
  const std::size_t total_out = 128;  // 4 full chunks of 32
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);

  // Chunks 0 and 1 fail outright (no retry budget) and are skipped; two
  // consecutive pressure events reach degrade_after, so chunks 2 and 3 run
  // on the auto-selected cheaper engine.
  FaultSpec spec;
  spec.max_fires = 2;
  ScopedFault fault("stream.chunk", spec);

  Collector collect(batch.dms(), total_out);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.supervision.enabled = true;
  opts.supervision.max_chunk_retries = 0;
  opts.supervision.degrade_after = 2;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{8, 2, 4, 2},
                                       std::ref(collect), opts);
  EXPECT_EQ(session.health().active_engine, "cpu_tiled");
  session.push(input.cview());
  session.close();

  const resilience::StreamHealth health = session.health();
  EXPECT_EQ(health.chunks_skipped, 2u);
  EXPECT_EQ(health.degradations, 1u);
  EXPECT_TRUE(health.degraded);
  // Capability query, not an id test: the one registered streaming engine
  // that is approximate (and therefore cheaper) is the subband two-stage.
  EXPECT_EQ(health.active_engine, "subband");
  EXPECT_EQ(health.chunks_emitted, 2u);
  EXPECT_EQ(collect.indices, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(session.latency().gap_chunks, 2u);
}

TEST(StreamingWatchdog, DeadlineOverrunsApplyDegradationPressure) {
  const std::size_t total_out = 128;
  const Plan batch = Plan::with_output_samples(mini_obs(), 12, total_out);
  const Array2D<float> input = random_input(batch);

  Collector collect(batch.dms(), total_out);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.supervision.enabled = true;
  opts.supervision.deadline_factor = 1e-12;  // no chunk can make this
  opts.supervision.degrade_after = 3;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{8, 2, 4, 2},
                                       std::ref(collect), opts);
  session.push(input.cview());
  session.close();

  // Overruns degrade but never drop: every chunk was still delivered.
  EXPECT_EQ(collect.emitted, total_out);
  const resilience::StreamHealth health = session.health();
  EXPECT_EQ(health.chunks_emitted, 4u);
  EXPECT_GE(health.deadline_overruns, 3u);
  EXPECT_EQ(health.degradations, 1u);
  EXPECT_EQ(health.active_engine, "subband");
  EXPECT_EQ(health.chunks_skipped, 0u);
}

TEST(StreamingWatchdog, UnsupervisedSessionStillFailsFast) {
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, 96);
  const Array2D<float> input = random_input(batch);
  FaultSpec spec;
  spec.context = 0;
  ScopedFault fault("stream.chunk", spec);
  stream::StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  stream::StreamingDedisperser session(batch.with_chunk(32),
                                       KernelConfig{1, 1, 1, 1}, nullptr,
                                       opts);
  EXPECT_THROW(session.push(input.cview()), resilience::TransientError);
}

TEST(StreamingWatchdog, SelectDegradeEngineQueriesCapabilities) {
  resilience::StreamPolicy policy;
  // Auto-selection walks the cost tiers (exact → quantized →
  // algorithmic) and takes the cheapest on offer, never the current one.
  // cpu_tiled_u8 streams and is approximate, but it does every addition
  // the drowning session already could not afford — the ladder must
  // still prefer subband's flop reduction, and never degrade "up" from
  // subband to the quantized engine.
  EXPECT_EQ(resilience::select_degrade_engine("cpu_tiled", policy),
            "subband");
  EXPECT_EQ(resilience::select_degrade_engine("cpu_tiled_u8", policy),
            "subband");
  EXPECT_EQ(resilience::select_degrade_engine("subband", policy), "");
  // Explicit target: validated for the streaming capability.
  policy.degrade_engine = "reference";
  EXPECT_EQ(resilience::select_degrade_engine("cpu_tiled", policy),
            "reference");
  policy.degrade_engine = "cpu_tiled";
  EXPECT_EQ(resilience::select_degrade_engine("cpu_tiled", policy), "");
  policy.degrade_engine = "no_such_engine";
  EXPECT_THROW(resilience::select_degrade_engine("cpu_tiled", policy),
               invalid_argument);
}

// ------------------------------------------------- tuning-cache quarantine --

std::string temp_cache_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

tuner::CacheEntry sample_entry(const Plan& plan) {
  tuner::CacheEntry entry;
  entry.host = tuner::HostSignature::of(dedisp::CpuKernelOptions{});
  entry.plan = tuner::PlanSignature::of(plan);
  entry.config = engine::encode_kernel_config(KernelConfig{1, 1, 1, 1});
  entry.gflops = 1.0;
  entry.seconds = 0.5;
  entry.evaluated = 1;
  return entry;
}

TEST(TuningCacheQuarantine, CorruptFileIsQuarantinedNotFatal) {
  const std::string path = temp_cache_path("corrupt_cache.csv");
  const std::string quarantined = path + ".quarantined";
  std::filesystem::remove(path);
  std::filesystem::remove(quarantined);
  {
    std::ofstream os(path);
    os << "this,is,not,a,tuning,cache\nat,all\n";
  }
  // Satellite regression: a damaged cache used to abort the run; it must
  // start empty instead — every entry is recomputable by measurement.
  tuner::TuningCache cache(path);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path));  // moved aside, not deleted
  EXPECT_TRUE(std::filesystem::exists(quarantined));
  // The damaged bytes survive for diagnosis.
  std::ifstream is(quarantined);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "this,is,not,a,tuning,cache");
  // The quarantined path no longer blocks saving.
  cache.store(sample_entry(Plan::with_output_samples(mini_obs(), 8, 64)));
  EXPECT_EQ(tuner::TuningCache(path).size(), 1u);
  std::filesystem::remove(path);
  std::filesystem::remove(quarantined);
}

TEST(TuningCacheQuarantine, LoadFailpointQuarantinesAValidFile) {
  const std::string path = temp_cache_path("load_fault_cache.csv");
  const std::string quarantined = path + ".quarantined";
  std::filesystem::remove(path);
  std::filesystem::remove(quarantined);
  {
    tuner::TuningCache writer(path);
    writer.store(sample_entry(Plan::with_output_samples(mini_obs(), 8, 64)));
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    ScopedFault fault("tuning_cache.load", FaultSpec{});
    tuner::TuningCache cache(path);  // parse "fails" deterministically
    EXPECT_EQ(cache.size(), 0u);
  }
  EXPECT_TRUE(std::filesystem::exists(quarantined));
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove(quarantined);
}

TEST(TuningCacheQuarantine, RenameFailureIsTransientAndKeepsTheOldFile) {
  const std::string path = temp_cache_path("rename_fault_cache.csv");
  std::filesystem::remove(path);
  const Plan plan_a = Plan::with_output_samples(mini_obs(), 8, 64);
  const Plan plan_b = Plan::with_output_samples(mini_obs(), 16, 64);
  tuner::TuningCache cache(path);
  cache.store(sample_entry(plan_a));
  ASSERT_EQ(tuner::TuningCache(path).size(), 1u);

  {
    // Satellite regression: std::rename's failure branch (short device,
    // crossed filesystems) was previously unchecked. It must clean the
    // temp file, keep the old cache intact, and throw retryable.
    ScopedFault fault("tuning_cache.rename", FaultSpec{});
    EXPECT_THROW(cache.store(sample_entry(plan_b)),
                 resilience::TransientError);
  }
  EXPECT_EQ(tuner::TuningCache(path).size(), 1u);  // old file untouched
  // No temp litter left behind.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp."), std::string::npos)
        << "stale temp file: " << entry.path();
  }
  // The failure was transient: the very next save succeeds.
  cache.save();
  EXPECT_EQ(tuner::TuningCache(path).size(), 2u);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- randomized soaks --

TEST(ResilienceSoakSlowTier, RandomShardFaultPatternsNeverCorruptOutput) {
  // Seeded probability faults on both the first-assignment tasks and the
  // reacquisition rescues, across many seeds: every run must either absorb
  // the pattern (bitwise-identical output) or fail loudly with a complete
  // aggregate — never return silently wrong data, never deadlock.
  const Plan plan = Plan::with_output_samples(mini_obs(), 16, 60);
  const Array2D<float> input = random_input(plan);
  const KernelConfig config{1, 1, 1, 1};
  const Array2D<float> expected = single_engine(plan, config, input);

  pipeline::ShardedOptions opts;
  opts.workers = 4;
  opts.supervision.retry.max_attempts = 3;
  opts.supervision.retry.backoff_seconds = 0.0;
  opts.supervision.reacquire = true;
  const pipeline::ShardedDedisperser sharded(plan, config, opts);

  std::size_t absorbed = 0, failed = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultSpec task;
    task.trigger = FaultSpec::Trigger::kProbability;
    // High enough that some seed defeats retry × reacquisition (terminal
    // shard failure needs 3 task faults then a sub-shard's 3 more), low
    // enough that other seeds are fully absorbed.
    task.probability = 0.6;
    task.seed = seed;
    task.max_fires = 0;
    ScopedFault worker("shard.task", task);
    FaultSpec rescue = task;
    rescue.seed = seed + 1000;
    ScopedFault sub("shard.reacquire.task", rescue);
    try {
      const Array2D<float> out = sharded.dedisperse(input.cview());
      expect_same_matrix(expected, out);
      ++absorbed;
    } catch (const resilience::ShardExecutionError& e) {
      EXPECT_FALSE(e.failures().empty());
      const resilience::ShardExecutionReport report = sharded.last_report();
      for (const auto& f : e.failures()) {
        EXPECT_TRUE(report.shards[f.shard].failed);
      }
      ++failed;
    }
  }
  // Both outcomes must occur across the seeds — otherwise the soak is not
  // exercising the recovery machinery at all.
  EXPECT_GT(absorbed, 0u);
  EXPECT_GT(failed, 0u);
}

TEST(ResilienceSoakSlowTier, RandomStreamFaultPatternsAlwaysFinish) {
  const std::size_t chunks = 10;
  const std::size_t chunk_out = 32;
  const Plan batch =
      Plan::with_output_samples(mini_obs(), 8, chunks * chunk_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      single_engine(batch, KernelConfig{1, 1, 1, 1}, input);

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultSpec spec;
    spec.trigger = FaultSpec::Trigger::kProbability;
    spec.probability = 0.4;
    spec.seed = seed;
    spec.max_fires = 0;
    ScopedFault fault("stream.chunk", spec);

    Collector collect(batch.dms(), batch.out_samples());
    stream::StreamingOptions opts;
    opts.async = seed % 2 == 0;  // both execution modes soak
    opts.cpu.threads = 1;
    opts.supervision.enabled = true;
    opts.supervision.max_chunk_retries = 2;
    opts.supervision.degrade_after = 0;  // keep chunks bitwise-comparable
    stream::StreamingDedisperser session(batch.with_chunk(chunk_out),
                                         KernelConfig{8, 2, 4, 2},
                                         std::ref(collect), opts);
    session.push(input.cview());
    session.close();  // must always return: failures end as gaps

    const resilience::StreamHealth health = session.health();
    EXPECT_EQ(health.chunks_emitted + health.chunks_skipped, chunks);
    EXPECT_EQ(session.latency().gap_chunks, health.chunks_skipped);
    EXPECT_EQ(health.gaps.size(), health.chunks_skipped);
    EXPECT_NEAR(health.gap_data_seconds,
                static_cast<double>(health.chunks_skipped * chunk_out) /
                    100.0,
                1e-9);
    // Every chunk that was delivered is bitwise exact, skipped or not.
    std::vector<bool> delivered(chunks, false);
    for (const std::size_t index : collect.indices) delivered[index] = true;
    for (const auto& gap : health.gaps) {
      EXPECT_FALSE(delivered[gap.index]);
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      if (!delivered[c]) continue;
      for (std::size_t dm = 0; dm < batch.dms(); ++dm) {
        for (std::size_t t = c * chunk_out; t < (c + 1) * chunk_out; ++t) {
          ASSERT_EQ(expected(dm, t), collect.total(dm, t))
              << "seed " << seed << " chunk " << c << " (" << dm << ", "
              << t << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace ddmc
