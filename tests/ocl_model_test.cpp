// Tests for the analytic half of the accelerator substitution: device
// presets (Table I), the occupancy calculator, the memory-traffic model and
// the performance model.

#include <gtest/gtest.h>

#include <cmath>

#include "common/expect.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/memory_model.hpp"
#include "ocl/occupancy.hpp"
#include "ocl/perf_model.hpp"
#include "test_util.hpp"

namespace ddmc::ocl {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::mini_obs;
using testing::mini_plan;

// -------------------------------------------------------------- presets --

TEST(DevicePresets, TableOneCharacteristics) {
  // CEs, GFLOP/s and GB/s exactly as printed in Table I.
  const DeviceModel hd = amd_hd7970();
  EXPECT_EQ(hd.total_lanes(), 64u * 32u);
  EXPECT_DOUBLE_EQ(hd.peak_gflops, 3788.0);
  EXPECT_DOUBLE_EQ(hd.peak_bandwidth_gbs, 264.0);

  const DeviceModel phi = intel_xeon_phi();
  EXPECT_EQ(phi.compute_units, 60u);
  EXPECT_DOUBLE_EQ(phi.peak_gflops, 2022.0);
  EXPECT_DOUBLE_EQ(phi.peak_bandwidth_gbs, 320.0);

  const DeviceModel gtx680 = nvidia_gtx680();
  EXPECT_EQ(gtx680.total_lanes(), 192u * 8u);
  EXPECT_DOUBLE_EQ(gtx680.peak_gflops, 3090.0);
  EXPECT_DOUBLE_EQ(gtx680.peak_bandwidth_gbs, 192.0);

  const DeviceModel k20 = nvidia_k20();
  EXPECT_EQ(k20.total_lanes(), 192u * 13u);
  EXPECT_DOUBLE_EQ(k20.peak_gflops, 3519.0);
  EXPECT_DOUBLE_EQ(k20.peak_bandwidth_gbs, 208.0);

  const DeviceModel titan = nvidia_gtx_titan();
  EXPECT_EQ(titan.total_lanes(), 192u * 14u);
  EXPECT_DOUBLE_EQ(titan.peak_gflops, 4500.0);
  EXPECT_DOUBLE_EQ(titan.peak_bandwidth_gbs, 288.0);
}

TEST(DevicePresets, TableOneHasFiveAccelerators) {
  const auto devices = table1_devices();
  ASSERT_EQ(devices.size(), 5u);
  EXPECT_EQ(devices[0].name, "HD7970");
  EXPECT_EQ(devices[1].name, "XeonPhi");
  EXPECT_EQ(devices[2].name, "GTX680");
  EXPECT_EQ(devices[3].name, "K20");
  EXPECT_EQ(devices[4].name, "GTXTitan");
}

TEST(DevicePresets, ArchitecturalContrastsBehindThePapersFindings) {
  // GK110 allows register-heavy work-items, GK104 does not (Figs. 4–5).
  EXPECT_GT(nvidia_k20().max_regs_per_item, nvidia_gtx680().max_regs_per_item);
  // The HD7970's 256 work-item cap is the limit the tuner pins (Fig. 2–3).
  EXPECT_EQ(amd_hd7970().max_work_group_size, 256u);
  // The Phi has no real local memory and executes groups serially.
  EXPECT_FALSE(intel_xeon_phi().has_local_memory);
  EXPECT_TRUE(intel_xeon_phi().serial_group_execution);
}

TEST(DevicePresets, LookupByNameIsCaseInsensitive) {
  EXPECT_EQ(device_by_name("hd7970").name, "HD7970");
  EXPECT_EQ(device_by_name("K20").name, "K20");
  EXPECT_EQ(device_by_name("TITAN").name, "GTXTitan");
  EXPECT_EQ(device_by_name("phi").name, "XeonPhi");
  EXPECT_EQ(device_by_name("cpu").name, "E5-2620");
  EXPECT_THROW(device_by_name("GTX9999"), invalid_argument);
  EXPECT_EQ(preset_names().size(), 6u);
}

TEST(DevicePresets, PeakInstrRateExcludesFmaCredit) {
  // §VI: no fused multiply-add for dedispersion ⇒ the usable issue rate is
  // lanes × clock, half of the FMA-based headline figure.
  const DeviceModel hd = amd_hd7970();
  EXPECT_NEAR(hd.peak_instr_gops() * 2.0, hd.peak_gflops, 10.0);
}

// ------------------------------------------------------------- occupancy --

TEST(Occupancy, GroupCapLimitsSmallGroups) {
  const DeviceModel dev = amd_hd7970();
  const Occupancy occ = compute_occupancy(dev, KernelConfig{16, 1, 1, 1}, 0);
  ASSERT_TRUE(occ.valid());
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kGroupCap);
  EXPECT_EQ(occ.groups_per_cu, dev.max_groups_per_cu);
}

TEST(Occupancy, ItemCapLimitsLargeGroups) {
  const DeviceModel dev = amd_hd7970();  // 2560 items per CU
  const Occupancy occ = compute_occupancy(dev, KernelConfig{256, 1, 1, 1}, 0);
  ASSERT_TRUE(occ.valid());
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kItemCap);
  EXPECT_EQ(occ.groups_per_cu, 10u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterPressureReducesResidency) {
  DeviceModel dev = nvidia_k20();
  // 128 accumulators + overhead on 128-item groups: the register file only
  // holds 3 such groups (vs 16 by the group cap).
  const KernelConfig heavy{64, 2, 32, 4};
  const Occupancy occ = compute_occupancy(dev, heavy, 0);
  ASSERT_TRUE(occ.valid());
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
  EXPECT_LT(occ.fraction, 0.5);
}

TEST(Occupancy, LocalMemoryLimitsStagedKernels) {
  const DeviceModel dev = nvidia_k20();  // 48 KiB per CU and per group
  const Occupancy occ =
      compute_occupancy(dev, KernelConfig{64, 2, 1, 1}, 20000);
  ASSERT_TRUE(occ.valid());
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kLocalMemory);
  EXPECT_EQ(occ.groups_per_cu, 2u);
}

TEST(Occupancy, InvalidWhenGroupTooLargeOrRegistersOverflow) {
  const DeviceModel hd = amd_hd7970();
  EXPECT_FALSE(compute_occupancy(hd, KernelConfig{512, 1, 1, 1}, 0).valid());
  const DeviceModel gtx = nvidia_gtx680();  // 63 registers per item max
  EXPECT_FALSE(compute_occupancy(gtx, KernelConfig{32, 1, 32, 4}, 0).valid());
  // The same config is fine on GK110's 255-register budget.
  EXPECT_TRUE(compute_occupancy(nvidia_k20(), KernelConfig{32, 1, 32, 4}, 0)
                  .valid());
}

TEST(Occupancy, LocalMemoryOverflowInvalid) {
  const DeviceModel hd = amd_hd7970();
  EXPECT_FALSE(
      compute_occupancy(hd, KernelConfig{16, 2, 1, 1}, 40000).valid());
}

TEST(Occupancy, FractionNeverExceedsOne) {
  for (const DeviceModel& dev : table1_devices()) {
    for (std::size_t wi : {1u, 16u, 64u, 256u}) {
      const Occupancy occ =
          compute_occupancy(dev, KernelConfig{wi, 1, 2, 1}, 0);
      if (occ.valid()) {
        EXPECT_LE(occ.fraction, 1.0) << dev.name;
      }
    }
  }
}

TEST(Occupancy, LimiterNamesAreHuman) {
  EXPECT_EQ(to_string(OccupancyLimiter::kRegisters), "registers");
  EXPECT_EQ(to_string(OccupancyLimiter::kInvalid), "invalid");
}

// ----------------------------------------------------------- memory model --

TEST(MemoryModel, LineQuantizationExpectation) {
  // (b + L − 1) bytes on average: 1-byte read costs a 64th of a line more…
  EXPECT_DOUBLE_EQ(line_quantized_bytes(4.0, 64), 67.0);
  // …and long rows amortize the partial lines (the §III-B factor-two
  // worst case only bites short rows).
  EXPECT_LT(line_quantized_bytes(4096.0, 64) / 4096.0, 1.02);
  EXPECT_GT(line_quantized_bytes(32.0, 64) / 32.0, 1.9);
}

TEST(MemoryModel, CaptureSelection) {
  const Plan plan = mini_plan(8, 64);
  const auto spreads2 = plan.delays().tile_spreads(2);
  // GPU with local memory and a multi-trial tile: staged.
  const TrafficEstimate gpu = estimate_traffic(
      amd_hd7970(), plan, KernelConfig{8, 2, 4, 1}, spreads2);
  EXPECT_EQ(gpu.capture, ReuseCapture::kLocalMemory);
  // Phi (no local memory), small working set: cache capture.
  const TrafficEstimate phi = estimate_traffic(
      intel_xeon_phi(), plan, KernelConfig{8, 2, 4, 1}, spreads2);
  EXPECT_EQ(phi.capture, ReuseCapture::kCache);
  // Single-trial tiles have nothing to reuse.
  const auto spreads1 = plan.delays().tile_spreads(1);
  const TrafficEstimate none = estimate_traffic(
      amd_hd7970(), plan, KernelConfig{8, 1, 4, 1}, spreads1);
  EXPECT_EQ(none.capture, ReuseCapture::kNone);
}

TEST(MemoryModel, CacheTooSmallMeansNoCapture) {
  DeviceModel small_cache = intel_xeon_phi();
  small_cache.cache_per_cu_bytes = 64;
  const Plan plan = mini_plan(8, 64);
  const auto spreads = plan.delays().tile_spreads(4);
  const TrafficEstimate t = estimate_traffic(
      small_cache, plan, KernelConfig{8, 4, 4, 1}, spreads);
  EXPECT_EQ(t.capture, ReuseCapture::kNone);
}

TEST(MemoryModel, UniqueTrafficMatchesHandComputation) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};  // tile: 32 time × 4 dm
  const auto spreads = plan.delays().tile_spreads(4);
  const TrafficEstimate t =
      estimate_traffic(amd_hd7970(), plan, cfg, spreads);
  const double tiles_time = 64.0 / 32.0;
  const double expected =
      tiles_time * (static_cast<double>(spreads.rows) * 32.0 +
                    spreads.total_spread);
  EXPECT_DOUBLE_EQ(t.unique_input_floats, expected);
}

TEST(MemoryModel, ReuseFactorOrdering) {
  // Captured reuse must beat uncaptured streaming on DRAM traffic.
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 4, 4, 2};
  const auto spreads = plan.delays().tile_spreads(8);
  const TrafficEstimate staged =
      estimate_traffic(amd_hd7970(), plan, cfg, spreads);
  DeviceModel no_local = amd_hd7970();
  no_local.has_local_memory = false;
  no_local.cache_per_cu_bytes = 0;  // force kNone
  const TrafficEstimate streaming =
      estimate_traffic(no_local, plan, cfg, spreads);
  EXPECT_LT(staged.input_bytes, streaming.input_bytes);
  EXPECT_GT(staged.reuse_factor, streaming.reuse_factor);
}

TEST(MemoryModel, TotalIsComponentSum) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};
  const TrafficEstimate t = estimate_traffic(
      amd_hd7970(), plan, cfg, plan.delays().tile_spreads(4));
  EXPECT_DOUBLE_EQ(t.total_bytes,
                   t.input_bytes + t.output_bytes + t.delay_bytes);
  // Stores: 4·d·s scaled by the coalescing factor 1 + (L−1)/(4·wi_time).
  EXPECT_DOUBLE_EQ(t.output_bytes, 8.0 * 64.0 * 4.0 * (1.0 + 63.0 / 32.0));
  EXPECT_DOUBLE_EQ(t.delay_bytes, 8.0 * 8.0 * 4.0);
}

TEST(MemoryModel, StagedLdsTrafficCoversLoadsAndStores) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};
  const TrafficEstimate t = estimate_traffic(
      amd_hd7970(), plan, cfg, plan.delays().tile_spreads(4));
  EXPECT_DOUBLE_EQ(t.lds_bytes,
                   4.0 * (t.unique_input_floats + plan.total_flop()));
}

TEST(MemoryModel, CaptureNamesAreHuman) {
  EXPECT_EQ(to_string(ReuseCapture::kLocalMemory), "local-memory");
  EXPECT_EQ(to_string(ReuseCapture::kCache), "cache");
  EXPECT_EQ(to_string(ReuseCapture::kNone), "none");
}

// ------------------------------------------------------------ perf model --

TEST(PerfModel, EstimateIsPositiveAndConsistent) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const PerfEstimate p = estimate_performance(
      amd_hd7970(), analysis, KernelConfig{8, 2, 4, 2});
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.gflops, 0.0);
  EXPECT_NEAR(p.gflops, analysis.plan().total_flop() / p.seconds * 1e-9,
              1e-9);
  EXPECT_GE(p.seconds,
            std::max({p.mem_seconds, p.instr_seconds, p.lds_seconds}));
  EXPECT_LE(p.busy_fraction, 1.0);
  EXPECT_GT(p.hiding_efficiency, 0.0);
  EXPECT_LE(p.hiding_efficiency, 1.0);
}

TEST(PerfModel, InvalidConfigsThrowConfigError) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  // Non-dividing tile.
  EXPECT_THROW(estimate_performance(amd_hd7970(), analysis,
                                    KernelConfig{5, 1, 1, 1}),
               config_error);
  // Work-group above the device limit.
  EXPECT_THROW(estimate_performance(amd_hd7970(), analysis,
                                    KernelConfig{256, 2, 1, 1}),
               config_error);
  // Register overflow on GK104 (64 accumulators + overhead > 63 regs).
  EXPECT_THROW(estimate_performance(nvidia_gtx680(), analysis,
                                    KernelConfig{8, 1, 8, 8}),
               config_error);
}

TEST(PerfModel, StagedRowsBeyondLocalMemoryAreRejected) {
  DeviceModel tiny = amd_hd7970();
  tiny.local_mem_per_group_bytes = 64;
  const PlanAnalysis analysis(mini_plan(8, 64));
  EXPECT_THROW(
      estimate_performance(tiny, analysis, KernelConfig{16, 2, 4, 2}),
      config_error);
}

TEST(PerfModel, RealisticApertifIsMemoryOrIssueBoundNeverIdle) {
  const PlanAnalysis analysis(
      dedisp::Plan(sky::apertif(), 256));
  for (const DeviceModel& dev : table1_devices()) {
    const KernelConfig cfg{16, 2, 2, 2};  // resident even on the Phi
    const PerfEstimate p = estimate_performance(dev, analysis, cfg);
    EXPECT_GT(p.gflops, 1.0) << dev.name;
    EXPECT_LT(p.gflops, dev.peak_gflops / 2.0)
        << dev.name << ": cannot beat the no-FMA ceiling";
  }
}

TEST(PerfModel, MoreDmsDoNotReduceTunedThroughput) {
  // The scaling property of Fig. 6: throughput ramps then plateaus.
  const sky::Observation obs = sky::apertif();
  const KernelConfig cfg{50, 2, 2, 2};  // tile of 100 divides 20 k samples
  double prev = 0.0;
  for (std::size_t dms : {8u, 64u, 512u}) {
    const PlanAnalysis analysis((dedisp::Plan(obs, dms)));
    const double g =
        estimate_performance(amd_hd7970(), analysis, cfg).gflops;
    EXPECT_GT(g, prev * 0.95) << dms;  // allow a plateau, not a collapse
    prev = g;
  }
}

TEST(PerfModel, ZeroDmAtLeastAsFastAsRealDelays) {
  // §V-C: perfect reuse can only help (dramatically for LOFAR).
  const KernelConfig cfg{50, 4, 2, 2};  // tile of 100 divides 200 k samples
  const PlanAnalysis real((dedisp::Plan(sky::lofar(), 64)));
  const PlanAnalysis zero(
      (dedisp::Plan(sky::lofar().zero_dm_variant(), 64)));
  const double g_real =
      estimate_performance(amd_hd7970(), real, cfg).gflops;
  const double g_zero =
      estimate_performance(amd_hd7970(), zero, cfg).gflops;
  EXPECT_GE(g_zero, g_real);
}

TEST(PerfModel, PlanAnalysisMemoizesSpreads) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const sky::SpreadStats& a = analysis.spreads(4);
  const sky::SpreadStats& b = analysis.spreads(4);
  EXPECT_EQ(&a, &b);  // same cached object
}

TEST(PerfModel, RealTimeLineMatchesPaperNumbers) {
  // One second of Apertif data at d DMs costs d × 20.48 MFLOP (§IV).
  EXPECT_NEAR(real_time_gflops(sky::apertif(), 1000), 20.48, 0.01);
  EXPECT_NEAR(real_time_gflops(sky::lofar(), 1000), 6.4, 0.01);
}

TEST(PerfModel, MemoryCapacityGatesLargeInstances) {
  // §IV-A: "some platforms may not be able to compute results for all the
  // input instances". LOFAR at 4096 DMs needs > 3.8 GB.
  const dedisp::Plan big(sky::lofar(), 4096);
  EXPECT_FALSE(fits_in_memory(nvidia_gtx680(), big));   // 2 GB
  EXPECT_TRUE(fits_in_memory(nvidia_gtx_titan(), big)); // 6 GB
  const dedisp::Plan small(sky::lofar(), 64);
  EXPECT_TRUE(fits_in_memory(nvidia_gtx680(), small));
}

TEST(PerfModel, CpuBaselineIsMemoryBoundAndModest) {
  const dedisp::Plan plan(sky::apertif(), 256);
  const PerfEstimate p = estimate_cpu_baseline(intel_xeon_e5_2620(), plan);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_GT(p.gflops, 1.0);
  EXPECT_LT(p.gflops, 40.0);  // an order of magnitude below the GPUs
}

TEST(PerfModel, AcceleratorsBeatCpuBaseline) {
  // The qualitative content of Figs. 15–16.
  const dedisp::Plan plan(sky::apertif(), 512);
  const PlanAnalysis analysis(plan);
  const double cpu = estimate_cpu_baseline(intel_xeon_e5_2620(), plan).gflops;
  const double gpu =
      estimate_performance(amd_hd7970(), analysis, KernelConfig{50, 4, 5, 2})
          .gflops;
  EXPECT_GT(gpu, 3.0 * cpu);
}

}  // namespace
}  // namespace ddmc::ocl
