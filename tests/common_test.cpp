// Unit tests for the common substrate: aligned buffers, pitched matrices,
// the thread pool, statistics, the deterministic RNG, tables and the CLI.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/array2d.hpp"
#include "common/cli.hpp"
#include "common/expect.hpp"
#include "common/fft.hpp"
#include "common/random.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace ddmc {
namespace {

// ---------------------------------------------------------------- aligned --

TEST(Aligned, RoundUpBasics) {
  EXPECT_EQ(round_up(0, 64), 0u);
  EXPECT_EQ(round_up(1, 64), 64u);
  EXPECT_EQ(round_up(64, 64), 64u);
  EXPECT_EQ(round_up(65, 64), 128u);
  EXPECT_EQ(round_up(10, 0), 10u);  // degenerate alignment passes through
}

TEST(Aligned, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::size_t>(4096, 3), 1366u);
}

TEST(Aligned, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Aligned, AllocatorReturnsAlignedStorage) {
  AlignedAllocator<float> alloc;
  float* p = alloc.allocate(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes, 0u);
  alloc.deallocate(p, 37);
}

TEST(Aligned, AllocatorWorksInsideVector) {
  std::vector<float, AlignedAllocator<float>> v(1000, 1.5f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  EXPECT_EQ(v[999], 1.5f);
}

// ---------------------------------------------------------------- array2d --

TEST(Array2D, RowsAreCacheLineAligned) {
  Array2D<float> m(5, 7);  // 7 floats = 28 bytes → pitch rounds to 16 floats
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 7u);
  EXPECT_EQ(m.pitch() * sizeof(float) % kCacheLineBytes, 0u);
  EXPECT_GE(m.pitch(), m.cols());
}

TEST(Array2D, ZeroInitializedAndWritable) {
  Array2D<float> m(3, 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  m(2, 3) = 5.0f;
  EXPECT_EQ(m(2, 3), 5.0f);
}

TEST(Array2D, EmptyMatrixRejected) {
  EXPECT_THROW(Array2D<float>(0, 4), invalid_argument);
  EXPECT_THROW(Array2D<float>(4, 0), invalid_argument);
}

TEST(Array2D, CheckedAccessThrowsOutOfRange) {
  Array2D<float> m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), invalid_argument);
  EXPECT_THROW(m.at(0, 2), invalid_argument);
}

TEST(Array2D, ViewsShareStorage) {
  Array2D<float> m(2, 3);
  auto v = m.view();
  v(1, 2) = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
  ConstView2D<float> cv = m.cview();
  EXPECT_EQ(cv(1, 2), 9.0f);
}

TEST(Array2D, RowSpanHasExactlyColsElements) {
  Array2D<float> m(4, 10);
  EXPECT_EQ(m.row(0).size(), 10u);
  EXPECT_THROW(m.row(4), invalid_argument);
}

TEST(Array2D, FillSetsEveryElement) {
  Array2D<float> m(3, 5);
  m.fill(2.5f);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(m(r, c), 2.5f);
}

TEST(View2D, PitchMustCoverRow) {
  std::vector<float> buf(10);
  EXPECT_THROW(View2D<float>(buf.data(), 2, 5, 4), invalid_argument);
}

// ------------------------------------------------------------ thread pool --

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.run([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 4) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreIsolated) {
  // Two parallel_for calls share one pool: each must wait only on its own
  // blocks and see only its own exceptions (per-call completion state, not
  // the pool-global in_flight_/first_error_).
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(200);
    std::exception_ptr thrower_error;
    std::exception_ptr quiet_error;
    std::thread thrower([&] {
      try {
        pool.parallel_for(0, 100, 3, [](std::size_t b, std::size_t) {
          if (b >= 42) throw std::runtime_error("thrower");
        });
      } catch (...) {
        thrower_error = std::current_exception();
      }
    });
    std::thread quiet([&] {
      try {
        pool.parallel_for(0, 200, 7, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) ++hits[i];
        });
      } catch (...) {
        quiet_error = std::current_exception();
      }
    });
    thrower.join();
    quiet.join();
    EXPECT_TRUE(thrower_error != nullptr);
    EXPECT_TRUE(quiet_error == nullptr);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.run(nullptr), invalid_argument);
}

TEST(ThreadPool, RejectsInvertedRange) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(5, 2, 1, [](std::size_t, std::size_t) {}),
      invalid_argument);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

// ------------------------------------------------------------- statistics --

TEST(Statistics, WelfordMatchesNaive) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 5.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5.0;
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 16.0);
}

TEST(Statistics, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Statistics, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.mean(), 3.0);
}

TEST(Statistics, SummarizeComputesSnrOfMax) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 5.0};
  const StatsSummary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.mean, 1.8, 1e-12);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_NEAR(s.snr_of_max, (5.0 - 1.8) / s.stddev, 1e-12);
}

TEST(Statistics, SummarizeRejectsEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(summarize(empty), invalid_argument);
}

TEST(Statistics, SnrZeroForDegeneratePopulation) {
  EXPECT_EQ(snr(5.0, 5.0, 0.0), 0.0);
  EXPECT_NEAR(snr(8.0, 5.0, 1.5), 2.0, 1e-12);
}

TEST(Statistics, ChebyshevBound) {
  EXPECT_EQ(chebyshev_bound(0.5), 1.0);  // clamps below k = 1
  EXPECT_NEAR(chebyshev_bound(1.6), 1.0 / (1.6 * 1.6), 1e-12);
  // The paper quotes < 39% best case and < 5% worst case.
  EXPECT_LT(chebyshev_bound(1.61), 0.39);
  EXPECT_LT(chebyshev_bound(4.5), 0.05);
}

TEST(Statistics, HistogramBinsAndClamps) {
  const std::vector<double> xs = {0.1, 0.2, 0.9, 1.5, -3.0, 99.0};
  const Histogram h = make_histogram(xs, 4, 0.0, 2.0);
  ASSERT_EQ(h.counts.size(), 4u);
  // bins: [0,0.5) [0.5,1.0) [1.0,1.5) [1.5,2.0]; -3 clamps low, 99 high.
  EXPECT_EQ(h.counts[0], 3u);  // 0.1, 0.2, -3.0(clamped)
  EXPECT_EQ(h.counts[1], 1u);  // 0.9
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.counts[3], 2u);  // 1.5, 99(clamped)
  EXPECT_NEAR(h.bin_width(), 0.5, 1e-12);
  EXPECT_NEAR(h.bin_center(0), 0.25, 1e-12);
}

TEST(Statistics, AutoRangeHistogramSpansData) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  const Histogram h = make_histogram(xs, 2);
  EXPECT_EQ(h.lo, 2.0);
  EXPECT_EQ(h.hi, 6.0);
  EXPECT_EQ(h.counts[0] + h.counts[1], 3u);
}

TEST(Statistics, HistogramDegenerateAndErrors) {
  const std::vector<double> same = {3.0, 3.0};
  const Histogram h = make_histogram(same, 4);
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), 0u), 2u);
  EXPECT_THROW(make_histogram(same, 0, 0.0, 1.0), invalid_argument);
  EXPECT_THROW(make_histogram(same, 2, 1.0, 1.0), invalid_argument);
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FloatRespectsBounds) {
  Rng r(10);
  for (int i = 0; i < 1000; ++i) {
    const float x = r.next_float(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(r.next_normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.03);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.03);
}

// ----------------------------------------------------------------- table --

TEST(TextTable, AlignsColumnsAndSeparatesHeader) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invalid_argument);
  EXPECT_THROW(TextTable({}), invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::size_t{42}), "42");
}

// ------------------------------------------------------------------- cli --

TEST(Cli, ParsesOptionsAndFlags) {
  Cli cli("prog", "test program");
  cli.add_option("dms", "trial count", "64");
  cli.add_option("device", "device name", "HD7970");
  cli.add_flag("verbose", "noisy output");
  const char* argv[] = {"prog", "--dms", "128", "--verbose",
                        "--device=K20"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("dms"), 128);
  EXPECT_EQ(cli.get("device"), "K20");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  Cli cli("prog", "test");
  cli.add_option("x", "a value", "7");
  cli.add_flag("f", "a flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("x"), 7);
  EXPECT_FALSE(cli.get_flag("f"));
}

TEST(Cli, HelpShortCircuits) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  Cli cli("prog", "test");
  cli.add_option("x", "v", "1");
  cli.add_flag("f", "flag");
  {
    const char* argv[] = {"prog", "--nope", "1"};
    EXPECT_THROW(cli.parse(3, argv), invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--x"};
    EXPECT_THROW(cli.parse(2, argv), invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--f=1"};
    EXPECT_THROW(cli.parse(2, argv), invalid_argument);
  }
  {
    const char* argv[] = {"prog", "positional"};
    EXPECT_THROW(cli.parse(2, argv), invalid_argument);
  }
}

TEST(Cli, TypedAccessorErrors) {
  Cli cli("prog", "test");
  cli.add_option("s", "a string", "abc");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get_int("s"), invalid_argument);
  EXPECT_THROW(cli.get_double("s"), invalid_argument);
  EXPECT_THROW(cli.get("unregistered"), invalid_argument);
  EXPECT_THROW(cli.get_flag("s"), invalid_argument);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  Cli cli("prog", "does things");
  cli.add_option("alpha", "the alpha", "0.5");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("0.5"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

// ----------------------------------------------------------------- timer --

TEST(Stopwatch, MeasuresNonNegativeElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.milliseconds(), 0.0);
}

// ---------------------------------------------------------------- expect --

TEST(Expect, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DDMC_REQUIRE(false, "reason"), invalid_argument);
  EXPECT_NO_THROW(DDMC_REQUIRE(true, ""));
}

TEST(Expect, EnsureThrowsInternalError) {
  EXPECT_THROW(DDMC_ENSURE(false, "bug"), internal_error);
}

TEST(Expect, MessageCarriesLocationAndReason) {
  try {
    DDMC_REQUIRE(1 == 2, "custom-reason");
    FAIL() << "should have thrown";
  } catch (const invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom-reason"), std::string::npos);
    EXPECT_NE(msg.find("common_test.cpp"), std::string::npos);
  }
}

// -------------------------------------------------------------------- fft --

TEST(Fft, NextPow2) {
  EXPECT_EQ(fft::next_pow2(0), 1u);
  EXPECT_EQ(fft::next_pow2(1), 1u);
  EXPECT_EQ(fft::next_pow2(2), 2u);
  EXPECT_EQ(fft::next_pow2(3), 4u);
  EXPECT_EQ(fft::next_pow2(1024), 1024u);
  EXPECT_EQ(fft::next_pow2(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwoSizes) {
  EXPECT_THROW(fft::Fft(0), invalid_argument);
  EXPECT_THROW(fft::Fft(12), invalid_argument);
  EXPECT_THROW(fft::RealFft(96), invalid_argument);
}

TEST(Fft, LengthOneSeriesIsItsOwnSpectrum) {
  // The degenerate transform: one sample, one bin, identity both ways.
  fft::RealFft rf(1);
  EXPECT_EQ(fft::rfft_bins(1), 1u);
  const float x = 3.25f;
  std::complex<float> bin;
  rf.forward(&x, 1, &bin);
  EXPECT_FLOAT_EQ(bin.real(), x);
  EXPECT_FLOAT_EQ(bin.imag(), 0.0f);
  float back = 0.0f;
  rf.inverse(&bin, &back);
  EXPECT_FLOAT_EQ(back, x);
}

TEST(Fft, NonPowerOfTwoInputRoundTripsThroughPadding) {
  // A 97-sample series transformed at the next power of two (128) must
  // come back as the original followed by exact zeros: zero-padding is
  // the contract that lets the dedispersion engine pick its FFT size
  // independently of the plan's sample counts.
  const std::size_t n_in = 97;
  const std::size_t n = fft::next_pow2(n_in);
  ASSERT_EQ(n, 128u);
  Rng rng(42);
  std::vector<float> x(n_in);
  for (auto& v : x) v = rng.next_float(-1.0f, 1.0f);

  fft::RealFft rf(n);
  std::vector<std::complex<float>> bins(fft::rfft_bins(n));
  rf.forward(x.data(), n_in, bins.data());
  std::vector<float> back(n);
  rf.inverse(bins.data(), back.data());

  for (std::size_t t = 0; t < n_in; ++t) {
    EXPECT_NEAR(back[t], x[t], 1e-5f) << "t=" << t;
  }
  for (std::size_t t = n_in; t < n; ++t) {
    EXPECT_NEAR(back[t], 0.0f, 1e-5f) << "padded tail t=" << t;
  }
}

TEST(Fft, MatchesTheNaiveDftOnRandomizedSeries) {
  // Property check against the O(n^2) definition, across every size the
  // radix-2 recursion exercises distinctly (1 hits the degenerate real
  // packing, 2 the identity half transform, larger ones full butterflies).
  Rng rng(7);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{32},
                              std::size_t{128}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<float> x(n);
    for (auto& v : x) v = rng.next_float(-1.0f, 1.0f);

    fft::RealFft rf(n);
    std::vector<std::complex<float>> bins(fft::rfft_bins(n));
    rf.forward(x.data(), n, bins.data());

    const double tau = 6.283185307179586476925286766559;
    for (std::size_t k = 0; k < bins.size(); ++k) {
      double re = 0.0, im = 0.0;  // negative-exponent DFT definition
      for (std::size_t t = 0; t < n; ++t) {
        const double a = -tau * static_cast<double>(k) *
                         static_cast<double>(t) / static_cast<double>(n);
        re += x[t] * std::cos(a);
        im += x[t] * std::sin(a);
      }
      const double tol = 1e-4 * std::max<double>(1.0, std::sqrt(n));
      EXPECT_NEAR(bins[k].real(), re, tol) << "k=" << k;
      EXPECT_NEAR(bins[k].imag(), im, tol) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace ddmc
