// Unit and property tests for the core library: plans, kernel configs, the
// reference algorithm, the tiled CPU kernel, the CPU baseline and the
// arithmetic-intensity analysis.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/intensity.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "dedisp/reference.hpp"
#include "test_util.hpp"

namespace ddmc::dedisp {
namespace {

using testing::expect_same_matrix;
using testing::mini_obs;
using testing::mini_plan;
using testing::random_input;

// ------------------------------------------------------------------- plan --

TEST(Plan, FullSecondsRoundsInputToWholeSeconds) {
  const sky::Observation obs = mini_obs();  // 100 samples per second
  const Plan plan(obs, 8, 1);
  EXPECT_EQ(plan.out_samples(), 100u);
  EXPECT_EQ(plan.in_samples() % obs.samples_per_second(), 0u);
  EXPECT_GE(plan.in_samples(),
            plan.out_samples() +
                static_cast<std::size_t>(plan.delays().max_delay()));
}

TEST(Plan, ExplicitOutputSamplesSkipsRounding) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 8, 64);
  EXPECT_EQ(plan.out_samples(), 64u);
  EXPECT_EQ(plan.in_samples(),
            64u + static_cast<std::size_t>(plan.delays().max_delay()));
}

TEST(Plan, TotalFlopIsDBySByC) {
  const Plan plan = mini_plan(8, 64);
  EXPECT_DOUBLE_EQ(plan.total_flop(), 8.0 * 64.0 * 8.0);
}

TEST(Plan, ByteAccountingMatchesDimensions) {
  const Plan plan = mini_plan(8, 64);
  EXPECT_DOUBLE_EQ(plan.output_bytes(), 8.0 * 64.0 * 4.0);
  EXPECT_DOUBLE_EQ(plan.input_bytes(),
                   static_cast<double>(plan.channels()) *
                       static_cast<double>(plan.in_samples()) * 4.0);
}

TEST(Plan, RejectsDegenerateInstances) {
  EXPECT_THROW(Plan(mini_obs(), 0, 1), invalid_argument);
  EXPECT_THROW(Plan(mini_obs(), 8, 0), invalid_argument);
  EXPECT_THROW(Plan::with_output_samples(mini_obs(), 8, 0),
               invalid_argument);
}

TEST(Plan, ZeroDmObservationNeedsNoPadding) {
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  EXPECT_EQ(plan.in_samples(), 64u);
}

// ---------------------------------------------------------- kernel config --

TEST(KernelConfig, TileArithmetic) {
  const KernelConfig cfg{32, 8, 4, 2};
  EXPECT_EQ(cfg.tile_time(), 128u);
  EXPECT_EQ(cfg.tile_dm(), 16u);
  EXPECT_EQ(cfg.work_group_size(), 256u);
  EXPECT_EQ(cfg.accumulators_per_item(), 8u);
}

TEST(KernelConfig, GridExtents) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};  // tile 32 time × 4 dm
  EXPECT_EQ(cfg.groups_time(plan), 2u);
  EXPECT_EQ(cfg.groups_dm(plan), 2u);
  EXPECT_EQ(cfg.total_groups(plan), 4u);
  EXPECT_TRUE(cfg.divides(plan));
}

TEST(KernelConfig, ValidateRejectsNonDividingTiles) {
  const Plan plan = mini_plan(8, 64);
  EXPECT_THROW((KernelConfig{5, 1, 1, 1}).validate(plan), config_error);
  EXPECT_THROW((KernelConfig{1, 3, 1, 1}).validate(plan), config_error);
  EXPECT_THROW((KernelConfig{0, 1, 1, 1}).validate(plan), config_error);
  EXPECT_NO_THROW((KernelConfig{8, 2, 8, 4}).validate(plan));
}

TEST(KernelConfig, ValidateRejectsUnsupportedUnrollHints) {
  // Regression: unroll hints without a compiled accumulate instantiation
  // used to fall back silently to the plain loop — a mislabeled timing in
  // any sweep that measured them. They must fail validation instead.
  const Plan plan = mini_plan(8, 64);
  for (const std::size_t unroll : {1ul, 2ul, 4ul, 8ul}) {
    KernelConfig cfg{8, 2, 4, 2};
    cfg.unroll = unroll;
    EXPECT_NO_THROW(cfg.validate(plan)) << unroll;
  }
  for (const std::size_t unroll : {0ul, 3ul, 5ul, 6ul, 7ul, 9ul, 16ul}) {
    KernelConfig cfg{8, 2, 4, 2};
    cfg.unroll = unroll;
    EXPECT_THROW(cfg.validate(plan), config_error) << unroll;
  }
}

TEST(KernelConfig, ToStringAndEquality) {
  const KernelConfig a{1, 2, 3, 4};
  EXPECT_EQ(a.to_string(), "{wi_time=1, wi_dm=2, elem_time=3, elem_dm=4}");
  EXPECT_EQ(a, (KernelConfig{1, 2, 3, 4}));
  EXPECT_NE(a, (KernelConfig{1, 2, 3, 8}));
}

// -------------------------------------------------------------- reference --

TEST(Reference, ZeroDmSumsChannelsAtSameSample) {
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 4, 16);
  Array2D<float> in(plan.channels(), plan.in_samples());
  for (std::size_t ch = 0; ch < in.rows(); ++ch)
    for (std::size_t t = 0; t < in.cols(); ++t)
      in(ch, t) = static_cast<float>(t);
  const Array2D<float> out = dedisperse_reference(plan, in.cview());
  for (std::size_t dm = 0; dm < 4; ++dm)
    for (std::size_t t = 0; t < 16; ++t)
      EXPECT_EQ(out(dm, t), static_cast<float>(t * plan.channels()));
}

TEST(Reference, ImpulseFollowsDelayTable) {
  const Plan plan = mini_plan(8, 64);
  const sky::DelayTable& delays = plan.delays();
  // Put a single spike per channel at the position trial 5 expects.
  Array2D<float> in(plan.channels(), plan.in_samples());
  const std::size_t t_probe = 10;
  for (std::size_t ch = 0; ch < plan.channels(); ++ch) {
    in(ch, t_probe + static_cast<std::size_t>(delays.delay(5, ch))) = 1.0f;
  }
  const Array2D<float> out = dedisperse_reference(plan, in.cview());
  // At the matching trial all channels align: the full channel count.
  EXPECT_EQ(out(5, t_probe), static_cast<float>(plan.channels()));
  // Any other trial catches at most a fraction of the channels there.
  for (std::size_t dm = 0; dm < 8; ++dm) {
    if (dm == 5) continue;
    EXPECT_LT(out(dm, t_probe), static_cast<float>(plan.channels()));
  }
}

TEST(Reference, LinearInInput) {
  const Plan plan = mini_plan(4, 32);
  Array2D<float> a = random_input(plan, 1);
  Array2D<float> b = random_input(plan, 2);
  Array2D<float> sum(plan.channels(), plan.in_samples());
  for (std::size_t ch = 0; ch < sum.rows(); ++ch)
    for (std::size_t t = 0; t < sum.cols(); ++t)
      sum(ch, t) = a(ch, t) + b(ch, t);
  const Array2D<float> out_a = dedisperse_reference(plan, a.cview());
  const Array2D<float> out_b = dedisperse_reference(plan, b.cview());
  const Array2D<float> out_sum = dedisperse_reference(plan, sum.cview());
  for (std::size_t dm = 0; dm < 4; ++dm)
    for (std::size_t t = 0; t < 32; ++t)
      EXPECT_NEAR(out_sum(dm, t), out_a(dm, t) + out_b(dm, t), 1e-4f);
}

TEST(Reference, RejectsWrongShapes) {
  const Plan plan = mini_plan(4, 32);
  Array2D<float> bad_in(plan.channels() + 1, plan.in_samples());
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_THROW(dedisperse_reference(plan, bad_in.cview(), out.view()),
               invalid_argument);
  Array2D<float> short_in(plan.channels(), plan.out_samples());
  EXPECT_THROW(dedisperse_reference(plan, short_in.cview(), out.view()),
               invalid_argument);
  Array2D<float> in = random_input(plan);
  Array2D<float> bad_out(plan.dms() + 1, plan.out_samples());
  EXPECT_THROW(dedisperse_reference(plan, in.cview(), bad_out.view()),
               invalid_argument);
}

// ----------------------------------------------- tiled CPU kernel (sweep) --

/// Property sweep: every meaningful tiling must reproduce the reference
/// bit-for-bit, staged or not, threaded or inline.
class CpuKernelEquivalence
    : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(CpuKernelEquivalence, MatchesReferenceStagedInline) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  CpuKernelOptions opt;
  opt.stage_rows = true;
  opt.threads = 1;
  const Array2D<float> got = dedisperse_cpu(plan, GetParam(), in.cview(), opt);
  expect_same_matrix(expected, got);
}

TEST_P(CpuKernelEquivalence, MatchesReferenceUnstagedThreaded) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  CpuKernelOptions opt;
  opt.stage_rows = false;
  opt.threads = 3;
  const Array2D<float> got = dedisperse_cpu(plan, GetParam(), in.cview(), opt);
  expect_same_matrix(expected, got);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, CpuKernelEquivalence,
    ::testing::Values(
        KernelConfig{1, 1, 1, 1}, KernelConfig{2, 1, 1, 1},
        KernelConfig{1, 2, 1, 1}, KernelConfig{4, 2, 2, 2},
        KernelConfig{8, 1, 8, 1}, KernelConfig{2, 4, 4, 2},
        KernelConfig{16, 2, 2, 2}, KernelConfig{4, 8, 1, 1},
        KernelConfig{8, 2, 2, 4}, KernelConfig{1, 8, 1, 1},
        KernelConfig{32, 1, 2, 8}, KernelConfig{16, 4, 4, 2},
        KernelConfig{64, 1, 1, 1}, KernelConfig{2, 2, 16, 2}),
    [](const ::testing::TestParamInfo<KernelConfig>& pinfo) {
      const KernelConfig& c = pinfo.param;
      return "wt" + std::to_string(c.wi_time) + "_wd" +
             std::to_string(c.wi_dm) + "_et" + std::to_string(c.elem_time) +
             "_ed" + std::to_string(c.elem_dm);
    });

TEST(CpuKernel, GlobalPoolPathMatchesReference) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  const Array2D<float> got =
      dedisperse_cpu(plan, KernelConfig{8, 2, 4, 2}, in.cview());
  expect_same_matrix(expected, got);
}

TEST(CpuKernel, InvalidConfigThrows) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_THROW(
      dedisperse_cpu(plan, KernelConfig{5, 1, 1, 1}, in.cview(), out.view()),
      config_error);
}

TEST(CpuKernel, WorksOnZeroDmObservation) {
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  const Array2D<float> got =
      dedisperse_cpu(plan, KernelConfig{8, 4, 2, 2}, in.cview());
  expect_same_matrix(expected, got);
}

// ------------------------------------------- SIMD / channel-blocked engine --

TEST(CpuKernel, ChannelBlockAndUnrollAreBitExact) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  for (std::size_t cb : {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 100ul}) {
    for (std::size_t unroll : {1ul, 2ul, 4ul}) {
      KernelConfig cfg{4, 2, 2, 2};
      cfg.channel_block = cb;
      cfg.unroll = unroll;
      for (bool staged : {true, false}) {
        CpuKernelOptions opt;
        opt.stage_rows = staged;
        opt.threads = 1;
        const Array2D<float> got =
            dedisperse_cpu(plan, cfg, in.cview(), opt);
        SCOPED_TRACE(cfg.to_string() + (staged ? " staged" : " unstaged"));
        expect_same_matrix(expected, got);
      }
    }
  }
}

TEST(CpuKernel, ScalarEngineMatchesSimdEngine) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  KernelConfig cfg{8, 2, 4, 2};
  cfg.channel_block = 3;
  CpuKernelOptions scalar_opt;
  scalar_opt.vectorize = false;
  scalar_opt.threads = 1;
  CpuKernelOptions simd_opt;
  simd_opt.vectorize = true;
  simd_opt.threads = 1;
  expect_same_matrix(dedisperse_cpu(plan, cfg, in.cview(), scalar_opt),
                     dedisperse_cpu(plan, cfg, in.cview(), simd_opt));
}

/// Seeded randomized property sweep: random plan shapes, random extended
/// configs (channel_block/unroll included), staged/unstaged, scalar/SIMD,
/// inline and threaded — every combination must reproduce the reference
/// bit-for-bit.
TEST(CpuKernel, RandomizedExtendedConfigsMatchReference) {
  std::mt19937 gen(20260730);
  auto pick = [&](const std::vector<std::size_t>& v) {
    return v[gen() % v.size()];
  };
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t channels = pick({4, 8});
    const std::size_t dms = pick({4, 8, 16});
    const std::size_t out = pick({32, 48, 64});
    const Plan plan = dedisp::Plan::with_output_samples(
        mini_obs(channels), dms, out);
    const Array2D<float> in = random_input(plan, 1000 + iter);
    const Array2D<float> expected = dedisperse_reference(plan, in.cview());

    // Random dividing tile: factor dms and out into (wi, elem) pairs.
    auto split = [&](std::size_t total) {
      std::vector<std::size_t> divisors;
      for (std::size_t d = 1; d <= total; ++d) {
        if (total % d == 0) divisors.push_back(d);
      }
      const std::size_t tile = pick(divisors);
      std::vector<std::size_t> sub;
      for (std::size_t d = 1; d <= tile; ++d) {
        if (tile % d == 0) sub.push_back(d);
      }
      const std::size_t wi = pick(sub);
      return std::pair<std::size_t, std::size_t>{wi, tile / wi};
    };
    const auto [wt, et] = split(out);
    const auto [wd, ed] = split(dms);
    KernelConfig cfg{wt, wd, et, ed};
    cfg.channel_block = pick({0, 1, 2, 3, 5, channels, 64});
    cfg.unroll = pick({1, 2, 4, 8});  // the validated set

    CpuKernelOptions opt;
    opt.stage_rows = (gen() % 2) == 0;
    opt.vectorize = (gen() % 4) != 0;  // bias toward the SIMD engine
    opt.threads = pick({1, 2, 3});
    SCOPED_TRACE("iter " + std::to_string(iter) + " ch=" +
                 std::to_string(channels) + " dms=" + std::to_string(dms) +
                 " out=" + std::to_string(out) + " cfg=" + cfg.to_string() +
                 (opt.stage_rows ? " staged" : " unstaged") +
                 (opt.vectorize ? " simd" : " scalar") + " threads=" +
                 std::to_string(opt.threads));
    const Array2D<float> got = dedisperse_cpu(plan, cfg, in.cview(), opt);
    expect_same_matrix(expected, got);
  }
}

TEST(CpuKernel, StagingSpanEdgeCases) {
  // Steep delay tables (large dm_step) make the staged span of the deepest
  // DM tile reach the very end of the input matrix; the staged and
  // unstaged paths must agree with the reference at that edge.
  for (double dm_step : {2.0, 4.0, 8.0}) {
    const sky::Observation obs = mini_obs(8, dm_step);
    const Plan plan = Plan::with_output_samples(obs, 16, 32);
    const Array2D<float> in = random_input(plan);
    const Array2D<float> expected = dedisperse_reference(plan, in.cview());
    // tile_dm = dms: one tile spans the full delay spread per channel.
    KernelConfig cfg{4, 4, 8, 4};
    cfg.channel_block = 2;
    for (bool staged : {true, false}) {
      CpuKernelOptions opt;
      opt.stage_rows = staged;
      opt.threads = 1;
      SCOPED_TRACE("dm_step=" + std::to_string(dm_step) +
                   (staged ? " staged" : " unstaged"));
      const Array2D<float> got = dedisperse_cpu(plan, cfg, in.cview(), opt);
      expect_same_matrix(expected, got);
    }
  }
}

// ----------------------------------------------------------- CPU baseline --

TEST(CpuBaseline, MatchesReference) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  const Array2D<float> got = dedisperse_cpu_baseline(plan, in.cview());
  expect_same_matrix(expected, got);
}

TEST(CpuBaseline, HandlesNonMultipleOfEightTails) {
  // 37 output samples: 4 full 8-lane chunks + a 5-sample scalar tail.
  const Plan plan = Plan::with_output_samples(mini_obs(), 4, 37);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisperse_reference(plan, in.cview());
  CpuBaselineOptions opt;
  opt.threads = 1;
  const Array2D<float> got = dedisperse_cpu_baseline(plan, in.cview(), opt);
  expect_same_matrix(expected, got);
}

TEST(CpuBaseline, TimeBlockSizeDoesNotChangeResults) {
  const Plan plan = mini_plan(4, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> first(plan.dms(), plan.out_samples());
  CpuBaselineOptions opt;
  opt.time_block = 64;
  dedisperse_cpu_baseline(plan, in.cview(), first.view(), opt);
  for (std::size_t block : {1ul, 7ul, 8ul, 16ul, 33ul}) {
    opt.time_block = block;
    Array2D<float> again(plan.dms(), plan.out_samples());
    dedisperse_cpu_baseline(plan, in.cview(), again.view(), opt);
    expect_same_matrix(first, again);
  }
}

TEST(CpuBaseline, RejectsZeroBlockAndBadShapes) {
  const Plan plan = mini_plan(4, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  CpuBaselineOptions opt;
  opt.time_block = 0;
  EXPECT_THROW(dedisperse_cpu_baseline(plan, in.cview(), out.view(), opt),
               invalid_argument);
}

// -------------------------------------------------- arithmetic intensity --

TEST(Intensity, EquationTwoBound) {
  EXPECT_DOUBLE_EQ(ai_no_reuse_eq2(0.0), 0.25);
  EXPECT_LT(ai_no_reuse_eq2(0.5), 0.25);
  EXPECT_THROW(ai_no_reuse_eq2(-1.0), invalid_argument);
}

TEST(Intensity, EquationThreeBound) {
  // 1 / (4·(1/d + 1/s + 1/c)), hand-checked for d=s=c=12: 1/(4·(3/12)) = 1.
  EXPECT_DOUBLE_EQ(ai_upper_bound_eq3(12, 12, 12), 1.0);
  // Grows without bound as all dimensions grow (the §III-A observation).
  EXPECT_GT(ai_upper_bound_eq3(1e6, 1e6, 1e6), 1e4);
  EXPECT_THROW(ai_upper_bound_eq3(0, 1, 1), invalid_argument);
}

TEST(Intensity, NaiveAiIsBelowEquationTwoBound) {
  const Plan plan = mini_plan(8, 64);
  const IntensityReport r = analyze_intensity(plan, KernelConfig{8, 2, 4, 2});
  EXPECT_LT(r.ai_naive, 0.25);
  EXPECT_GT(r.ai_naive, 0.0);
}

TEST(Intensity, TiledAiNeverBelowNaive) {
  const Plan plan = mini_plan(8, 64);
  for (const auto& cfg :
       {KernelConfig{8, 1, 4, 1}, KernelConfig{8, 2, 4, 2},
        KernelConfig{8, 4, 4, 2}, KernelConfig{4, 8, 2, 1}}) {
    const IntensityReport r = analyze_intensity(plan, cfg);
    EXPECT_GE(r.ai_tiled, r.ai_naive) << cfg.to_string();
    EXPECT_GE(r.reuse_factor, 1.0) << cfg.to_string();
  }
}

TEST(Intensity, ZeroDmReuseEqualsTileDm) {
  // With all delays zero every trial of a tile reads the same row: reuse
  // factor is exactly tile_dm.
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  const KernelConfig cfg{8, 4, 4, 2};  // tile_dm = 8
  const IntensityReport r = analyze_intensity(plan, cfg);
  EXPECT_DOUBLE_EQ(r.reuse_factor, 8.0);
}

TEST(Intensity, RealDelaysGiveLessReuseThanZeroDm) {
  const KernelConfig cfg{8, 4, 4, 2};
  const IntensityReport real =
      analyze_intensity(mini_plan(8, 64), cfg);
  const Plan zero =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  const IntensityReport perfect = analyze_intensity(zero, cfg);
  EXPECT_LT(real.reuse_factor, perfect.reuse_factor);
}

TEST(Intensity, TiledAiStaysFarFromEquationThreeInRealisticSetups) {
  // §III-A's conclusion: the Eq. 3 bound is not approachable with real
  // delay geometry. Check on a LOFAR-like low band where delays diverge.
  const sky::Observation low("low", 1000.0, 8, 100.0, 1.0, 0.0, 2.0);
  const Plan plan = Plan::with_output_samples(low, 8, 128);
  const IntensityReport r = analyze_intensity(plan, KernelConfig{8, 8, 2, 1});
  const double eq3 = ai_upper_bound_eq3(8, 128, 8);
  EXPECT_LT(r.ai_tiled, 0.5 * eq3);
}

}  // namespace
}  // namespace ddmc::dedisp
