// Broad property sweeps over the analytic model: for every device and every
// enumerated configuration on real observational setups, the performance
// estimates must satisfy the structural invariants the figure benches rely
// on. These tests pin the model against regressions while calibration
// constants evolve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "codegen/opencl_codegen.hpp"
#include "common/expect.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "test_util.hpp"
#include "tuner/search_space.hpp"
#include "tuner/tuner.hpp"

namespace ddmc::ocl {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;

/// Small but *real* instances: full Apertif/LOFAR channelization, 16 trials.
class ModelInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  DeviceModel device() const { return device_by_name(GetParam()); }
};

TEST_P(ModelInvariants, EveryValidConfigProducesConsistentEstimates) {
  const DeviceModel dev = device();
  const PlanAnalysis analysis(Plan(sky::apertif(), 16));
  const auto configs = tuner::enumerate_configs(dev, analysis.plan());
  ASSERT_FALSE(configs.empty());
  std::size_t valid = 0;
  for (const KernelConfig& cfg : configs) {
    PerfEstimate p;
    try {
      p = estimate_performance(dev, analysis, cfg);
    } catch (const config_error&) {
      continue;  // deeper constraints (local memory, residency)
    }
    ++valid;
    // Time decomposition.
    EXPECT_GT(p.seconds, 0.0) << cfg.to_string();
    EXPECT_GE(p.seconds + 1e-15,
              std::max({p.mem_seconds, p.instr_seconds, p.lds_seconds}))
        << cfg.to_string();
    EXPECT_EQ(p.memory_bound,
              p.mem_seconds >= std::max(p.instr_seconds, p.lds_seconds))
        << cfg.to_string();
    // Throughput consistency and physical ceilings (no FMA for this
    // kernel ⇒ < half the headline peak).
    EXPECT_NEAR(p.gflops, analysis.plan().total_flop() / p.seconds * 1e-9,
                1e-6 * p.gflops)
        << cfg.to_string();
    EXPECT_LT(p.gflops, dev.peak_gflops / 2.0) << cfg.to_string();
    // Occupancy and hiding stay in range.
    EXPECT_TRUE(p.occupancy.valid()) << cfg.to_string();
    EXPECT_LE(p.occupancy.fraction, 1.0) << cfg.to_string();
    EXPECT_GT(p.hiding_efficiency, 0.0) << cfg.to_string();
    EXPECT_LE(p.hiding_efficiency, 1.0) << cfg.to_string();
    EXPECT_LE(p.busy_fraction, 1.0) << cfg.to_string();
    // Traffic accounting.
    EXPECT_NEAR(p.traffic.total_bytes,
                p.traffic.input_bytes + p.traffic.output_bytes +
                    p.traffic.delay_bytes,
                1.0)
        << cfg.to_string();
    EXPECT_GT(p.traffic.reuse_factor, 0.0) << cfg.to_string();
    // Determinism.
    const PerfEstimate again = estimate_performance(dev, analysis, cfg);
    EXPECT_EQ(p.seconds, again.seconds) << cfg.to_string();
  }
  EXPECT_GT(valid, 0u) << dev.name;
}

TEST_P(ModelInvariants, ZeroDmNeverSlowerPerConfig) {
  const DeviceModel dev = device();
  const PlanAnalysis real(Plan(sky::lofar(), 16));
  const PlanAnalysis zero(Plan(sky::lofar().zero_dm_variant(), 16));
  const auto configs = tuner::enumerate_configs(dev, real.plan());
  std::size_t compared = 0;
  for (const KernelConfig& cfg : configs) {
    double g_real = 0.0;
    double g_zero = 0.0;
    try {
      g_real = estimate_performance(dev, real, cfg).gflops;
      g_zero = estimate_performance(dev, zero, cfg).gflops;
    } catch (const config_error&) {
      continue;  // e.g. the real spans overflow local memory
    }
    ++compared;
    EXPECT_GE(g_zero, g_real * 0.999) << cfg.to_string();
  }
  EXPECT_GT(compared, 0u) << dev.name;
}

TEST_P(ModelInvariants, TunedOptimumDominatesAndIsStable) {
  const DeviceModel dev = device();
  const PlanAnalysis analysis(Plan(sky::apertif(), 32));
  const tuner::TuningResult first = tuner::tune(dev, analysis);
  const tuner::TuningResult second = tuner::tune(dev, analysis);
  EXPECT_EQ(first.best.config, second.best.config);
  EXPECT_EQ(first.best.perf.seconds, second.best.perf.seconds);
  EXPECT_GE(first.best.perf.gflops, first.stats.mean);
  EXPECT_DOUBLE_EQ(first.stats.max, first.best.perf.gflops);
}

TEST_P(ModelInvariants, GeneratedKernelsForTheWholeSpaceAreWellFormed) {
  const DeviceModel dev = device();
  const Plan plan = ddmc::testing::mini_plan(8, 64);
  const auto configs = tuner::enumerate_configs(dev, plan);
  for (const KernelConfig& cfg : configs) {
    codegen::CodegenOptions opt;
    opt.staged = cfg.tile_dm() > 1;
    const std::string src = codegen::generate_opencl_kernel(plan, cfg, opt);
    long depth = 0;
    for (char ch : src) {
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
      ASSERT_GE(depth, 0) << cfg.to_string();
    }
    EXPECT_EQ(depth, 0) << cfg.to_string();
    EXPECT_NE(src.find(codegen::kernel_name(cfg)), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, ModelInvariants,
                         ::testing::Values("HD7970", "XeonPhi", "GTX680",
                                           "K20", "Titan"),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                           return pi.param;
                         });

// ------------------------------------------------ cross-device properties --

TEST(ModelCrossDevice, MemoryBoundOnLofarForEveryAccelerator) {
  // §V's discussion: with little reuse the discriminant is bandwidth.
  const PlanAnalysis analysis(Plan(sky::lofar(), 64));
  for (const DeviceModel& dev : table1_devices()) {
    const tuner::TuningResult r = tuner::tune(dev, analysis);
    EXPECT_TRUE(r.best.perf.memory_bound) << dev.name;
  }
}

TEST(ModelCrossDevice, LofarRanksByBandwidthAmongGpus) {
  const PlanAnalysis analysis(Plan(sky::lofar(), 256));
  const double titan =
      tuner::tune(nvidia_gtx_titan(), analysis).best.perf.gflops;
  const double k20 = tuner::tune(nvidia_k20(), analysis).best.perf.gflops;
  const double gtx680 =
      tuner::tune(nvidia_gtx680(), analysis).best.perf.gflops;
  EXPECT_GT(titan, k20);   // 288 vs 208 GB/s
  EXPECT_GT(k20, gtx680);  // 208 vs 192 GB/s
}

TEST(ModelCrossDevice, ApertifOrderingMatchesThePaper) {
  const PlanAnalysis analysis(Plan(sky::apertif(), 256));
  const double hd = tuner::tune(amd_hd7970(), analysis).best.perf.gflops;
  const double phi = tuner::tune(intel_xeon_phi(), analysis).best.perf.gflops;
  double nvidia_best = 0.0;
  for (const auto& dev :
       {nvidia_gtx680(), nvidia_k20(), nvidia_gtx_titan()}) {
    nvidia_best =
        std::max(nvidia_best, tuner::tune(dev, analysis).best.perf.gflops);
  }
  EXPECT_GT(hd, nvidia_best);      // HD7970 on top…
  EXPECT_GT(nvidia_best, phi);     // …Phi last,
  EXPECT_GT(hd, 5.0 * phi);        // by a wide margin (paper: ≈7.5×)
  EXPECT_GT(hd, 1.5 * nvidia_best);  // ≈2× the NVIDIA cluster
}

TEST(ModelCrossDevice, EveryGpuIsRealTimeOnApertifThePhiIsNotAt4096) {
  const std::size_t dms = 4096;
  const PlanAnalysis analysis(Plan(sky::apertif(), dms));
  const double threshold = real_time_gflops(sky::apertif(), dms);
  for (const DeviceModel& dev : table1_devices()) {
    if (!fits_in_memory(dev, analysis.plan())) continue;
    const double g = tuner::tune(dev, analysis).best.perf.gflops;
    if (dev.name == "XeonPhi") {
      EXPECT_LT(g, threshold) << "the paper's only real-time failure";
    } else {
      EXPECT_GT(g, threshold) << dev.name;
    }
  }
}

TEST(ModelCrossDevice, CpuBaselineScalesLinearlyInDms) {
  const DeviceModel cpu = intel_xeon_e5_2620();
  const double g64 = estimate_cpu_baseline(cpu, Plan(sky::apertif(), 64)).gflops;
  const double g512 =
      estimate_cpu_baseline(cpu, Plan(sky::apertif(), 512)).gflops;
  EXPECT_NEAR(g64, g512, 0.15 * g512);  // throughput ≈ flat ⇒ time ∝ d
}

TEST(ModelCrossDevice, LaneWastePenalizesPartialWavefronts) {
  // A 96-item group on a 64-lane wavefront device wastes a third of the
  // issue slots; the same shape on a 32-lane device wastes none.
  const PlanAnalysis analysis(Plan(sky::apertif(), 96));  // 6 divides 96
  const KernelConfig partial{16, 6, 5, 1};  // wg = 96
  ASSERT_EQ(partial.work_group_size(), 96u);
  const PerfEstimate amd =
      estimate_performance(amd_hd7970(), analysis, partial);
  const KernelConfig full{16, 4, 5, 1};  // wg = 64
  const PerfEstimate amd_full =
      estimate_performance(amd_hd7970(), analysis, full);
  // Identical per-flop work, but the partial wavefront issues ~1.33× the
  // instructions per accumulate.
  EXPECT_GT(amd.instr_seconds / analysis.plan().total_flop(),
            1.2 * amd_full.instr_seconds / analysis.plan().total_flop());
}

}  // namespace
}  // namespace ddmc::ocl
