// Tests for the portable SIMD layer: backend sanity, per-lane operation
// semantics, and bitwise equivalence of the vectorized accumulate with the
// scalar loop across widths, tails and unroll factors.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "common/aligned.hpp"
#include "common/simd.hpp"

namespace ddmc::simd {
namespace {

TEST(Simd, BackendIsSane) {
  EXPECT_GT(kFloatLanes, 0u);
  EXPECT_TRUE(kFloatLanes == 1 || kFloatLanes == 4 || kFloatLanes == 8);
  EXPECT_NE(backend_name(), nullptr);
  EXPECT_GT(std::strlen(backend_name()), 0u);
#if defined(DDMC_FORCE_SCALAR)
  EXPECT_STREQ(backend_name(), "scalar");
  EXPECT_EQ(kFloatLanes, 1u);
#endif
}

TEST(Simd, LoadStoreRoundTrip) {
  std::vector<float, AlignedAllocator<float>> src(kFloatLanes);
  std::vector<float, AlignedAllocator<float>> dst(kFloatLanes, -1.0f);
  for (std::size_t i = 0; i < kFloatLanes; ++i) {
    src[i] = static_cast<float>(i) + 0.25f;
  }
  vstore_aligned(dst.data(), vload_aligned(src.data()));
  for (std::size_t i = 0; i < kFloatLanes; ++i) EXPECT_EQ(dst[i], src[i]);

  // Unaligned variants must work at any offset.
  std::vector<float> buf(3 * kFloatLanes + 1, 0.0f);
  vstore(buf.data() + 1, vload(src.data()));
  for (std::size_t i = 0; i < kFloatLanes; ++i) EXPECT_EQ(buf[i + 1], src[i]);
}

TEST(Simd, BroadcastAndZero) {
  std::vector<float> out(kFloatLanes, -1.0f);
  vstore(out.data(), vbroadcast(3.5f));
  for (float v : out) EXPECT_EQ(v, 3.5f);
  vstore(out.data(), vzero());
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Simd, LaneWiseAddMulSemantics) {
  std::vector<float> a(kFloatLanes), b(kFloatLanes), out(kFloatLanes);
  for (std::size_t i = 0; i < kFloatLanes; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = 0.5f * static_cast<float>(i) - 2.0f;
  }
  vstore(out.data(), vadd(vload(a.data()), vload(b.data())));
  for (std::size_t i = 0; i < kFloatLanes; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
  vstore(out.data(), vmul(vload(a.data()), vload(b.data())));
  for (std::size_t i = 0; i < kFloatLanes; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
}

TEST(Simd, FmaIsCloseToMulAdd) {
  // fma may contract (one rounding), so compare with a small tolerance
  // rather than bitwise.
  std::vector<float> a(kFloatLanes), b(kFloatLanes), c(kFloatLanes);
  std::vector<float> out(kFloatLanes);
  for (std::size_t i = 0; i < kFloatLanes; ++i) {
    a[i] = 1.1f * static_cast<float>(i + 1);
    b[i] = -0.7f * static_cast<float>(i + 2);
    c[i] = 0.3f;
  }
  vstore(out.data(),
         vfma(vload(a.data()), vload(b.data()), vload(c.data())));
  for (std::size_t i = 0; i < kFloatLanes; ++i) {
    EXPECT_NEAR(out[i], a[i] * b[i] + c[i], 1e-4f);
  }
}

TEST(Simd, AccumulateSpanMatchesScalarBitwise) {
  std::mt19937 gen(20260730);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  // Cover empty spans, sub-lane tails, exact multiples and long spans, at
  // unaligned source offsets, for every unroll hint. Unroll 3 has no
  // compiled instantiation — KernelConfig::validate rejects it upstream —
  // but the low-level dispatcher still maps it to the plain loop for
  // direct callers, and that fallback must stay bitwise-correct.
  for (std::size_t n : {0ul, 1ul, 3ul, 7ul, 8ul, 15ul, 16ul, 31ul, 64ul,
                        97ul, 200ul}) {
    for (std::size_t unroll : {1ul, 2ul, 3ul, 4ul, 8ul}) {
      for (std::size_t offset : {0ul, 1ul}) {
        std::vector<float> src(n + offset + 1);
        std::vector<float> acc_simd(n), acc_scalar(n);
        for (auto& v : src) v = dist(gen);
        for (std::size_t i = 0; i < n; ++i) {
          acc_simd[i] = acc_scalar[i] = dist(gen);
        }
        accumulate_span(acc_simd.data(), src.data() + offset, n, unroll);
        for (std::size_t i = 0; i < n; ++i) {
          acc_scalar[i] += src[offset + i];
        }
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(acc_simd[i], acc_scalar[i])
              << "n=" << n << " unroll=" << unroll << " offset=" << offset
              << " i=" << i;
        }
      }
    }
  }
}

TEST(Simd, SupportedUnrollSetIsExactlyTheCompiledLadder) {
  for (std::size_t u : {1ul, 2ul, 4ul, 8ul}) EXPECT_TRUE(is_supported_unroll(u));
  for (std::size_t u : {0ul, 3ul, 5ul, 6ul, 7ul, 9ul, 16ul}) {
    EXPECT_FALSE(is_supported_unroll(u)) << u;
  }
}

TEST(Simd, LoadU8WidensExactly) {
  // Every uint8 code widens to the exact float of its integer value, at any
  // source offset — the widening load must read exactly kFloatLanes bytes.
  std::vector<std::uint8_t> src(4 * kFloatLanes + 1);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>((i * 37 + 11) % 256);
  }
  std::vector<float> out(kFloatLanes, -1.0f);
  for (std::size_t offset : {0ul, 1ul, 2ul, 3ul}) {
    vstore(out.data(), vload_u8(src.data() + offset));
    for (std::size_t i = 0; i < kFloatLanes; ++i) {
      EXPECT_EQ(out[i], static_cast<float>(src[offset + i]))
          << "offset=" << offset << " i=" << i;
    }
  }
  // Extremes widen exactly too.
  std::vector<std::uint8_t> edge(kFloatLanes, 255);
  vstore(out.data(), vload_u8(edge.data()));
  for (std::size_t i = 0; i < kFloatLanes; ++i) EXPECT_EQ(out[i], 255.0f);
}

TEST(Simd, AccumulateSpanU8MatchesScalarBitwise) {
  std::mt19937 gen(20260808);
  std::uniform_int_distribution<int> dist(0, 255);
  std::uniform_real_distribution<float> fdist(-1.0f, 1.0f);
  for (std::size_t n : {0ul, 1ul, 3ul, 7ul, 8ul, 15ul, 16ul, 31ul, 64ul,
                        97ul, 200ul}) {
    for (std::size_t unroll : {1ul, 2ul, 3ul, 4ul, 8ul}) {
      for (std::size_t offset : {0ul, 1ul}) {
        std::vector<std::uint8_t> src(n + offset + 1);
        std::vector<float> acc_simd(n), acc_scalar(n);
        for (auto& v : src) v = static_cast<std::uint8_t>(dist(gen));
        for (std::size_t i = 0; i < n; ++i) {
          acc_simd[i] = acc_scalar[i] = fdist(gen);
        }
        accumulate_span_u8(acc_simd.data(), src.data() + offset, n, unroll);
        for (std::size_t i = 0; i < n; ++i) {
          acc_scalar[i] += static_cast<float>(src[offset + i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(acc_simd[i], acc_scalar[i])
              << "n=" << n << " unroll=" << unroll << " offset=" << offset
              << " i=" << i;
        }
      }
    }
  }
}

TEST(Simd, AccumulateSpanU8IsAdditiveOverCalls) {
  // Channel-blocking identity for the u8 path: two blocked passes with
  // different unroll hints equal one full pass bitwise.
  const std::size_t n = 70;
  std::vector<std::uint8_t> a(n), b(n);
  std::vector<float> acc_once(n, 0.0f), acc_split(n, 0.0f);
  std::mt19937 gen(9);
  std::uniform_int_distribution<int> dist(0, 255);
  for (auto& v : a) v = static_cast<std::uint8_t>(dist(gen));
  for (auto& v : b) v = static_cast<std::uint8_t>(dist(gen));
  accumulate_span_u8(acc_once.data(), a.data(), n);
  accumulate_span_u8(acc_once.data(), b.data(), n);
  accumulate_span_u8(acc_split.data(), a.data(), n, 4);
  accumulate_span_u8(acc_split.data(), b.data(), n, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(acc_once[i], acc_split[i]);
}

TEST(Simd, AccumulateSpanIsAdditiveOverCalls) {
  // Two blocked passes equal one full pass — the channel-blocking identity
  // the tiled engine relies on.
  const std::size_t n = 70;
  std::vector<float> a(n), b(n), acc_once(n, 0.0f), acc_split(n, 0.0f);
  std::mt19937 gen(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : a) v = dist(gen);
  for (auto& v : b) v = dist(gen);
  accumulate_span(acc_once.data(), a.data(), n);
  accumulate_span(acc_once.data(), b.data(), n);
  accumulate_span(acc_split.data(), a.data(), n, 4);
  accumulate_span(acc_split.data(), b.data(), n, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(acc_once[i], acc_split[i]);
}

}  // namespace
}  // namespace ddmc::simd
