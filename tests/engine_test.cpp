// Tests for the unified engine abstraction (src/engine/): registry
// semantics (unknown ids name the alternatives, double registration is
// rejected), the capability matrix, and the properties the capabilities
// promise — bitwise engines match the reference on randomized plans,
// the subband engine stays within its smearing bound, every
// streaming-capable engine streams bitwise-identically to its batch run,
// every sharding-capable engine shards bitwise-identically, and
// tune_guided searches *across* engines with the engine id persisted in
// the tuning cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/simd.hpp"
#include "dedisp/fdmt.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/subband.hpp"
#include "engine/registry.hpp"
#include "pipeline/dedisperser.hpp"
#include "pipeline/sharding.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "test_util.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::engine {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::expect_same_matrix;
using testing::mini_obs;

const char* const kBuiltins[] = {"cpu_baseline", "cpu_tiled",
                                 "cpu_tiled_u8", "fdmt", "ocl_sim",
                                 "reference", "subband"};

/// Per-engine tolerance of the differential harness: 0 means "bitwise".
/// Engines with bitwise_exact = false document an error bound instead —
/// the quantization bound for cpu_tiled_u8, the [-1, 1]-input smearing
/// bound for subband, the smearing + FFT-roundoff bound for fdmt — and
/// the harness enforces that bound.
double equivalence_bound(const DedispEngine& engine,
                         const dedisp::Plan& plan) {
  if (engine.capabilities().bitwise_exact) return 0.0;
  if (engine.id() == "cpu_tiled_u8") {
    return dedisp::quantization_error_bound(plan, engine.options().quant);
  }
  if (engine.id() == "fdmt") {
    return dedisp::fdmt_error_bound(plan, engine.options().subband,
                                    /*max_abs=*/1.0);
  }
  // subband on inputs in [-1, 1]: a shifted channel read changes that
  // channel's contribution by at most 2.
  return 2.0 * static_cast<double>(plan.channels());
}

/// Input with \p slack columns beyond the plan's minimum, so engines with
/// input_padding read real samples instead of zero padding.
Array2D<float> padded_input(const Plan& plan, std::size_t slack,
                            std::uint64_t seed = 7) {
  Array2D<float> in(plan.channels(), plan.in_samples() + slack);
  Rng rng(seed);
  for (std::size_t ch = 0; ch < in.rows(); ++ch) {
    for (auto& v : in.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  return in;
}

Array2D<float> run_engine(const DedispEngine& engine, const Plan& plan,
                          const KernelConfig& config,
                          ConstView2D<float> in) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  engine.execute(plan, config, in, out.view());
  return out;
}

/// Minimal downstream engine: forwards to the reference implementation but
/// reports its own identity — the registry enforces that an engine's id()
/// matches its registration key (the tuning cache keys on it).
class NamedForwardingEngine final : public DedispEngine {
 public:
  NamedForwardingEngine(std::string id, const EngineOptions& options)
      : id_(std::move(id)), inner_(make_engine("reference", options)) {}
  const std::string& id() const override { return id_; }
  const EngineCapabilities& capabilities() const override {
    return inner_->capabilities();
  }
  const EngineOptions& options() const override { return inner_->options(); }
  std::string variant() const override { return inner_->variant(); }
  std::vector<EngineConfig> config_space(const Plan& plan) const override {
    return inner_->config_space(plan);
  }
  EngineRun execute_impl(const Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    return inner_->execute(plan, config, in, out);
  }

 private:
  std::string id_;
  std::shared_ptr<const DedispEngine> inner_;
};

EngineRegistry::Factory forwarding_factory(const std::string& id) {
  return [id](const EngineOptions& options) {
    return std::make_shared<const NamedForwardingEngine>(id, options);
  };
}

// ---------------------------------------------------------------- registry --

TEST(EngineRegistry, ListsTheBuiltinEnginesSorted) {
  const std::vector<std::string> ids = EngineRegistry::instance().ids();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (const char* id : kBuiltins) {
    EXPECT_TRUE(EngineRegistry::instance().contains(id)) << id;
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST(EngineRegistry, UnknownIdNamesTheAlternatives) {
  try {
    make_engine("gpu_cuda");
    FAIL() << "unknown engine id was accepted";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu_cuda"), std::string::npos);
    for (const char* id : kBuiltins) {
      EXPECT_NE(what.find(id), std::string::npos)
          << "error should list '" << id << "': " << what;
    }
  }
}

TEST(EngineRegistry, RejectsDoubleRegistration) {
  const std::string id = "engine_test_dummy";
  EngineRegistry::instance().add(id, forwarding_factory(id));
  EXPECT_TRUE(EngineRegistry::instance().contains(id));
  try {
    EngineRegistry::instance().add(id, forwarding_factory(id));
    FAIL() << "double registration was accepted";
  } catch (const invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("already registered"),
              std::string::npos);
  }
}

TEST(EngineRegistry, RejectsEmptyIdAndNullFactory) {
  EXPECT_THROW(
      EngineRegistry::instance().add("", forwarding_factory("")),
      invalid_argument);
  EXPECT_THROW(
      EngineRegistry::instance().add("engine_test_null", nullptr),
      invalid_argument);
}

TEST(EngineRegistry, RejectsAFactoryWhoseEngineReportsAnotherId) {
  // The id is the tuning cache's engine axis: a factory that hands back an
  // engine reporting a different id (the wrap-a-builtin-without-overriding
  // mistake) would share the builtin's cached optima. create() enforces
  // the invariant.
  const std::string id = "engine_test_liar";
  EngineRegistry::instance().add(id, [](const EngineOptions& options) {
    return make_engine("reference", options);  // reports id "reference"
  });
  try {
    make_engine(id);
    FAIL() << "id-mismatched engine was accepted";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(id), std::string::npos) << what;
    EXPECT_NE(what.find("reference"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------ capabilities --

TEST(EngineCapabilities, MatrixMatchesTheContract) {
  const auto caps = [](const char* id) {
    return make_engine(id)->capabilities();
  };

  const EngineCapabilities tiled = caps("cpu_tiled");
  EXPECT_TRUE(tiled.supports_sharding);
  EXPECT_TRUE(tiled.supports_streaming);
  EXPECT_TRUE(tiled.bitwise_exact);
  EXPECT_TRUE(tiled.tunable);
  EXPECT_EQ(tiled.input_padding, 0u);
  EXPECT_EQ(tiled.input_element_bytes, sizeof(float));

  // Full capability coverage minus bitwise exactness: the quantized engine
  // shards, streams and tunes like cpu_tiled, declares 1-byte samples and
  // a documented error bound instead of bitwise equality.
  const EngineCapabilities u8 = caps("cpu_tiled_u8");
  EXPECT_TRUE(u8.supports_sharding);
  EXPECT_TRUE(u8.supports_streaming);
  EXPECT_FALSE(u8.bitwise_exact);
  EXPECT_TRUE(u8.tunable);
  EXPECT_EQ(u8.input_padding, 0u);
  EXPECT_EQ(u8.input_element_bytes, 1u);

  const EngineCapabilities baseline = caps("cpu_baseline");
  EXPECT_TRUE(baseline.supports_sharding);
  EXPECT_TRUE(baseline.supports_streaming);
  EXPECT_TRUE(baseline.bitwise_exact);
  EXPECT_FALSE(baseline.tunable);

  const EngineCapabilities reference = caps("reference");
  EXPECT_TRUE(reference.supports_sharding);
  EXPECT_TRUE(reference.supports_streaming);
  EXPECT_TRUE(reference.bitwise_exact);
  EXPECT_FALSE(reference.tunable);

  // The subband engine now declares its own axes (subbands, coarse_step):
  // tunable through the engine-native config space, still not shardable.
  const EngineCapabilities subband = caps("subband");
  EXPECT_FALSE(subband.supports_sharding);
  EXPECT_TRUE(subband.supports_streaming);
  EXPECT_FALSE(subband.bitwise_exact);
  EXPECT_TRUE(subband.tunable);
  EXPECT_EQ(subband.input_padding, 2u);

  // The Fourier-domain engine shards (per-shard phase tables compose from
  // the sliced delay tables) and tunes, but does not stream — a chunk
  // window would need a fresh transform per chunk — and is approximate by
  // construction: float FFT roundoff plus (for coarse splits) the same
  // two-stage smearing as subband, documented via fdmt_error_bound.
  const EngineCapabilities fdmt = caps("fdmt");
  EXPECT_TRUE(fdmt.supports_sharding);
  EXPECT_FALSE(fdmt.supports_streaming);
  EXPECT_FALSE(fdmt.bitwise_exact);
  EXPECT_TRUE(fdmt.tunable);
  EXPECT_EQ(fdmt.input_padding, 0u);
  EXPECT_EQ(fdmt.input_element_bytes, sizeof(float));

  const EngineCapabilities sim = caps("ocl_sim");
  EXPECT_FALSE(sim.supports_sharding);
  EXPECT_FALSE(sim.supports_streaming);
  EXPECT_TRUE(sim.bitwise_exact);
  EXPECT_FALSE(sim.tunable);
  EXPECT_EQ(sim.input_element_bytes, sizeof(float));
}

TEST(EngineCapabilities, VariantsAreSignatureSafe) {
  // The variant feeds the '|'-delimited host signature inside a
  // comma-delimited CSV cell; it must never contain either delimiter.
  for (const char* id : kBuiltins) {
    const std::string variant = make_engine(id)->variant();
    EXPECT_FALSE(variant.empty()) << id;
    EXPECT_EQ(variant.find('|'), std::string::npos) << id;
    EXPECT_EQ(variant.find(','), std::string::npos) << id;
  }
}

TEST(EngineCapabilities, ConfigSpaceMatchesTunability) {
  const Plan plan = testing::mini_plan(8, 64);
  for (const char* id : kBuiltins) {
    const auto engine = make_engine(id);
    const std::vector<EngineConfig> space = engine->config_space(plan);
    ASSERT_FALSE(space.empty()) << id;
    if (engine->capabilities().tunable) {
      EXPECT_GT(space.size(), 1u) << id;
    } else {
      EXPECT_EQ(space.size(), 1u) << id;
    }
    for (const EngineConfig& cfg : space) {
      EXPECT_NO_THROW(engine->validate_config(plan, cfg))
          << id << " " << cfg.to_string();
    }
  }
}

TEST(EngineCapabilities, DeclaredAxesAreEngineNative) {
  const Plan plan = testing::mini_plan(8, 64);

  // The tiled engines declare the six kernel axes.
  const auto tiled_axes = make_engine("cpu_tiled")->config_axes(plan);
  std::set<std::string> tiled_names;
  for (const AxisSpec& axis : tiled_axes) tiled_names.insert(axis.name);
  for (const char* name : kKernelAxisNames) {
    EXPECT_TRUE(tiled_names.count(name)) << name;
  }

  // The subband engine declares its own two knobs — the paper's point that
  // profitable axes are kernel-specific — and none of the tile axes.
  const auto subband_axes = make_engine("subband")->config_axes(plan);
  std::set<std::string> subband_names;
  for (const AxisSpec& axis : subband_axes) {
    subband_names.insert(axis.name);
    EXPECT_GT(axis.values.size(), 0u) << axis.name;
  }
  EXPECT_EQ(subband_names,
            (std::set<std::string>{"subbands", "coarse_step"}));

  // The fdmt engine declares the subband split axes plus its Fourier-bin
  // cache-blocking width — again engine-native, no tile axes.
  const auto fdmt_axes = make_engine("fdmt")->config_axes(plan);
  std::set<std::string> fdmt_names;
  for (const AxisSpec& axis : fdmt_axes) {
    fdmt_names.insert(axis.name);
    EXPECT_GT(axis.values.size(), 0u) << axis.name;
  }
  EXPECT_EQ(fdmt_names,
            (std::set<std::string>{"subbands", "coarse_step", "block"}));

  // The u8 engine rides the kernel axes plus its quantization window.
  const auto u8_axes = make_engine("cpu_tiled_u8")->config_axes(plan);
  std::set<std::string> u8_names;
  for (const AxisSpec& axis : u8_axes) u8_names.insert(axis.name);
  EXPECT_TRUE(u8_names.count("quant_window"));
  EXPECT_TRUE(u8_names.count("wi_time"));

  // Non-tunable engines declare nothing.
  EXPECT_TRUE(make_engine("reference")->config_axes(plan).empty());
  EXPECT_TRUE(make_engine("cpu_baseline")->config_axes(plan).empty());
}

TEST(EngineConfigValidation, UnknownAxisNamesTheEngineAndAxis) {
  const Plan plan = testing::mini_plan(8, 64);
  // A tile axis is meaningless to subband; a split axis is meaningless to
  // cpu_tiled. Both reject with the engine and axis named.
  try {
    make_engine("subband")->validate_config(
        plan, EngineConfig{}.set("wi_time", 4));
    FAIL() << "subband accepted a kernel axis";
  } catch (const config_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("subband"), std::string::npos) << what;
    EXPECT_NE(what.find("wi_time"), std::string::npos) << what;
  }
  EXPECT_THROW(make_engine("cpu_tiled")->validate_config(
                   plan, EngineConfig{}.set("subbands", 4)),
               config_error);
  // The empty config is valid for every engine (its untuned defaults).
  for (const char* id : kBuiltins) {
    EXPECT_NO_THROW(make_engine(id)->validate_config(plan, EngineConfig{}))
        << id;
  }
}

TEST(EngineConfigValidation, SubbandRejectsNonDivisorSplits) {
  const Plan plan = testing::mini_plan(8, 64);
  const auto engine = make_engine("subband");
  try {
    engine->validate_config(plan, EngineConfig{}.set("subbands", 3));
    FAIL() << "subband accepted a non-divisor split";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("subbands"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      engine->validate_config(plan, EngineConfig{}.set("coarse_step", 3)),
      config_error);
  EXPECT_NO_THROW(engine->validate_config(
      plan, EngineConfig{}.set("subbands", 4).set("coarse_step", 2)));
}

TEST(EngineConfigValidation, FdmtRejectsForeignAxesAndBadValues) {
  const Plan plan = testing::mini_plan(8, 64);
  const auto engine = make_engine("fdmt");
  // A tile axis is not part of the fdmt parameterization: the rejection
  // names the engine and the axis, like every other engine's.
  try {
    engine->validate_config(plan, EngineConfig{}.set("wi_time", 4));
    FAIL() << "fdmt accepted a kernel axis";
  } catch (const config_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fdmt"), std::string::npos) << what;
    EXPECT_NE(what.find("wi_time"), std::string::npos) << what;
  }
  EXPECT_THROW(engine->validate_config(plan, EngineConfig{}.set("subbands", 3)),
               config_error);
  EXPECT_THROW(
      engine->validate_config(plan, EngineConfig{}.set("coarse_step", 3)),
      config_error);
  EXPECT_THROW(engine->validate_config(plan, EngineConfig{}.set("block", 0)),
               config_error);
  EXPECT_NO_THROW(engine->validate_config(
      plan,
      EngineConfig{}.set("subbands", 4).set("coarse_step", 2).set("block",
                                                                  512)));
}

// ------------------------------------------------------------- equivalence --

TEST(EngineEquivalence, BitwiseEnginesMatchTheReference) {
  const Plan plan = testing::mini_plan(8, 64);
  const Array2D<float> in = padded_input(plan, 0);
  const Array2D<float> expected =
      run_engine(*make_engine("reference"), plan, KernelConfig{1, 1, 1, 1},
                 in.cview());

  for (const char* id : kBuiltins) {
    const auto engine = make_engine(id);
    if (!engine->capabilities().bitwise_exact) continue;
    for (const KernelConfig& cfg :
         {KernelConfig{1, 1, 1, 1}, KernelConfig{8, 2, 4, 2}}) {
      SCOPED_TRACE(std::string(id) + " " + cfg.to_string());
      expect_same_matrix(expected,
                         run_engine(*engine, plan, cfg, in.cview()));
    }
  }
}

TEST(EngineEquivalence, SubbandStaysWithinItsSmearingBoundOnARamp) {
  // On a linear ramp, shifting a channel read by e samples changes its
  // contribution by exactly e, so |subband − reference| per element is
  // bounded by channels × (delay error + rounding slack). This is the
  // engine-level tolerance contract behind bitwise_exact = false.
  const Plan plan = testing::mini_plan(8, 64);
  Array2D<float> in(plan.channels(), plan.in_samples() + 2);
  for (std::size_t ch = 0; ch < in.rows(); ++ch) {
    for (std::size_t t = 0; t < in.cols(); ++t) {
      in(ch, t) = static_cast<float>(t);
    }
  }
  const Array2D<float> expected = run_engine(
      *make_engine("reference"), plan, KernelConfig{1, 1, 1, 1}, in.cview());

  EngineOptions options;
  options.subband = dedisp::SubbandConfig{4, 4};
  const auto engine = make_engine("subband", options);
  const Array2D<float> got =
      run_engine(*engine, plan, KernelConfig{1, 1, 1, 1}, in.cview());
  const double bound =
      static_cast<double>(plan.channels()) *
      (static_cast<double>(dedisp::subband_max_delay_error(
           plan, dedisp::SubbandConfig{4, 4})) +
       2.0);
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t t = 0; t < plan.out_samples(); ++t) {
      ASSERT_LE(std::abs(got(dm, t) - expected(dm, t)), bound)
          << "dm=" << dm << " t=" << t;
    }
  }
}

TEST(EngineEquivalence, U8StaysWithinItsQuantizationBound) {
  // quantize → dedisperse lands within the documented error bound of the
  // float reference: C channels × half a quantization step (+ accumulation
  // rounding slack), for both the default window and a custom one — and
  // across tiled configs, which must not change the quantized result.
  const Plan plan = testing::mini_plan(8, 64);
  const Array2D<float> in = padded_input(plan, 0);
  const Array2D<float> expected = run_engine(
      *make_engine("reference"), plan, KernelConfig{1, 1, 1, 1}, in.cview());

  for (const float window : {8.0f, 1.0f}) {
    EngineOptions options;
    options.quant = dedisp::QuantizationParams{-window, window};
    const auto engine = make_engine("cpu_tiled_u8", options);
    const double bound =
        dedisp::quantization_error_bound(plan, options.quant);
    SCOPED_TRACE("window=" + std::to_string(window));
    const Array2D<float> first = run_engine(
        *engine, plan, KernelConfig{1, 1, 1, 1}, in.cview());
    for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
      for (std::size_t t = 0; t < plan.out_samples(); ++t) {
        ASSERT_LE(std::abs(first(dm, t) - expected(dm, t)), bound)
            << "dm=" << dm << " t=" << t;
      }
    }
    // The quantized engine is deterministic across its own tile shapes:
    // the codes sum exactly, so every config is bitwise equal to the 1×1
    // run (only vs the float reference is it approximate).
    for (const KernelConfig& cfg :
         {KernelConfig{8, 2, 4, 2}, KernelConfig{16, 1, 2, 4, 4, 2}}) {
      SCOPED_TRACE(cfg.to_string());
      expect_same_matrix(first, run_engine(*engine, plan, cfg, in.cview()));
    }
  }
}

TEST(EngineEquivalence, U8ClampsSamplesOutsideTheQuantizationWindow) {
  // Values beyond [lo, hi] saturate like an ADC instead of wrapping: a
  // narrow window on a bright input still yields outputs within the bound
  // of the *clamped* reference signal.
  const dedisp::QuantizationParams quant{-1.0f, 1.0f};
  EXPECT_EQ(quant.quantize(50.0f), 255u);
  EXPECT_EQ(quant.quantize(-50.0f), 0u);
  EXPECT_EQ(quant.quantize(quant.lo), 0u);
  EXPECT_EQ(quant.quantize(quant.hi), 255u);
  // Round-trip of in-window values stays within half a step.
  for (const float x : {-1.0f, -0.73f, 0.0f, 0.2f, 0.999f}) {
    EXPECT_LE(std::abs(quant.dequantize(quant.quantize(x)) - x),
              0.5f * quant.scale() + 1e-6f)
        << x;
  }
}

TEST(EngineEquivalence, FdmtStaysWithinItsDocumentedBound) {
  // The engine-level tolerance contract behind fdmt's bitwise_exact =
  // false: on inputs in [-1, 1], |fdmt − reference| per element is bounded
  // by fdmt_error_bound for the split the engine actually ran — across
  // exact and smearing splits, and across block widths (a pure scheduling
  // knob that must not change which bound applies).
  const Plan plan = testing::mini_plan(8, 64);
  const Array2D<float> in = padded_input(plan, 0);
  const Array2D<float> expected = run_engine(
      *make_engine("reference"), plan, KernelConfig{1, 1, 1, 1}, in.cview());

  for (const dedisp::SubbandConfig split :
       {dedisp::SubbandConfig{8, 4}, dedisp::SubbandConfig{4, 4},
        dedisp::SubbandConfig{2, 8}}) {
    EngineOptions options;
    options.subband = split;
    const auto engine = make_engine("fdmt", options);
    const double bound = dedisp::fdmt_error_bound(plan, split);
    for (const std::int64_t block : {std::int64_t{16}, std::int64_t{8192}}) {
      SCOPED_TRACE("subbands=" + std::to_string(split.subbands) +
                   " coarse_step=" + std::to_string(split.coarse_step) +
                   " block=" + std::to_string(block));
      Array2D<float> out(plan.dms(), plan.out_samples());
      engine->execute(plan, EngineConfig{}.set("block", block), in.cview(),
                      out.view());
      for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
        for (std::size_t t = 0; t < plan.out_samples(); ++t) {
          ASSERT_LE(std::abs(out(dm, t) - expected(dm, t)), bound)
              << "dm=" << dm << " t=" << t;
        }
      }
    }
  }
}

TEST(EngineEquivalence, FdmtExactSplitIsRoundoffOnly) {
  // With one channel per subband and no delay-table smearing the composed
  // phase shifts equal the exact per-trial delays, so the bound collapses
  // to pure float-FFT roundoff — orders of magnitude below the smearing
  // term 2·channels. This pins the documented error model: the smearing
  // term vanishes exactly when fdmt_max_delay_error is zero.
  const Plan plan = testing::mini_plan(8, 64);
  const dedisp::SubbandConfig exact{plan.channels(), 1};
  EXPECT_EQ(dedisp::fdmt_max_delay_error(plan, exact), 0);
  const double bound = dedisp::fdmt_error_bound(plan, exact);
  EXPECT_LT(bound, 0.1);  // no 2·channels smearing term

  const Array2D<float> in = padded_input(plan, 0);
  const Array2D<float> expected = run_engine(
      *make_engine("reference"), plan, KernelConfig{1, 1, 1, 1}, in.cview());
  EngineOptions options;
  options.subband = exact;
  Array2D<float> out(plan.dms(), plan.out_samples());
  make_engine("fdmt", options)
      ->execute(plan, EngineConfig{}, in.cview(), out.view());
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t t = 0; t < plan.out_samples(); ++t) {
      ASSERT_LE(std::abs(out(dm, t) - expected(dm, t)), bound)
          << "dm=" << dm << " t=" << t;
    }
  }
}

TEST(EngineTraffic, FdmtReportsItsTransformFlopsNotThePlanCredit) {
  // PR-9 convention: EngineRun::flop is the engine's *algorithmic* count.
  // The fdmt transform does asymptotically less arithmetic than the
  // brute-force plan credit, and the wrapper must preserve the engine's
  // own stamp instead of overwriting it with the analytic model (the
  // plan's canonical FLOPs stay the display/GFLOP-s denominator).
  const Plan plan = testing::mini_plan(8, 64);
  const Array2D<float> in = padded_input(plan, 0);
  Array2D<float> out(plan.dms(), plan.out_samples());

  const auto engine = make_engine("fdmt");
  const EngineRun run =
      engine->execute(plan, EngineConfig{}, in.cview(), out.view());
  dedisp::FdmtConfig cfg;
  cfg.split = engine->options().subband;
  EXPECT_DOUBLE_EQ(run.flop, dedisp::fdmt_flop(plan, cfg.adapted_to(plan)));

  // The brute-force engines keep the plan's canonical analytic count.
  const EngineRun tiled = make_engine("cpu_tiled")->execute(
      plan, KernelConfig{1, 1, 1, 1}, in.cview(), out.view());
  EXPECT_DOUBLE_EQ(tiled.flop, 2.0 * static_cast<double>(plan.channels()) *
                                   static_cast<double>(plan.dms()) *
                                   static_cast<double>(plan.out_samples()));
}

TEST(EngineEquivalence, SubbandZeroPadsInputsWithoutPaddingColumns) {
  // An input with exactly in_samples columns is staged into a zero-padded
  // copy: the result must equal running the engine on an input that
  // carries two explicit zero columns.
  const Plan plan = testing::mini_plan(8, 64);
  Array2D<float> with_zeros = padded_input(plan, 2);
  for (std::size_t ch = 0; ch < with_zeros.rows(); ++ch) {
    with_zeros(ch, plan.in_samples()) = 0.0f;
    with_zeros(ch, plan.in_samples() + 1) = 0.0f;
  }
  const ConstView2D<float> bare(with_zeros.cview().data(), plan.channels(),
                                plan.in_samples(), with_zeros.pitch());

  const auto engine = make_engine("subband");
  const KernelConfig cfg{1, 1, 1, 1};
  expect_same_matrix(run_engine(*engine, plan, cfg, with_zeros.cview()),
                     run_engine(*engine, plan, cfg, bare));
}

TEST(EngineEquivalence, SubbandAdaptsItsSplitToThePlanByGcd) {
  // The default split (32 subbands, coarse step 16) does not divide a
  // mini plan; the engine collapses both by gcd instead of rejecting.
  const Plan plan = testing::mini_plan(6, 40);  // 8 channels, 6 trials
  const Array2D<float> in = padded_input(plan, 2);
  EXPECT_NO_THROW(run_engine(*make_engine("subband"), plan,
                             KernelConfig{1, 1, 1, 1}, in.cview()));
}

/// Randomized cross-engine differential sweep: every engine against the
/// reference over random plan shapes.
TEST(EngineEquivalenceSlowTier, RandomizedPlansAndConfigs) {
  Rng rng(20260730);
  for (int round = 0; round < 12; ++round) {
    const std::size_t channels = 4u << rng.next_below(2);       // 4 or 8
    const std::size_t dms = 4u + 2u * rng.next_below(5);        // 4..12
    const std::size_t out = 24u + 8u * rng.next_below(8);       // 24..80
    const Plan plan =
        Plan::with_output_samples(mini_obs(channels), dms, out);
    const Array2D<float> in = padded_input(plan, 2, 1000 + round);
    SCOPED_TRACE("round " + std::to_string(round) + ": ch=" +
                 std::to_string(channels) + " dms=" + std::to_string(dms) +
                 " out=" + std::to_string(out));

    const Array2D<float> expected =
        run_engine(*make_engine("reference"), plan, KernelConfig{1, 1, 1, 1},
                   in.cview());
    for (const char* id : kBuiltins) {
      const auto engine = make_engine(id);
      SCOPED_TRACE(id);
      const Array2D<float> got = run_engine(
          *engine, plan, KernelConfig{1, 1, 1, 1}, in.cview());
      const double bound = equivalence_bound(*engine, plan);
      if (bound == 0.0) {
        expect_same_matrix(expected, got);
      } else {
        for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
          for (std::size_t t = 0; t < plan.out_samples(); ++t) {
            ASSERT_LE(std::abs(got(dm, t) - expected(dm, t)), bound)
                << "dm=" << dm << " t=" << t;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------- streaming --

TEST(EngineStreaming, EveryStreamingEngineMatchesItsBatchRun) {
  // The capability promise: a session fed *exactly the batch input* (no
  // extra padding columns — what any producer mirroring the batch shape
  // sends) emits, concatenated, exactly the batch output of the same
  // engine on that input — bitwise, including the subband engine: full
  // chunks carry its input_padding as real samples via the widened
  // chunker overlap, and the final flush zero-pads exactly like the
  // batch run does. total_out = 80 also covers the boundary where the
  // last nominally-full chunk cannot complete its padded window and is
  // flushed as a full-length partial instead.
  const sky::Observation obs = mini_obs();
  const std::size_t dms = 6;
  for (const std::size_t total_out : {std::size_t{90}, std::size_t{80}}) {
    const Plan batch_plan = Plan::with_output_samples(obs, dms, total_out);
    const Plan chunk_plan = batch_plan.with_chunk(40);

    // kBuiltins, not ids(): other suites register deliberately broken
    // engines under engine_test_* names in the process-global registry.
    for (const std::string id : kBuiltins) {
      const auto engine = make_engine(id);
      if (!engine->capabilities().supports_streaming) continue;
      SCOPED_TRACE(id + " total_out=" + std::to_string(total_out));
      const Array2D<float> in = padded_input(batch_plan, 0);
      const Array2D<float> expected = run_engine(
          *engine, batch_plan, KernelConfig{1, 1, 1, 1}, in.cview());

      Array2D<float> streamed(dms, total_out);
      std::size_t streamed_out = 0;
      stream::StreamingOptions options;
      options.engine = id;
      options.async = false;
      stream::StreamingDedisperser session(
          chunk_plan, KernelConfig{1, 1, 1, 1},
          [&](const stream::StreamChunk& chunk) {
            for (std::size_t dm = 0; dm < dms; ++dm) {
              for (std::size_t t = 0; t < chunk.out_samples; ++t) {
                streamed(dm, chunk.first_sample + t) = chunk.output(dm, t);
              }
            }
            streamed_out += chunk.out_samples;
          },
          options);
      // Feed in awkward granularities to exercise the assembly path.
      std::size_t offset = 0;
      std::size_t step = 17;
      while (offset < in.cols()) {
        const std::size_t n = std::min(step, in.cols() - offset);
        session.push(ConstView2D<float>(&in.cview()(0, offset), in.rows(), n,
                                        in.pitch()));
        offset += n;
        step = step == 17 ? 3 : 17;
      }
      session.close();
      // Regression: the widened overlap must not eat trailing output —
      // the session emits every sample the batch run would.
      EXPECT_EQ(streamed_out, total_out);
      expect_same_matrix(expected, streamed);
    }
  }
}

TEST(EngineStreaming, MultiBeamSubbandSessionHonorsTheConfiguredSplit) {
  // Regression: the multi-beam chunk path used to rebuild its per-beam
  // engines from the cpu knobs alone, silently dropping
  // StreamingOptions::subband and computing with the default split.
  const sky::Observation obs = mini_obs();
  const std::size_t dms = 8;
  const std::size_t total_out = 80;
  const Plan batch_plan = Plan::with_output_samples(obs, dms, total_out);
  const Plan chunk_plan = batch_plan.with_chunk(32);
  const dedisp::SubbandConfig split{2, 2};  // != gcd-adapted default {8, 8}

  EngineOptions engine_options;
  engine_options.subband = split;
  const Array2D<float> in = padded_input(batch_plan, 0);
  const Array2D<float> expected =
      run_engine(*make_engine("subband", engine_options), batch_plan,
                 KernelConfig{1, 1, 1, 1}, in.cview());

  Array2D<float> streamed(dms, total_out);
  stream::StreamingOptions options;
  options.engine = "subband";
  options.subband = split;
  stream::MultiBeamStreamingDedisperser session(
      chunk_plan, KernelConfig{1, 1, 1, 1}, /*beams=*/2,
      [&](const stream::MultiBeamStreamChunk& chunk) {
        const Array2D<float>& beam0 = (*chunk.outputs)[0];
        for (std::size_t dm = 0; dm < dms; ++dm) {
          for (std::size_t t = 0; t < chunk.out_samples; ++t) {
            streamed(dm, chunk.first_sample + t) = beam0(dm, t);
          }
        }
      },
      options);
  session.push({in.cview(), in.cview()});
  session.close();
  expect_same_matrix(expected, streamed);
}

TEST(EngineStreaming, NonStreamableEngineIsRejectedWithTheCapabilityName) {
  const Plan chunk_plan = testing::mini_plan(4, 32);
  stream::StreamingOptions options;
  options.engine = "ocl_sim";
  try {
    stream::StreamingDedisperser session(chunk_plan, KernelConfig{1, 1, 1, 1},
                                         nullptr, options);
    FAIL() << "streaming session accepted an engine without "
              "supports_streaming";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("supports_streaming"), std::string::npos) << what;
    EXPECT_NE(what.find("ocl_sim"), std::string::npos) << what;
  }
}

TEST(EngineStreaming, FdmtRejectsStreamingWithTheCapabilityName) {
  // fdmt transforms whole channels up front, so a chunk-window session is
  // an undeclared capability: requesting it fails fast with the capability
  // and the engine named, exactly like every other capability gate.
  const Plan chunk_plan = testing::mini_plan(4, 32);
  stream::StreamingOptions options;
  options.engine = "fdmt";
  try {
    stream::StreamingDedisperser session(chunk_plan, KernelConfig{1, 1, 1, 1},
                                         nullptr, options);
    FAIL() << "streaming session accepted fdmt";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("supports_streaming"), std::string::npos) << what;
    EXPECT_NE(what.find("fdmt"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------------- sharding --

TEST(EngineSharding, CapableEnginesShardConsistently) {
  const Plan plan = Plan::with_output_samples(mini_obs(), 12, 60);
  const Array2D<float> in = padded_input(plan, 0);
  const Array2D<float> reference = run_engine(
      *make_engine("reference"), plan, KernelConfig{1, 1, 1, 1}, in.cview());

  // kBuiltins, not ids(): other suites register deliberately broken
  // engines under engine_test_* names in the process-global registry.
  for (const std::string id : kBuiltins) {
    const auto engine = make_engine(id);
    if (!engine->capabilities().supports_sharding) continue;
    SCOPED_TRACE(id);
    const Array2D<float> expected =
        run_engine(*engine, plan, KernelConfig{1, 1, 1, 1}, in.cview());
    // The deterministic engines (bitwise or not — the u8 engine's exact
    // integer sums shard bitwise too) reproduce their batch run exactly
    // across shard counts. fdmt may not: a shard's trial grid gcd-adapts
    // its own coarse split, so each shard is held to the engine's
    // documented reference bound instead — still the capability promise,
    // since the bound is what the batch run guarantees as well.
    const double bound =
        id == "fdmt" ? equivalence_bound(*engine, plan) : 0.0;
    for (std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      pipeline::ShardedOptions options;
      options.workers = workers;
      options.engine = id;
      const pipeline::ShardedDedisperser sharded(
          plan, KernelConfig{1, 1, 1, 1}, options);
      const Array2D<float> got = sharded.dedisperse(in.cview());
      if (bound == 0.0) {
        expect_same_matrix(expected, got);
      } else {
        for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
          for (std::size_t t = 0; t < plan.out_samples(); ++t) {
            ASSERT_LE(std::abs(got(dm, t) - reference(dm, t)), bound)
                << "dm=" << dm << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(EngineSharding, NonShardableEngineIsRejectedWithTheCapabilityName) {
  const Plan plan = testing::mini_plan(8, 64);
  pipeline::ShardedOptions options;
  options.workers = 2;
  options.engine = "subband";
  try {
    const pipeline::ShardedDedisperser sharded(plan, KernelConfig{1, 1, 1, 1},
                                               options);
    FAIL() << "sharded executor accepted an engine without supports_sharding";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("supports_sharding"), std::string::npos) << what;
    EXPECT_NE(what.find("subband"), std::string::npos) << what;
  }
}

// -------------------------------------------------------- cross-engine tune --

tuner::GuidedTuningOptions fast_tuning() {
  tuner::GuidedTuningOptions options;
  options.engines = {"cpu_tiled", "subband"};
  options.host.repetitions = 1;
  options.host.warmup_runs = 0;
  options.host.threads = 1;
  options.strategy = tuner::StrategyKind::kRandom;
  options.random_samples = 3;
  return options;
}

TEST(EngineTuning, TuneGuidedSearchesAcrossEngines) {
  const Plan plan = testing::mini_plan(8, 64);
  tuner::TuningCache cache;
  const tuner::GuidedTuningOptions options = fast_tuning();

  const tuner::GuidedTuningOutcome cold =
      tuner::tune_guided(plan, cache, options);
  EXPECT_EQ(cold.source, tuner::GuidedTuningOutcome::Source::kSearch);
  EXPECT_TRUE(cold.engine_id == "cpu_tiled" || cold.engine_id == "subband")
      << cold.engine_id;
  EXPECT_GT(cold.configs_evaluated, 0u);
  EXPECT_NO_THROW(
      make_engine(cold.engine_id)->validate_config(plan, cold.config));

  // Both engines' ladders were resolved and stored under their own ids.
  std::set<std::string> stored;
  for (const tuner::CacheEntry& entry : cache.entries()) {
    stored.insert(entry.host.engine_id);
  }
  EXPECT_EQ(stored, (std::set<std::string>{"cpu_tiled", "subband"}));

  // A warm rerun answers the whole cross-engine comparison from the cache:
  // zero measurements, same winner.
  const tuner::GuidedTuningOutcome warm =
      tuner::tune_guided(plan, cache, options);
  EXPECT_EQ(warm.source, tuner::GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(warm.configs_evaluated, 0u);
  EXPECT_EQ(warm.engine_id, cold.engine_id);
  EXPECT_EQ(warm.config, cold.config);
}

TEST(EngineTuning, EngineIdPersistsInTheCacheFile) {
  const Plan plan = testing::mini_plan(8, 64);
  const std::string path =
      ::testing::TempDir() + "ddmc_engine_cache_test.csv";
  std::remove(path.c_str());
  const tuner::GuidedTuningOptions options = fast_tuning();
  {
    tuner::TuningCache cache(path);
    tuner::tune_guided(plan, cache, options);
  }
  tuner::TuningCache reloaded(path);
  ASSERT_EQ(reloaded.size(), 2u);
  std::set<std::string> stored;
  for (const tuner::CacheEntry& entry : reloaded.entries()) {
    stored.insert(entry.host.engine_id);
    EXPECT_EQ(entry.host.encode().find(entry.host.engine_id + "|"), 0u);
  }
  EXPECT_EQ(stored, (std::set<std::string>{"cpu_tiled", "subband"}));
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- traffic --

TEST(EngineTraffic, ReportedBytesFollowTheDeclaredElementSize) {
  // Same plan, same work — but the quantized engine streams 1-byte input
  // samples, and every traffic consumer must see that, not sizeof(float).
  const Plan plan = testing::mini_plan(8, 64);
  const Array2D<float> in = padded_input(plan, 0);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const KernelConfig cfg{1, 1, 1, 1};

  const EngineRun f32 =
      make_engine("cpu_tiled")->execute(plan, cfg, in.cview(), out.view());
  const EngineRun u8 =
      make_engine("cpu_tiled_u8")->execute(plan, cfg, in.cview(), out.view());

  const double c = static_cast<double>(plan.channels());
  const double i = static_cast<double>(plan.in_samples());
  const double d = static_cast<double>(plan.dms());
  const double o = static_cast<double>(plan.out_samples());
  EXPECT_DOUBLE_EQ(f32.bytes, 4.0 * c * i + 4.0 * d * o);
  EXPECT_DOUBLE_EQ(u8.bytes, 1.0 * c * i + 4.0 * d * o);
  EXPECT_DOUBLE_EQ(f32.flop, u8.flop);  // same arithmetic, fewer bytes
  EXPECT_LT(u8.bytes, f32.bytes);

  // Session aggregation consumes the stamped element-size-aware numbers.
  SessionTraffic traffic;
  traffic.add(f32, plan);
  traffic.add(u8, plan);
  EXPECT_DOUBLE_EQ(traffic.bytes, f32.bytes + u8.bytes);
  EXPECT_DOUBLE_EQ(traffic.flop, f32.flop + u8.flop);
}

// ---------------------------------------------------------- config validity --

TEST(EngineConfig, UnsupportedUnrollHintsFailFast) {
  // simd::accumulate_span* compile exactly the {1,2,4,8} instantiations;
  // any other hint used to fall back silently, measuring the un-unrolled
  // loop under the wrong label and poisoning the tuning cache. Validation
  // now rejects it at every entry point.
  const Plan plan = testing::mini_plan(8, 64);
  for (const std::size_t bad : {std::size_t{0}, std::size_t{3},
                                std::size_t{5}, std::size_t{6},
                                std::size_t{7}, std::size_t{16}}) {
    KernelConfig cfg{1, 1, 1, 1};
    cfg.unroll = bad;
    SCOPED_TRACE("unroll=" + std::to_string(bad));
    EXPECT_THROW(cfg.validate(plan), config_error);
    pipeline::Dedisperser dd =
        pipeline::Dedisperser::with_output_samples(mini_obs(), 8, 64,
                                                   "cpu_tiled");
    EXPECT_THROW(dd.set_config(cfg), config_error);
  }
  // No engine offers an unsupported hint to the tuner (absent axes decode
  // to their neutral defaults, which are supported).
  for (const char* id : kBuiltins) {
    for (const EngineConfig& cfg : make_engine(id)->config_space(plan)) {
      const KernelConfig kc = decode_kernel_config(cfg);
      EXPECT_TRUE(simd::is_supported_unroll(kc.unroll))
          << id << " " << cfg.to_string();
    }
  }
}

TEST(EngineTuning, U8EngineIdRoundTripsThroughTheCacheFile) {
  // The engine id is a cache-signature axis: racing cpu_tiled against
  // cpu_tiled_u8 stores one ladder per id, survives a file round-trip and
  // answers the warm rerun without measuring.
  const Plan plan = testing::mini_plan(8, 64);
  const std::string path =
      ::testing::TempDir() + "ddmc_engine_u8_cache_test.csv";
  std::remove(path.c_str());
  tuner::GuidedTuningOptions options = fast_tuning();
  options.engines = {"cpu_tiled", "cpu_tiled_u8"};
  std::string cold_winner;
  {
    tuner::TuningCache cache(path);
    const tuner::GuidedTuningOutcome cold =
        tuner::tune_guided(plan, cache, options);
    EXPECT_EQ(cold.source, tuner::GuidedTuningOutcome::Source::kSearch);
    EXPECT_TRUE(cold.engine_id == "cpu_tiled" ||
                cold.engine_id == "cpu_tiled_u8")
        << cold.engine_id;
    cold_winner = cold.engine_id;
  }
  tuner::TuningCache reloaded(path);
  ASSERT_EQ(reloaded.size(), 2u);
  std::set<std::string> stored;
  for (const tuner::CacheEntry& entry : reloaded.entries()) {
    stored.insert(entry.host.engine_id);
    EXPECT_EQ(entry.host.encode().find(entry.host.engine_id + "|"), 0u);
  }
  EXPECT_EQ(stored, (std::set<std::string>{"cpu_tiled", "cpu_tiled_u8"}));
  const tuner::GuidedTuningOutcome warm =
      tuner::tune_guided(plan, reloaded, options);
  EXPECT_EQ(warm.source, tuner::GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(warm.configs_evaluated, 0u);
  EXPECT_EQ(warm.engine_id, cold_winner);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- dedisperser --

TEST(EngineDedisperser, SelectsAnyRegisteredEngineByName) {
  // The high-level API takes a registry id, not an enum: an engine added
  // by downstream code is immediately usable.
  const std::string id = "engine_test_alias";
  if (!EngineRegistry::instance().contains(id)) {
    EngineRegistry::instance().add(id, forwarding_factory(id));
  }
  pipeline::Dedisperser dd =
      pipeline::Dedisperser::with_output_samples(mini_obs(), 8, 64, id);
  pipeline::Dedisperser ref =
      pipeline::Dedisperser::with_output_samples(mini_obs(), 8, 64,
                                                 "reference");
  const Array2D<float> in = padded_input(dd.plan(), 0);
  expect_same_matrix(ref.dedisperse(in.cview()), dd.dedisperse(in.cview()));
}

}  // namespace
}  // namespace ddmc::engine
