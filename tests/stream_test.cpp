// Tests for the streaming subsystem: bounded ring ingest (backpressure),
// overlap-carry chunking, and the streaming sessions — whose headline
// property is that chunked output is *bitwise identical* to the one-shot
// batch path for any chunk size and any feed granularity, down to
// one-sample pushes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "common/random.hpp"
#include "dedisp/reference.hpp"
#include "engine/engine_config.hpp"
#include "engine/registry.hpp"
#include "stream/chunker.hpp"
#include "stream/latency.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "test_util.hpp"

namespace ddmc::stream {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::expect_same_matrix;
using testing::mini_obs;
using testing::random_input;

/// Feed `input` into `session` in pseudo-random slices of 1..max_slice
/// samples (max_slice = 1 exercises one-sample feeds).
void feed_in_slices(StreamingDedisperser& session,
                    const Array2D<float>& input, std::size_t max_slice,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::size_t t = 0;
  while (t < input.cols()) {
    const std::size_t n = std::min<std::size_t>(
        input.cols() - t,
        1 + static_cast<std::size_t>(rng.next_below(max_slice)));
    session.push(ConstView2D<float>(&input.cview()(0, t), input.rows(), n,
                                    input.pitch()));
    t += n;
  }
}

/// Reassemble sink chunks into one dms × total matrix by first_sample.
struct Collector {
  Array2D<float> total;
  std::size_t emitted = 0;

  Collector(std::size_t dms, std::size_t out) : total(dms, out) {}

  void operator()(const StreamChunk& chunk) {
    ASSERT_LE(chunk.first_sample + chunk.out_samples, total.cols());
    for (std::size_t dm = 0; dm < total.rows(); ++dm) {
      for (std::size_t t = 0; t < chunk.out_samples; ++t) {
        total(dm, chunk.first_sample + t) = chunk.output(dm, t);
      }
    }
    emitted += chunk.out_samples;
  }
};

// ------------------------------------------------------------------ ring --

TEST(SampleRing, FifoOrderAcrossWraparound) {
  SampleRing ring(2, 8);
  Array2D<float> block(2, 5);
  Array2D<float> out(2, 3);
  float next = 0.0f;
  float expect = 0.0f;
  std::size_t buffered = 0;
  for (int round = 0; round < 7; ++round) {
    for (std::size_t t = 0; t < block.cols(); ++t) {
      block(0, t) = next;
      block(1, t) = -next;
      next += 1.0f;
    }
    ring.push(block.cview());
    buffered += block.cols();
    // Drain to ≤ 2 buffered samples: the next 5-sample push fits without
    // blocking, and the carried remainder walks head across the wrap.
    while (buffered > 2) {
      const std::size_t n = ring.pop(out.view());
      ASSERT_GT(n, 0u);
      for (std::size_t t = 0; t < n; ++t) {
        ASSERT_EQ(out(0, t), expect);
        ASSERT_EQ(out(1, t), -expect);
        expect += 1.0f;
      }
      buffered -= n;
    }
  }
}

TEST(SampleRing, TryPushIsAllOrNothingAtCapacity) {
  SampleRing ring(1, 8);
  Array2D<float> five(1, 5);
  EXPECT_TRUE(ring.try_push(five.cview()));
  EXPECT_FALSE(ring.try_push(five.cview()));  // only 3 slots free
  EXPECT_EQ(ring.size(), 5u);                 // nothing was absorbed
  Array2D<float> out(1, 2);
  EXPECT_EQ(ring.pop(out.view()), 2u);
  EXPECT_TRUE(ring.try_push(five.cview()));
  EXPECT_EQ(ring.size(), 8u);
}

TEST(SampleRing, BlockingPushEnforcesTheCapacityBound) {
  // A slow consumer: the producer wants to push 4× the capacity and must
  // block; the ring never holds more than its bound.
  SampleRing ring(2, 16);
  const std::size_t total = 64;
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    Array2D<float> block(2, 8);
    for (std::size_t pushed = 0; pushed < total; pushed += block.cols()) {
      for (std::size_t t = 0; t < block.cols(); ++t) {
        block(0, t) = static_cast<float>(pushed + t);
        block(1, t) = 0.5f;
      }
      ring.push(block.cview());
    }
    producer_done = true;
  });

  // Let the producer hit the bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(producer_done);       // blocked: 64 > 16 without a consumer
  EXPECT_LE(ring.size(), 16u);       // the bound held

  Array2D<float> out(2, 4);
  std::size_t received = 0;
  float expect = 0.0f;
  while (received < total) {
    const std::size_t n = ring.pop(out.view());
    ASSERT_GT(n, 0u);
    for (std::size_t t = 0; t < n; ++t, expect += 1.0f) {
      ASSERT_EQ(out(0, t), expect);
    }
    received += n;
  }
  producer.join();
  EXPECT_TRUE(producer_done);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SampleRing, CloseDrainsThenSignalsEnd) {
  SampleRing ring(1, 8);
  Array2D<float> three(1, 3);
  three(0, 0) = 1.0f; three(0, 1) = 2.0f; three(0, 2) = 3.0f;
  ring.push(three.cview());
  ring.close();
  Array2D<float> out(1, 8);
  EXPECT_EQ(ring.pop(out.view()), 3u);  // buffered samples still drain
  EXPECT_EQ(out(0, 2), 3.0f);
  EXPECT_EQ(ring.pop(out.view()), 0u);  // then: closed-and-drained
  EXPECT_THROW(ring.push(three.cview()), invalid_argument);
  EXPECT_THROW(ring.try_push(three.cview()), invalid_argument);
}

TEST(SampleRing, RejectsChannelMismatch) {
  SampleRing ring(4, 8);
  Array2D<float> wrong(3, 2);
  EXPECT_THROW(ring.push(wrong.cview()), invalid_argument);
  EXPECT_THROW(ring.pop(wrong.view()), invalid_argument);
}

// --------------------------------------------------------------- chunker --

// ------------------------------------------------------- ring stress --

TEST(SampleRingStressSlowTier, MultipleProducersConserveEverySample) {
  // Multiple producers are memory-safe (each push segment is atomic under
  // the lock even if a blocking push interleaves with another producer's),
  // so under ASan/UBSan this hammers the lock/wait paths: every pushed
  // sample must come out exactly once.
  constexpr std::size_t kChannels = 3;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 512;
  SampleRing ring(kChannels, 16);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      // Distinct constant value per producer, pushed in awkward slices.
      Array2D<float> block(kChannels, 7);
      for (std::size_t ch = 0; ch < kChannels; ++ch) {
        for (auto& v : block.row(ch)) v = static_cast<float>(p + 1);
      }
      std::size_t sent = 0;
      while (sent < kPerProducer) {
        const std::size_t n = std::min<std::size_t>(7, kPerProducer - sent);
        ring.push(ConstView2D<float>(&block.cview()(0, 0), kChannels, n,
                                     block.pitch()));
        sent += n;
      }
    });
  }

  std::size_t popped = 0;
  std::vector<std::size_t> per_value(kProducers, 0);
  Array2D<float> dst(kChannels, 5);
  std::thread closer;
  while (true) {
    const std::size_t n = ring.pop(dst.view());
    if (n == 0) break;
    popped += n;
    for (std::size_t t = 0; t < n; ++t) {
      const auto value = static_cast<std::size_t>(dst(0, t));
      ASSERT_GE(value, 1u);
      ASSERT_LE(value, kProducers);
      ++per_value[value - 1];
      // Columns stay intact: every channel carries the same producer tag.
      for (std::size_t ch = 1; ch < kChannels; ++ch) {
        ASSERT_EQ(dst(ch, t), dst(0, t));
      }
    }
    if (popped == kProducers * kPerProducer && !closer.joinable()) {
      closer = std::thread([&] {
        for (auto& producer : producers) producer.join();
        ring.close();
      });
    }
  }
  closer.join();
  EXPECT_EQ(popped, kProducers * kPerProducer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(per_value[p], kPerProducer) << "producer " << p;
  }
}

TEST(SampleRingStressSlowTier, CloseWhileProducerBlocksMidPushThrows) {
  // A producer blocked on a full ring must be woken by close() and get the
  // "push into a closed SampleRing" error, not deadlock or corrupt state.
  SampleRing ring(2, 8);
  std::atomic<bool> threw{false};
  std::atomic<std::size_t> absorbed_before_close{0};
  std::thread producer([&] {
    Array2D<float> block(2, 64);
    for (std::size_t ch = 0; ch < 2; ++ch) {
      for (auto& v : block.row(ch)) v = 1.0f;
    }
    try {
      ring.push(block.cview());  // capacity 8 < 64: must block mid-push
    } catch (const invalid_argument&) {
      threw = true;
    }
  });
  // Wait until the ring is full, i.e. the producer is blocked inside push.
  while (ring.size() < ring.capacity()) {
    std::this_thread::yield();
  }
  absorbed_before_close = ring.size();
  ring.close();
  producer.join();
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(absorbed_before_close.load(), 8u);

  // Drain-after-close: the samples absorbed before the close are still
  // delivered, then pop signals end-of-stream with 0 forever.
  Array2D<float> dst(2, 3);
  std::size_t drained = 0;
  std::size_t n = 0;
  while ((n = ring.pop(dst.view())) > 0) drained += n;
  EXPECT_EQ(drained, 8u);
  EXPECT_EQ(ring.pop(dst.view()), 0u);
  EXPECT_EQ(ring.pop(dst.view()), 0u);  // end state is sticky
}

TEST(SampleRingStressSlowTier, ConcurrentConsumersDrainAfterClose) {
  // Several consumers racing over a closed ring split the remaining
  // samples between them without loss or duplication, and every one of
  // them eventually observes end-of-stream.
  constexpr std::size_t kChannels = 2;
  constexpr std::size_t kTotal = 1000;
  SampleRing ring(kChannels, kTotal);
  Array2D<float> block(kChannels, kTotal);
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    std::size_t t = 0;
    for (auto& v : block.row(ch)) v = static_cast<float>(t++);
  }
  ring.push(block.cview());
  ring.close();

  std::atomic<std::size_t> drained{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      Array2D<float> dst(kChannels, 7);
      std::size_t n = 0;
      while ((n = ring.pop(dst.view())) > 0) drained += n;
    });
  }
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(drained.load(), kTotal);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(OverlapChunker, WindowsAreTheBatchInputColumns) {
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, 96);
  const Plan chunk = batch.with_chunk(32);
  const Array2D<float> input = random_input(batch);
  OverlapChunker chunker(chunk);
  EXPECT_EQ(chunker.overlap(), batch.max_delay());
  EXPECT_EQ(chunker.window_samples(), 32 + batch.max_delay());

  std::size_t t = 0;
  std::size_t seen = 0;
  while (t < input.cols()) {
    t += chunker.feed(input.cview(), t);
    if (!chunker.ready()) continue;
    const ConstView2D<float> window = chunker.chunk_input();
    const std::size_t base = chunker.first_out_sample();
    for (std::size_t ch = 0; ch < input.rows(); ++ch) {
      for (std::size_t i = 0; i < window.cols(); ++i) {
        ASSERT_EQ(window(ch, i), input(ch, base + i))
            << "chunk " << chunker.chunk_index() << " ch " << ch << " i " << i;
      }
    }
    ++seen;
    chunker.advance();
  }
  // 96 output samples = exactly 3 chunks of 32; nothing is left over.
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(chunker.pending_out(), 0u);

  // A few extra samples become the pending partial chunk.
  Array2D<float> extra(input.rows(), 7);
  chunker.feed(extra.cview());
  EXPECT_FALSE(chunker.ready());
  EXPECT_EQ(chunker.pending_out(), 7u);
  EXPECT_EQ(chunker.partial_input().cols(), chunker.overlap() + 7u);
}

TEST(OverlapChunker, NoOutputBeforeTheOverlapIsCovered) {
  const Plan chunk = Plan::with_output_samples(mini_obs(), 8, 32);
  OverlapChunker chunker(chunk);
  Array2D<float> few(8, chunker.overlap());  // pure history, no output yet
  chunker.feed(few.cview());
  EXPECT_FALSE(chunker.ready());
  EXPECT_EQ(chunker.pending_out(), 0u);
  EXPECT_THROW(chunker.partial_input(), invalid_argument);
}

TEST(OverlapChunker, RejectsRoundedBatchPlans) {
  // A full-seconds plan pads in_samples beyond out + max_delay; windows
  // built from it would not slide correctly.
  const Plan batch(mini_obs(), 8, /*seconds=*/1);
  if (batch.in_samples() != batch.out_samples() + batch.max_delay()) {
    EXPECT_THROW(OverlapChunker{batch}, invalid_argument);
  }
  EXPECT_NO_THROW(OverlapChunker{batch.with_chunk(25)});
}

// ------------------------------------------------------------------ plan --

TEST(PlanChunk, SharesTheDelayTable) {
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, 96);
  const Plan chunk = batch.with_chunk(32);
  EXPECT_EQ(&chunk.delays(), &batch.delays());  // shared, not recomputed
  EXPECT_EQ(chunk.out_samples(), 32u);
  EXPECT_EQ(chunk.in_samples(), 32u + batch.max_delay());
  EXPECT_EQ(chunk.dms(), batch.dms());
  EXPECT_THROW(batch.with_chunk(0), invalid_argument);
}

// ------------------------------------------------------- streaming session --

/// The headline property: for random chunk sizes and feed granularities
/// (including one-sample pushes), concatenated streaming output ==
/// batch output, bitwise — full chunks via the tuned config, the final
/// partial chunk via the 1×1 fallback.
TEST(StreamingDedisperser, BitwiseEqualToBatchAcrossGranularities) {
  const std::size_t total_out = 209;  // 3 full chunks of 64 + partial 17
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      dedisp::dedisperse_reference(batch, input.cview());

  struct Case {
    std::size_t chunk_out;
    std::size_t max_slice;
    bool async;
  };
  const std::vector<Case> cases = {
      {64, 1, false},   // one-sample feeds, inline compute
      {64, 17, true},   // ragged feeds, double-buffered compute thread
      {32, 5, true},
      {96, 201, false}, // slices larger than a chunk
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("chunk_out=" + std::to_string(c.chunk_out) + " max_slice=" +
                 std::to_string(c.max_slice) +
                 (c.async ? " async" : " sync"));
    Collector collect(batch.dms(), total_out);
    StreamingOptions opts;
    opts.async = c.async;
    opts.cpu.threads = 1;
    StreamingDedisperser session(batch.with_chunk(c.chunk_out),
                                 KernelConfig{8, 2, 4, 2},
                                 std::ref(collect), opts);
    feed_in_slices(session, input, c.max_slice, 1234 + c.chunk_out);
    session.close();
    EXPECT_EQ(collect.emitted, total_out);
    expect_same_matrix(expected, collect.total);
  }
}

TEST(StreamingDedisperser, TuneOnFirstUseFromTheCache) {
  // A session built from a TuningCache resolves its config before starting:
  // cold = one guided search on the chunk plan (stored), warm = exact hit
  // with zero measurements. Output stays bitwise equal to batch either way.
  const std::size_t total_out = 128;
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const Array2D<float> input = random_input(batch);
  const Array2D<float> expected =
      dedisp::dedisperse_reference(batch, input.cview());

  tuner::TuningCache cache;
  tuner::GuidedTuningOptions tuning;
  tuning.host.repetitions = 1;
  tuning.host.warmup_runs = 0;
  tuning.strategy = tuner::StrategyKind::kRandom;
  tuning.random_samples = 3;
  StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;

  engine::EngineConfig tuned;
  {
    Collector collect(batch.dms(), total_out);
    StreamingDedisperser session(batch.with_chunk(32), cache,
                                 std::ref(collect), opts, tuning);
    ASSERT_TRUE(session.tuning_outcome().has_value());
    EXPECT_EQ(session.tuning_outcome()->source,
              tuner::GuidedTuningOutcome::Source::kSearch);
    EXPECT_GT(session.tuning_outcome()->configs_evaluated, 0u);
    tuned = session.tuning_outcome()->config;
    feed_in_slices(session, input, 31, 99);
    session.close();
    EXPECT_EQ(collect.emitted, total_out);
    expect_same_matrix(expected, collect.total);
  }
  {
    // Second session of the same shape: tuned without a single measurement.
    Collector collect(batch.dms(), total_out);
    StreamingDedisperser session(batch.with_chunk(32), cache,
                                 std::ref(collect), opts, tuning);
    ASSERT_TRUE(session.tuning_outcome().has_value());
    EXPECT_EQ(session.tuning_outcome()->source,
              tuner::GuidedTuningOutcome::Source::kCacheHit);
    EXPECT_EQ(session.tuning_outcome()->configs_evaluated, 0u);
    EXPECT_EQ(session.tuning_outcome()->config, tuned);
    feed_in_slices(session, input, 31, 99);
    session.close();
    expect_same_matrix(expected, collect.total);
  }
  {
    // A different chunk length is a different plan signature, but close
    // enough to transfer: still zero measurements. (Any tile that divides
    // the 32-sample chunk also divides the 64-sample one.)
    Collector collect(batch.dms(), total_out);
    StreamingDedisperser session(batch.with_chunk(64), cache,
                                 std::ref(collect), opts, tuning);
    ASSERT_TRUE(session.tuning_outcome().has_value());
    EXPECT_EQ(session.tuning_outcome()->source,
              tuner::GuidedTuningOutcome::Source::kTransfer);
    EXPECT_EQ(session.tuning_outcome()->configs_evaluated, 0u);
    feed_in_slices(session, input, 31, 99);
    session.close();
    expect_same_matrix(expected, collect.total);
  }
  // The explicit-config constructor reports no tuning outcome.
  StreamingDedisperser manual(batch.with_chunk(64), KernelConfig{8, 2, 4, 2},
                              [](const StreamChunk&) {}, opts);
  EXPECT_FALSE(manual.tuning_outcome().has_value());
}

TEST(StreamingDedisperser, AdoptsTheRaceWinnerAndWidensTheOverlap) {
  // A multi-engine tuning race can hand the session a different engine
  // than the one it was configured with. The subband engine declares
  // input_padding = 2: had the session adopted the winner's id but sized
  // the chunker for the *requested* engine, interior chunks would feed
  // zero padding where the subband kernel reads real samples, and chunked
  // output would drift from the batch run of the same engine and config.
  const std::size_t total_out = 128;
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const Array2D<float> input = random_input(batch);
  const Plan chunked = batch.with_chunk(32);

  tuner::TuningCache cache;
  tuner::GuidedTuningOptions tuning;
  tuning.host.repetitions = 1;
  tuning.host.warmup_runs = 0;
  tuning.strategy = tuner::StrategyKind::kRandom;
  tuning.random_samples = 2;
  StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.engine = "cpu_tiled";  // the session *requests* the tiled engine

  // Seed one cache entry per engine via single-engine sessions, then pin
  // the stored seconds so the subband engine wins deterministically and
  // the race itself measures nothing.
  for (const char* id : {"cpu_tiled", "subband"}) {
    StreamingOptions seed_opts = opts;
    seed_opts.engine = id;
    Collector sink(batch.dms(), total_out);
    StreamingDedisperser session(chunked, cache, std::ref(sink), seed_opts,
                                 tuning);
    session.close();
  }
  ASSERT_EQ(cache.size(), 2u);
  for (tuner::CacheEntry entry : cache.entries()) {
    entry.seconds = entry.host.engine_id == "subband" ? 1e-9 : 1.0;
    cache.store(entry);
  }

  tuner::GuidedTuningOptions race = tuning;
  race.engines = {"cpu_tiled", "subband"};
  Collector collect(batch.dms(), total_out);
  engine::EngineConfig winner_config;
  {
    StreamingDedisperser session(chunked, cache, std::ref(collect), opts,
                                 race);
    ASSERT_TRUE(session.tuning_outcome().has_value());
    EXPECT_EQ(session.tuning_outcome()->engine_id, "subband");  // adopted
    EXPECT_EQ(session.tuning_outcome()->source,
              tuner::GuidedTuningOutcome::Source::kCacheHit);
    EXPECT_EQ(session.tuning_outcome()->configs_evaluated, 0u);
    winner_config = session.tuning_outcome()->config;
    feed_in_slices(session, input, 17, 321);
    session.close();
  }
  EXPECT_EQ(collect.emitted, total_out);

  // Batch run of the winning engine under the winning config: the widened
  // carried overlap must make the chunked output bitwise identical.
  const auto subband = engine::make_engine("subband");
  Array2D<float> expected(batch.dms(), batch.out_samples());
  subband->execute(batch, winner_config, input.cview(), expected.view());
  expect_same_matrix(expected, collect.total);
}

TEST(StreamingDedisperser, LegacyKernelConfigShedsAxesForeignToTheEngine) {
  // The KernelConfig constructor predates engine-native configs: a session
  // built with a tiled kernel shape but a different engine must shed the
  // axes that engine never declared and run its defaults, as pre-config
  // sessions did (regression: the subband session threw "declares no
  // config axis 'channel_block'" at construction).
  const std::size_t total_out = 96;
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const Array2D<float> input = random_input(batch);
  const Plan chunked = batch.with_chunk(32);

  StreamingOptions opts;
  opts.async = false;
  opts.cpu.threads = 1;
  opts.engine = "subband";
  Collector collect(batch.dms(), total_out);
  {
    StreamingDedisperser session(chunked,
                                 dedisp::KernelConfig{1, 1, 1, 1, 32, 4},
                                 std::ref(collect), opts);
    feed_in_slices(session, input, 13, 257);
    session.close();
  }
  EXPECT_EQ(collect.emitted, total_out);

  // The session ran the subband engine's defaults — the empty config.
  const auto subband = engine::make_engine("subband");
  Array2D<float> expected(batch.dms(), batch.out_samples());
  subband->execute(batch, engine::EngineConfig{}, input.cview(),
                   expected.view());
  expect_same_matrix(expected, collect.total);
}

TEST(StreamingDedisperser, RandomizedChunkAndFeedProperty) {
  Rng rng(99);
  const std::vector<std::size_t> chunk_sizes = {32, 64, 96, 160};
  for (int round = 0; round < 4; ++round) {
    const std::size_t total_out =
        64 + static_cast<std::size_t>(rng.next_below(160));
    const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
    const Array2D<float> input = random_input(batch, 100 + round);
    const Array2D<float> expected =
        dedisp::dedisperse_reference(batch, input.cview());

    const std::size_t chunk_out =
        chunk_sizes[rng.next_below(chunk_sizes.size())];
    const std::size_t max_slice =
        1 + static_cast<std::size_t>(rng.next_below(40));
    SCOPED_TRACE("total_out=" + std::to_string(total_out) + " chunk_out=" +
                 std::to_string(chunk_out) + " max_slice=" +
                 std::to_string(max_slice));

    Collector collect(batch.dms(), total_out);
    StreamingOptions opts;
    opts.async = (round % 2 == 0);
    opts.cpu.threads = 1;
    StreamingDedisperser session(batch.with_chunk(chunk_out),
                                 KernelConfig{8, 2, 4, 2},
                                 std::ref(collect), opts);
    feed_in_slices(session, input, max_slice, 777 + round);
    session.close();
    EXPECT_EQ(collect.emitted, total_out);
    expect_same_matrix(expected, collect.total);
  }
}

TEST(StreamingDedisperser, ConsumesARingEndToEnd) {
  const std::size_t total_out = 128;
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const Array2D<float> input = random_input(batch, 42);
  const Array2D<float> expected =
      dedisp::dedisperse_reference(batch, input.cview());

  SampleRing ring(batch.channels(), 48);  // smaller than one window
  Collector collect(batch.dms(), total_out);
  StreamingOptions opts;
  opts.cpu.threads = 1;
  StreamingDedisperser session(batch.with_chunk(64), KernelConfig{8, 2, 4, 2},
                               std::ref(collect), opts);

  std::thread producer([&] {
    Rng rng(5);
    std::size_t t = 0;
    while (t < input.cols()) {
      const std::size_t n = std::min<std::size_t>(
          input.cols() - t, 1 + static_cast<std::size_t>(rng.next_below(13)));
      ring.push(ConstView2D<float>(&input.cview()(0, t), input.rows(), n,
                                   input.pitch()));
      t += n;
    }
    ring.close();
  });
  session.consume(ring);
  producer.join();
  session.close();
  EXPECT_EQ(collect.emitted, total_out);
  expect_same_matrix(expected, collect.total);
}

TEST(StreamingDedisperser, AttachesDetectionsAndLatency) {
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, 128);
  const Array2D<float> input = random_input(batch);
  std::size_t with_detection = 0;
  StreamingOptions opts;
  opts.detect = true;
  opts.cpu.threads = 1;
  StreamingDedisperser session(
      batch.with_chunk(64), KernelConfig{8, 2, 4, 2},
      [&](const StreamChunk& chunk) {
        if (chunk.detection.has_value()) ++with_detection;
        EXPECT_GT(chunk.timing.data_seconds, 0.0);
        EXPECT_GE(chunk.timing.latency_seconds, 0.0);
      },
      opts);
  session.push(input.cview());
  session.close();
  EXPECT_EQ(session.chunks_emitted(), 2u);
  EXPECT_EQ(with_detection, 2u);

  const LatencyReport report = session.latency();
  EXPECT_EQ(report.chunks, 2u);
  EXPECT_NEAR(report.data_seconds, 128.0 / 100.0, 1e-12);
  EXPECT_LE(report.p50_latency, report.p95_latency);
  EXPECT_LE(report.p95_latency, report.p99_latency);
  EXPECT_LE(report.p99_latency, report.max_latency);
  EXPECT_GT(report.real_time_margin, 0.0);
  EXPECT_NEAR(report.seconds_per_data_second * report.real_time_margin, 1.0,
              1e-9);
}

TEST(StreamingDedisperser, SinkFailuresSurfaceOnClose) {
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, 128);
  const Array2D<float> input = random_input(batch);
  StreamingOptions opts;
  opts.cpu.threads = 1;
  StreamingDedisperser session(
      batch.with_chunk(64), KernelConfig{8, 2, 4, 2},
      [](const StreamChunk&) { throw std::runtime_error("sink failed"); },
      opts);
  EXPECT_THROW(
      {
        session.push(input.cview());
        session.close();
      },
      std::runtime_error);
}

TEST(StreamingDedisperser, ValidatesConfigAndInput) {
  const Plan chunk = Plan::with_output_samples(mini_obs(), 8, 64);
  EXPECT_THROW(
      StreamingDedisperser(chunk, KernelConfig{5, 1, 1, 1}, nullptr),
      config_error);
  StreamingDedisperser session(chunk, KernelConfig{8, 2, 4, 2}, nullptr);
  Array2D<float> wrong(3, 10);
  EXPECT_THROW(session.push(wrong.cview()), invalid_argument);
}

// ------------------------------------------------------------ multi-beam --

TEST(MultiBeamStreaming, BitwiseEqualToBatchPerBeam) {
  const std::size_t total_out = 145;  // 2 full chunks of 64 + partial 17
  const Plan batch = Plan::with_output_samples(mini_obs(), 8, total_out);
  const std::size_t beams = 3;

  std::vector<Array2D<float>> inputs;
  std::vector<Array2D<float>> expected;
  for (std::size_t b = 0; b < beams; ++b) {
    inputs.push_back(random_input(batch, 10 + b));
    expected.push_back(
        dedisp::dedisperse_reference(batch, inputs[b].cview()));
  }

  std::vector<Array2D<float>> collected;
  for (std::size_t b = 0; b < beams; ++b) {
    collected.emplace_back(batch.dms(), total_out);
  }
  std::size_t emitted = 0;
  StreamingOptions opts;
  opts.detect = true;
  opts.cpu.threads = 1;
  MultiBeamStreamingDedisperser session(
      batch.with_chunk(64), KernelConfig{8, 2, 4, 2}, beams,
      [&](const MultiBeamStreamChunk& chunk) {
        ASSERT_NE(chunk.outputs, nullptr);
        ASSERT_EQ(chunk.outputs->size(), beams);
        EXPECT_TRUE(chunk.candidate.has_value());
        for (std::size_t b = 0; b < beams; ++b) {
          for (std::size_t dm = 0; dm < batch.dms(); ++dm) {
            for (std::size_t t = 0; t < chunk.out_samples; ++t) {
              collected[b](dm, chunk.first_sample + t) =
                  (*chunk.outputs)[b](dm, t);
            }
          }
        }
        emitted += chunk.out_samples;
      },
      opts);

  // Ragged lockstep feeds.
  Rng rng(3);
  std::size_t t = 0;
  while (t < inputs[0].cols()) {
    const std::size_t n = std::min<std::size_t>(
        inputs[0].cols() - t, 1 + static_cast<std::size_t>(rng.next_below(23)));
    std::vector<ConstView2D<float>> slices;
    for (const auto& in : inputs) {
      slices.emplace_back(&in.cview()(0, t), in.rows(), n, in.pitch());
    }
    session.push(slices);
    t += n;
  }
  session.close();

  EXPECT_EQ(emitted, total_out);
  EXPECT_EQ(session.chunks_emitted(), 3u);
  EXPECT_EQ(session.latency().chunks, 3u);
  for (std::size_t b = 0; b < beams; ++b) {
    expect_same_matrix(expected[b], collected[b]);
  }
}

TEST(MultiBeamStreaming, ValidatesLockstepFeeds) {
  const Plan chunk = Plan::with_output_samples(mini_obs(), 8, 64);
  MultiBeamStreamingDedisperser session(chunk, KernelConfig{8, 2, 4, 2}, 2,
                                        nullptr);
  Array2D<float> a(8, 10);
  Array2D<float> b(8, 7);
  EXPECT_THROW(session.push({a.cview(), b.cview()}), invalid_argument);
  EXPECT_THROW(session.push({a.cview()}), invalid_argument);
  EXPECT_THROW(MultiBeamStreamingDedisperser(chunk, KernelConfig{8, 2, 4, 2},
                                             0, nullptr),
               invalid_argument);
}

// --------------------------------------------------------------- latency --

TEST(Latency, PercentilesUseNearestRank) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile(v, 50.0), 50.0);
  EXPECT_EQ(percentile(v, 95.0), 95.0);
  EXPECT_EQ(percentile(v, 99.0), 99.0);
  EXPECT_EQ(percentile(v, 100.0), 100.0);
  EXPECT_EQ(percentile(v, 0.0), 1.0);
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), invalid_argument);
}

TEST(Latency, TrackerAggregatesMarginAndBusyTime) {
  LatencyTracker tracker;
  EXPECT_EQ(tracker.report().chunks, 0u);
  tracker.record({1.0, 0.25, 0.3});
  tracker.record({1.0, 0.25, 0.5});
  const LatencyReport r = tracker.report();
  EXPECT_EQ(r.chunks, 2u);
  EXPECT_EQ(r.latency_window, 2u);
  EXPECT_DOUBLE_EQ(r.data_seconds, 2.0);
  EXPECT_DOUBLE_EQ(r.compute_seconds, 0.5);
  EXPECT_DOUBLE_EQ(r.real_time_margin, 4.0);  // 2 s of sky in 0.5 s busy
  EXPECT_DOUBLE_EQ(r.seconds_per_data_second, 0.25);
  EXPECT_DOUBLE_EQ(r.p50_latency, 0.3);
  EXPECT_DOUBLE_EQ(r.max_latency, 0.5);
  EXPECT_DOUBLE_EQ(r.mean_compute, 0.25);
}

TEST(Latency, TrackerStaysExactBelowItsCapacity) {
  // Below the cap the percentiles match a full nearest-rank scan exactly.
  LatencyTracker tracker(/*capacity=*/256);
  std::vector<double> all;
  for (int i = 100; i >= 1; --i) {
    const double v = static_cast<double>(i) * 1e-3;
    tracker.record({0.1, 0.01, v});
    all.push_back(v);
  }
  const LatencyReport r = tracker.report();
  EXPECT_EQ(r.chunks, 100u);
  EXPECT_EQ(r.latency_window, 100u);
  EXPECT_DOUBLE_EQ(r.p50_latency, percentile(all, 50.0));
  EXPECT_DOUBLE_EQ(r.p95_latency, percentile(all, 95.0));
  EXPECT_DOUBLE_EQ(r.p99_latency, percentile(all, 99.0));
  EXPECT_DOUBLE_EQ(r.max_latency, 0.1);
}

TEST(Latency, TrackerWindowsInsteadOfGrowingWithoutBound) {
  // Regression: latencies_ used to grow by one double per chunk forever —
  // a long-running session leaked memory and report() re-sorted an
  // ever-larger vector per poll. Past the cap the tracker must keep a
  // trailing window of exactly `capacity` latencies...
  constexpr std::size_t kCapacity = 64;
  LatencyTracker tracker(kCapacity);
  for (std::size_t i = 0; i < 10 * kCapacity; ++i) {
    tracker.record({1.0, 0.5, 100.0});  // old spike, must age out
  }
  std::vector<double> window;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    const double v = static_cast<double>(i + 1) * 1e-3;
    tracker.record({1.0, 0.5, v});
    window.push_back(v);
  }
  const LatencyReport r = tracker.report();
  EXPECT_EQ(r.chunks, 11 * kCapacity);  // totals still span the session
  EXPECT_EQ(r.latency_window, kCapacity);
  // ...whose percentiles are exact over that window (the spikes aged out)…
  EXPECT_DOUBLE_EQ(r.p50_latency, percentile(window, 50.0));
  EXPECT_DOUBLE_EQ(r.p99_latency, percentile(window, 99.0));
  // …while the scalar aggregates still cover the whole session.
  EXPECT_DOUBLE_EQ(r.max_latency, 100.0);
  EXPECT_DOUBLE_EQ(r.data_seconds, 11.0 * kCapacity);
  EXPECT_DOUBLE_EQ(r.real_time_margin, 2.0);

  EXPECT_THROW(LatencyTracker{0}, invalid_argument);
}

TEST(Latency, SortedPercentileBacksTheUnsortedOne) {
  // percentile() and report() share one nearest-rank kernel (the former
  // copy-pasted lambda); feeding it pre-sorted data must agree.
  std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 10.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p), percentile(v, p)) << p;
  }
}

}  // namespace
}  // namespace ddmc::stream
