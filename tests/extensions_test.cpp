// Tests for the extension modules: subband (two-stage) dedispersion, the
// wall-clock host tuner, and multi-beam processing.

#include <gtest/gtest.h>

#include <cmath>

#include "common/expect.hpp"
#include "dedisp/reference.hpp"
#include "dedisp/subband.hpp"
#include "pipeline/multibeam.hpp"
#include "sky/detection.hpp"
#include "sky/signal.hpp"
#include "test_util.hpp"
#include "tuner/host_tuner.hpp"

namespace ddmc {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using dedisp::SubbandConfig;
using testing::mini_obs;
using testing::random_input;

/// Input with a couple of samples of slack beyond the plan's minimum —
/// the subband method's split delays round intra and inter parts
/// separately and may reach past in_samples by up to two samples.
Array2D<float> padded_input(const Plan& plan, std::uint64_t seed = 7) {
  Array2D<float> in(plan.channels(), plan.in_samples() + 4);
  Rng rng(seed);
  for (std::size_t ch = 0; ch < in.rows(); ++ch) {
    for (auto& v : in.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  return in;
}

// ---------------------------------------------------------------- subband --

TEST(Subband, FlopCountFollowsTheTwoStageFormula) {
  const Plan plan = testing::mini_plan(8, 64);
  const SubbandConfig cfg{4, 4};
  // stage1: (8/4)·64·8 + stage2: 8·64·4.
  EXPECT_DOUBLE_EQ(dedisp::subband_flop(plan, cfg),
                   2.0 * 64.0 * 8.0 + 8.0 * 64.0 * 4.0);
}

TEST(Subband, CheaperThanBruteForceForRealisticParameters) {
  const Plan plan(sky::apertif(), 1024);
  const SubbandConfig cfg{32, 16};
  EXPECT_LT(dedisp::subband_flop(plan, cfg), 0.1 * plan.total_flop());
}

TEST(Subband, RejectsNonDividingParameters) {
  const Plan plan = testing::mini_plan(8, 64);
  EXPECT_THROW(dedisp::subband_flop(plan, SubbandConfig{3, 4}),
               invalid_argument);
  EXPECT_THROW(dedisp::subband_flop(plan, SubbandConfig{4, 3}),
               invalid_argument);
  EXPECT_THROW(dedisp::subband_flop(plan, SubbandConfig{0, 1}),
               invalid_argument);
}

TEST(Subband, ZeroDmObservationIsExactUpToAssociation) {
  // All delays vanish, so both stages are plain channel sums; only the
  // summation association differs (per-subband partials), so the results
  // agree to float rounding.
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  const Array2D<float> in = padded_input(plan);
  const Array2D<float> expected = dedisp::dedisperse_reference(plan, in.cview());
  const Array2D<float> got =
      dedisp::dedisperse_subband(plan, SubbandConfig{4, 2}, in.cview());
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t t = 0; t < plan.out_samples(); ++t) {
      ASSERT_NEAR(expected(dm, t), got(dm, t), 1e-5)
          << "dm=" << dm << " t=" << t;
    }
  }
}

TEST(Subband, DelayErrorBoundIsZeroForDegenerateConfig) {
  // coarse_step == 1 reuses each trial's own shifts: no approximation.
  const Plan plan = testing::mini_plan(8, 64);
  EXPECT_EQ(dedisp::subband_max_delay_error(plan, SubbandConfig{8, 1}), 0);
}

TEST(Subband, DelayErrorGrowsWithCoarseStep) {
  const Plan plan = testing::mini_plan(8, 64);
  const auto e2 = dedisp::subband_max_delay_error(plan, SubbandConfig{4, 2});
  const auto e8 = dedisp::subband_max_delay_error(plan, SubbandConfig{4, 8});
  EXPECT_LE(e2, e8);
}

TEST(Subband, RampInputDeviationBoundedBySmearing) {
  // On a linear ramp, shifting a channel read by e samples changes its
  // contribution by exactly e, so |subband − reference| is bounded by
  // channels × (delay error + rounding slack).
  const Plan plan = testing::mini_plan(8, 64);
  Array2D<float> in(plan.channels(), plan.in_samples() + 4);
  for (std::size_t ch = 0; ch < in.rows(); ++ch) {
    for (std::size_t t = 0; t < in.cols(); ++t) {
      in(ch, t) = static_cast<float>(t);
    }
  }
  const Array2D<float> expected = dedisp::dedisperse_reference(plan, in.cview());
  const SubbandConfig cfg{4, 4};
  const Array2D<float> got =
      dedisp::dedisperse_subband(plan, cfg, in.cview());
  const double bound =
      static_cast<double>(plan.channels()) *
      (static_cast<double>(dedisp::subband_max_delay_error(plan, cfg)) + 2.0);
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t t = 0; t < plan.out_samples(); ++t) {
      EXPECT_LE(std::abs(got(dm, t) - expected(dm, t)), bound)
          << "dm=" << dm << " t=" << t;
    }
  }
}

TEST(Subband, RecoversThePulsarLikeBruteForce) {
  const sky::Observation obs = mini_obs();
  const Plan plan = Plan::with_output_samples(obs, 8, 128);
  sky::PulsarParams pulsar;
  pulsar.dm = obs.dm_value(4);
  pulsar.period_s = 0.4;
  pulsar.width_s = 0.05;  // wide enough to absorb the subband smearing
  pulsar.amplitude = 6.0;
  sky::NoiseParams noise;
  noise.sigma = 0.3;
  Array2D<float> data(obs.channels(), plan.in_samples() + 4);
  sky::generate_noise(obs, data.view(), noise);
  sky::inject_pulsar(obs, data.view(), pulsar);

  const Array2D<float> out =
      dedisp::dedisperse_subband(plan, SubbandConfig{4, 2}, data.cview());
  const sky::DetectionResult res = sky::detect_best_dm(out.cview());
  EXPECT_NEAR(static_cast<double>(res.best_trial), 4.0, 1.0);
  EXPECT_GT(res.best_snr, 5.0);
}

TEST(Subband, InputPaddingIsEnforced) {
  const Plan plan = testing::mini_plan(8, 64);
  Array2D<float> exact(plan.channels(), 65);  // far too short
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_THROW(dedisp::dedisperse_subband(plan, SubbandConfig{4, 2},
                                          exact.cview(), out.view()),
               invalid_argument);
}

// ------------------------------------------------------------- host tuner --

TEST(HostTuner, FindsABestConfigAndKeepsAllTimings) {
  const Plan plan = testing::mini_plan(8, 64);
  tuner::HostTuningOptions opt;
  opt.repetitions = 1;
  opt.warmup_runs = 0;
  opt.threads = 1;
  const std::vector<KernelConfig> configs = {
      KernelConfig{8, 1, 1, 1}, KernelConfig{8, 2, 4, 2},
      KernelConfig{16, 4, 2, 2}};
  const tuner::HostTuningResult r = tuner::tune_host(plan, opt, configs);
  EXPECT_EQ(r.timings.size(), 3u);
  EXPECT_EQ(r.stats.count, 3u);
  for (const auto& t : r.timings) {
    EXPECT_GT(t.seconds, 0.0);
    EXPECT_LE(t.gflops, r.best.gflops);
    EXPECT_NEAR(t.gflops, plan.total_flop() / t.seconds * 1e-9, 1e-9);
  }
}

TEST(HostTuner, SkipsInvalidConfigs) {
  const Plan plan = testing::mini_plan(8, 64);
  tuner::HostTuningOptions opt;
  opt.repetitions = 1;
  opt.warmup_runs = 0;
  opt.threads = 1;
  const std::vector<KernelConfig> configs = {
      KernelConfig{5, 1, 1, 1},  // non-dividing: skipped
      KernelConfig{8, 1, 1, 1}};
  const tuner::HostTuningResult r = tuner::tune_host(plan, opt, configs);
  EXPECT_EQ(r.timings.size(), 1u);
  EXPECT_EQ(r.best.config, (KernelConfig{8, 1, 1, 1}));
}

TEST(HostTuner, DefaultLadderIsNonEmptyOnSmallPlans) {
  const Plan plan = testing::mini_plan(8, 64);
  tuner::HostTuningOptions opt;
  opt.repetitions = 1;
  opt.warmup_runs = 0;
  opt.threads = 1;
  const tuner::HostTuningResult r = tuner::tune_host(plan, opt);
  EXPECT_GT(r.timings.size(), 10u);
}

TEST(HostTuner, RejectsZeroRepetitions) {
  const Plan plan = testing::mini_plan(8, 64);
  tuner::HostTuningOptions opt;
  opt.repetitions = 0;
  EXPECT_THROW(tuner::tune_host(plan, opt), invalid_argument);
}

// -------------------------------------------------------------- multibeam --

TEST(MultiBeam, EveryBeamMatchesTheReference) {
  const Plan plan = testing::mini_plan(8, 64);
  pipeline::MultiBeamDedisperser mb(plan, KernelConfig{8, 2, 4, 2});

  std::vector<Array2D<float>> beam_data;
  std::vector<ConstView2D<float>> views;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    beam_data.push_back(random_input(plan, seed));
  }
  for (const auto& b : beam_data) views.push_back(b.cview());

  const std::vector<Array2D<float>> outputs = mb.dedisperse(views, 2);
  ASSERT_EQ(outputs.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    const Array2D<float> expected =
        dedisp::dedisperse_reference(plan, views[b]);
    testing::expect_same_matrix(expected, outputs[b]);
  }
}

TEST(MultiBeam, SearchFindsTheBeamWithThePulsar) {
  const sky::Observation obs = mini_obs();
  const Plan plan = Plan::with_output_samples(obs, 8, 128);
  pipeline::MultiBeamDedisperser mb(plan, KernelConfig{16, 2, 4, 2});

  sky::NoiseParams noise;
  noise.sigma = 0.5;
  std::vector<Array2D<float>> beams;
  for (std::size_t b = 0; b < 4; ++b) {
    noise.seed = 100 + b;
    Array2D<float> data(obs.channels(), plan.in_samples());
    sky::generate_noise(obs, data.view(), noise);
    if (b == 2) {
      sky::PulsarParams pulsar;
      pulsar.dm = obs.dm_value(5);
      pulsar.period_s = 0.4;
      pulsar.width_s = 0.01;
      pulsar.amplitude = 5.0;
      sky::inject_pulsar(obs, data.view(), pulsar);
    }
    beams.push_back(std::move(data));
  }
  std::vector<ConstView2D<float>> views;
  for (const auto& b : beams) views.push_back(b.cview());

  const auto candidate = mb.search(views, 2);
  EXPECT_EQ(candidate.beam, 2u);
  EXPECT_GT(candidate.detection.best_snr, 5.0);
}

TEST(MultiBeam, ValidatesConfigAndInput) {
  const Plan plan = testing::mini_plan(8, 64);
  EXPECT_THROW(
      pipeline::MultiBeamDedisperser(plan, KernelConfig{5, 1, 1, 1}),
      config_error);
  pipeline::MultiBeamDedisperser mb(plan, KernelConfig{8, 2, 4, 2});
  EXPECT_THROW(mb.dedisperse({}), invalid_argument);
  EXPECT_THROW(mb.search({}), invalid_argument);
}

TEST(MultiBeam, RejectsMismatchedBeamShapesBeforeDispatch) {
  const Plan plan = testing::mini_plan(8, 64);
  pipeline::MultiBeamDedisperser mb(plan, KernelConfig{8, 2, 4, 2});

  const Array2D<float> good = random_input(plan);
  Array2D<float> short_beam(plan.channels(), plan.in_samples() - 1);
  Array2D<float> wrong_channels(plan.channels() - 1, plan.in_samples());

  // A beam with too few samples is rejected up front (with the beam index
  // in the message), not from inside a worker thread.
  try {
    mb.dedisperse({good.cview(), short_beam.cview()});
    FAIL() << "expected invalid_argument";
  } catch (const invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("beam 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(mb.dedisperse({wrong_channels.cview(), good.cview()}),
               invalid_argument);
}

TEST(MultiBeam, SearchTieBreaksToTheLowestBeamIndex) {
  // Identical beams produce identical (bitwise) outputs and hence exactly
  // equal peak S/N — the candidate must deterministically be beam 0.
  const Plan plan = testing::mini_plan(8, 64);
  pipeline::MultiBeamDedisperser mb(plan, KernelConfig{8, 2, 4, 2});
  const Array2D<float> data = random_input(plan);
  const std::vector<ConstView2D<float>> beams = {
      data.cview(), data.cview(), data.cview()};
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const auto candidate = mb.search(beams, threads);
    EXPECT_EQ(candidate.beam, 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ddmc
