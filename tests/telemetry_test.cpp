// Tests for the telemetry subsystem: metrics registry semantics, histogram
// percentile windows, the trace buffer, the exporters, and the
// LatencyReport round-trip that keeps gap accounting honest across
// export/import (the real-time margin must not silently absorb dropped
// chunks' observation time).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "common/json.hpp"
#include "stream/latency.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace {

using ddmc::telemetry::Labels;
using ddmc::telemetry::MetricSnapshot;
using ddmc::telemetry::MetricsRegistry;
using ddmc::telemetry::TraceEvent;
using ddmc::telemetry::Tracer;
using ddmc::telemetry::TraceSpan;

// The registry is process-wide; each test that asserts on snapshot contents
// starts from a clean slate. Live handles from other components stay valid
// (they detach), so this is safe even though other suites ran first.
class TelemetryRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
};

TEST_F(TelemetryRegistryTest, CounterAccumulatesAndSharesHandle) {
  auto& reg = MetricsRegistry::instance();
  auto c1 = reg.counter("ddmc.test.events_total");
  c1->increment();
  c1->add(2.5);
  auto c2 = reg.counter("ddmc.test.events_total");
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_DOUBLE_EQ(c2->value(), 3.5);
}

TEST_F(TelemetryRegistryTest, LabelOrderDoesNotSplitIdentity) {
  auto& reg = MetricsRegistry::instance();
  auto a = reg.counter("ddmc.test.labeled_total",
                       {{"b", "2"}, {"a", "1"}});
  auto b = reg.counter("ddmc.test.labeled_total",
                       {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(reg.size(), 1u);
}

TEST_F(TelemetryRegistryTest, KindMismatchThrows) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("ddmc.test.value_total");
  EXPECT_THROW(reg.gauge("ddmc.test.value_total"), ddmc::invalid_argument);
  EXPECT_THROW(reg.histogram("ddmc.test.value_total"),
               ddmc::invalid_argument);
}

TEST_F(TelemetryRegistryTest, InvalidNameRejected) {
  auto& reg = MetricsRegistry::instance();
  EXPECT_THROW(reg.counter("Has-Capitals"), ddmc::invalid_argument);
  EXPECT_THROW(reg.counter(""), ddmc::invalid_argument);
}

TEST_F(TelemetryRegistryTest, SnapshotSortedByNameThenLabels) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("ddmc.test.b_total");
  reg.counter("ddmc.test.a_total", {{"x", "2"}});
  reg.counter("ddmc.test.a_total", {{"x", "1"}});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "ddmc.test.a_total");
  EXPECT_EQ(snap[0].labels[0].second, "1");
  EXPECT_EQ(snap[1].labels[0].second, "2");
  EXPECT_EQ(snap[2].name, "ddmc.test.b_total");
}

TEST_F(TelemetryRegistryTest, ResetDetachesLiveHandles) {
  auto& reg = MetricsRegistry::instance();
  auto c = reg.counter("ddmc.test.detached_total");
  c->increment();
  reg.reset();
  EXPECT_EQ(reg.size(), 0u);
  c->increment();  // must not crash; simply no longer exported
  EXPECT_DOUBLE_EQ(c->value(), 2.0);
  auto fresh = reg.counter("ddmc.test.detached_total");
  EXPECT_DOUBLE_EQ(fresh->value(), 0.0);
}

TEST_F(TelemetryRegistryTest, CounterIsThreadSafe) {
  auto c = MetricsRegistry::instance().counter("ddmc.test.race_total");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c->increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(c->value(), double(kThreads) * kAdds);
}

TEST(TelemetryHistogramTest, ExactPercentilesBelowCapacity) {
  ddmc::telemetry::Histogram h(128);
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.window, 100u);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(TelemetryHistogramTest, TrailingWindowBeyondCapacityKeepsSeriesScalars) {
  ddmc::telemetry::Histogram h(10);
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);   // whole series
  EXPECT_EQ(s.window, 10u);   // percentiles cover the last 10 (91..100)
  EXPECT_GE(s.p50, 91.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);   // never windowed
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
}

TEST(TelemetryIdTest, EncodeAndSessionLabels) {
  EXPECT_EQ(ddmc::telemetry::encode_metric_id("m.x_total", {}), "m.x_total");
  EXPECT_EQ(ddmc::telemetry::encode_metric_id(
                "m.x_total", {{"a", "1"}, {"b", "2"}}),
            "m.x_total{a=\"1\",b=\"2\"}");
  const std::string s1 = ddmc::telemetry::next_session_label("t");
  const std::string s2 = ddmc::telemetry::next_session_label("t");
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1.rfind("t-", 0), 0u);
}

// ------------------------------------------------------------------ tracer --

// The tracer is a singleton too; these tests own it while they run.
class TelemetryTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TelemetryTracerTest, DisabledSpanRecordsNothing) {
  {
    TraceSpan span("engine.execute");
    span.arg("engine", "cpu_tiled").arg("dms", std::size_t{256});
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TelemetryTracerTest, EnabledSpanRecordsNameArgsAndDuration) {
  Tracer::instance().set_enabled(true);
  {
    TraceSpan span("stream.chunk");
    span.arg("chunk", std::size_t{7}).arg("engine", "cpu_tiled");
    span.arg("gflops", 1.5);
  }
  Tracer::instance().record_instant("stream.gap", Tracer::now_ns(),
                                    "\"chunk\": 8");
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "stream.chunk");
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kComplete);
  EXPECT_EQ(std::string(events[0].args),
            "\"chunk\": 7, \"engine\": \"cpu_tiled\", \"gflops\": 1.5");
  EXPECT_GT(events[0].tid, 0u);
  EXPECT_STREQ(events[1].name, "stream.gap");
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[1].dur_ns, 0u);
}

TEST_F(TelemetryTracerTest, OverlongArgsTruncateAtPairBoundary) {
  Tracer::instance().set_enabled(true);
  {
    TraceSpan span("shard.task");
    span.arg("first", std::size_t{1});
    span.arg("huge", std::string(200, 'x'));  // cannot fit: dropped whole
    span.arg("tail", std::size_t{2});
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  const std::string args = events[0].args;
  EXPECT_NE(args.find("\"first\": 1"), std::string::npos);
  EXPECT_EQ(args.find('x'), std::string::npos);
  // Whatever fit is still a valid JSON object body.
  const auto v = ddmc::json::parse("{" + args + "}");
  EXPECT_DOUBLE_EQ(v.at("first").as_number(), 1.0);
}

TEST_F(TelemetryTracerTest, BufferFullDropsInsteadOfBlocking) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  const std::size_t cap = tracer.capacity();
  for (std::size_t i = 0; i < cap + 100; ++i) {
    tracer.record_instant("spam", 0);
  }
  EXPECT_EQ(tracer.events().size(), cap);
  EXPECT_EQ(tracer.dropped(), 100u);
  tracer.clear();
  EXPECT_EQ(tracer.events().size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST_F(TelemetryTracerTest, ConcurrentRecordingLosesNothingBelowCapacity) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kEvents; ++i) {
        TraceSpan span("engine.execute");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tracer.events().size(),
            static_cast<std::size_t>(kThreads) * kEvents);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --------------------------------------------------------------- exporters --

TEST_F(TelemetryRegistryTest, PrometheusExportFormat) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("ddmc.engine.executions_total", {{"engine", "cpu_tiled"}})
      ->add(3);
  reg.gauge("ddmc.engine.gflops", {{"engine", "cpu_tiled"}})->set(12.5);
  auto h = reg.histogram("ddmc.stream.chunk_latency_seconds",
                         {{"session", "s-1"}});
  h->record(0.25);
  h->record(0.75);
  const std::string text = ddmc::telemetry::export_prometheus();
  EXPECT_NE(text.find("# TYPE ddmc_engine_executions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ddmc_engine_executions_total{engine=\"cpu_tiled\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ddmc_engine_gflops gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ddmc_stream_chunk_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("ddmc_stream_chunk_latency_seconds{session=\"s-1\","
                      "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ddmc_stream_chunk_latency_seconds_sum"),
            std::string::npos);
  EXPECT_NE(text.find("ddmc_stream_chunk_latency_seconds_count"),
            std::string::npos);
  EXPECT_EQ(text.find("ddmc."), std::string::npos);  // names have no dots
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(TelemetryRegistryTest, PrometheusLabelValuesUseExpositionEscapes) {
  // The exposition format defines exactly three label-value escapes:
  // \\ , \" and \n. The exporter used to route values through
  // json::escape, which emits \uXXXX and \t sequences a Prometheus
  // scraper has no rule for and would ingest literally.
  auto& reg = MetricsRegistry::instance();
  reg.counter("ddmc.engine.executions_total",
              {{"engine", "we\"ird\\name\nline\ttab"}})
      ->add(1);
  const std::string text = ddmc::telemetry::export_prometheus();
  // Quote, backslash and newline use the exposition escapes...
  EXPECT_NE(
      text.find("engine=\"we\\\"ird\\\\name\\nline\ttab\""),
      std::string::npos)
      << text;
  // ...and no JSON-style escape ever appears: the tab stays literal and
  // nothing is \u-encoded.
  EXPECT_EQ(text.find("\\t"), std::string::npos) << text;
  EXPECT_EQ(text.find("\\u"), std::string::npos) << text;
}

TEST_F(TelemetryRegistryTest, SnapshotJsonParsesAndCarriesMetrics) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("ddmc.shard.retries_total")->add(4);
  auto h = reg.histogram("ddmc.test.h");
  h->record(1.0);
  const auto v =
      ddmc::json::parse(ddmc::telemetry::snapshot_json().dump());
  const auto& metrics = v.at("metrics");
  EXPECT_DOUBLE_EQ(metrics.at("ddmc.shard.retries_total").as_number(), 4.0);
  const auto& hist = metrics.at("ddmc.test.h");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 1.0);
  const auto& trace = v.at("trace");
  EXPECT_TRUE(trace.contains("recorded"));
  EXPECT_TRUE(trace.contains("dropped"));
  EXPECT_TRUE(trace.contains("enabled"));
}

TEST_F(TelemetryTracerTest, ChromeTraceExportIsValidAndTyped) {
  Tracer::instance().set_enabled(true);
  {
    TraceSpan span("engine.execute");
    span.arg("engine", "cpu_tiled");
  }
  Tracer::instance().record_instant("shard.retry", Tracer::now_ns());
  const auto v =
      ddmc::json::parse(ddmc::telemetry::export_chrome_trace());
  const auto& events = v.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  const auto& complete = events.at(0);
  EXPECT_EQ(complete.at("ph").as_string(), "X");
  EXPECT_EQ(complete.at("name").as_string(), "engine.execute");
  EXPECT_GE(complete.at("dur").as_number(), 0.0);
  EXPECT_EQ(complete.at("args").at("engine").as_string(), "cpu_tiled");
  const auto& instant = events.at(1);
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("name").as_string(), "shard.retry");
}

// Satellite: the gap accounting must round-trip through the exporters —
// a report reconstructed from JSON keeps gap seconds out of data_seconds
// so the real-time margin stays a measure of the work actually done.
TEST(TelemetryLatencyRoundTripTest, ReportRoundTripsExactlyIncludingGaps) {
  ddmc::stream::LatencyReport r;
  r.chunks = 17;
  r.latency_window = 17;
  r.data_seconds = 4.25;
  r.compute_seconds = 1.0625;
  r.p50_latency = 0.071;
  r.p95_latency = 0.113;
  r.p99_latency = 0.21700000000000003;  // exercises max_digits10
  r.max_latency = 0.5;
  r.mean_compute = 0.0625;
  r.real_time_margin = 4.0;
  r.seconds_per_data_second = 0.25;
  r.gap_chunks = 3;
  r.gap_data_seconds = 0.75;
  const auto v =
      ddmc::json::parse(ddmc::telemetry::latency_report_to_json(r).dump());
  const auto back = ddmc::telemetry::latency_report_from_json(v);
  EXPECT_EQ(back.chunks, r.chunks);
  EXPECT_EQ(back.latency_window, r.latency_window);
  EXPECT_DOUBLE_EQ(back.data_seconds, r.data_seconds);
  EXPECT_DOUBLE_EQ(back.compute_seconds, r.compute_seconds);
  EXPECT_DOUBLE_EQ(back.p50_latency, r.p50_latency);
  EXPECT_DOUBLE_EQ(back.p95_latency, r.p95_latency);
  EXPECT_DOUBLE_EQ(back.p99_latency, r.p99_latency);
  EXPECT_DOUBLE_EQ(back.max_latency, r.max_latency);
  EXPECT_DOUBLE_EQ(back.mean_compute, r.mean_compute);
  EXPECT_DOUBLE_EQ(back.real_time_margin, r.real_time_margin);
  EXPECT_DOUBLE_EQ(back.seconds_per_data_second, r.seconds_per_data_second);
  EXPECT_EQ(back.gap_chunks, r.gap_chunks);
  EXPECT_DOUBLE_EQ(back.gap_data_seconds, r.gap_data_seconds);
  // The invariant the round-trip protects: margin excludes gap time.
  EXPECT_DOUBLE_EQ(back.real_time_margin,
                   back.data_seconds / back.compute_seconds);
}

// A LatencyTracker is a registry view: its report and a scrape of its
// session-labeled metrics are the same numbers.
TEST(TelemetryLatencyViewTest, TrackerReportMatchesRegistryMetrics) {
  MetricsRegistry::instance().reset();
  ddmc::stream::LatencyTracker tracker(64);
  for (int i = 1; i <= 4; ++i) {
    ddmc::stream::ChunkTiming t;
    t.data_seconds = 1.0;
    t.compute_seconds = 0.25;
    t.latency_seconds = 0.1 * i;
    tracker.record(t);
  }
  tracker.record_gap(2.0);
  const auto report = tracker.report();
  EXPECT_EQ(report.chunks, 4u);
  EXPECT_DOUBLE_EQ(report.data_seconds, 4.0);
  EXPECT_DOUBLE_EQ(report.real_time_margin, 4.0);
  EXPECT_EQ(report.gap_chunks, 1u);
  EXPECT_DOUBLE_EQ(report.gap_data_seconds, 2.0);

  const ddmc::telemetry::Labels labels = {{"session", tracker.session()}};
  auto gap = MetricsRegistry::instance().counter(
      "ddmc.stream.gap_data_seconds_total", labels);
  EXPECT_DOUBLE_EQ(gap->value(), 2.0);
  const std::string text = ddmc::telemetry::export_prometheus();
  EXPECT_NE(text.find("ddmc_stream_gap_data_seconds_total{session=\"" +
                      tracker.session() + "\"} 2"),
            std::string::npos);
}

// Gap-only sessions (every chunk skipped) still report their losses.
TEST(TelemetryLatencyViewTest, GapOnlyReportKeepsGapFields) {
  MetricsRegistry::instance().reset();
  ddmc::stream::LatencyTracker tracker(8);
  tracker.record_gap(1.5);
  const auto report = tracker.report();
  EXPECT_EQ(report.chunks, 0u);
  EXPECT_EQ(report.gap_chunks, 1u);
  EXPECT_DOUBLE_EQ(report.gap_data_seconds, 1.5);
  const auto v =
      ddmc::json::parse(
          ddmc::telemetry::latency_report_to_json(report).dump());
  const auto back = ddmc::telemetry::latency_report_from_json(v);
  EXPECT_EQ(back.gap_chunks, 1u);
  EXPECT_DOUBLE_EQ(back.gap_data_seconds, 1.5);
}

}  // namespace
