// Tests for the MiniCL functional simulator: the NDRange engine's execution
// and accounting semantics, and the simulated dedispersion kernel's
// bit-exactness and traffic counters.

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"
#include "dedisp/reference.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/memory_model.hpp"
#include "ocl/sim_dedisp.hpp"
#include "ocl/sim_engine.hpp"
#include "test_util.hpp"

namespace ddmc::ocl {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::expect_same_matrix;
using testing::mini_obs;
using testing::mini_plan;
using testing::random_input;

// ------------------------------------------------------------- sim engine --

TEST(SimEngine, RunsEveryGroupOnce) {
  NDRange range{3, 4, 2, 2};
  std::size_t visits = 0;
  const MemCounters c = execute_ndrange(
      range, 0, 0, [&](GroupContext& ctx) {
        ++visits;
        EXPECT_LT(ctx.group_x(), 3u);
        EXPECT_LT(ctx.group_y(), 4u);
      });
  EXPECT_EQ(visits, 12u);
  EXPECT_EQ(c.groups, 12u);
}

TEST(SimEngine, PhaseVisitsEveryItemAndCountsBarrier) {
  NDRange range{1, 1, 4, 3};
  const MemCounters c = execute_ndrange(range, 0, 0, [&](GroupContext& ctx) {
    std::vector<int> seen(12, 0);
    ctx.phase([&](const ItemId& it) { ++seen[it.linear(4)]; });
    for (int s : seen) EXPECT_EQ(s, 1);
    ctx.phase([](const ItemId&) {});
  });
  EXPECT_EQ(c.barriers, 2u);
}

TEST(SimEngine, PhasesActAsBarriers) {
  // Data written by all items in phase 1 must be visible in phase 2 —
  // the property a real barrier(CLK_LOCAL_MEM_FENCE) guarantees.
  NDRange range{1, 1, 8, 1};
  execute_ndrange(range, 1024, 0, [&](GroupContext& ctx) {
    LocalSpan local = ctx.local_alloc(8);
    ctx.phase([&](const ItemId& it) {
      local.store(it.x, static_cast<float>(it.x));
    });
    ctx.phase([&](const ItemId&) {
      float sum = 0.0f;
      for (std::size_t i = 0; i < 8; ++i) sum += local.load(i);
      EXPECT_EQ(sum, 28.0f);  // 0+1+…+7
    });
  });
}

TEST(SimEngine, LocalAllocationLimitEnforced) {
  NDRange range{1, 1, 1, 1};
  EXPECT_THROW(
      execute_ndrange(range, 16, 0,
                      [&](GroupContext& ctx) { ctx.local_alloc(5); }),
      config_error);
  EXPECT_NO_THROW(execute_ndrange(
      range, 16, 0, [&](GroupContext& ctx) { ctx.local_alloc(4); }));
}

TEST(SimEngine, LocalAllocationsAccumulateAgainstLimit) {
  NDRange range{1, 1, 1, 1};
  EXPECT_THROW(execute_ndrange(range, 32, 0,
                               [&](GroupContext& ctx) {
                                 ctx.local_alloc(4);
                                 ctx.local_alloc(4);
                                 ctx.local_alloc(1);  // 36 bytes > 32
                               }),
               config_error);
}

TEST(SimEngine, GroupSizeLimitEnforced) {
  NDRange range{1, 1, 32, 2};
  EXPECT_THROW(execute_ndrange(range, 0, 32, [](GroupContext&) {}),
               config_error);
  EXPECT_NO_THROW(execute_ndrange(range, 0, 64, [](GroupContext&) {}));
  EXPECT_NO_THROW(execute_ndrange(range, 0, 0, [](GroupContext&) {}));
}

TEST(SimEngine, BuffersCountTraffic) {
  Array2D<float> in(2, 8), out(2, 8);
  in(1, 3) = 7.0f;
  MemCounters c;
  GlobalReadBuffer r(in.cview(), c);
  GlobalWriteBuffer w(out.view(), c);
  EXPECT_EQ(r.load(1, 3), 7.0f);
  w.store(0, 0, 1.0f);
  w.store(0, 1, 2.0f);
  EXPECT_EQ(c.global_loads, 1u);
  EXPECT_EQ(c.global_stores, 2u);
  EXPECT_EQ(out(0, 1), 2.0f);
}

TEST(SimEngine, CountersAggregate) {
  MemCounters a, b;
  a.global_loads = 5;
  a.flops = 2;
  b.global_loads = 3;
  b.barriers = 1;
  a += b;
  EXPECT_EQ(a.global_loads, 8u);
  EXPECT_EQ(a.flops, 2u);
  EXPECT_EQ(a.barriers, 1u);
}

TEST(SimEngine, RejectsEmptyRanges) {
  EXPECT_THROW(
      execute_ndrange(NDRange{0, 1, 1, 1}, 0, 0, [](GroupContext&) {}),
      invalid_argument);
  EXPECT_THROW(
      execute_ndrange(NDRange{1, 1, 0, 1}, 0, 0, [](GroupContext&) {}),
      invalid_argument);
}

// ----------------------------------------------------- simulated dedisp --

class SimEquivalence : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(SimEquivalence, StagedVariantMatchesReference) {
  if (GetParam().tile_dm() == 1) GTEST_SKIP() << "staging needs tile_dm>1";
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisp::dedisperse_reference(plan, in.cview());
  Array2D<float> out(plan.dms(), plan.out_samples());
  const SimRunResult run = simulate_dedisp_variant(
      amd_hd7970(), plan, GetParam(), in.cview(), out.view(), true);
  EXPECT_TRUE(run.staged);
  expect_same_matrix(expected, out);
}

TEST_P(SimEquivalence, DirectVariantMatchesReference) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  const Array2D<float> expected = dedisp::dedisperse_reference(plan, in.cview());
  Array2D<float> out(plan.dms(), plan.out_samples());
  const SimRunResult run = simulate_dedisp_variant(
      intel_xeon_phi(), plan, GetParam(), in.cview(), out.view(), false);
  EXPECT_FALSE(run.staged);
  expect_same_matrix(expected, out);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, SimEquivalence,
    ::testing::Values(
        KernelConfig{1, 1, 1, 1}, KernelConfig{4, 2, 2, 2},
        KernelConfig{8, 1, 8, 1}, KernelConfig{2, 4, 4, 2},
        KernelConfig{16, 2, 2, 2}, KernelConfig{8, 2, 2, 4},
        KernelConfig{1, 8, 1, 1}, KernelConfig{16, 4, 4, 2},
        KernelConfig{32, 2, 2, 1}, KernelConfig{4, 4, 16, 2}),
    [](const ::testing::TestParamInfo<KernelConfig>& pinfo) {
      const KernelConfig& c = pinfo.param;
      return "wt" + std::to_string(c.wi_time) + "_wd" +
             std::to_string(c.wi_dm) + "_et" + std::to_string(c.elem_time) +
             "_ed" + std::to_string(c.elem_dm);
    });

TEST(SimDedisp, AutoSelectsStagedOnGpus) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const SimRunResult staged = simulate_dedisp(
      amd_hd7970(), plan, KernelConfig{8, 2, 4, 2}, in.cview(), out.view());
  EXPECT_TRUE(staged.staged);
  const SimRunResult direct = simulate_dedisp(
      intel_xeon_phi(), plan, KernelConfig{8, 2, 4, 2}, in.cview(),
      out.view());
  EXPECT_FALSE(direct.staged);
  const SimRunResult one_dm = simulate_dedisp(
      amd_hd7970(), plan, KernelConfig{8, 1, 4, 1}, in.cview(), out.view());
  EXPECT_FALSE(one_dm.staged);  // a single trial per tile has no reuse
}

TEST(SimDedisp, FlopAndStoreCountsAreExact) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const SimRunResult run = simulate_dedisp(
      amd_hd7970(), plan, KernelConfig{8, 2, 4, 2}, in.cview(), out.view());
  EXPECT_EQ(run.counters.flops,
            static_cast<std::uint64_t>(plan.total_flop()));
  EXPECT_EQ(run.counters.global_stores, 8u * 64u);
  const KernelConfig cfg{8, 2, 4, 2};
  EXPECT_EQ(run.counters.groups, cfg.total_groups(plan));
}

TEST(SimDedisp, DirectVariantLoadsOncePerAccumulate) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const SimRunResult run = simulate_dedisp_variant(
      intel_xeon_phi(), plan, KernelConfig{8, 2, 4, 2}, in.cview(),
      out.view(), false);
  EXPECT_EQ(run.counters.global_loads, run.counters.flops);
  EXPECT_EQ(run.counters.local_loads, 0u);
}

TEST(SimDedisp, StagedLoadsMatchAnalyticUniqueTraffic) {
  // The headline cross-validation: the loads the functional simulator
  // *counts* equal the distinct elements the memory model *predicts*.
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  for (const auto& cfg :
       {KernelConfig{8, 2, 4, 2}, KernelConfig{4, 4, 2, 2},
        KernelConfig{16, 2, 4, 4}, KernelConfig{2, 8, 8, 1}}) {
    const SimRunResult run = simulate_dedisp_variant(
        amd_hd7970(), plan, cfg, in.cview(), out.view(), true);
    const sky::SpreadStats spreads =
        plan.delays().tile_spreads(cfg.tile_dm());
    const TrafficEstimate traffic =
        estimate_traffic(amd_hd7970(), plan, cfg, spreads);
    EXPECT_EQ(run.counters.global_loads,
              static_cast<std::uint64_t>(traffic.unique_input_floats))
        << cfg.to_string();
    // Every accumulate reads local memory exactly once.
    EXPECT_EQ(run.counters.local_loads, run.counters.flops);
    // Every staged element is written exactly once.
    EXPECT_EQ(run.counters.local_stores, run.counters.global_loads);
  }
}

TEST(SimDedisp, StagedReusesLessTrafficThanDirect) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const KernelConfig cfg{8, 4, 4, 2};  // tile_dm = 8: maximal reuse window
  const SimRunResult staged = simulate_dedisp_variant(
      amd_hd7970(), plan, cfg, in.cview(), out.view(), true);
  const SimRunResult direct = simulate_dedisp_variant(
      amd_hd7970(), plan, cfg, in.cview(), out.view(), false);
  EXPECT_LT(staged.counters.global_loads, direct.counters.global_loads);
}

TEST(SimDedisp, ZeroDmStagedTrafficDropsByTileDm) {
  const Plan plan =
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  const KernelConfig cfg{8, 4, 4, 2};
  const SimRunResult run = simulate_dedisp_variant(
      amd_hd7970(), plan, cfg, in.cview(), out.view(), true);
  // Perfect reuse: loads = flops / tile_dm.
  EXPECT_EQ(run.counters.global_loads, run.counters.flops / cfg.tile_dm());
}

TEST(SimDedisp, EnforcesDeviceGroupSizeLimit) {
  const sky::Observation obs("wide", 2048.0, 4, 100.0, 10.0, 0.0, 0.1);
  const Plan plan = Plan::with_output_samples(obs, 4, 2048);
  Array2D<float> in(plan.channels(), plan.in_samples());
  Array2D<float> out(plan.dms(), plan.out_samples());
  // 512×1 work-items exceeds the HD7970's 256 limit.
  EXPECT_THROW(simulate_dedisp(amd_hd7970(), plan, KernelConfig{512, 1, 1, 2},
                               in.cview(), out.view()),
               config_error);
}

TEST(SimDedisp, EnforcesLocalMemoryLimit) {
  DeviceModel tiny = amd_hd7970();
  tiny.local_mem_per_group_bytes = 64;  // 16 floats
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_THROW(
      simulate_dedisp(tiny, plan, KernelConfig{16, 2, 4, 2}, in.cview(),
                      out.view()),
      config_error);
}

TEST(SimDedisp, StagedVariantRequiresLocalMemoryDevice) {
  const Plan plan = mini_plan(8, 64);
  const Array2D<float> in = random_input(plan);
  Array2D<float> out(plan.dms(), plan.out_samples());
  EXPECT_THROW(
      simulate_dedisp_variant(intel_xeon_phi(), plan,
                              KernelConfig{8, 2, 4, 2}, in.cview(),
                              out.view(), true),
      invalid_argument);
}

}  // namespace
}  // namespace ddmc::ocl
