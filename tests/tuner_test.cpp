// Tests for the auto-tuner: search-space enumeration, optimum selection and
// statistics, fixed-configuration selection, and result persistence.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/expect.hpp"
#include "ocl/device_presets.hpp"
#include "test_util.hpp"
#include "tuner/fixed_config.hpp"
#include "tuner/results_io.hpp"
#include "tuner/search_space.hpp"
#include "tuner/tuner.hpp"

namespace ddmc::tuner {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using ocl::PlanAnalysis;
using testing::mini_obs;
using testing::mini_plan;

// ------------------------------------------------------------ search space --

TEST(SearchSpace, DefaultLaddersAreNonEmptyAndSorted) {
  const SearchSpace s = default_search_space();
  EXPECT_FALSE(s.wi_time.empty());
  EXPECT_FALSE(s.wi_dm.empty());
  EXPECT_FALSE(s.elem_time.empty());
  EXPECT_FALSE(s.elem_dm.empty());
  EXPECT_TRUE(std::is_sorted(s.wi_time.begin(), s.wi_time.end()));
  // The ladder contains the non-power-of-two values behind the paper's
  // 250×4 LOFAR optimum on the GTX 680.
  EXPECT_TRUE(std::count(s.wi_time.begin(), s.wi_time.end(), 250));
}

TEST(SearchSpace, EveryEnumeratedConfigSatisfiesCheapConstraints) {
  const Plan plan = mini_plan(8, 64);
  for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
    const auto configs = enumerate_configs(dev, plan);
    EXPECT_FALSE(configs.empty()) << dev.name;
    for (const KernelConfig& cfg : configs) {
      EXPECT_TRUE(cfg.divides(plan)) << dev.name << " " << cfg.to_string();
      EXPECT_LE(cfg.work_group_size(), dev.max_work_group_size) << dev.name;
      EXPECT_LE(cfg.accumulators_per_item() + dev.reg_overhead_per_item,
                dev.max_regs_per_item)
          << dev.name;
    }
  }
}

TEST(SearchSpace, EnumerationIsDeterministicAndDuplicateFree) {
  const Plan plan = mini_plan(8, 64);
  const auto a = enumerate_configs(ocl::amd_hd7970(), plan);
  const auto b = enumerate_configs(ocl::amd_hd7970(), plan);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  std::set<std::string> keys;
  for (const auto& cfg : a) keys.insert(cfg.to_string());
  EXPECT_EQ(keys.size(), a.size());
}

TEST(SearchSpace, RegisterCapShrinksGtx680Space) {
  // GK104's 63-register cap must prune configurations GK110 keeps.
  const Plan plan(sky::apertif(), 128);
  const auto gk104 = enumerate_configs(ocl::nvidia_gtx680(), plan);
  const auto gk110 = enumerate_configs(ocl::nvidia_k20(), plan);
  EXPECT_LT(gk104.size(), gk110.size());
}

TEST(SearchSpace, CustomLaddersRespected) {
  const Plan plan = mini_plan(8, 64);
  SearchSpace tiny;
  tiny.wi_time = {8};
  tiny.wi_dm = {1, 2};
  tiny.elem_time = {1};
  tiny.elem_dm = {1};
  const auto configs = enumerate_configs(ocl::amd_hd7970(), plan, tiny);
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0], (KernelConfig{8, 1, 1, 1}));
  EXPECT_EQ(configs[1], (KernelConfig{8, 2, 1, 1}));
}

TEST(SearchSpace, HostEnumerationSweepsChannelBlockAndUnroll) {
  // On a many-channel plan the host space crosses the paper's four axes
  // with every meaningful channel_block and unroll ladder value.
  const Plan plan = Plan::with_output_samples(sky::apertif(), 16, 200);
  const auto configs = enumerate_host_configs(plan, 1024);
  ASSERT_FALSE(configs.empty());
  std::set<std::size_t> blocks, unrolls;
  for (const KernelConfig& cfg : configs) {
    EXPECT_TRUE(cfg.divides(plan)) << cfg.to_string();
    EXPECT_TRUE(cfg.channel_block == 0 ||
                cfg.channel_block < plan.channels())
        << cfg.to_string();
    blocks.insert(cfg.channel_block);
    unrolls.insert(cfg.unroll);
  }
  const SearchSpace space = default_search_space();
  EXPECT_EQ(blocks.size(), space.channel_block.size());
  EXPECT_EQ(unrolls.size(), space.unroll.size());
}

TEST(SearchSpace, HostEnumerationDropsOversizedChannelBlocks) {
  // 8 channels: every ladder block ≥ 8 collapses onto the single-pass 0.
  const Plan plan = mini_plan(8, 64);
  const auto configs = enumerate_host_configs(plan, 1024);
  ASSERT_FALSE(configs.empty());
  for (const KernelConfig& cfg : configs) {
    EXPECT_EQ(cfg.channel_block, 0u) << cfg.to_string();
  }
}

TEST(SearchSpace, DeviceEnumerationKeepsHostAxesAtDefaults) {
  const Plan plan = mini_plan(8, 64);
  for (const KernelConfig& cfg :
       enumerate_configs(ocl::amd_hd7970(), plan)) {
    EXPECT_EQ(cfg.channel_block, 0u);
    EXPECT_EQ(cfg.unroll, 1u);
  }
}

// ------------------------------------------------------------------ tuner --

TEST(Tuner, OptimumDominatesPopulation) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  TuningOptions opt;
  opt.keep_population = true;
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, opt);
  EXPECT_GT(r.evaluated, 0u);
  ASSERT_EQ(r.population.size(), r.evaluated);
  for (const ConfigPerf& cp : r.population) {
    EXPECT_LE(cp.perf.gflops, r.best.perf.gflops) << cp.config.to_string();
  }
  EXPECT_DOUBLE_EQ(r.stats.max, r.best.perf.gflops);
  EXPECT_EQ(r.stats.count, r.evaluated);
}

TEST(Tuner, PopulationNotKeptByDefault) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::amd_hd7970(), analysis);
  EXPECT_TRUE(r.population.empty());
  EXPECT_GT(r.evaluated, 0u);
}

TEST(Tuner, MetadataIdentifiesTheSweep) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::nvidia_k20(), analysis);
  EXPECT_EQ(r.device_name, "K20");
  EXPECT_EQ(r.observation_name, "mini");
  EXPECT_EQ(r.dms, 8u);
}

TEST(Tuner, SnrOfOptimumIsNonNegative) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::amd_hd7970(), analysis);
  EXPECT_GE(r.snr_of_optimum(), 0.0);
}

TEST(Tuner, ExplicitConfigListRestrictsTheSweep) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> only = {KernelConfig{8, 1, 1, 1},
                                          KernelConfig{8, 2, 1, 1}};
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, {}, only);
  EXPECT_LE(r.evaluated + r.skipped, 2u);
  EXPECT_TRUE(r.best.config == only[0] || r.best.config == only[1]);
}

TEST(Tuner, InvalidConfigsAreSkippedNotFatal) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> mixed = {
      KernelConfig{5, 1, 1, 1},   // non-dividing: skipped
      KernelConfig{8, 1, 1, 1}};  // valid
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, {}, mixed);
  EXPECT_EQ(r.skipped, 1u);
  EXPECT_EQ(r.evaluated, 1u);
  EXPECT_EQ(r.best.config, (KernelConfig{8, 1, 1, 1}));
}

TEST(Tuner, ThrowsWhenNothingIsMeaningful) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> bad = {KernelConfig{5, 1, 1, 1},
                                         KernelConfig{7, 3, 1, 1}};
  EXPECT_THROW(tune(ocl::amd_hd7970(), analysis, {}, bad), config_error);
}

TEST(Tuner, ZeroDmTuningFindsAtLeastRealPerformance) {
  // §V-C: the tuned optimum under perfect reuse is at least the real one.
  const PlanAnalysis real(Plan::with_output_samples(mini_obs(), 8, 64));
  const PlanAnalysis zero(
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64));
  const double g_real = tune(ocl::amd_hd7970(), real).best.perf.gflops;
  const double g_zero = tune(ocl::amd_hd7970(), zero).best.perf.gflops;
  EXPECT_GE(g_zero, g_real * 0.999);
}

// ----------------------------------------------------------- fixed config --

TEST(FixedConfig, ValidOnEveryInstanceAndNeverBeatsTuned) {
  const sky::Observation obs = mini_obs();
  std::vector<PlanAnalysis> analyses;
  analyses.reserve(3);
  for (std::size_t dms : {2u, 4u, 8u}) {
    analyses.emplace_back(Plan::with_output_samples(obs, dms, 64));
  }
  std::vector<const PlanAnalysis*> ptrs;
  for (const auto& a : analyses) ptrs.push_back(&a);

  const FixedConfigResult fixed =
      best_fixed_config(ocl::amd_hd7970(), ptrs);
  ASSERT_EQ(fixed.per_instance_gflops.size(), 3u);

  double total = 0.0;
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    // The fixed config runs everywhere…
    const ocl::PerfEstimate p =
        ocl::estimate_performance(ocl::amd_hd7970(), *ptrs[i], fixed.config);
    EXPECT_NEAR(p.gflops, fixed.per_instance_gflops[i], 1e-9);
    total += p.gflops;
    // …and the per-instance tuned optimum dominates it (Figs. 13–14 have
    // speedup ≥ 1 everywhere).
    const TuningResult tuned = tune(ocl::amd_hd7970(), *ptrs[i]);
    EXPECT_GE(tuned.best.perf.gflops, p.gflops * 0.999);
  }
  EXPECT_NEAR(total, fixed.total_gflops, 1e-9);
}

TEST(FixedConfig, RequiresInstances) {
  std::vector<const PlanAnalysis*> none;
  EXPECT_THROW(best_fixed_config(ocl::amd_hd7970(), none), invalid_argument);
}

// ------------------------------------------------------------- results io --

TEST(ResultsIo, RoundTrips) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  std::vector<ResultRow> rows;
  rows.push_back(to_row(tune(ocl::amd_hd7970(), analysis)));
  rows.push_back(to_row(tune(ocl::nvidia_k20(), analysis)));

  std::stringstream ss;
  save_results(ss, rows);
  const std::vector<ResultRow> loaded = load_results(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].device, "HD7970");
  EXPECT_EQ(loaded[1].device, "K20");
  EXPECT_EQ(loaded[0].config, rows[0].config);
  EXPECT_NEAR(loaded[0].gflops, rows[0].gflops, 1e-6 * rows[0].gflops);
  EXPECT_EQ(loaded[0].dms, 8u);
}

namespace {
constexpr const char* kSchemaLine = "# ddmc-tuner-results v2 cols=13\n";
constexpr const char* kHeaderLine =
    "device,observation,dms,wi_time,wi_dm,elem_time,elem_dm,"
    "channel_block,unroll,gflops,seconds,snr,evaluated\n";

std::string error_of(std::istream& is) {
  try {
    load_results(is);
  } catch (const invalid_argument& e) {
    return e.what();
  }
  return "";
}
}  // namespace

TEST(ResultsIo, SavesTheSchemaLineFirst) {
  std::stringstream ss;
  save_results(ss, {});
  std::string first;
  ASSERT_TRUE(std::getline(ss, first));
  EXPECT_EQ(first, "# ddmc-tuner-results v2 cols=13");
}

TEST(ResultsIo, RejectsCorruptInput) {
  {
    std::stringstream ss("not,a,header\n");
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
  {
    std::stringstream empty;
    EXPECT_THROW(load_results(empty), invalid_argument);
  }
  {
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine << "HD7970,mini,8,1,1\n";  // truncated
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
  {
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine
       << "HD7970,mini,eight,1,1,1,1,0,1,1.0,1.0,1.0,5\n";  // non-numeric dms
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
}

TEST(ResultsIo, DiagnosesAPreSchemaFileClearly) {
  // A file written before the schema line existed starts straight with the
  // column header; the error must say so rather than "unexpected header".
  std::stringstream ss;
  ss << kHeaderLine << "K20,Apertif,64,32,4,5,2,128,2,123.4,0.01,3.2,900\n";
  const std::string msg = error_of(ss);
  EXPECT_NE(msg.find("no schema line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("re-run the sweep"), std::string::npos) << msg;
}

TEST(ResultsIo, DiagnosesVersionAndColumnMismatches) {
  {
    std::stringstream ss;
    ss << "# ddmc-tuner-results v1 cols=11\n";  // stale pre-PR-1 sweep
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("version mismatch"), std::string::npos) << msg;
  }
  {
    std::stringstream ss;
    ss << "# ddmc-tuner-results v2 cols=11\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("11 columns"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expects 13"), std::string::npos) << msg;
  }
  {
    // Schema line ok, but the header row lost two columns (hand-edited).
    std::stringstream ss;
    ss << kSchemaLine
       << "device,observation,dms,wi_time,wi_dm,elem_time,elem_dm,"
          "gflops,seconds,snr,evaluated\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("11 columns"), std::string::npos) << msg;
  }
  {
    // Row with the wrong column count names the counts.
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine << "K20,Apertif,64,32,4\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("5 columns"), std::string::npos) << msg;
  }
}

TEST(ResultsIo, SkipsBlankLines) {
  std::stringstream ss;
  ss << kSchemaLine << kHeaderLine << "\n"
     << "K20,Apertif,64,32,4,5,2,128,2,123.4,0.01,3.2,900\n";
  const auto rows = load_results(ss);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].device, "K20");
  EXPECT_EQ(rows[0].config, (dedisp::KernelConfig{32, 4, 5, 2, 128, 2}));
  EXPECT_EQ(rows[0].evaluated, 900u);
}

}  // namespace
}  // namespace ddmc::tuner
