// Tests for the auto-tuner: search-space enumeration and host-execution
// deduplication, optimum selection and statistics, the guided search
// strategies (differential against the exhaustive optimum on deterministic
// synthetic landscapes), the persistent tuning cache with nearest-neighbor
// transfer, fixed-configuration selection, and result persistence
// (including a randomized save→load round-trip property).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/expect.hpp"
#include "common/random.hpp"
#include "engine/engine_config.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "test_util.hpp"
#include "tuner/fixed_config.hpp"
#include "tuner/host_tuner.hpp"
#include "tuner/results_io.hpp"
#include "tuner/search_space.hpp"
#include "tuner/strategy.hpp"
#include "tuner/tuner.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::tuner {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using ocl::PlanAnalysis;
using testing::mini_obs;
using testing::mini_plan;

// ------------------------------------------------------------ search space --

TEST(SearchSpace, DefaultLaddersAreNonEmptyAndSorted) {
  const SearchSpace s = default_search_space();
  EXPECT_FALSE(s.wi_time.empty());
  EXPECT_FALSE(s.wi_dm.empty());
  EXPECT_FALSE(s.elem_time.empty());
  EXPECT_FALSE(s.elem_dm.empty());
  EXPECT_TRUE(std::is_sorted(s.wi_time.begin(), s.wi_time.end()));
  // The ladder contains the non-power-of-two values behind the paper's
  // 250×4 LOFAR optimum on the GTX 680.
  EXPECT_TRUE(std::count(s.wi_time.begin(), s.wi_time.end(), 250));
}

TEST(SearchSpace, EveryEnumeratedConfigSatisfiesCheapConstraints) {
  const Plan plan = mini_plan(8, 64);
  for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
    const auto configs = enumerate_configs(dev, plan);
    EXPECT_FALSE(configs.empty()) << dev.name;
    for (const KernelConfig& cfg : configs) {
      EXPECT_TRUE(cfg.divides(plan)) << dev.name << " " << cfg.to_string();
      EXPECT_LE(cfg.work_group_size(), dev.max_work_group_size) << dev.name;
      EXPECT_LE(cfg.accumulators_per_item() + dev.reg_overhead_per_item,
                dev.max_regs_per_item)
          << dev.name;
    }
  }
}

TEST(SearchSpace, EnumerationIsDeterministicAndDuplicateFree) {
  const Plan plan = mini_plan(8, 64);
  const auto a = enumerate_configs(ocl::amd_hd7970(), plan);
  const auto b = enumerate_configs(ocl::amd_hd7970(), plan);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  std::set<std::string> keys;
  for (const auto& cfg : a) keys.insert(cfg.to_string());
  EXPECT_EQ(keys.size(), a.size());
}

TEST(SearchSpace, RegisterCapShrinksGtx680Space) {
  // GK104's 63-register cap must prune configurations GK110 keeps.
  const Plan plan(sky::apertif(), 128);
  const auto gk104 = enumerate_configs(ocl::nvidia_gtx680(), plan);
  const auto gk110 = enumerate_configs(ocl::nvidia_k20(), plan);
  EXPECT_LT(gk104.size(), gk110.size());
}

TEST(SearchSpace, CustomLaddersRespected) {
  const Plan plan = mini_plan(8, 64);
  SearchSpace tiny;
  tiny.wi_time = {8};
  tiny.wi_dm = {1, 2};
  tiny.elem_time = {1};
  tiny.elem_dm = {1};
  const auto configs = enumerate_configs(ocl::amd_hd7970(), plan, tiny);
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0], (KernelConfig{8, 1, 1, 1}));
  EXPECT_EQ(configs[1], (KernelConfig{8, 2, 1, 1}));
}

TEST(SearchSpace, HostEnumerationSweepsChannelBlockAndUnroll) {
  // On a many-channel plan the host space crosses the paper's four axes
  // with every meaningful channel_block and unroll ladder value.
  const Plan plan = Plan::with_output_samples(sky::apertif(), 16, 200);
  const auto configs = enumerate_host_configs(plan, 1024);
  ASSERT_FALSE(configs.empty());
  std::set<std::size_t> blocks, unrolls;
  for (const KernelConfig& cfg : configs) {
    EXPECT_TRUE(cfg.divides(plan)) << cfg.to_string();
    EXPECT_TRUE(cfg.channel_block == 0 ||
                cfg.channel_block < plan.channels())
        << cfg.to_string();
    blocks.insert(cfg.channel_block);
    unrolls.insert(cfg.unroll);
  }
  const SearchSpace space = default_search_space();
  EXPECT_EQ(blocks.size(), space.channel_block.size());
  EXPECT_EQ(unrolls.size(), space.unroll.size());
}

TEST(SearchSpace, HostEnumerationDropsOversizedChannelBlocks) {
  // 8 channels: every ladder block ≥ 8 collapses onto the single-pass 0.
  const Plan plan = mini_plan(8, 64);
  const auto configs = enumerate_host_configs(plan, 1024);
  ASSERT_FALSE(configs.empty());
  for (const KernelConfig& cfg : configs) {
    EXPECT_EQ(cfg.channel_block, 0u) << cfg.to_string();
  }
}

TEST(SearchSpace, DeviceEnumerationKeepsHostAxesAtDefaults) {
  const Plan plan = mini_plan(8, 64);
  for (const KernelConfig& cfg :
       enumerate_configs(ocl::amd_hd7970(), plan)) {
    EXPECT_EQ(cfg.channel_block, 0u);
    EXPECT_EQ(cfg.unroll, 1u);
  }
}

// ------------------------------------------------------------------ tuner --

TEST(Tuner, OptimumDominatesPopulation) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  TuningOptions opt;
  opt.keep_population = true;
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, opt);
  EXPECT_GT(r.evaluated, 0u);
  ASSERT_EQ(r.population.size(), r.evaluated);
  for (const ConfigPerf& cp : r.population) {
    EXPECT_LE(cp.perf.gflops, r.best.perf.gflops) << cp.config.to_string();
  }
  EXPECT_DOUBLE_EQ(r.stats.max, r.best.perf.gflops);
  EXPECT_EQ(r.stats.count, r.evaluated);
}

TEST(Tuner, PopulationNotKeptByDefault) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::amd_hd7970(), analysis);
  EXPECT_TRUE(r.population.empty());
  EXPECT_GT(r.evaluated, 0u);
}

TEST(Tuner, MetadataIdentifiesTheSweep) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::nvidia_k20(), analysis);
  EXPECT_EQ(r.device_name, "K20");
  EXPECT_EQ(r.observation_name, "mini");
  EXPECT_EQ(r.dms, 8u);
}

TEST(Tuner, SnrOfOptimumIsNonNegative) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const TuningResult r = tune(ocl::amd_hd7970(), analysis);
  EXPECT_GE(r.snr_of_optimum(), 0.0);
}

TEST(Tuner, ExplicitConfigListRestrictsTheSweep) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> only = {KernelConfig{8, 1, 1, 1},
                                          KernelConfig{8, 2, 1, 1}};
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, {}, only);
  EXPECT_LE(r.evaluated + r.skipped, 2u);
  EXPECT_TRUE(r.best.config == only[0] || r.best.config == only[1]);
}

TEST(Tuner, InvalidConfigsAreSkippedNotFatal) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> mixed = {
      KernelConfig{5, 1, 1, 1},   // non-dividing: skipped
      KernelConfig{8, 1, 1, 1}};  // valid
  const TuningResult r = tune(ocl::amd_hd7970(), analysis, {}, mixed);
  EXPECT_EQ(r.skipped, 1u);
  EXPECT_EQ(r.evaluated, 1u);
  EXPECT_EQ(r.best.config, (KernelConfig{8, 1, 1, 1}));
}

TEST(Tuner, ThrowsWhenNothingIsMeaningful) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  const std::vector<KernelConfig> bad = {KernelConfig{5, 1, 1, 1},
                                         KernelConfig{7, 3, 1, 1}};
  EXPECT_THROW(tune(ocl::amd_hd7970(), analysis, {}, bad), config_error);
}

TEST(Tuner, ZeroDmTuningFindsAtLeastRealPerformance) {
  // §V-C: the tuned optimum under perfect reuse is at least the real one.
  const PlanAnalysis real(Plan::with_output_samples(mini_obs(), 8, 64));
  const PlanAnalysis zero(
      Plan::with_output_samples(mini_obs().zero_dm_variant(), 8, 64));
  const double g_real = tune(ocl::amd_hd7970(), real).best.perf.gflops;
  const double g_zero = tune(ocl::amd_hd7970(), zero).best.perf.gflops;
  EXPECT_GE(g_zero, g_real * 0.999);
}

// ----------------------------------------------------------- fixed config --

TEST(FixedConfig, ValidOnEveryInstanceAndNeverBeatsTuned) {
  const sky::Observation obs = mini_obs();
  std::vector<PlanAnalysis> analyses;
  analyses.reserve(3);
  for (std::size_t dms : {2u, 4u, 8u}) {
    analyses.emplace_back(Plan::with_output_samples(obs, dms, 64));
  }
  std::vector<const PlanAnalysis*> ptrs;
  for (const auto& a : analyses) ptrs.push_back(&a);

  const FixedConfigResult fixed =
      best_fixed_config(ocl::amd_hd7970(), ptrs);
  ASSERT_EQ(fixed.per_instance_gflops.size(), 3u);

  double total = 0.0;
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    // The fixed config runs everywhere…
    const ocl::PerfEstimate p =
        ocl::estimate_performance(ocl::amd_hd7970(), *ptrs[i], fixed.config);
    EXPECT_NEAR(p.gflops, fixed.per_instance_gflops[i], 1e-9);
    total += p.gflops;
    // …and the per-instance tuned optimum dominates it (Figs. 13–14 have
    // speedup ≥ 1 everywhere).
    const TuningResult tuned = tune(ocl::amd_hd7970(), *ptrs[i]);
    EXPECT_GE(tuned.best.perf.gflops, p.gflops * 0.999);
  }
  EXPECT_NEAR(total, fixed.total_gflops, 1e-9);
}

TEST(FixedConfig, RequiresInstances) {
  std::vector<const PlanAnalysis*> none;
  EXPECT_THROW(best_fixed_config(ocl::amd_hd7970(), none), invalid_argument);
}

// ------------------------------------------------------------- results io --

TEST(ResultsIo, RoundTrips) {
  const PlanAnalysis analysis(mini_plan(8, 64));
  std::vector<ResultRow> rows;
  rows.push_back(to_row(tune(ocl::amd_hd7970(), analysis)));
  rows.push_back(to_row(tune(ocl::nvidia_k20(), analysis)));

  std::stringstream ss;
  save_results(ss, rows);
  const std::vector<ResultRow> loaded = load_results(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].device, "HD7970");
  EXPECT_EQ(loaded[1].device, "K20");
  EXPECT_EQ(loaded[0].config, rows[0].config);
  EXPECT_NEAR(loaded[0].gflops, rows[0].gflops, 1e-6 * rows[0].gflops);
  EXPECT_EQ(loaded[0].dms, 8u);
}

namespace {
constexpr const char* kSchemaLine = "# ddmc-tuner-results v3 cols=8\n";
constexpr const char* kHeaderLine =
    "device,observation,dms,config,gflops,seconds,snr,evaluated\n";
// The v2 layout (one column per kernel axis) that load_results migrates.
constexpr const char* kLegacySchemaLine = "# ddmc-tuner-results v2 cols=13\n";
constexpr const char* kLegacyHeaderLine =
    "device,observation,dms,wi_time,wi_dm,elem_time,elem_dm,"
    "channel_block,unroll,gflops,seconds,snr,evaluated\n";

std::string error_of(std::istream& is) {
  try {
    load_results(is);
  } catch (const invalid_argument& e) {
    return e.what();
  }
  return "";
}
}  // namespace

TEST(ResultsIo, SavesTheSchemaLineFirst) {
  std::stringstream ss;
  save_results(ss, {});
  std::string first;
  ASSERT_TRUE(std::getline(ss, first));
  EXPECT_EQ(first, "# ddmc-tuner-results v3 cols=8");
}

TEST(ResultsIo, RejectsCorruptInput) {
  {
    std::stringstream ss("not,a,header\n");
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
  {
    std::stringstream empty;
    EXPECT_THROW(load_results(empty), invalid_argument);
  }
  {
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine << "HD7970,mini,8,-,1\n";  // truncated
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
  {
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine
       << "HD7970,mini,eight,-,1.0,1.0,1.0,5\n";  // non-numeric dms
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
  {
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine
       << "HD7970,mini,8,wi_time:8,1.0,1.0,1.0,5\n";  // malformed config
    EXPECT_THROW(load_results(ss), invalid_argument);
  }
}

TEST(ResultsIo, DiagnosesAPreSchemaFileClearly) {
  // A file written before the schema line existed starts straight with the
  // column header; the error must say so rather than "unexpected header".
  std::stringstream ss;
  ss << kHeaderLine << "K20,Apertif,64,wi_time=32,123.4,0.01,3.2,900\n";
  const std::string msg = error_of(ss);
  EXPECT_NE(msg.find("no schema line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("re-run the sweep"), std::string::npos) << msg;
}

TEST(ResultsIo, DiagnosesVersionAndColumnMismatches) {
  {
    std::stringstream ss;
    ss << "# ddmc-tuner-results v1 cols=11\n";  // stale pre-PR-1 sweep
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("version mismatch"), std::string::npos) << msg;
  }
  {
    std::stringstream ss;
    ss << "# ddmc-tuner-results v3 cols=11\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("11 columns"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expects 8"), std::string::npos) << msg;
  }
  {
    // A v2 schema line must still declare v2's 13 columns.
    std::stringstream ss;
    ss << "# ddmc-tuner-results v2 cols=8\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("8 columns"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expects 13"), std::string::npos) << msg;
  }
  {
    // Schema line ok, but the header row lost a column (hand-edited).
    std::stringstream ss;
    ss << kSchemaLine
       << "device,observation,dms,gflops,seconds,snr,evaluated\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("7 columns"), std::string::npos) << msg;
  }
  {
    // Row with the wrong column count names the counts.
    std::stringstream ss;
    ss << kSchemaLine << kHeaderLine << "K20,Apertif,64,-,1.0\n";
    const std::string msg = error_of(ss);
    EXPECT_NE(msg.find("5 columns"), std::string::npos) << msg;
  }
}

TEST(ResultsIo, MigratesV2KernelAxisRowsIntoEngineConfigs) {
  // A results file written by the previous schema (one column per kernel
  // axis) still loads: the six axis columns become the kernel axes of an
  // engine-native config.
  std::stringstream ss;
  ss << kLegacySchemaLine << kLegacyHeaderLine
     << "K20,Apertif,64,32,4,5,2,128,2,123.4,0.01,3.2,900\n"
     << "HD7970,mini,8,1,1,1,1,0,1,1.0,1.0,1.0,5\n";
  const std::vector<ResultRow> rows = load_results(ss);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].config,
            engine::encode_kernel_config(KernelConfig{32, 4, 5, 2, 128, 2}));
  EXPECT_EQ(rows[0].gflops, 123.4);
  EXPECT_EQ(rows[0].evaluated, 900u);
  // A legacy untuned 1×1 row migrates to the *empty* config — valid for
  // every engine, not just the tiled ones.
  EXPECT_TRUE(rows[1].config.empty());
  // Migrated rows re-save in the current schema and round-trip.
  std::stringstream resaved;
  save_results(resaved, rows);
  EXPECT_EQ(load_results(resaved), rows);
}

// ----------------------------------------------- host-execution dedup --

TEST(HostDedup, KeyCollapsesWorkItemElementSplits) {
  // The host engine only sees tile extents: {wi_time=8, elem_time=2} and
  // {wi_time=4, elem_time=4} run the identical kernel.
  const Plan plan = mini_plan(8, 64);
  const auto a = host_kernel_key(KernelConfig{8, 1, 2, 1}, plan, true);
  const auto b = host_kernel_key(KernelConfig{4, 1, 4, 1}, plan, true);
  EXPECT_EQ(a, b);
  // elem_dm is a real axis (register-tile rows): it must NOT collapse.
  const auto c = host_kernel_key(KernelConfig{8, 1, 2, 2}, plan, true);
  EXPECT_NE(a, c);
  // The scalar engine ignores the register-tile and unroll knobs.
  const auto s1 = host_kernel_key(KernelConfig{8, 1, 2, 2, 0, 4}, plan, false);
  const auto s2 = host_kernel_key(KernelConfig{8, 1, 2, 2, 0, 1}, plan, false);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(host_kernel_key(KernelConfig{8, 1, 2, 2, 0, 4}, plan, true),
            host_kernel_key(KernelConfig{8, 1, 2, 2, 0, 1}, plan, true));
  // Oversized channel blocks collapse onto the single-pass key.
  const auto cb0 = host_kernel_key(KernelConfig{8, 1, 1, 1, 0, 1}, plan, true);
  const auto cb9 =
      host_kernel_key(KernelConfig{8, 1, 1, 1, 999, 1}, plan, true);
  EXPECT_EQ(cb0, cb9);
}

TEST(HostDedup, DedupeKeepsOneRepresentativePerKernel) {
  const Plan plan = mini_plan(8, 64);
  const auto raw = enumerate_host_configs(plan, 1024);
  const auto deduped = dedupe_host_configs(plan, raw, true);
  ASSERT_FALSE(deduped.empty());
  EXPECT_LT(deduped.size(), raw.size());  // the ladder has real duplicates
  EXPECT_EQ(deduped.front(), raw.front());  // first representative wins
  std::set<HostKernelKey> keys;
  for (const auto& cfg : deduped) {
    EXPECT_TRUE(keys.insert(host_kernel_key(cfg, plan, true)).second)
        << cfg.to_string();
  }
  // Dedup loses no kernel: every raw config's key has a representative.
  for (const auto& cfg : raw) {
    EXPECT_TRUE(keys.count(host_kernel_key(cfg, plan, true)))
        << cfg.to_string();
  }
  // The scalar engine's key is coarser, so its space is no larger.
  EXPECT_LE(dedupe_host_configs(plan, raw, false).size(), deduped.size());
}

TEST(HostDedup, TuneHostTimesEachKernelOnce) {
  const Plan plan = mini_plan(8, 64);
  HostTuningOptions opt;
  opt.repetitions = 1;
  opt.warmup_runs = 0;
  opt.threads = 1;
  // {8,1,1,1} and {1,1,8,1} are the same host kernel; {4,1,1,1} differs.
  const std::vector<KernelConfig> configs = {
      KernelConfig{8, 1, 1, 1}, KernelConfig{1, 1, 8, 1},
      KernelConfig{4, 1, 1, 1}};
  const HostTuningResult r = tune_host(plan, opt, configs);
  EXPECT_EQ(r.timings.size(), 2u);
  EXPECT_EQ(r.timings[0].config, configs[0]);
  EXPECT_EQ(r.timings[1].config, configs[2]);
}

// ------------------------------------------------------------ strategies --

/// Deterministic synthetic landscape over the six axes: smooth log-space
/// penalties around a known sweet spot, so strategy behaviour is testable
/// without wall-clock noise. Optionally honors early-abort semantics.
class SyntheticEvaluator : public ConfigEvaluator {
 public:
  explicit SyntheticEvaluator(const Plan& plan, bool support_abort = false)
      : plan_(plan), support_abort_(support_abort) {}

  double true_seconds(const KernelConfig& cfg) const {
    auto penalty = [](double value, double sweet) {
      const double d = std::log2(value + 1.0) - std::log2(sweet + 1.0);
      return 1.0 + 0.15 * d * d;
    };
    double s = 1e-3;
    s *= penalty(static_cast<double>(cfg.tile_time()), 64.0);
    s *= penalty(static_cast<double>(cfg.tile_dm()), 4.0);
    s *= penalty(
        static_cast<double>(cfg.effective_channel_block(plan_)), 8.0);
    s *= penalty(static_cast<double>(cfg.unroll), 2.0);
    // Mild cross-term so the landscape is not axis-separable.
    s *= 1.0 + 0.01 * std::log2(static_cast<double>(cfg.tile_time()) + 1.0) *
                   static_cast<double>(cfg.unroll);
    return s;
  }

  double true_seconds(const engine::EngineConfig& cfg) const {
    return true_seconds(engine::decode_kernel_config(cfg));
  }

  Measurement measure(const engine::EngineConfig& cfg,
                      double incumbent_seconds) override {
    ++calls_;
    const double t = true_seconds(cfg);
    Measurement m;
    m.repetitions = 1;
    if (support_abort_ && t > incumbent_seconds) {
      m.aborted = true;
      m.seconds = t;
      // A floor that is ≤ the true mean but already above the incumbent —
      // exactly what a partial repetition sum proves.
      m.lower_bound_seconds = std::min(t, incumbent_seconds * 1.25);
      return m;
    }
    m.seconds = t;
    m.lower_bound_seconds = t;
    return m;
  }

  std::size_t calls() const { return calls_; }

 private:
  const Plan& plan_;
  bool support_abort_;
  std::size_t calls_ = 0;
};

/// The host sweep's KernelConfig candidates re-expressed in the
/// engine-native currency the strategies now speak, plus the declared axes
/// CoordinateDescent walks.
std::vector<engine::EngineConfig> engine_candidates(
    const std::vector<KernelConfig>& configs) {
  std::vector<engine::EngineConfig> out;
  out.reserve(configs.size());
  for (const KernelConfig& cfg : configs) {
    out.push_back(engine::encode_kernel_config(cfg));
  }
  return out;
}

TEST(Strategies, ExhaustiveFindsTheGlobalSyntheticOptimum) {
  const Plan plan = mini_plan(8, 64);
  const auto kernel_candidates = host_sweep_candidates(plan);
  ASSERT_GT(kernel_candidates.size(), 10u);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  SyntheticEvaluator eval(plan);
  const StrategyResult r =
      ExhaustiveSearch().search(plan, axes, candidates, eval);
  EXPECT_EQ(r.evaluated, candidates.size());
  EXPECT_EQ(r.timings.size(), candidates.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& cfg : candidates) {
    best = std::min(best, eval.true_seconds(cfg));
  }
  EXPECT_DOUBLE_EQ(r.best.seconds, best);
  EXPECT_GT(r.stats.snr_of_max, 0.0);
  EXPECT_LT(r.chebyshev_p, 1.0);
}

TEST(Strategies, DifferentialCoordinateDescentNearsTheOptimumCheaply) {
  // The differential bound of the guided strategies: on a deterministic
  // landscape CoordinateDescent must land within 10% of the exhaustive
  // optimum while evaluating a fraction of the space.
  const Plan plan = mini_plan(8, 64);
  const auto kernel_candidates = host_sweep_candidates(plan);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  SyntheticEvaluator ex_eval(plan);
  const StrategyResult ex =
      ExhaustiveSearch().search(plan, axes, candidates, ex_eval);

  SyntheticEvaluator cd_eval(plan);
  const StrategyResult cd =
      CoordinateDescent(7).search(plan, axes, candidates, cd_eval);
  EXPECT_GE(cd.best.gflops, 0.9 * ex.best.gflops);
  EXPECT_LE(cd.evaluated, candidates.size() / 2);
  EXPECT_LE(cd.timings.size() + cd.aborted, cd_eval.calls());
}

TEST(Strategies, DifferentialRandomSearchIsBoundedlyWorse) {
  const Plan plan = mini_plan(8, 64);
  const auto kernel_candidates = host_sweep_candidates(plan);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  SyntheticEvaluator ex_eval(plan);
  const StrategyResult ex =
      ExhaustiveSearch().search(plan, axes, candidates, ex_eval);

  SyntheticEvaluator rs_eval(plan);
  const StrategyResult rs =
      RandomSearch(24, 7).search(plan, axes, candidates, rs_eval);
  EXPECT_EQ(rs.evaluated, std::min<std::size_t>(24, candidates.size()));
  // The landscape's dynamic range is small (smooth penalties), so even a
  // thin sample lands within a bounded factor of the optimum.
  EXPECT_GE(rs.best.gflops, 0.7 * ex.best.gflops);
  // The sampled population's statistics bound the guessing probability.
  EXPECT_GT(rs.chebyshev_p, 0.0);
  EXPECT_LE(rs.chebyshev_p, 1.0);
}

TEST(Strategies, SeededSearchesAreDeterministic) {
  const Plan plan = mini_plan(8, 64);
  const auto kernel_candidates = host_sweep_candidates(plan);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  for (int run = 0; run < 2; ++run) {
    SyntheticEvaluator e1(plan), e2(plan);
    const StrategyResult a =
        CoordinateDescent(99).search(plan, axes, candidates, e1);
    const StrategyResult b =
        CoordinateDescent(99).search(plan, axes, candidates, e2);
    EXPECT_EQ(a.best.config, b.best.config);
    EXPECT_EQ(a.evaluated, b.evaluated);
    const StrategyResult r1 =
        RandomSearch(16, 5).search(plan, axes, candidates, e1);
    const StrategyResult r2 =
        RandomSearch(16, 5).search(plan, axes, candidates, e2);
    EXPECT_EQ(r1.best.config, r2.best.config);
  }
}

TEST(Strategies, CoordinateDescentUsesEarlyAbort) {
  const Plan plan = mini_plan(8, 64);
  const auto kernel_candidates = host_sweep_candidates(plan);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  SyntheticEvaluator eval(plan, /*support_abort=*/true);
  const StrategyResult r =
      CoordinateDescent(7).search(plan, axes, candidates, eval);
  // Hopeless neighbors are abandoned mid-measurement…
  EXPECT_GT(r.aborted, 0u);
  // …and every completed timing is a full (exact) measurement — aborted
  // configs never leak into the population.
  for (const auto& t : r.timings) {
    EXPECT_DOUBLE_EQ(t.seconds, eval.true_seconds(t.config));
  }
  SyntheticEvaluator plain(plan);
  const StrategyResult no_abort =
      CoordinateDescent(7).search(plan, axes, candidates, plain);
  // Early abort must not change the answer, only its cost.
  EXPECT_EQ(r.best.config, no_abort.best.config);
}

TEST(Strategies, RealMeasurementSmoke) {
  // One real wall-clock run of each strategy on the miniature plan: the
  // machinery works end to end on the actual kernels.
  const Plan plan = mini_plan(8, 64);
  HostTuningOptions opt;
  opt.repetitions = 1;
  opt.warmup_runs = 0;
  opt.threads = 1;
  const auto kernel_candidates = host_sweep_candidates(plan, opt);
  ASSERT_FALSE(kernel_candidates.empty());
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  const auto candidates = engine_candidates(kernel_candidates);
  HostKernelEvaluator eval(plan, opt);
  const StrategyResult cd =
      CoordinateDescent(3, 2, 4, 0).search(plan, axes, candidates, eval);
  EXPECT_GT(cd.best.gflops, 0.0);
  EXPECT_LE(cd.evaluated, candidates.size());
  // Without restarts the threshold only tightens, so every evaluator call
  // is a distinct config.
  EXPECT_EQ(eval.measurements(), cd.evaluated);
}

// ----------------------------------------------------------- tuning cache --

TEST(TuningCacheTest, SignaturesRoundTripThroughEncode) {
  const Plan plan = mini_plan(8, 64);
  const PlanSignature psig = PlanSignature::of(plan);
  const auto decoded = PlanSignature::decode(psig.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, psig);

  dedisp::CpuKernelOptions engine;
  engine.threads = 3;
  engine.vectorize = false;
  const HostSignature hsig = HostSignature::of(engine);
  EXPECT_EQ(hsig.engine_id, "cpu_tiled");
  EXPECT_EQ(hsig.variant, "scalar");
  const auto hdecoded = HostSignature::decode(hsig.encode());
  ASSERT_TRUE(hdecoded.has_value());
  EXPECT_EQ(*hdecoded, hsig);

  // Legacy three-part signatures (pre-engine-axis caches) still decode and
  // map onto the tiled host engine.
  const auto legacy = HostSignature::decode("scalar|t3|staged");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->engine_id, "cpu_tiled");
  EXPECT_EQ(legacy->variant, "scalar");
  EXPECT_EQ(legacy->threads, 3u);

  EXPECT_FALSE(PlanSignature::decode("not a signature").has_value());
  EXPECT_FALSE(HostSignature::decode("HD7970").has_value());
}

TEST(TuningCacheTest, HostileObservationNamesCannotCorruptTheCache) {
  // The observation name is free-form and ends up inside two layered text
  // formats ('|'-delimited signature in a comma-delimited CSV cell):
  // delimiters are sanitized to '_' and a key-shaped name is never
  // mistaken for a key=value field.
  const sky::Observation hostile("LOFAR,HBA|v2\n", 100.0, 8, 100.0, 10.0,
                                 0.0, 0.5);
  const Plan plan = Plan::with_output_samples(hostile, 8, 64);
  const PlanSignature sig = PlanSignature::of(plan);
  EXPECT_EQ(sig.observation, "LOFAR_HBA_v2_");
  const auto round = PlanSignature::decode(sig.encode());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, sig);

  const sky::Observation key_shaped("ch=12", 100.0, 8, 100.0, 10.0, 0.0,
                                    0.5);
  const PlanSignature shaped =
      PlanSignature::of(Plan::with_output_samples(key_shaped, 8, 64));
  const auto decoded = PlanSignature::decode(shaped.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->observation, "ch=12");
  EXPECT_EQ(decoded->channels, 8u);  // the real ch field, not the name

  // End to end: a file-backed cache written under a hostile name reloads.
  const std::string path =
      ::testing::TempDir() + "ddmc_hostile_cache_test.csv";
  std::remove(path.c_str());
  {
    TuningCache cache(path);
    CacheEntry entry;
    entry.host = HostSignature::of({});
    entry.plan = sig;
    entry.config = engine::encode_kernel_config(KernelConfig{8, 1, 1, 1});
    entry.gflops = 1.0;
    cache.store(entry);
  }
  {
    TuningCache reloaded(path);
    ASSERT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.entries().front().plan, sig);
    EXPECT_TRUE(reloaded.find_exact(HostSignature::of({}), sig).has_value());
  }
  std::remove(path.c_str());
}

TEST(TuningCacheTest, PlanDistanceIsMetricLike) {
  const PlanSignature a = PlanSignature::of(mini_plan(8, 64));
  const PlanSignature b = PlanSignature::of(mini_plan(16, 64));
  const PlanSignature c = PlanSignature::of(mini_plan(64, 64));
  EXPECT_DOUBLE_EQ(plan_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(plan_distance(a, b), plan_distance(b, a));
  EXPECT_LT(plan_distance(a, b), plan_distance(a, c));  // 2x nearer than 8x
}

TEST(TuningCacheTest, NearestNeighborSkipsConfigsTheEngineRejects) {
  TuningCache cache;
  dedisp::CpuKernelOptions engine_options;
  const HostSignature host = HostSignature::of(engine_options);

  // Closest entry's config has tile_dm = 16, which cannot divide the
  // 8-trial target plan; the farther entry's config runs everywhere.
  CacheEntry close;
  close.host = host;
  close.plan = PlanSignature::of(mini_plan(16, 64));
  close.config = engine::encode_kernel_config(KernelConfig{8, 16, 1, 1});
  CacheEntry far;
  far.host = host;
  far.plan = PlanSignature::of(mini_plan(64, 64));
  far.config = engine::encode_kernel_config(KernelConfig{8, 1, 1, 1});
  cache.store(close);
  cache.store(far);

  const Plan target = mini_plan(8, 64);
  // The cache cannot judge a config's validity itself — only the engine
  // that declares the axes can. Without a predicate, proximity decides.
  const auto blind = cache.find_nearest(host, target);
  ASSERT_TRUE(blind.has_value());
  EXPECT_EQ(blind->config, close.config);

  // With the engine's validate_config as the usable predicate, the
  // non-dividing config is skipped and the farther entry transfers.
  const auto tiled = engine::make_engine(host.engine_id);
  const auto usable = [&](const engine::EngineConfig& config) {
    try {
      tiled->validate_config(target, config);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  const auto found = cache.find_nearest(
      host, target, TuningCache::kDefaultMaxTransferDistance, usable);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->config, far.config);

  // A host-signature mismatch never transfers.
  dedisp::CpuKernelOptions other_engine;
  other_engine.threads = 7;
  EXPECT_FALSE(cache
                   .find_nearest(HostSignature::of(other_engine), target)
                   .has_value());
}

TEST(TuningCacheTest, WarmHitSkipsMeasurementEntirely) {
  const Plan plan = mini_plan(8, 64);
  TuningCache cache;
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 3;

  const GuidedTuningOutcome cold = tune_guided(plan, cache, opt);
  EXPECT_EQ(cold.source, GuidedTuningOutcome::Source::kSearch);
  EXPECT_GT(cold.configs_evaluated, 0u);
  ASSERT_TRUE(cold.search.has_value());
  EXPECT_EQ(cache.size(), 1u);

  const GuidedTuningOutcome warm = tune_guided(plan, cache, opt);
  EXPECT_EQ(warm.source, GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(warm.configs_evaluated, 0u);  // the sweep is skipped entirely
  EXPECT_FALSE(warm.search.has_value());
  EXPECT_EQ(warm.config, cold.config);
  ASSERT_TRUE(warm.transfer_distance.has_value());
  EXPECT_DOUBLE_EQ(*warm.transfer_distance, 0.0);
}

TEST(TuningCacheTest, MissTransfersFromTheNearestPlan) {
  const Plan plan = mini_plan(8, 64);
  TuningCache cache;
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 3;
  const GuidedTuningOutcome cold = tune_guided(plan, cache, opt);

  // Same setup, twice the trials: answered by transfer, no measurements.
  const Plan grown = mini_plan(16, 64);
  const GuidedTuningOutcome moved = tune_guided(grown, cache, opt);
  EXPECT_EQ(moved.source, GuidedTuningOutcome::Source::kTransfer);
  EXPECT_EQ(moved.configs_evaluated, 0u);
  EXPECT_EQ(moved.config, cold.config);
  EXPECT_NO_THROW(
      engine::make_engine(moved.engine_id)->validate_config(grown,
                                                            moved.config));
  ASSERT_TRUE(moved.transfer_distance.has_value());
  EXPECT_GT(*moved.transfer_distance, 0.0);
  EXPECT_EQ(cache.size(), 1u);  // transfers are not stored as measurements

  // With transfer disabled the miss falls back to a search and stores.
  GuidedTuningOptions strict = opt;
  strict.allow_transfer = false;
  const GuidedTuningOutcome searched = tune_guided(grown, cache, strict);
  EXPECT_EQ(searched.source, GuidedTuningOutcome::Source::kSearch);
  EXPECT_EQ(cache.size(), 2u);
  // …and the next request for the grown plan is an exact hit.
  const GuidedTuningOutcome hit = tune_guided(grown, cache, opt);
  EXPECT_EQ(hit.source, GuidedTuningOutcome::Source::kCacheHit);
}

TEST(TuningCacheTest, PersistsAcrossProcessesViaResultsIo) {
  const std::string path =
      ::testing::TempDir() + "ddmc_tuning_cache_test.csv";
  std::remove(path.c_str());
  const Plan plan = mini_plan(8, 64);
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 3;

  engine::EngineConfig tuned;
  {
    TuningCache cache(path);
    EXPECT_EQ(cache.size(), 0u);
    const GuidedTuningOutcome cold = tune_guided(plan, cache, opt);
    EXPECT_EQ(cold.source, GuidedTuningOutcome::Source::kSearch);
    tuned = cold.config;
  }
  {
    // A fresh cache object (a new process, in effect) reloads the file and
    // answers without measuring.
    TuningCache cache(path);
    EXPECT_EQ(cache.size(), 1u);
    const GuidedTuningOutcome warm = tune_guided(plan, cache, opt);
    EXPECT_EQ(warm.source, GuidedTuningOutcome::Source::kCacheHit);
    EXPECT_EQ(warm.configs_evaluated, 0u);
    EXPECT_EQ(warm.config, tuned);
  }
  std::remove(path.c_str());
}

TEST(TuningCacheTest, RaceRanksEnginesBySecondsNotGflops) {
  // Regression: cache entries credit flops differently per engine (the
  // subband engine saves work, the u8 engine moves fewer bytes), so a
  // flashy GFLOP/s figure can belong to the *slower* engine. The
  // multi-engine race must rank by measured wall seconds; GFLOP/s rides
  // along for display only.
  const Plan plan = mini_plan(8, 64);
  TuningCache cache;
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 2;
  for (const char* id : {"cpu_tiled", "cpu_baseline"}) {
    GuidedTuningOptions seed = opt;
    seed.engines = {id};
    tune_guided(plan, cache, seed);
  }
  ASSERT_EQ(cache.size(), 2u);
  // Pin the stored figures so the two orderings *disagree*: cpu_tiled
  // claims 1000 GFLOP/s yet a full second, cpu_baseline 1 GFLOP/s at 1 µs.
  for (CacheEntry entry : cache.entries()) {
    const bool tiled = entry.host.engine_id == "cpu_tiled";
    entry.gflops = tiled ? 1000.0 : 1.0;
    entry.seconds = tiled ? 1.0 : 1e-6;
    cache.store(entry);
  }
  GuidedTuningOptions race = opt;
  race.engines = {"cpu_tiled", "cpu_baseline"};
  const GuidedTuningOutcome raced = tune_guided(plan, cache, race);
  EXPECT_EQ(raced.source, GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(raced.configs_evaluated, 0u);  // both engines answer warm
  EXPECT_EQ(raced.engine_id, "cpu_baseline");
  EXPECT_DOUBLE_EQ(raced.seconds, 1e-6);
  EXPECT_DOUBLE_EQ(raced.gflops, 1.0);  // the winner's own display figure
}

TEST(TuningCacheTest, WarmRaceRoundTripsTheEngineAxisThroughTheFile) {
  // The v3 cache rows carry the engine id inside the host signature: a
  // warm rerun of a multi-engine race in a fresh process measures nothing
  // and returns the same engine and config as the cold race.
  const std::string path =
      ::testing::TempDir() + "ddmc_engine_race_cache_test.csv";
  std::remove(path.c_str());
  const Plan plan = mini_plan(8, 64);
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 2;
  opt.engines = {"cpu_tiled", "cpu_baseline"};
  GuidedTuningOutcome cold;
  {
    TuningCache cache(path);
    cold = tune_guided(plan, cache, opt);
    EXPECT_EQ(cold.source, GuidedTuningOutcome::Source::kSearch);
    EXPECT_GT(cold.configs_evaluated, 0u);
    EXPECT_EQ(cache.size(), 2u);  // one entry per raced engine
  }
  {
    TuningCache cache(path);
    EXPECT_EQ(cache.size(), 2u);
    const GuidedTuningOutcome warm = tune_guided(plan, cache, opt);
    EXPECT_EQ(warm.source, GuidedTuningOutcome::Source::kCacheHit);
    EXPECT_EQ(warm.configs_evaluated, 0u);
    EXPECT_EQ(warm.engine_id, cold.engine_id);
    EXPECT_EQ(warm.config, cold.config);
  }
  std::remove(path.c_str());
}

TEST(TuningCacheTest, ThreeWayRaceWithFdmtResolvesWarmAndRanksBySeconds) {
  // The Fourier-domain engine races the brute-force and subband engines
  // on equal footing: a cold race measures all three ladders, the warm
  // rerun answers the whole comparison with zero measurements, and the
  // ranking is by measured wall seconds. fdmt makes the seconds-vs-GFLOP/s
  // distinction structural — its cache rows credit the transform's
  // asymptotically smaller operation count, so its display GFLOP/s is low
  // even when its wall time wins — which the pinned rerank pins down.
  const Plan plan = mini_plan(8, 64);
  TuningCache cache;
  GuidedTuningOptions opt;
  opt.host.repetitions = 1;
  opt.host.warmup_runs = 0;
  opt.host.threads = 1;
  opt.strategy = StrategyKind::kRandom;
  opt.random_samples = 2;
  opt.engines = {"cpu_tiled", "subband", "fdmt"};

  const GuidedTuningOutcome cold = tune_guided(plan, cache, opt);
  EXPECT_EQ(cold.source, GuidedTuningOutcome::Source::kSearch);
  EXPECT_GT(cold.configs_evaluated, 0u);
  EXPECT_EQ(cache.size(), 3u);  // one entry per raced engine

  const GuidedTuningOutcome warm = tune_guided(plan, cache, opt);
  EXPECT_EQ(warm.source, GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(warm.configs_evaluated, 0u);
  EXPECT_EQ(warm.engine_id, cold.engine_id);
  EXPECT_EQ(warm.config, cold.config);

  // Pin the stored figures so the orderings disagree: fdmt reports the
  // lowest GFLOP/s of the field yet the fastest wall time. Seconds win.
  for (CacheEntry entry : cache.entries()) {
    const bool is_fdmt = entry.host.engine_id == "fdmt";
    entry.gflops = is_fdmt ? 0.5 : 500.0;
    entry.seconds = is_fdmt ? 1e-6 : 1.0;
    cache.store(entry);
  }
  const GuidedTuningOutcome reranked = tune_guided(plan, cache, opt);
  EXPECT_EQ(reranked.source, GuidedTuningOutcome::Source::kCacheHit);
  EXPECT_EQ(reranked.configs_evaluated, 0u);
  EXPECT_EQ(reranked.engine_id, "fdmt");
  EXPECT_DOUBLE_EQ(reranked.seconds, 1e-6);
  EXPECT_DOUBLE_EQ(reranked.gflops, 0.5);  // the winner's display figure
}

namespace {

/// Distinct, decodable cache entry for worker \p worker, op \p op.
CacheEntry synthetic_entry(std::size_t worker, std::size_t op) {
  CacheEntry entry;
  dedisp::CpuKernelOptions engine;
  engine.threads = worker + 1;  // distinct host signature per worker
  entry.host = HostSignature::of(engine);
  entry.plan = PlanSignature::of(mini_plan(8 << (op % 4), 64));
  entry.config = engine::encode_kernel_config(KernelConfig{8, 1, 1, 1});
  entry.gflops = static_cast<double>(worker * 100 + op + 1);  // never 0
  entry.seconds = 1.0 / entry.gflops;
  entry.evaluated = op;
  return entry;
}

}  // namespace

TEST(TuningCacheTest, ConcurrentStoresAndLookupsStaySafe) {
  // Regression: the sharded executor's workers tune shard plans against a
  // shared cache — concurrent store()s used to interleave writes into the
  // results CSV. Every operation now locks, and the file is replaced
  // atomically, so a concurrent mix of stores and lookups must neither
  // race (the sanitize job watches this) nor corrupt the reloaded file.
  const std::string path =
      ::testing::TempDir() + "ddmc_cache_concurrent_fast.csv";
  std::remove(path.c_str());
  {
    TuningCache cache(path);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < 4; ++w) {
      workers.emplace_back([&cache, w] {
        for (std::size_t op = 0; op < 8; ++op) {
          const CacheEntry entry = synthetic_entry(w, op);
          cache.store(entry);
          EXPECT_TRUE(cache.find_exact(entry.host, entry.plan).has_value());
        }
      });
    }
    for (auto& t : workers) t.join();
    EXPECT_EQ(cache.size(), 4u * 4u);  // 4 hosts × 4 distinct plans
  }
  TuningCache reloaded(path);  // malformed rows would throw here
  EXPECT_EQ(reloaded.size(), 4u * 4u);
  std::remove(path.c_str());
}

TEST(TuningCacheConcurrencySlowTier, HammeringNeverCorruptsTheFile) {
  const std::string path =
      ::testing::TempDir() + "ddmc_cache_concurrent_slow.csv";
  std::remove(path.c_str());
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kOps = 48;
  const Plan probe = mini_plan(8, 64);
  {
    TuningCache cache(path);
    std::atomic<std::size_t> found{0};
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        dedisp::CpuKernelOptions engine;
        engine.threads = w + 1;
        const HostSignature host = HostSignature::of(engine);
        for (std::size_t op = 0; op < kOps; ++op) {
          cache.store(synthetic_entry(w, op));
          if (cache.find_nearest(host, probe).has_value()) ++found;
          (void)cache.entries();  // snapshot under the lock
          if (op % 16 == 0) cache.save();
        }
      });
    }
    for (auto& t : workers) t.join();
    EXPECT_GT(found.load(), 0u);
    EXPECT_EQ(cache.size(), kWorkers * 4u);
  }
  // The file parses cleanly and holds the final value of every key: each
  // (host, plan) pair was last stored by op ≥ kOps − 4 of its worker.
  TuningCache reloaded(path);
  EXPECT_EQ(reloaded.size(), kWorkers * 4u);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (std::size_t op = kOps - 4; op < kOps; ++op) {
      const CacheEntry expected = synthetic_entry(w, op);
      const auto got = reloaded.find_exact(expected.host, expected.plan);
      ASSERT_TRUE(got.has_value()) << "worker " << w << " op " << op;
      EXPECT_EQ(got->gflops, expected.gflops);
    }
  }
  std::remove(path.c_str());
}

TEST(ResultsIoFuzzSlowTier, RandomPopulationsSurviveSaveLoadBitwise) {
  // Property: any population of rows round-trips bitwise — integers
  // exactly, doubles via max_digits10 — across 100 seeded populations.
  Rng rng(20260730);
  auto random_text = [&rng]() {
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789|=._-";
    std::string s;
    const std::size_t n = 1 + rng.next_below(12);
    for (std::size_t i = 0; i < n; ++i) {
      s += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    return s;
  };
  auto random_double = [&rng]() {
    const double mantissa = rng.next_double() * 2.0 - 1.0;
    const int exponent = static_cast<int>(rng.next_below(61)) - 30;
    return mantissa * std::pow(10.0, exponent);
  };
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<ResultRow> rows(1 + rng.next_below(8));
    for (ResultRow& row : rows) {
      row.device = random_text();
      row.observation = random_text();
      row.dms = rng.next_below(1u << 20);
      KernelConfig kernel;
      kernel.wi_time = 1 + rng.next_below(1024);
      kernel.wi_dm = 1 + rng.next_below(32);
      kernel.elem_time = 1 + rng.next_below(64);
      kernel.elem_dm = 1 + rng.next_below(8);
      kernel.channel_block = rng.next_below(4096);
      kernel.unroll = 1 + rng.next_below(8);
      row.config = engine::encode_kernel_config(kernel);
      // The config cell is engine-native: non-kernel axes round-trip too.
      if (rng.next_below(2)) {
        row.config.set("subbands", 1 + rng.next_below(64));
      }
      row.gflops = random_double();
      row.seconds = random_double();
      row.snr = random_double();
      row.evaluated = rng.next_below(1u << 24);
    }
    std::stringstream ss;
    save_results(ss, rows);
    const std::vector<ResultRow> loaded = load_results(ss);
    ASSERT_EQ(loaded.size(), rows.size()) << "iteration " << iteration;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(loaded[i], rows[i])
          << "iteration " << iteration << " row " << i;
    }
  }
}

TEST(ResultsIoFuzzSlowTier, RandomCorruptionsAreDiagnosedPrecisely) {
  // Property: truncating a random row mid-cell, scrambling a numeric cell
  // or permuting the header always throws the targeted diagnostic rather
  // than producing silent garbage.
  Rng rng(42424242);
  std::vector<ResultRow> rows(3);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].device = "dev" + std::to_string(i);
    rows[i].observation = "obs";
    rows[i].dms = 8;
    rows[i].config =
        engine::encode_kernel_config(KernelConfig{8, 1, 2, 1, 0, 2});
    rows[i].gflops = 1.5;
    rows[i].seconds = 0.25;
    rows[i].snr = 3.0;
    rows[i].evaluated = 99;
  }
  std::stringstream pristine;
  save_results(pristine, rows);
  const std::string text = pristine.str();

  std::vector<std::string> lines;
  {
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2 + rows.size());

  auto load_expecting_error = [](const std::string& corrupted) {
    std::stringstream ss(corrupted);
    try {
      load_results(ss);
    } catch (const invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) out += l + "\n";
    return out;
  };

  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::string> mutated = lines;
    const std::size_t victim = 2 + rng.next_below(rows.size());
    switch (iteration % 3) {
      case 0: {  // truncate: drop at least the last column
        std::string& line = mutated[victim];
        const std::size_t last_comma = line.rfind(',');
        line = line.substr(0, last_comma - rng.next_below(last_comma / 2));
        const std::string msg = load_expecting_error(join(mutated));
        EXPECT_NE(msg.find("columns"), std::string::npos) << msg;
        break;
      }
      case 1: {  // scramble one numeric cell
        std::string& line = mutated[victim];
        const std::size_t comma = line.find(',', line.find(',') + 1);
        line.insert(comma + 1, "x");
        const std::string msg = load_expecting_error(join(mutated));
        EXPECT_NE(msg.find("malformed"), std::string::npos) << msg;
        break;
      }
      case 2: {  // permute two header columns
        std::string& header = mutated[1];
        const std::size_t cut = header.find(',');
        header = header.substr(cut + 1) + "," + header.substr(0, cut);
        const std::string msg = load_expecting_error(join(mutated));
        EXPECT_NE(msg.find("header"), std::string::npos) << msg;
        break;
      }
    }
  }
}

TEST(ResultsIo, SkipsBlankLines) {
  std::stringstream ss;
  ss << kSchemaLine << kHeaderLine << "\n"
     << "K20,Apertif,64,"
        "channel_block=128;elem_dm=2;elem_time=5;unroll=2;wi_dm=4;wi_time=32,"
        "123.4,0.01,3.2,900\n";
  const auto rows = load_results(ss);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].device, "K20");
  EXPECT_EQ(rows[0].config,
            engine::encode_kernel_config(KernelConfig{32, 4, 5, 2, 128, 2}));
  EXPECT_EQ(rows[0].evaluated, 900u);
}

}  // namespace
}  // namespace ddmc::tuner
