#pragma once
/// Shared fixtures: a miniature observation whose delay table is small
/// enough for exhaustive functional simulation, deterministic random inputs,
/// and exact matrix comparison (implementations are bit-identical by design).

#include <gtest/gtest.h>

#include "common/array2d.hpp"
#include "common/random.hpp"
#include "dedisp/plan.hpp"
#include "sky/observation.hpp"

namespace ddmc::testing {

/// 8-channel toy band, 100 samples/s: unit DM delays span ~3–29 samples.
inline sky::Observation mini_obs(std::size_t channels = 8,
                                 double dm_step = 0.5) {
  return sky::Observation("mini", 100.0, channels, 100.0, 10.0, 0.0, dm_step);
}

/// Small plan used by most functional tests: 8 trials × 64 output samples.
inline dedisp::Plan mini_plan(std::size_t dms = 8, std::size_t out = 64) {
  return dedisp::Plan::with_output_samples(mini_obs(), dms, out);
}

/// Deterministic pseudo-random input matrix for a plan.
inline Array2D<float> random_input(const dedisp::Plan& plan,
                                   std::uint64_t seed = 7) {
  Array2D<float> in(plan.channels(), plan.in_samples());
  Rng rng(seed);
  for (std::size_t ch = 0; ch < in.rows(); ++ch) {
    for (auto& v : in.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  return in;
}

/// Exact (bitwise) equality of two float matrices.
inline void expect_same_matrix(const Array2D<float>& expected,
                               const Array2D<float>& actual) {
  ASSERT_EQ(expected.rows(), actual.rows());
  ASSERT_EQ(expected.cols(), actual.cols());
  for (std::size_t r = 0; r < expected.rows(); ++r) {
    for (std::size_t c = 0; c < expected.cols(); ++c) {
      ASSERT_EQ(expected(r, c), actual(r, c))
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
}

}  // namespace ddmc::testing
