// Structural tests for the run-time OpenCL-C kernel generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "codegen/opencl_codegen.hpp"
#include "common/expect.hpp"
#include "test_util.hpp"

namespace ddmc::codegen {
namespace {

using dedisp::KernelConfig;
using dedisp::Plan;
using testing::mini_plan;

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

bool balanced(const std::string& src, char open, char close) {
  long depth = 0;
  for (char c : src) {
    if (c == open) ++depth;
    if (c == close) --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(Codegen, KernelNameEncodesConfiguration) {
  EXPECT_EQ(kernel_name(KernelConfig{32, 8, 4, 2}),
            "dedisperse_wt32_wd8_et4_ed2");
}

TEST(Codegen, ParametersAreBakedIn) {
  const Plan plan = mini_plan(8, 64);
  const std::string src =
      generate_opencl_kernel(plan, KernelConfig{8, 2, 4, 2});
  EXPECT_NE(src.find("#define WI_TIME 8u"), std::string::npos);
  EXPECT_NE(src.find("#define WI_DM 2u"), std::string::npos);
  EXPECT_NE(src.find("#define ELEM_TIME 4u"), std::string::npos);
  EXPECT_NE(src.find("#define ELEM_DM 2u"), std::string::npos);
  EXPECT_NE(src.find("#define CHANNELS 8u"), std::string::npos);
  EXPECT_NE(src.find("#define OUT_PITCH 64u"), std::string::npos);
  EXPECT_NE(src.find("reqd_work_group_size(WI_TIME, WI_DM, 1)"),
            std::string::npos);
}

TEST(Codegen, StagedVariantHasLocalMemoryAndBarriers) {
  const Plan plan = mini_plan(8, 64);
  const std::string src =
      generate_opencl_kernel(plan, KernelConfig{8, 2, 4, 2});
  EXPECT_NE(src.find("__local float staged[STAGE_SPAN]"), std::string::npos);
  // Two barriers per channel iteration: after load, after accumulate.
  EXPECT_EQ(count_occurrences(src, "barrier(CLK_LOCAL_MEM_FENCE);"), 2u);
  EXPECT_NE(src.find("#define STAGE_SPAN"), std::string::npos);
}

TEST(Codegen, DirectVariantReadsGlobalOnly) {
  const Plan plan = mini_plan(8, 64);
  CodegenOptions opt;
  opt.staged = false;
  const std::string src =
      generate_opencl_kernel(plan, KernelConfig{8, 2, 4, 2}, opt);
  EXPECT_EQ(src.find("__local"), std::string::npos);
  EXPECT_EQ(src.find("barrier("), std::string::npos);
  EXPECT_NE(src.find("input[ch * IN_PITCH"), std::string::npos);
}

TEST(Codegen, AccumulatorsAreFullyUnrolled) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};  // 8 accumulators per work-item
  const std::string src = generate_opencl_kernel(plan, cfg);
  // Declared once, accumulated once per channel loop body, stored once.
  for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
    for (std::size_t i = 0; i < cfg.elem_time; ++i) {
      const std::string name =
          "acc_" + std::to_string(j) + "_" + std::to_string(i);
      EXPECT_GE(count_occurrences(src, name), 3u) << name;
    }
  }
  EXPECT_EQ(count_occurrences(src, " = 0.0f"), 8u);
}

TEST(Codegen, SyntaxIsBalanced) {
  const Plan plan = mini_plan(8, 64);
  for (const auto& cfg :
       {KernelConfig{8, 2, 4, 2}, KernelConfig{16, 4, 2, 2},
        KernelConfig{2, 8, 1, 1}, KernelConfig{64, 1, 1, 8}}) {
    for (bool staged : {true, false}) {
      if (staged && cfg.tile_dm() == 1) continue;
      CodegenOptions opt;
      opt.staged = staged;
      const std::string src = generate_opencl_kernel(plan, cfg, opt);
      EXPECT_TRUE(balanced(src, '{', '}')) << cfg.to_string();
      EXPECT_TRUE(balanced(src, '(', ')')) << cfg.to_string();
      EXPECT_TRUE(balanced(src, '[', ']')) << cfg.to_string();
    }
  }
}

TEST(Codegen, DeterministicOutput) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};
  EXPECT_EQ(generate_opencl_kernel(plan, cfg),
            generate_opencl_kernel(plan, cfg));
}

TEST(Codegen, DifferentConfigsProduceDifferentSource) {
  const Plan plan = mini_plan(8, 64);
  const std::string a =
      generate_opencl_kernel(plan, KernelConfig{8, 2, 4, 2});
  const std::string b =
      generate_opencl_kernel(plan, KernelConfig{4, 2, 8, 2});
  EXPECT_NE(a, b);
}

TEST(Codegen, UnrollHintsToggle) {
  const Plan plan = mini_plan(8, 64);
  CodegenOptions with, without;
  without.unroll_hints = false;
  const KernelConfig cfg{8, 2, 4, 2};
  EXPECT_NE(generate_opencl_kernel(plan, cfg, with).find("#pragma unroll"),
            std::string::npos);
  EXPECT_EQ(
      generate_opencl_kernel(plan, cfg, without).find("#pragma unroll"),
      std::string::npos);
}

TEST(Codegen, RejectsInvalidRequests) {
  const Plan plan = mini_plan(8, 64);
  // Non-dividing tile.
  EXPECT_THROW(generate_opencl_kernel(plan, KernelConfig{5, 1, 1, 1}),
               config_error);
  // Staging a single-trial tile is meaningless.
  CodegenOptions staged;
  staged.staged = true;
  EXPECT_THROW(generate_opencl_kernel(plan, KernelConfig{8, 1, 4, 1}, staged),
               config_error);
}

TEST(Codegen, StageSpanCoversWorstTile) {
  const Plan plan = mini_plan(8, 64);
  const KernelConfig cfg{8, 2, 4, 2};  // tile_dm = 4
  const std::string src = generate_opencl_kernel(plan, cfg);
  const sky::SpreadStats spreads = plan.delays().tile_spreads(4);
  const std::string expected =
      "#define STAGE_SPAN " +
      std::to_string(cfg.tile_time() +
                     static_cast<std::size_t>(spreads.max_spread)) +
      "u";
  EXPECT_NE(src.find(expected), std::string::npos) << src;
}

}  // namespace
}  // namespace ddmc::codegen
