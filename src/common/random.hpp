#pragma once
/// \file random.hpp
/// \brief Small deterministic RNG for reproducible synthetic observations.
///
/// Tests and workload generators must be bit-reproducible across runs and
/// platforms, so we pin the generator (xoshiro256**) instead of relying on
/// implementation-defined std::default_random_engine behaviour.

#include <cstdint>

namespace ddmc {

/// splitmix64: seeds the main generator from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, tiny state; deterministic everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n); n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (one value per call; simple and exact
  /// enough for synthetic noise floors).
  double next_normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ddmc
