#pragma once
/// \file json.hpp
/// \brief Minimal JSON serializer + parser shared by benches, the telemetry
/// exporters and the tests that round-trip their output.
///
/// The serializer grew up inside bench/bench_common.hpp and was about to be
/// copied a third time for the telemetry exporters; it now lives here as the
/// one JSON emission path in the repository (bench_common re-exports it for
/// the existing benches). It is deliberately tiny: ordered objects, arrays,
/// max_digits10 numbers so doubles round-trip bitwise, no allocation tricks.
///
/// The parser is the serializer's test harness: enough strict JSON to read
/// back what the serializer (or the Chrome trace / Prometheus JSON
/// exporters) wrote and assert on it — objects, arrays, strings with the
/// escapes the serializer emits plus \uXXXX (BMP only), numbers, booleans
/// and null. It is not a general-purpose document API and keeps whole parsed
/// values in memory; telemetry exports are kilobytes, not gigabytes.

#include <cstddef>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ddmc::json {

// --------------------------------------------------------------- emission --

/// Escape \p s for inclusion inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Serialize \p v with max_digits10 precision so it round-trips bitwise.
std::string number(double v);

/// Ordered JSON object; values are stored pre-serialized, keys keep their
/// insertion order (stable output diffs).
class Object {
 public:
  Object& set(const std::string& key, const std::string& v) {
    return set_raw(key, "\"" + escape(v) + "\"");
  }
  Object& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Object& set(const std::string& key, double v) {
    return set_raw(key, number(v));
  }
  Object& set(const std::string& key, std::size_t v) {
    return set_raw(key, std::to_string(v));
  }
  Object& set(const std::string& key, bool v) {
    return set_raw(key, v ? "true" : "false");
  }
  /// \p json must already be valid JSON (nested object/array).
  Object& set_raw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
    return *this;
  }

  std::string dump() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class Array {
 public:
  Array& add(const Object& obj) { return add_raw(obj.dump()); }
  Array& add(const std::string& v) { return add_raw("\"" + escape(v) + "\""); }
  Array& add(double v) { return add_raw(number(v)); }
  Array& add_raw(std::string json) {
    items_.push_back(std::move(json));
    return *this;
  }

  std::string dump() const;

 private:
  std::vector<std::string> items_;
};

/// Write \p root to \p path with a trailing newline. Throws
/// ddmc::invalid_argument when the file cannot be opened.
void write_file(const std::string& path, const Object& root);

// ---------------------------------------------------------------- parsing --

/// One parsed JSON value. Object member order is preserved (the serializer
/// is ordered, and tests assert on stable output).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw ddmc::invalid_argument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access; throws on kind mismatch / out of range.
  std::size_t size() const;
  const Value& at(std::size_t index) const;

  /// Object access; throws on kind mismatch, and at(key) on a missing key.
  bool contains(const std::string& key) const;
  const Value& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

 private:
  friend Value parse(const std::string& text);
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse \p text as one strict JSON document (trailing whitespace allowed,
/// anything else after the value is an error). Throws ddmc::invalid_argument
/// with a character offset on malformed input.
Value parse(const std::string& text);

}  // namespace ddmc::json
