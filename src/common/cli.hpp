#pragma once
/// \file cli.hpp
/// \brief Minimal command-line option parser for examples and benches.
///
/// Supports `--name value`, `--name=value` and boolean `--flag` options with
/// typed accessors and generated usage text. Deliberately tiny: the harness
/// binaries need a handful of options, not a framework.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ddmc {

class Cli {
 public:
  /// \param description one-line program description for --help output.
  Cli(std::string program, std::string description);

  /// Register an option before parse(). \p help is shown in usage output.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help is given.
  /// Throws ddmc::invalid_argument on unknown options or missing values.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };
  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
};

}  // namespace ddmc
