#pragma once
/// \file simd.hpp
/// \brief Portable SIMD layer for the host dedispersion engine.
///
/// Exposes a width-agnostic packed-float type `vfloat` of `kFloatLanes`
/// lanes plus the handful of operations the dedispersion kernels need:
/// load/store (aligned and unaligned), add, mul, fma and broadcast. The
/// backend is chosen at compile time from the target ISA:
///
///   AVX (8 lanes) → SSE2 (4) → NEON (4) → scalar (1)
///
/// Defining DDMC_FORCE_SCALAR (CMake option of the same name) forces the
/// scalar fallback regardless of ISA — the CI matrix builds one leg this
/// way so both code paths stay green.
///
/// The dedispersion inner loop is a pure element-wise accumulate
/// (`a[t] += s[t]`), so vectorizing over the time dimension reorders no
/// floating-point additions: each output element still sums its channels
/// in channel order, and SIMD output is bitwise identical to the scalar
/// reference. `accumulate_span` below is that inner loop, shared by the
/// tiled kernel and the subband engine; fma is provided for downstream
/// consumers (detection, intensity weighting) and is NOT used on the
/// bitwise-equality-critical accumulate path.
///
/// A widening u8 layer (`vload_u8`, `accumulate_span_u8`) serves the
/// quantized-input engine: samples stay one byte each in memory — a quarter
/// of the float input traffic, which is the whole game for a
/// bandwidth-bound kernel — and are unpacked to float lanes only inside
/// the register tile.

#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(DDMC_FORCE_SCALAR)
#if defined(__AVX__)
#define DDMC_SIMD_AVX 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define DDMC_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define DDMC_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace ddmc::simd {

#if defined(DDMC_SIMD_AVX)

inline constexpr std::size_t kFloatLanes = 8;
struct vfloat {
  __m256 v;
};

inline const char* backend_name() { return "avx"; }
inline vfloat vzero() { return {_mm256_setzero_ps()}; }
inline vfloat vbroadcast(float x) { return {_mm256_set1_ps(x)}; }
inline vfloat vload(const float* p) { return {_mm256_loadu_ps(p)}; }
inline vfloat vload_aligned(const float* p) { return {_mm256_load_ps(p)}; }
inline void vstore(float* p, vfloat a) { _mm256_storeu_ps(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { _mm256_store_ps(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {_mm256_add_ps(a.v, b.v)}; }
inline vfloat vsub(vfloat a, vfloat b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
#if defined(__FMA__)
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
  return {_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v)};
#endif
}
inline vfloat vload_u8(const std::uint8_t* p) {
  // Exactly kFloatLanes bytes; widen u8 → u16 → u32 → f32 with 128-bit
  // integer ops (plain AVX has no 256-bit integer unpacks — that is AVX2).
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m128i zero = _mm_setzero_si128();
  const __m128i w = _mm_unpacklo_epi8(b, zero);
  const __m128 lo = _mm_cvtepi32_ps(_mm_unpacklo_epi16(w, zero));
  const __m128 hi = _mm_cvtepi32_ps(_mm_unpackhi_epi16(w, zero));
  return {_mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1)};
}

#elif defined(DDMC_SIMD_SSE2)

inline constexpr std::size_t kFloatLanes = 4;
struct vfloat {
  __m128 v;
};

inline const char* backend_name() { return "sse2"; }
inline vfloat vzero() { return {_mm_setzero_ps()}; }
inline vfloat vbroadcast(float x) { return {_mm_set1_ps(x)}; }
inline vfloat vload(const float* p) { return {_mm_loadu_ps(p)}; }
inline vfloat vload_aligned(const float* p) { return {_mm_load_ps(p)}; }
inline void vstore(float* p, vfloat a) { _mm_storeu_ps(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { _mm_store_ps(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {_mm_add_ps(a.v, b.v)}; }
inline vfloat vsub(vfloat a, vfloat b) { return {_mm_sub_ps(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {_mm_mul_ps(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}
inline vfloat vload_u8(const std::uint8_t* p) {
  // memcpy exactly kFloatLanes bytes so the widening load never reads past
  // the span a float vload of the same index would.
  std::uint32_t raw;
  std::memcpy(&raw, p, sizeof(raw));
  const __m128i b = _mm_cvtsi32_si128(static_cast<int>(raw));
  const __m128i zero = _mm_setzero_si128();
  const __m128i w = _mm_unpacklo_epi8(b, zero);
  return {_mm_cvtepi32_ps(_mm_unpacklo_epi16(w, zero))};
}

#elif defined(DDMC_SIMD_NEON)

inline constexpr std::size_t kFloatLanes = 4;
struct vfloat {
  float32x4_t v;
};

inline const char* backend_name() { return "neon"; }
inline vfloat vzero() { return {vdupq_n_f32(0.0f)}; }
inline vfloat vbroadcast(float x) { return {vdupq_n_f32(x)}; }
inline vfloat vload(const float* p) { return {vld1q_f32(p)}; }
inline vfloat vload_aligned(const float* p) { return {vld1q_f32(p)}; }
inline void vstore(float* p, vfloat a) { vst1q_f32(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { vst1q_f32(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {vaddq_f32(a.v, b.v)}; }
inline vfloat vsub(vfloat a, vfloat b) { return {vsubq_f32(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {vmulq_f32(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
  return {vfmaq_f32(c.v, a.v, b.v)};
}
inline vfloat vload_u8(const std::uint8_t* p) {
  // memcpy exactly kFloatLanes bytes so the widening load never reads past
  // the span a float vload of the same index would.
  std::uint32_t raw;
  std::memcpy(&raw, p, sizeof(raw));
  const uint8x8_t b = vreinterpret_u8_u32(vdup_n_u32(raw));
  const uint16x4_t w = vget_low_u16(vmovl_u8(b));
  return {vcvtq_f32_u32(vmovl_u16(w))};
}

#else  // scalar fallback

inline constexpr std::size_t kFloatLanes = 1;
struct vfloat {
  float v;
};

inline const char* backend_name() { return "scalar"; }
inline vfloat vzero() { return {0.0f}; }
inline vfloat vbroadcast(float x) { return {x}; }
inline vfloat vload(const float* p) { return {*p}; }
inline vfloat vload_aligned(const float* p) { return {*p}; }
inline void vstore(float* p, vfloat a) { *p = a.v; }
inline void vstore_aligned(float* p, vfloat a) { *p = a.v; }
inline vfloat vadd(vfloat a, vfloat b) { return {a.v + b.v}; }
inline vfloat vsub(vfloat a, vfloat b) { return {a.v - b.v}; }
inline vfloat vmul(vfloat a, vfloat b) { return {a.v * b.v}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) { return {a.v * b.v + c.v}; }
inline vfloat vload_u8(const std::uint8_t* p) {
  return {static_cast<float>(*p)};
}

#endif

/// a[t] += s[t] for t in [0, n), `Unroll` vectors per iteration of the main
/// loop. Per-element addition order is unchanged by lane width or unroll, so
/// every instantiation produces bitwise-identical results.
template <std::size_t Unroll>
inline void accumulate_span_unrolled(float* a, const float* s, std::size_t n) {
  constexpr std::size_t step = Unroll * kFloatLanes;
  std::size_t t = 0;
  for (; t + step <= n; t += step) {
    for (std::size_t u = 0; u < Unroll; ++u) {
      const std::size_t off = t + u * kFloatLanes;
      vstore(a + off, vadd(vload(a + off), vload(s + off)));
    }
  }
  for (; t + kFloatLanes <= n; t += kFloatLanes) {
    vstore(a + t, vadd(vload(a + t), vload(s + t)));
  }
  for (; t < n; ++t) a[t] += s[t];
}

/// The unroll hints with a compiled instantiation behind them. Anything
/// else would silently measure the un-unrolled loop under the wrong label,
/// so KernelConfig::validate rejects unsupported hints before they reach a
/// kernel or a tuning measurement.
inline constexpr bool is_supported_unroll(std::size_t unroll) {
  return unroll == 1 || unroll == 2 || unroll == 4 || unroll == 8;
}

/// a[t] += s[t] with a runtime unroll hint (the kernel's `unroll` knob).
/// Hints outside is_supported_unroll run the un-unrolled loop; validated
/// configs never carry one (KernelConfig::validate rejects them), so the
/// fallback only serves direct low-level callers.
inline void accumulate_span(float* a, const float* s, std::size_t n,
                            std::size_t unroll = 1) {
  switch (unroll) {
    case 8:
      accumulate_span_unrolled<8>(a, s, n);
      break;
    case 4:
      accumulate_span_unrolled<4>(a, s, n);
      break;
    case 2:
      accumulate_span_unrolled<2>(a, s, n);
      break;
    default:
      accumulate_span_unrolled<1>(a, s, n);
      break;
  }
}

/// a[t] += widen(s[t]) for quantized 8-bit samples: the sample plane stays
/// one byte per element in memory and is widened to float lanes only inside
/// the register file. Accumulating raw u8 codes in float lanes is *exact*
/// as long as the running sum stays below 2^24 (255 · channels ≤ 2^24 for
/// any survey-sized channel count), so — like the float span — every
/// instantiation produces bitwise-identical results.
template <std::size_t Unroll>
inline void accumulate_span_u8_unrolled(float* a, const std::uint8_t* s,
                                        std::size_t n) {
  constexpr std::size_t step = Unroll * kFloatLanes;
  std::size_t t = 0;
  for (; t + step <= n; t += step) {
    for (std::size_t u = 0; u < Unroll; ++u) {
      const std::size_t off = t + u * kFloatLanes;
      vstore(a + off, vadd(vload(a + off), vload_u8(s + off)));
    }
  }
  for (; t + kFloatLanes <= n; t += kFloatLanes) {
    vstore(a + t, vadd(vload(a + t), vload_u8(s + t)));
  }
  for (; t < n; ++t) a[t] += static_cast<float>(s[t]);
}

/// Runtime-unroll dispatch of the u8 widening accumulate, mirror of
/// accumulate_span above.
inline void accumulate_span_u8(float* a, const std::uint8_t* s, std::size_t n,
                               std::size_t unroll = 1) {
  switch (unroll) {
    case 8:
      accumulate_span_u8_unrolled<8>(a, s, n);
      break;
    case 4:
      accumulate_span_u8_unrolled<4>(a, s, n);
      break;
    case 2:
      accumulate_span_u8_unrolled<2>(a, s, n);
      break;
    default:
      accumulate_span_u8_unrolled<1>(a, s, n);
      break;
  }
}

}  // namespace ddmc::simd
