#pragma once
/// \file simd.hpp
/// \brief Portable SIMD layer for the host dedispersion engine.
///
/// Exposes a width-agnostic packed-float type `vfloat` of `kFloatLanes`
/// lanes plus the handful of operations the dedispersion kernels need:
/// load/store (aligned and unaligned), add, mul, fma and broadcast. The
/// backend is chosen at compile time from the target ISA:
///
///   AVX (8 lanes) → SSE2 (4) → NEON (4) → scalar (1)
///
/// Defining DDMC_FORCE_SCALAR (CMake option of the same name) forces the
/// scalar fallback regardless of ISA — the CI matrix builds one leg this
/// way so both code paths stay green.
///
/// The dedispersion inner loop is a pure element-wise accumulate
/// (`a[t] += s[t]`), so vectorizing over the time dimension reorders no
/// floating-point additions: each output element still sums its channels
/// in channel order, and SIMD output is bitwise identical to the scalar
/// reference. `accumulate_span` below is that inner loop, shared by the
/// tiled kernel and the subband engine; fma is provided for downstream
/// consumers (detection, intensity weighting) and is NOT used on the
/// bitwise-equality-critical accumulate path.

#include <cstddef>

#if !defined(DDMC_FORCE_SCALAR)
#if defined(__AVX__)
#define DDMC_SIMD_AVX 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define DDMC_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define DDMC_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace ddmc::simd {

#if defined(DDMC_SIMD_AVX)

inline constexpr std::size_t kFloatLanes = 8;
struct vfloat {
  __m256 v;
};

inline const char* backend_name() { return "avx"; }
inline vfloat vzero() { return {_mm256_setzero_ps()}; }
inline vfloat vbroadcast(float x) { return {_mm256_set1_ps(x)}; }
inline vfloat vload(const float* p) { return {_mm256_loadu_ps(p)}; }
inline vfloat vload_aligned(const float* p) { return {_mm256_load_ps(p)}; }
inline void vstore(float* p, vfloat a) { _mm256_storeu_ps(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { _mm256_store_ps(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {_mm256_add_ps(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
#if defined(__FMA__)
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
  return {_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v)};
#endif
}

#elif defined(DDMC_SIMD_SSE2)

inline constexpr std::size_t kFloatLanes = 4;
struct vfloat {
  __m128 v;
};

inline const char* backend_name() { return "sse2"; }
inline vfloat vzero() { return {_mm_setzero_ps()}; }
inline vfloat vbroadcast(float x) { return {_mm_set1_ps(x)}; }
inline vfloat vload(const float* p) { return {_mm_loadu_ps(p)}; }
inline vfloat vload_aligned(const float* p) { return {_mm_load_ps(p)}; }
inline void vstore(float* p, vfloat a) { _mm_storeu_ps(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { _mm_store_ps(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {_mm_add_ps(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {_mm_mul_ps(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}

#elif defined(DDMC_SIMD_NEON)

inline constexpr std::size_t kFloatLanes = 4;
struct vfloat {
  float32x4_t v;
};

inline const char* backend_name() { return "neon"; }
inline vfloat vzero() { return {vdupq_n_f32(0.0f)}; }
inline vfloat vbroadcast(float x) { return {vdupq_n_f32(x)}; }
inline vfloat vload(const float* p) { return {vld1q_f32(p)}; }
inline vfloat vload_aligned(const float* p) { return {vld1q_f32(p)}; }
inline void vstore(float* p, vfloat a) { vst1q_f32(p, a.v); }
inline void vstore_aligned(float* p, vfloat a) { vst1q_f32(p, a.v); }
inline vfloat vadd(vfloat a, vfloat b) { return {vaddq_f32(a.v, b.v)}; }
inline vfloat vmul(vfloat a, vfloat b) { return {vmulq_f32(a.v, b.v)}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) {
  return {vfmaq_f32(c.v, a.v, b.v)};
}

#else  // scalar fallback

inline constexpr std::size_t kFloatLanes = 1;
struct vfloat {
  float v;
};

inline const char* backend_name() { return "scalar"; }
inline vfloat vzero() { return {0.0f}; }
inline vfloat vbroadcast(float x) { return {x}; }
inline vfloat vload(const float* p) { return {*p}; }
inline vfloat vload_aligned(const float* p) { return {*p}; }
inline void vstore(float* p, vfloat a) { *p = a.v; }
inline void vstore_aligned(float* p, vfloat a) { *p = a.v; }
inline vfloat vadd(vfloat a, vfloat b) { return {a.v + b.v}; }
inline vfloat vmul(vfloat a, vfloat b) { return {a.v * b.v}; }
inline vfloat vfma(vfloat a, vfloat b, vfloat c) { return {a.v * b.v + c.v}; }

#endif

/// a[t] += s[t] for t in [0, n), `Unroll` vectors per iteration of the main
/// loop. Per-element addition order is unchanged by lane width or unroll, so
/// every instantiation produces bitwise-identical results.
template <std::size_t Unroll>
inline void accumulate_span_unrolled(float* a, const float* s, std::size_t n) {
  constexpr std::size_t step = Unroll * kFloatLanes;
  std::size_t t = 0;
  for (; t + step <= n; t += step) {
    for (std::size_t u = 0; u < Unroll; ++u) {
      const std::size_t off = t + u * kFloatLanes;
      vstore(a + off, vadd(vload(a + off), vload(s + off)));
    }
  }
  for (; t + kFloatLanes <= n; t += kFloatLanes) {
    vstore(a + t, vadd(vload(a + t), vload(s + t)));
  }
  for (; t < n; ++t) a[t] += s[t];
}

/// a[t] += s[t] with a runtime unroll hint (the kernel's `unroll` knob).
/// Hints outside {1, 2, 4, 8} fall back to the un-unrolled loop.
inline void accumulate_span(float* a, const float* s, std::size_t n,
                            std::size_t unroll = 1) {
  switch (unroll) {
    case 8:
      accumulate_span_unrolled<8>(a, s, n);
      break;
    case 4:
      accumulate_span_unrolled<4>(a, s, n);
      break;
    case 2:
      accumulate_span_unrolled<2>(a, s, n);
      break;
    default:
      accumulate_span_unrolled<1>(a, s, n);
      break;
  }
}

}  // namespace ddmc::simd
