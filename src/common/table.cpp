#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace ddmc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DDMC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  DDMC_REQUIRE(cells.size() == header_.size(),
               "row width differs from header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TextTable::num(std::size_t v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ddmc
