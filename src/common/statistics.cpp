#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ddmc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

StatsSummary summarize(std::span<const double> values) {
  DDMC_REQUIRE(!values.empty(), "cannot summarize an empty population");
  RunningStats rs;
  for (double v : values) rs.add(v);
  StatsSummary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.snr_of_max = snr(s.max, s.mean, s.stddev);
  return s;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  DDMC_REQUIRE(!sorted.empty(), "percentile of an empty set");
  DDMC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank out of [0, 100]");
  // Nearest-rank: the smallest value with at least p% of the set at or
  // below it.
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

double percentile(std::span<const double> values, double p) {
  DDMC_REQUIRE(!values.empty(), "percentile of an empty set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double snr(double value, double mean, double stddev) {
  if (stddev <= 0.0) return 0.0;
  return (value - mean) / stddev;
}

double chebyshev_bound(double k) {
  if (k <= 1.0) return 1.0;
  return 1.0 / (k * k);
}

double Histogram::bin_width() const {
  if (counts.empty()) return 0.0;
  return (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  DDMC_REQUIRE(i < counts.size(), "bin out of range");
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

Histogram make_histogram(std::span<const double> values, std::size_t bins,
                         double lo, double hi) {
  DDMC_REQUIRE(bins > 0, "need at least one bin");
  DDMC_REQUIRE(hi > lo, "histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

Histogram make_histogram(std::span<const double> values, std::size_t bins) {
  DDMC_REQUIRE(!values.empty(), "cannot bin an empty population");
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  double lo = *mn;
  double hi = *mx;
  if (hi == lo) hi = lo + 1.0;  // degenerate population: single bin span
  return make_histogram(values, bins, lo, hi);
}

}  // namespace ddmc
