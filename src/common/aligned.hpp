#pragma once
/// \file aligned.hpp
/// \brief Cache-line / SIMD aligned allocation helpers.
///
/// Dedispersion kernels are memory-bound; keeping rows aligned to cache-line
/// boundaries both mirrors the device allocation rules the performance model
/// assumes and enables vectorized host kernels.

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

#include "common/expect.hpp"

namespace ddmc {

/// Default alignment: one x86 cache line, also sufficient for AVX-512 loads.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Round \p value up to the next multiple of \p alignment (alignment > 0).
constexpr std::size_t round_up(std::size_t value, std::size_t alignment) {
  return alignment == 0 ? value
                        : ((value + alignment - 1) / alignment) * alignment;
}

/// Integer ceiling division for non-negative operands.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return static_cast<T>((a + b - 1) / b);
}

/// True iff \p v is a power of two (and non-zero).
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// STL-compatible allocator returning storage aligned to \p Alignment bytes.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment weaker than type");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

 public:
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    const std::size_t bytes = round_up(n * sizeof(T), Alignment);
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace ddmc
