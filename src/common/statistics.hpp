#pragma once
/// \file statistics.hpp
/// \brief Descriptive statistics used by the auto-tuner analysis.
///
/// The paper quantifies auto-tuning impact through the signal-to-noise ratio
/// of the optimum — the distance of the best configuration from the mean of
/// all configurations in units of standard deviation (Figs. 8–10) — and
/// bounds the probability of guessing a near-optimal configuration with
/// Chebyshev's inequality.

#include <cstddef>
#include <span>
#include <vector>

namespace ddmc {

/// Numerically stable (Welford) accumulator for mean and variance.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (the paper's SNR uses the full population of
  /// configurations, not a sample).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a population of configuration performances.
struct StatsSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (max - mean) / stddev; 0 when stddev == 0.
  double snr_of_max = 0.0;
};

/// Compute the summary of \p values. Throws ddmc::invalid_argument if empty.
StatsSummary summarize(std::span<const double> values);

/// Nearest-rank percentile of \p values (p in [0, 100]); values need not be
/// sorted. Throws ddmc::invalid_argument when empty or p out of range.
double percentile(std::span<const double> values, double p);

/// Nearest-rank percentile of an already ascending-sorted, non-empty set —
/// the shared kernel of percentile(), LatencyTracker and the telemetry
/// Histogram, which sort once and read every percentile from it.
double percentile_sorted(std::span<const double> sorted, double p);

/// Signal-to-noise ratio of \p value against a population with \p mean and
/// \p stddev; returns 0 when stddev == 0.
double snr(double value, double mean, double stddev);

/// Chebyshev upper bound on P(|X - mean| >= k*stddev) = 1/k², clamped to 1.
/// The paper quotes <39% (k≈1.6) best case and <5% (k≈4.5) worst case.
double chebyshev_bound(double k);

/// Fixed-width histogram over [lo, hi] with \p bins bins; values outside the
/// range are clamped into the edge bins (matches the paper's Fig. 10 view).
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  double bin_width() const;
  /// Center of bin \p i, for plotting.
  double bin_center(std::size_t i) const;
};

Histogram make_histogram(std::span<const double> values, std::size_t bins,
                         double lo, double hi);

/// Convenience: histogram spanning [min(values), max(values)].
Histogram make_histogram(std::span<const double> values, std::size_t bins);

}  // namespace ddmc
