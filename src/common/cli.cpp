#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/expect.hpp"

namespace ddmc {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_option(const std::string& name, const std::string& help,
                     const std::string& default_value) {
  DDMC_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{help, default_value, /*is_flag=*/false, false};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  DDMC_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{help, "0", /*is_flag=*/true, false};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    DDMC_REQUIRE(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    DDMC_REQUIRE(it != options_.end(), "unknown option: --" + arg);
    Option& opt = it->second;
    if (opt.is_flag) {
      DDMC_REQUIRE(!has_value, "flag --" + arg + " takes no value");
      opt.value = "1";
    } else {
      if (!has_value) {
        DDMC_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  return true;
}

const Cli::Option& Cli::find(const std::string& name) const {
  auto it = options_.find(name);
  DDMC_REQUIRE(it != options_.end(), "option not registered: " + name);
  return it->second;
}

std::string Cli::get(const std::string& name) const { return find(name).value; }

long long Cli::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  DDMC_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
               "option --" + name + " is not an integer: " + v);
  return out;
}

double Cli::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  DDMC_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
               "option --" + name + " is not a number: " + v);
  return out;
}

bool Cli::get_flag(const std::string& name) const {
  const Option& opt = find(name);
  DDMC_REQUIRE(opt.is_flag, "option --" + name + " is not a flag");
  return opt.value == "1";
}

std::string Cli::usage() const {
  std::ostringstream ss;
  ss << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    ss << "  --" << name;
    if (!opt.is_flag) ss << " <value>";
    ss << "\n      " << opt.help;
    if (!opt.is_flag) ss << " (default: " << opt.value << ")";
    ss << "\n";
  }
  return ss.str();
}

}  // namespace ddmc
