#include "common/random.hpp"

#include <cmath>
#include <numbers>

namespace ddmc {

double Rng::next_normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box–Muller: u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_ = radius * std::sin(angle);
  have_spare_ = true;
  return radius * std::cos(angle);
}

}  // namespace ddmc
