#pragma once
/// \file thread_pool.hpp
/// \brief RAII worker pool and blocked parallel_for.
///
/// Follows the C++ Core Guidelines concurrency rules: threads are joined in
/// the destructor (no detached threads), work is expressed through a
/// higher-level facility instead of raw std::thread management, and
/// exceptions thrown by tasks are propagated to the caller.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddmc {

/// Fixed-size worker pool. Submit tasks with run(); parallel_for() blocks
/// until the whole index range has been processed and rethrows the first
/// task exception, if any.
class ThreadPool {
 public:
  /// \param workers number of worker threads; 0 selects hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue one task. Tasks must not themselves block on this pool.
  void run(std::function<void()> task);

  /// Block until every task enqueued so far has finished; rethrows the first
  /// captured task exception.
  void wait_idle();

  /// Process [begin, end) in contiguous blocks of at most block size,
  /// invoking fn(block_begin, block_end) on pool workers. Blocks until done
  /// and rethrows the first exception thrown by fn. Each call tracks its own
  /// completion and errors, so concurrent parallel_for calls on a shared
  /// pool neither wait on each other's tasks nor steal each other's
  /// exceptions.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t block,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Singleton pool sized to the machine, for library-internal parallelism.
ThreadPool& global_pool();

}  // namespace ddmc
