#pragma once
/// \file fft.hpp
/// \brief Self-contained iterative radix-2 FFT with real-input packing.
///
/// The Fourier-domain dedispersion engine (dedisp/fdmt.hpp) needs one
/// forward transform per channel and one inverse transform per DM trial —
/// nothing exotic, but it must not drag in an external FFT dependency. This
/// is the classic iterative radix-2 Cooley-Tukey transform: bit-reversal
/// permutation followed by log2(n) butterfly passes over a precomputed
/// twiddle table, restricted to power-of-two sizes (shorter series are
/// zero-padded up — next_pow2 below). Real-valued series go through the
/// standard even/odd packing trick: an n-point real FFT costs one
/// n/2-point complex FFT plus an O(n) unpack, and only the n/2+1
/// non-redundant half-spectrum bins are materialized.
///
/// Conventions: forward() is the unscaled DFT with the negative-exponent
/// kernel e^{-2*pi*i*k*t/n}; inverse() conjugates the kernel and scales by
/// 1/n, so inverse(forward(x)) == x up to roundoff. All twiddles are
/// computed in double precision and rounded once to float.

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ddmc::fft {

/// Smallest power of two >= max(n, 1).
std::size_t next_pow2(std::size_t n);

/// Iterative radix-2 complex FFT plan for one power-of-two size. A plan is
/// immutable after construction (bit-reversal and twiddle tables) and safe
/// to share across threads; the transforms run in place.
class Fft {
 public:
  /// \p n must be a power of two (n >= 1; n == 1 is the identity).
  explicit Fft(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place unscaled DFT of \p data (size() complex samples).
  void forward(std::complex<float>* data) const;
  /// In-place inverse DFT scaled by 1/size().
  void inverse(std::complex<float>* data) const;

 private:
  void transform(std::complex<float>* data, bool invert) const;

  std::size_t n_ = 1;
  std::vector<std::uint32_t> bitrev_;
  /// e^{-2*pi*i*j/n} for j < n/2 — every butterfly pass strides into this
  /// one table, so there is a single trigonometric setup per size.
  std::vector<std::complex<float>> twiddle_;
};

/// Half-spectrum length of an n-point real FFT: n/2 + 1 bins (1 for n==1).
inline std::size_t rfft_bins(std::size_t n) { return n == 1 ? 1 : n / 2 + 1; }

/// Real-input FFT of one power-of-two size n, computed as one n/2-point
/// complex FFT over even/odd-packed samples plus an O(n) unpack. forward()
/// zero-pads inputs shorter than n — that is the power-of-two padding path
/// for arbitrary-length series. Instances carry scratch, so one instance
/// is NOT safe for concurrent use; plans are cheap, build one per thread.
class RealFft {
 public:
  explicit RealFft(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t bins() const { return rfft_bins(n_); }

  /// DFT bins 0..n/2 of the \p n_in real samples at \p x zero-padded to
  /// size(). Requires n_in <= size(); \p out holds bins() values. Bins 0
  /// and n/2 come out with zero imaginary part (they are real for real
  /// input), the remaining half spectrum is implied by Hermitian symmetry.
  void forward(const float* x, std::size_t n_in, std::complex<float>* out) const;

  /// Inverse of forward(): writes all size() real samples of the series
  /// whose half spectrum is \p bins (bins() values; the imaginary parts of
  /// bins 0 and n/2 are ignored, as Hermitian symmetry forces them to 0).
  void inverse(const std::complex<float>* bins, float* x) const;

 private:
  std::size_t n_ = 1;
  Fft half_;
  /// Unpack weights e^{-2*pi*i*k/n} for k <= n/2.
  std::vector<std::complex<float>> weight_;
  mutable std::vector<std::complex<float>> scratch_;
};

}  // namespace ddmc::fft
