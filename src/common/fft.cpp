#include "common/fft.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ddmc::fft {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_of(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n) : n_(n) {
  DDMC_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  const std::size_t bits = log2_of(n);
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < bits; ++b) rev |= ((i >> b) & 1u) << (bits - 1 - b);
    bitrev_[i] = static_cast<std::uint32_t>(rev);
  }
  twiddle_.resize(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) {
    const double angle = -kTwoPi * static_cast<double>(j) / static_cast<double>(n);
    twiddle_[j] = {static_cast<float>(std::cos(angle)),
                   static_cast<float>(std::sin(angle))};
  }
}

void Fft::transform(std::complex<float>* data, bool invert) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // The butterflies run on raw interleaved floats through __restrict
  // pointers: std::complex loads/stores make every butterfly a potential
  // alias of the twiddle table, which costs the loop most of its
  // throughput, and explicit real arithmetic avoids the IEC 60559 library
  // multiply this all-finite transform does not need.
  // The table stores the forward (negative-exponent) twiddles; the
  // inverse transform conjugates them.
  float* __restrict d = reinterpret_cast<float*>(data);
  const float* __restrict tw = reinterpret_cast<const float*>(twiddle_.data());
  const float sign = invert ? -1.0f : 1.0f;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const float wr = tw[2 * j * stride];
        const float wi = sign * tw[2 * j * stride + 1];
        const std::size_t lo = 2 * (base + j);
        const std::size_t hi = lo + 2 * half;
        const float ur = d[lo], ui = d[lo + 1];
        const float tr = d[hi], ti = d[hi + 1];
        const float vr = tr * wr - ti * wi;
        const float vi = tr * wi + ti * wr;
        d[lo] = ur + vr;
        d[lo + 1] = ui + vi;
        d[hi] = ur - vr;
        d[hi + 1] = ui - vi;
      }
    }
  }
}

void Fft::forward(std::complex<float>* data) const { transform(data, false); }

void Fft::inverse(std::complex<float>* data) const {
  transform(data, true);
  const float scale = 1.0f / static_cast<float>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
}

RealFft::RealFft(std::size_t n) : n_(n), half_(n > 1 ? n / 2 : 1) {
  DDMC_REQUIRE(is_pow2(n), "real FFT size must be a power of two");
  weight_.resize(n / 2 + 1);
  for (std::size_t k = 0; k < weight_.size(); ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    weight_[k] = {static_cast<float>(std::cos(angle)),
                  static_cast<float>(std::sin(angle))};
  }
  scratch_.resize(n > 1 ? n / 2 : 1);
}

void RealFft::forward(const float* x, std::size_t n_in,
                      std::complex<float>* out) const {
  DDMC_REQUIRE(n_in <= n_, "real FFT input longer than the transform size");
  if (n_ == 1) {
    out[0] = {n_in > 0 ? x[0] : 0.0f, 0.0f};
    return;
  }
  const std::size_t m = n_ / 2;
  // Pack adjacent sample pairs into one complex series, zero-padding the
  // tail: z[t] = x[2t] + i*x[2t+1]. The in-range pairs copy branch-free;
  // only the split pair (odd n_in) and the zero tail are handled apart.
  const std::size_t pairs = std::min(n_in, n_) / 2;
  for (std::size_t t = 0; t < pairs; ++t) scratch_[t] = {x[2 * t], x[2 * t + 1]};
  std::size_t tail = pairs;
  if (n_in % 2 == 1 && tail < m) scratch_[tail++] = {x[n_in - 1], 0.0f};
  for (std::size_t t = tail; t < m; ++t) scratch_[t] = {0.0f, 0.0f};
  half_.forward(scratch_.data());
  // Unpack: split the packed spectrum into the even/odd-sample halves
  // (Fe, Fo) and recombine as X[k] = Fe[k] + W^k * Fo[k]. Raw __restrict
  // floats for the same reason as the butterflies above.
  const float* __restrict z = reinterpret_cast<const float*>(scratch_.data());
  const float* __restrict w = reinterpret_cast<const float*>(weight_.data());
  float* __restrict o = reinterpret_cast<float*>(out);
  o[0] = z[0] + z[1];
  o[1] = 0.0f;
  o[2 * m] = z[0] - z[1];
  o[2 * m + 1] = 0.0f;
  for (std::size_t k = 1; k < m; ++k) {
    const float zkr = z[2 * k], zki = z[2 * k + 1];
    const float zmr = z[2 * (m - k)], zmi = z[2 * (m - k) + 1];
    const float fer = 0.5f * (zkr + zmr);
    const float fei = 0.5f * (zki - zmi);
    const float for_ = 0.5f * (zki + zmi);
    const float foi = -0.5f * (zkr - zmr);
    const float wr = w[2 * k];
    const float wi = w[2 * k + 1];
    o[2 * k] = fer + for_ * wr - foi * wi;
    o[2 * k + 1] = fei + for_ * wi + foi * wr;
  }
}

void RealFft::inverse(const std::complex<float>* bins, float* x) const {
  if (n_ == 1) {
    x[0] = bins[0].real();
    return;
  }
  const std::size_t m = n_ / 2;
  // Invert the unpack: with E/O the even/odd-sample half spectra,
  // X[k] = E[k] + W^k*O[k] and conj(X[m-k]) = E[k] - W^k*O[k], so
  // E[k] = (X[k] + conj(X[m-k]))/2, O[k] = (X[k] - conj(X[m-k]))/2 * W^{-k},
  // and the packed spectrum is Z[k] = E[k] + i*O[k].
  const float* __restrict b = reinterpret_cast<const float*>(bins);
  const float* __restrict w = reinterpret_cast<const float*>(weight_.data());
  float* __restrict z = reinterpret_cast<float*>(scratch_.data());
  for (std::size_t k = 0; k < m; ++k) {
    const float xkr = b[2 * k], xki = b[2 * k + 1];
    const float xmr = b[2 * (m - k)], xmi = b[2 * (m - k) + 1];
    const float fer = 0.5f * (xkr + xmr);
    const float fei = 0.5f * (xki - xmi);
    const float dr = 0.5f * (xkr - xmr);
    const float di = 0.5f * (xki + xmi);
    const float wr = w[2 * k];
    const float wi = -w[2 * k + 1];
    const float gr = dr * wr - di * wi;  // O[k] = (dr + i*di) * W^{-k}
    const float gi = dr * wi + di * wr;
    z[2 * k] = fer - gi;  // E[k] + i*O[k]
    z[2 * k + 1] = fei + gr;
  }
  half_.inverse(scratch_.data());
  for (std::size_t t = 0; t < m; ++t) {
    x[2 * t] = scratch_[t].real();
    x[2 * t + 1] = scratch_[t].imag();
  }
}

}  // namespace ddmc::fft
