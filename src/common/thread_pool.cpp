#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace ddmc {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::run(std::function<void()> task) {
  DDMC_REQUIRE(task != nullptr, "null task");
  {
    std::lock_guard lock(mutex_);
    DDMC_REQUIRE(!stop_, "pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t block,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  DDMC_REQUIRE(begin <= end, "inverted range");
  DDMC_REQUIRE(block > 0, "block must be positive");
  if (begin == end) return;
  for (std::size_t b = begin; b < end; b += block) {
    const std::size_t e = std::min(end, b + block);
    run([&fn, b, e] { fn(b, e); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ddmc
