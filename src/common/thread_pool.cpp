#include "common/thread_pool.hpp"

#include <algorithm>
#include <memory>

#include "common/aligned.hpp"
#include "common/expect.hpp"

namespace ddmc {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::run(std::function<void()> task) {
  DDMC_REQUIRE(task != nullptr, "null task");
  {
    std::lock_guard lock(mutex_);
    DDMC_REQUIRE(!stop_, "pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t block,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  DDMC_REQUIRE(begin <= end, "inverted range");
  DDMC_REQUIRE(block > 0, "block must be positive");
  if (begin == end) return;

  // Each call gets its own completion latch and error slot. Waiting on the
  // pool-global in_flight_/first_error_ would make two concurrent
  // parallel_for calls (e.g. multibeam over the global pool while a beam
  // dedisperses) block on each other's tasks and steal each other's
  // exceptions.
  struct CallState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  const std::size_t blocks = ceil_div(end - begin, block);
  auto state = std::make_shared<CallState>();
  state->remaining = blocks;

  for (std::size_t b = begin; b < end; b += block) {
    const std::size_t e = std::min(end, b + block);
    run([state, &fn, b, e] {
      try {
        fn(b, e);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      std::lock_guard lock(state->mutex);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  std::unique_lock lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ddmc
