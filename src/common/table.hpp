#pragma once
/// \file table.hpp
/// \brief Text table / CSV emitters for bench harness output.
///
/// Every figure bench prints (a) an aligned human-readable table and (b) a
/// machine-readable CSV block, so results can be eyeballed or re-plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace ddmc {

/// Column-aligned text table with an optional title, built row by row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Format a double with \p precision significant decimals.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with padded columns and a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows), comma-separated, no quoting (cells are
  /// generated internally and contain no commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ddmc
