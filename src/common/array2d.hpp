#pragma once
/// \file array2d.hpp
/// \brief Owning pitched 2-D array and non-owning views.
///
/// The channelized time series (channels × time) and the dedispersed output
/// (DMs × samples) are both dense row-major matrices. Rows are padded to the
/// cache-line pitch so that row starts are aligned — the same layout device
/// runtimes give to image/buffer rows and the layout the memory-traffic model
/// assumes.

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/expect.hpp"

namespace ddmc {

/// Non-owning mutable view over a pitched row-major matrix.
template <typename T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, std::size_t rows, std::size_t cols, std::size_t pitch)
      : data_(data), rows_(rows), cols_(cols), pitch_(pitch) {
    DDMC_REQUIRE(pitch >= cols, "pitch must cover a full row");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t pitch() const { return pitch_; }
  T* data() const { return data_; }

  T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * pitch_ + c];
  }

  /// Checked element access (tests and debug paths).
  T& at(std::size_t r, std::size_t c) const {
    DDMC_REQUIRE(r < rows_ && c < cols_, "index out of range");
    return (*this)(r, c);
  }

  std::span<T> row(std::size_t r) const {
    DDMC_REQUIRE(r < rows_, "row out of range");
    return std::span<T>(data_ + r * pitch_, cols_);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t pitch_ = 0;
};

/// Non-owning const view over a pitched row-major matrix.
template <typename T>
class ConstView2D {
 public:
  ConstView2D() = default;
  ConstView2D(const T* data, std::size_t rows, std::size_t cols,
              std::size_t pitch)
      : data_(data), rows_(rows), cols_(cols), pitch_(pitch) {
    DDMC_REQUIRE(pitch >= cols, "pitch must cover a full row");
  }
  // NOLINTNEXTLINE(google-explicit-constructor): views convert like spans.
  ConstView2D(View2D<T> v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), pitch_(v.pitch()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t pitch() const { return pitch_; }
  const T* data() const { return data_; }

  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * pitch_ + c];
  }

  const T& at(std::size_t r, std::size_t c) const {
    DDMC_REQUIRE(r < rows_ && c < cols_, "index out of range");
    return (*this)(r, c);
  }

  std::span<const T> row(std::size_t r) const {
    DDMC_REQUIRE(r < rows_, "row out of range");
    return std::span<const T>(data_ + r * pitch_, cols_);
  }

 private:
  const T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t pitch_ = 0;
};

/// Owning pitched row-major matrix with cache-line aligned rows.
template <typename T>
class Array2D {
 public:
  Array2D() = default;

  /// Construct a rows×cols matrix, zero-initialized, rows padded so every
  /// row start is cache-line aligned.
  Array2D(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        pitch_(round_up(cols * sizeof(T), kCacheLineBytes) / sizeof(T)),
        storage_(rows * pitch_, T{}) {
    DDMC_REQUIRE(rows > 0 && cols > 0, "empty matrix");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t pitch() const { return pitch_; }
  std::size_t size_bytes() const { return storage_.size() * sizeof(T); }

  T& operator()(std::size_t r, std::size_t c) {
    return storage_[r * pitch_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    return storage_[r * pitch_ + c];
  }

  T& at(std::size_t r, std::size_t c) { return view().at(r, c); }
  const T& at(std::size_t r, std::size_t c) const { return cview().at(r, c); }

  std::span<T> row(std::size_t r) { return view().row(r); }
  std::span<const T> row(std::size_t r) const { return cview().row(r); }

  View2D<T> view() { return View2D<T>(storage_.data(), rows_, cols_, pitch_); }
  ConstView2D<T> cview() const {
    return ConstView2D<T>(storage_.data(), rows_, cols_, pitch_);
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator ConstView2D<T>() const { return cview(); }

  void fill(const T& v) { storage_.assign(storage_.size(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t pitch_ = 0;
  std::vector<T, AlignedAllocator<T>> storage_;
};

}  // namespace ddmc
