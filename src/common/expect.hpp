#pragma once
/// \file expect.hpp
/// \brief Error-handling primitives shared by every module.
///
/// The library reports contract violations with typed exceptions rather than
/// assertions so that callers (tuner sweeps in particular) can skip invalid
/// kernel configurations without terminating the process.

#include <stdexcept>
#include <string>

namespace ddmc {

/// Thrown when a function argument violates its documented contract.
class invalid_argument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a kernel configuration is not executable on a device or
/// observation (the paper's notion of a non-"meaningful" configuration).
class config_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an internal invariant fails; indicates a library bug.
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_expect_failed(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  if (std::string(kind) == "precondition") throw invalid_argument(full);
  throw internal_error(full);
}
}  // namespace detail

}  // namespace ddmc

/// Precondition check: throws ddmc::invalid_argument with location info.
#define DDMC_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ddmc::detail::throw_expect_failed("precondition", #expr, __FILE__,  \
                                          __LINE__, (msg));                 \
  } while (false)

/// Internal invariant check: throws ddmc::internal_error with location info.
#define DDMC_ENSURE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ddmc::detail::throw_expect_failed("invariant", #expr, __FILE__,     \
                                          __LINE__, (msg));                 \
  } while (false)
