#pragma once
/// \file timer.hpp
/// \brief Steady-clock stopwatch used by the real host-kernel benchmarks.

#include <chrono>

namespace ddmc {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ddmc
