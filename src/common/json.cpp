#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/expect.hpp"

namespace ddmc::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

std::string Object::dump() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  return out + "}";
}

std::string Array::dump() const {
  std::string out = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += items_[i];
  }
  return out + "]";
}

void write_file(const std::string& path, const Object& root) {
  std::ofstream os(path);
  DDMC_REQUIRE(os.good(), "cannot open JSON output file: " + path);
  os << root.dump() << "\n";
}

// ---------------------------------------------------------------- parsing --

namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw invalid_argument("JSON parse error at offset " + std::to_string(pos) +
                         ": " + what);
}

}  // namespace

bool Value::as_bool() const {
  DDMC_REQUIRE(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double Value::as_number() const {
  DDMC_REQUIRE(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  DDMC_REQUIRE(is_string(), "JSON value is not a string");
  return string_;
}

std::size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  throw invalid_argument("JSON value is not an array or object");
}

const Value& Value::at(std::size_t index) const {
  DDMC_REQUIRE(is_array(), "JSON value is not an array");
  DDMC_REQUIRE(index < array_.size(),
               "JSON array index " + std::to_string(index) + " out of range");
  return array_[index];
}

bool Value::contains(const std::string& key) const {
  DDMC_REQUIRE(is_object(), "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(const std::string& key) const {
  DDMC_REQUIRE(is_object(), "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw invalid_argument("JSON object has no key '" + key + "'");
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  DDMC_REQUIRE(is_object(), "JSON value is not an object");
  return object_;
}

/// Single-pass recursive-descent parser over the input string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (literal("true")) {
          Value v;
          v.kind_ = Value::Kind::kBool;
          v.bool_ = true;
          return v;
        }
        fail_at(pos_, "bad literal");
      case 'f':
        if (literal("false")) {
          Value v;
          v.kind_ = Value::Kind::kBool;
          v.bool_ = false;
          return v;
        }
        fail_at(pos_, "bad literal");
      case 'n':
        if (literal("null")) return Value{};
        fail_at(pos_, "bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail_at(pos_, "short \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail_at(pos_ - 1, "bad \\u escape digit");
          }
          // BMP-only UTF-8 encoding; the serializer never emits surrogates.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail_at(pos_ - 1, "unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      fail_at(start, "malformed number '" + token + "'");
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace ddmc::json
