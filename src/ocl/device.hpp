#pragma once
/// \file device.hpp
/// \brief Parameterized model of a many-core accelerator.
///
/// There is no physical GPU in this environment, so the five accelerators of
/// Table I are reproduced as *device models*: the architectural parameters a
/// real OpenCL runtime would report (compute units, work-group limits,
/// register files, local memory, cache lines) plus a small set of documented
/// calibration constants used by the analytic performance model
/// (perf_model.hpp). The functional simulator (sim_engine.hpp) enforces the
/// same limits when executing kernels, so a configuration that is invalid on
/// a device model fails the same way in both paths.

#include <cstddef>
#include <string>
#include <vector>

namespace ddmc::ocl {

struct DeviceModel {
  std::string name;
  std::string vendor;

  // ---- Table I characteristics -------------------------------------------
  std::size_t compute_units = 1;   ///< CUs / SMXs / cores
  std::size_t lanes_per_cu = 1;    ///< compute elements per CU
  double clock_ghz = 1.0;
  double peak_gflops = 0.0;        ///< single-precision peak (with FMA)
  double peak_bandwidth_gbs = 0.0; ///< peak DRAM bandwidth
  double memory_gb = 0.0;          ///< device memory capacity

  // ---- Execution limits (what clGetDeviceInfo/occupancy rules expose) ----
  std::size_t max_work_group_size = 256;
  std::size_t max_groups_per_cu = 16;
  std::size_t max_items_per_cu = 2048;     ///< resident work-items per CU
  std::size_t register_file_per_cu = 65536;///< 32-bit registers per CU
  std::size_t max_regs_per_item = 255;     ///< hardware/compiler per-thread cap
  std::size_t reg_overhead_per_item = 12;  ///< regs beyond the accumulators
  std::size_t local_mem_per_group_bytes = 32768;
  std::size_t local_mem_per_cu_bytes = 65536;
  bool has_local_memory = true;   ///< false: "local" is emulated in cache
  bool serial_group_execution = false; ///< Phi-style: group = 1 instr stream
  std::size_t simd_width = 32;    ///< warp / wavefront / vector width
  std::size_t cache_line_bytes = 64;
  std::size_t cache_per_cu_bytes = 16384; ///< reuse budget without local mem
  /// Fraction of the potential inter-trial reuse a hardware cache actually
  /// realizes when the working set fits (caches capture opportunistically;
  /// collaborative local-memory staging captures deterministically).
  double cache_capture_eff = 0.5;
  double lds_bytes_per_cu_per_clock = 128.0; ///< local-memory throughput

  // ---- Calibration constants (fitted once; see device_presets.cpp) -------
  double instr_per_flop = 5.0;     ///< issued instructions per accumulate
  double bw_efficiency = 0.8;      ///< achievable fraction of peak bandwidth
  double compute_efficiency = 1.0; ///< achievable fraction of peak issue rate
  double hiding_half = 6.0;        ///< hiding units giving 50% latency hiding
  double launch_overhead_us = 10.0;///< fixed per-kernel launch cost
  double group_overhead_cycles = 300.0; ///< per-work-group scheduling cost

  // ---- Derived helpers ----------------------------------------------------
  /// Total scalar lanes on the device.
  std::size_t total_lanes() const { return compute_units * lanes_per_cu; }
  /// Peak instruction issue rate in Gops (no FMA credit: dedispersion's
  /// accumulates cannot be fused, which alone halves the headline peak —
  /// the §VI argument against the 50%-of-peak claim).
  double peak_instr_gops() const {
    return static_cast<double>(total_lanes()) * clock_ghz;
  }
  double memory_bytes() const { return memory_gb * 1e9; }
};

}  // namespace ddmc::ocl
