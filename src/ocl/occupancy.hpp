#pragma once
/// \file occupancy.hpp
/// \brief Occupancy calculator: how many groups/items a CU can keep resident.
///
/// The paper's tuner trades work-group size against registers per work-item
/// (Figs. 2–5); the mechanism behind the trade is occupancy — registers,
/// local memory, the resident-group cap and the resident-item cap all bound
/// how much latency-hiding parallelism a compute unit holds. This module
/// reproduces the standard occupancy computation from those limits.

#include <cstddef>
#include <string>

#include "dedisp/kernel_config.hpp"
#include "ocl/device.hpp"

namespace ddmc::ocl {

enum class OccupancyLimiter {
  kGroupCap,     ///< device max groups per CU
  kItemCap,      ///< device max resident items per CU
  kRegisters,    ///< register file exhausted
  kLocalMemory,  ///< local memory exhausted
  kInvalid,      ///< config cannot run at all (0 resident groups)
};

std::string to_string(OccupancyLimiter limiter);

struct Occupancy {
  std::size_t regs_per_item = 0;     ///< accumulators + fixed overhead
  std::size_t groups_per_cu = 0;     ///< resident groups per CU
  std::size_t items_per_cu = 0;      ///< resident work-items per CU
  double fraction = 0.0;             ///< items_per_cu / max_items_per_cu
  OccupancyLimiter limiter = OccupancyLimiter::kInvalid;

  bool valid() const { return groups_per_cu > 0; }
};

/// Compute occupancy of \p config on \p device given the kernel's local
/// memory appetite (\p local_bytes_per_group; 0 for the direct variant).
/// Never throws: an impossible config reports limiter == kInvalid.
Occupancy compute_occupancy(const DeviceModel& device,
                            const dedisp::KernelConfig& config,
                            std::size_t local_bytes_per_group);

}  // namespace ddmc::ocl
