#include "ocl/sim_engine.hpp"

namespace ddmc::ocl {

MemCounters& MemCounters::operator+=(const MemCounters& o) {
  global_loads += o.global_loads;
  global_stores += o.global_stores;
  local_loads += o.local_loads;
  local_stores += o.local_stores;
  flops += o.flops;
  barriers += o.barriers;
  groups += o.groups;
  return *this;
}

GroupContext::GroupContext(std::size_t group_x, std::size_t group_y,
                           std::size_t items_x, std::size_t items_y,
                           std::size_t local_limit_bytes,
                           MemCounters& counters)
    : group_x_(group_x),
      group_y_(group_y),
      items_x_(items_x),
      items_y_(items_y),
      local_limit_bytes_(local_limit_bytes),
      counters_(&counters) {
  DDMC_REQUIRE(items_x > 0 && items_y > 0, "empty work-group");
}

LocalSpan GroupContext::local_alloc(std::size_t floats) {
  const std::size_t bytes = floats * sizeof(float);
  if (local_used_ + bytes > local_limit_bytes_) {
    throw config_error(
        "local memory request of " + std::to_string(local_used_ + bytes) +
        " bytes exceeds the device limit of " +
        std::to_string(local_limit_bytes_) + " bytes per work-group");
  }
  local_used_ += bytes;
  const std::size_t offset = arena_.size();
  arena_.resize(offset + floats, 0.0f);
  return LocalSpan(std::span<float>(arena_).subspan(offset, floats),
                   *counters_);
}

void GroupContext::phase(const std::function<void(const ItemId&)>& body) {
  for (std::size_t y = 0; y < items_y_; ++y) {
    for (std::size_t x = 0; x < items_x_; ++x) {
      body(ItemId{x, y});
    }
  }
  ++counters_->barriers;  // the implicit barrier closing the phase
}

MemCounters execute_ndrange(
    const NDRange& range, std::size_t local_limit_bytes,
    std::size_t max_group_size,
    const std::function<void(GroupContext&)>& program) {
  DDMC_REQUIRE(range.groups_x > 0 && range.groups_y > 0, "empty grid");
  DDMC_REQUIRE(range.items_x > 0 && range.items_y > 0, "empty group");
  const std::size_t group_size = range.items_x * range.items_y;
  if (max_group_size != 0 && group_size > max_group_size) {
    throw config_error("work-group size " + std::to_string(group_size) +
                       " exceeds the device limit of " +
                       std::to_string(max_group_size));
  }
  MemCounters total;
  for (std::size_t gy = 0; gy < range.groups_y; ++gy) {
    for (std::size_t gx = 0; gx < range.groups_x; ++gx) {
      GroupContext ctx(gx, gy, range.items_x, range.items_y,
                       local_limit_bytes, total);
      program(ctx);
      ++total.groups;
    }
  }
  return total;
}

}  // namespace ddmc::ocl
