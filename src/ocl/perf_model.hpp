#pragma once
/// \file perf_model.hpp
/// \brief Analytic execution-time model for the dedispersion kernel.
///
/// The timing half of the accelerator substitution (DESIGN.md §2/§5). For a
/// (device, plan, config) it combines:
///  - DRAM time from the memory model, scaled by achievable bandwidth and a
///    latency-hiding efficiency that saturates with resident parallelism,
///  - instruction-issue time (dedispersion cannot use FMAs, and every
///    accumulate drags address arithmetic and a local-memory access along),
///  - local-memory (LDS) throughput time for the staged variant — the
///    hardware ceiling that §V-C shows caps even perfect-reuse scenarios,
///  - fixed launch plus per-work-group scheduling overheads, and CU
///    under-utilization for grids smaller than the device.
///
/// The model is fully deterministic and closed-form; a tuner sweep over
/// thousands of configurations costs microseconds per point.

#include <cstddef>
#include <map>

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"
#include "ocl/memory_model.hpp"
#include "ocl/occupancy.hpp"

namespace ddmc::ocl {

/// Memoizes per-tile-size spread statistics of a plan's delay table; the
/// spread scan is the only non-trivial cost in a model evaluation.
/// Not thread-safe (the sweeps are sequential by design).
class PlanAnalysis {
 public:
  explicit PlanAnalysis(dedisp::Plan plan);

  const dedisp::Plan& plan() const { return plan_; }
  const sky::SpreadStats& spreads(std::size_t tile_dm) const;

 private:
  dedisp::Plan plan_;
  mutable std::map<std::size_t, sky::SpreadStats> cache_;
};

struct PerfEstimate {
  double seconds = 0.0;
  double gflops = 0.0;          ///< paper metric: d·s·c FLOP / seconds
  double mem_seconds = 0.0;     ///< DRAM-bound component
  double instr_seconds = 0.0;   ///< issue-bound component
  double lds_seconds = 0.0;     ///< local-memory-throughput component
  double overhead_seconds = 0.0;
  double busy_fraction = 0.0;   ///< CUs with work / CUs
  double hiding_units = 0.0;    ///< resident warps (or groups on serial CUs)
  double hiding_efficiency = 0.0;
  bool memory_bound = false;    ///< DRAM time dominates the other ceilings
  Occupancy occupancy;
  TrafficEstimate traffic;
};

/// Estimate the kernel execution time. Throws ddmc::config_error when the
/// configuration is not "meaningful" on this device/plan (non-dividing
/// tiles, work-group too large, register or local-memory overflow).
PerfEstimate estimate_performance(const DeviceModel& device,
                                  const PlanAnalysis& analysis,
                                  const dedisp::KernelConfig& config);

/// Model of the §V-D CPU implementation (threads over DMs and time blocks,
/// 8-wide chunks, no inter-trial reuse) on a CPU device model.
PerfEstimate estimate_cpu_baseline(const DeviceModel& cpu,
                                   const dedisp::Plan& plan);

/// True when input + output + delay table fit the device memory (the paper:
/// "due to memory constraints, some platforms may not be able to compute
/// results for all the input instances").
bool fits_in_memory(const DeviceModel& device, const dedisp::Plan& plan);

/// GFLOP/s needed to dedisperse one second of data in one second of compute
/// — the "real-time" line of Figs. 6–7.
double real_time_gflops(const sky::Observation& obs, std::size_t dms);

}  // namespace ddmc::ocl
