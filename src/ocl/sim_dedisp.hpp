#pragma once
/// \file sim_dedisp.hpp
/// \brief The paper's dedispersion kernel, expressed for the MiniCL engine.
///
/// Two variants, matching §III-B:
///  - **staged** (GPUs): per channel, the work-items collaboratively load
///    the union of the tile's shifted input spans into local memory, barrier,
///    then accumulate from local memory into register accumulators.
///  - **direct** (devices without real local memory, e.g. the Xeon Phi):
///    every work-item reads global memory directly and relies on the cache.
///
/// Both variants accumulate channels in ascending order per output element,
/// so their results are bit-identical to the sequential reference.

#include "common/array2d.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"
#include "ocl/sim_engine.hpp"

namespace ddmc::ocl {

struct SimRunResult {
  MemCounters counters;
  bool staged = false;  ///< which kernel variant executed
};

/// Execute \p config on the functional simulator of \p device.
/// Enforces the device's work-group and local-memory limits (throws
/// ddmc::config_error exactly when the real runtime would fail).
SimRunResult simulate_dedisp(const DeviceModel& device,
                             const dedisp::Plan& plan,
                             const dedisp::KernelConfig& config,
                             ConstView2D<float> in, View2D<float> out);

/// Force a specific kernel variant (used by ablation tests/benches).
SimRunResult simulate_dedisp_variant(const DeviceModel& device,
                                     const dedisp::Plan& plan,
                                     const dedisp::KernelConfig& config,
                                     ConstView2D<float> in,
                                     View2D<float> out, bool staged);

}  // namespace ddmc::ocl
