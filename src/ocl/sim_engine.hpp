#pragma once
/// \file sim_engine.hpp
/// \brief MiniCL: a functional NDRange executor.
///
/// Executes OpenCL-shaped kernels on the host with the semantics the
/// dedispersion kernel relies on:
///  - a 2-D grid of independent work-groups,
///  - work-items inside a group that synchronize at barriers,
///  - a per-group local-memory arena with a device-enforced size limit,
///  - instrumented global buffers that count every load and store.
///
/// Barriers are expressed structurally: a group program is a sequence of
/// *phases*, each phase running the phase body once per work-item, with an
/// implicit barrier between phases. This is exactly the barrier discipline
/// of the paper's kernel (collaborative load → barrier → accumulate →
/// barrier), and it makes the executor simple and sequentially
/// deterministic — no fibers required.
///
/// The executor is the correctness half of the accelerator substitution: it
/// produces bit-exact kernel output and *measured* memory traffic, which the
/// test suite compares against the analytic memory model's predictions.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/array2d.hpp"
#include "common/expect.hpp"

namespace ddmc::ocl {

/// Traffic and work counters accumulated over a kernel execution.
struct MemCounters {
  std::uint64_t global_loads = 0;   ///< 4-byte loads from global buffers
  std::uint64_t global_stores = 0;  ///< 4-byte stores to global buffers
  std::uint64_t local_loads = 0;    ///< 4-byte loads from local memory
  std::uint64_t local_stores = 0;   ///< 4-byte stores to local memory
  std::uint64_t flops = 0;          ///< floating point accumulates
  std::uint64_t barriers = 0;       ///< group-wide barriers executed
  std::uint64_t groups = 0;         ///< work-groups executed

  MemCounters& operator+=(const MemCounters& o);
};

/// Read-only instrumented wrapper over a global float matrix.
class GlobalReadBuffer {
 public:
  GlobalReadBuffer(ConstView2D<float> view, MemCounters& counters)
      : view_(view), counters_(&counters) {}

  float load(std::size_t row, std::size_t col) const {
    ++counters_->global_loads;
    return view_(row, col);
  }
  std::size_t rows() const { return view_.rows(); }
  std::size_t cols() const { return view_.cols(); }

 private:
  ConstView2D<float> view_;
  MemCounters* counters_;
};

/// Write-only instrumented wrapper over a global float matrix.
class GlobalWriteBuffer {
 public:
  GlobalWriteBuffer(View2D<float> view, MemCounters& counters)
      : view_(view), counters_(&counters) {}

  void store(std::size_t row, std::size_t col, float value) const {
    ++counters_->global_stores;
    view_(row, col) = value;
  }

 private:
  View2D<float> view_;
  MemCounters* counters_;
};

/// Local id of a work-item inside its group.
struct ItemId {
  std::size_t x = 0;  ///< time dimension
  std::size_t y = 0;  ///< DM dimension
  /// Linearized id, x fastest (OpenCL's get_local_id ordering).
  std::size_t linear(std::size_t items_x) const { return y * items_x + x; }
};

/// Instrumented local-memory span handed to a group.
class LocalSpan {
 public:
  LocalSpan() = default;
  LocalSpan(std::span<float> data, MemCounters& counters)
      : data_(data), counters_(&counters) {}

  float load(std::size_t i) const {
    ++counters_->local_loads;
    return data_[i];
  }
  void store(std::size_t i, float v) const {
    ++counters_->local_stores;
    data_[i] = v;
  }
  std::size_t size() const { return data_.size(); }

 private:
  std::span<float> data_;
  MemCounters* counters_ = nullptr;
};

/// Per-group execution context: ids, local memory, phased execution.
class GroupContext {
 public:
  GroupContext(std::size_t group_x, std::size_t group_y, std::size_t items_x,
               std::size_t items_y, std::size_t local_limit_bytes,
               MemCounters& counters);

  std::size_t group_x() const { return group_x_; }
  std::size_t group_y() const { return group_y_; }
  std::size_t items_x() const { return items_x_; }
  std::size_t items_y() const { return items_y_; }
  std::size_t group_size() const { return items_x_ * items_y_; }
  MemCounters& counters() { return *counters_; }

  /// Allocate \p floats from the group's local arena. Throws
  /// ddmc::config_error when the device's local-memory limit is exceeded —
  /// the same failure a real clCreateKernel/clEnqueue would report.
  LocalSpan local_alloc(std::size_t floats);

  /// Run \p body once per work-item; an implicit barrier follows the phase.
  void phase(const std::function<void(const ItemId&)>& body);

 private:
  std::size_t group_x_, group_y_, items_x_, items_y_;
  std::size_t local_limit_bytes_;
  std::size_t local_used_ = 0;
  std::vector<float> arena_;
  MemCounters* counters_;
};

/// 2-D NDRange: groups × items per group in each dimension.
struct NDRange {
  std::size_t groups_x = 1;
  std::size_t groups_y = 1;
  std::size_t items_x = 1;
  std::size_t items_y = 1;
};

/// Execute \p program once per work-group. Sequential and deterministic.
/// \p local_limit_bytes is the device's per-group local-memory capacity.
/// \p max_group_size mirrors CL_DEVICE_MAX_WORK_GROUP_SIZE (0 = unlimited).
MemCounters execute_ndrange(
    const NDRange& range, std::size_t local_limit_bytes,
    std::size_t max_group_size,
    const std::function<void(GroupContext&)>& program);

}  // namespace ddmc::ocl
