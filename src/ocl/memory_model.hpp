#pragma once
/// \file memory_model.hpp
/// \brief Analytic DRAM / local-memory traffic for a (plan, config, device).
///
/// §III-B's memory reasoning, made quantitative:
///  - reads are coalesced but not aligned (the delay function fixes the
///    offsets), so a contiguous read of b bytes at an effectively random
///    offset touches (b + L − 1)/L cache lines in expectation — which
///    degenerates to the paper's "at most a factor two" for single-line
///    rows and vanishes for long rows;
///  - when the staged (local-memory) variant captures reuse, each
///    (channel, DM-tile, time-tile) row is fetched once: tile_time + spread
///    distinct floats;
///  - when reuse is not captured (direct variant with a working set larger
///    than the cache), every trial re-reads its own span.

#include <cstddef>

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"
#include "sky/delay.hpp"

namespace ddmc::ocl {

/// How inter-DM reuse is realized on the device for a given config.
enum class ReuseCapture {
  kLocalMemory,  ///< staged variant, rows fit the local-memory budget
  kCache,        ///< direct variant, rows co-resident in the cache
  kNone,         ///< every trial streams its own data
};

std::string to_string(ReuseCapture capture);

struct TrafficEstimate {
  ReuseCapture capture = ReuseCapture::kNone;
  double unique_input_floats = 0.0;  ///< distinct input elements touched
  double input_bytes = 0.0;          ///< DRAM bytes for input (line-quantized)
  double output_bytes = 0.0;         ///< DRAM bytes for output
  double delay_bytes = 0.0;          ///< DRAM bytes for the Δ table (cold)
  double total_bytes = 0.0;
  double lds_bytes = 0.0;            ///< local-memory traffic (staged only)
  double reuse_factor = 1.0;         ///< naive reads / DRAM-served reads
  std::size_t staging_bytes_per_group = 0;  ///< local array size (staged)
};

/// Estimate DRAM and local-memory traffic. \p spreads must come from
/// plan.delays().tile_spreads(config.tile_dm()). \p input_element_bytes is
/// the stored size of one input sample (4 for float32 pipelines, 1 for the
/// quantized u8 path — EngineCapabilities::input_element_bytes); every
/// input-side term scales with it, while output stores and the Δ table
/// stay float32.
TrafficEstimate estimate_traffic(const DeviceModel& device,
                                 const dedisp::Plan& plan,
                                 const dedisp::KernelConfig& config,
                                 const sky::SpreadStats& spreads,
                                 std::size_t input_element_bytes =
                                     sizeof(float));

/// Expected cache lines touched by a contiguous read of \p bytes at a
/// uniformly random offset, times the line size: bytes + line − 1.
double line_quantized_bytes(double bytes, std::size_t line);

}  // namespace ddmc::ocl
