#include "ocl/sim_dedisp.hpp"

#include <algorithm>
#include <vector>

#include "common/expect.hpp"

namespace ddmc::ocl {

namespace {

void check_shapes(const dedisp::Plan& plan, ConstView2D<float> in,
                  View2D<float> out) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(), "input too short");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
}

/// Staged (local-memory) kernel: collaborative load → barrier → accumulate.
void run_staged(const DeviceModel& device, const dedisp::Plan& plan,
                const dedisp::KernelConfig& cfg, ConstView2D<float> in,
                View2D<float> out, MemCounters& totals) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t tile_time = cfg.tile_time();
  const std::size_t tile_dm = cfg.tile_dm();
  const std::size_t epi = cfg.accumulators_per_item();

  NDRange range{cfg.groups_time(plan), cfg.groups_dm(plan), cfg.wi_time,
                cfg.wi_dm};

  auto program = [&](GroupContext& ctx) {
    GlobalReadBuffer input(in, ctx.counters());
    GlobalWriteBuffer output(out, ctx.counters());
    const std::size_t dm0 = ctx.group_y() * tile_dm;
    const std::size_t t0 = ctx.group_x() * tile_time;
    const std::size_t group_size = ctx.group_size();

    // Static local allocation: the largest staged span of this group's tile
    // (the generated OpenCL kernel sizes its __local array the same way).
    std::size_t max_span = 0;
    for (std::size_t ch = 0; ch < plan.channels(); ++ch) {
      const auto spread = static_cast<std::size_t>(
          delays.delay(dm0 + tile_dm - 1, ch) - delays.delay(dm0, ch));
      max_span = std::max(max_span, tile_time + spread);
    }
    LocalSpan staged = ctx.local_alloc(max_span);

    // Register accumulators: epi values per work-item.
    std::vector<float> accs(group_size * epi, 0.0f);

    for (std::size_t ch = 0; ch < plan.channels(); ++ch) {
      const auto base = static_cast<std::size_t>(delays.delay(dm0, ch));
      const auto last =
          static_cast<std::size_t>(delays.delay(dm0 + tile_dm - 1, ch));
      const std::size_t span = tile_time + (last - base);

      // Phase 1: the whole group loads the union of shifted spans once.
      ctx.phase([&](const ItemId& item) {
        for (std::size_t i = item.linear(cfg.wi_time); i < span;
             i += group_size) {
          staged.store(i, input.load(ch, t0 + base + i));
        }
      });

      // Phase 2: accumulate from local memory into registers.
      ctx.phase([&](const ItemId& item) {
        float* acc = &accs[item.linear(cfg.wi_time) * epi];
        for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
          const std::size_t dm = dm0 + item.y * cfg.elem_dm + j;
          const auto shift =
              static_cast<std::size_t>(delays.delay(dm, ch)) - base;
          for (std::size_t i = 0; i < cfg.elem_time; ++i) {
            const std::size_t t = item.x + i * cfg.wi_time;
            acc[j * cfg.elem_time + i] += staged.load(shift + t);
            ++ctx.counters().flops;
          }
        }
      });
    }

    // Final phase: coalesced writes (consecutive items → adjacent samples).
    ctx.phase([&](const ItemId& item) {
      const float* acc = &accs[item.linear(cfg.wi_time) * epi];
      for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
        const std::size_t dm = dm0 + item.y * cfg.elem_dm + j;
        for (std::size_t i = 0; i < cfg.elem_time; ++i) {
          const std::size_t t = t0 + item.x + i * cfg.wi_time;
          output.store(dm, t, acc[j * cfg.elem_time + i]);
        }
      }
    });
  };

  totals += execute_ndrange(range, device.local_mem_per_group_bytes,
                            device.max_work_group_size, program);
}

/// Direct kernel: no local memory, every work-item reads global memory.
void run_direct(const DeviceModel& device, const dedisp::Plan& plan,
                const dedisp::KernelConfig& cfg, ConstView2D<float> in,
                View2D<float> out, MemCounters& totals) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t tile_time = cfg.tile_time();
  const std::size_t tile_dm = cfg.tile_dm();
  const std::size_t epi = cfg.accumulators_per_item();

  NDRange range{cfg.groups_time(plan), cfg.groups_dm(plan), cfg.wi_time,
                cfg.wi_dm};

  auto program = [&](GroupContext& ctx) {
    GlobalReadBuffer input(in, ctx.counters());
    GlobalWriteBuffer output(out, ctx.counters());
    const std::size_t dm0 = ctx.group_y() * tile_dm;
    const std::size_t t0 = ctx.group_x() * tile_time;

    ctx.phase([&](const ItemId& item) {
      std::vector<float> acc(epi, 0.0f);
      for (std::size_t ch = 0; ch < plan.channels(); ++ch) {
        for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
          const std::size_t dm = dm0 + item.y * cfg.elem_dm + j;
          const auto shift = static_cast<std::size_t>(delays.delay(dm, ch));
          for (std::size_t i = 0; i < cfg.elem_time; ++i) {
            const std::size_t t = t0 + item.x + i * cfg.wi_time;
            acc[j * cfg.elem_time + i] += input.load(ch, t + shift);
            ++ctx.counters().flops;
          }
        }
      }
      for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
        const std::size_t dm = dm0 + item.y * cfg.elem_dm + j;
        for (std::size_t i = 0; i < cfg.elem_time; ++i) {
          output.store(dm, t0 + item.x + i * cfg.wi_time,
                       acc[j * cfg.elem_time + i]);
        }
      }
    });
  };

  totals += execute_ndrange(range, /*local_limit_bytes=*/0,
                            device.max_work_group_size, program);
}

}  // namespace

SimRunResult simulate_dedisp_variant(const DeviceModel& device,
                                     const dedisp::Plan& plan,
                                     const dedisp::KernelConfig& config,
                                     ConstView2D<float> in,
                                     View2D<float> out, bool staged) {
  config.validate(plan);
  check_shapes(plan, in, out);
  SimRunResult result;
  result.staged = staged;
  if (staged) {
    DDMC_REQUIRE(device.has_local_memory,
                 "staged variant requires device local memory");
    run_staged(device, plan, config, in, out, result.counters);
  } else {
    run_direct(device, plan, config, in, out, result.counters);
  }
  return result;
}

SimRunResult simulate_dedisp(const DeviceModel& device,
                             const dedisp::Plan& plan,
                             const dedisp::KernelConfig& config,
                             ConstView2D<float> in, View2D<float> out) {
  const bool staged = device.has_local_memory && config.tile_dm() > 1;
  return simulate_dedisp_variant(device, plan, config, in, out, staged);
}

}  // namespace ddmc::ocl
