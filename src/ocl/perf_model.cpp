#include "ocl/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ddmc::ocl {

PlanAnalysis::PlanAnalysis(dedisp::Plan plan) : plan_(std::move(plan)) {}

const sky::SpreadStats& PlanAnalysis::spreads(std::size_t tile_dm) const {
  auto it = cache_.find(tile_dm);
  if (it == cache_.end()) {
    it = cache_.emplace(tile_dm, plan_.delays().tile_spreads(tile_dm)).first;
  }
  return it->second;
}

namespace {

/// Saturating latency-hiding curve: 0 at no parallelism, 1 asymptotically.
double hiding_efficiency(double units, double half) {
  if (units <= 0.0) return 0.0;
  return units / (units + half);
}

PerfEstimate assemble(const DeviceModel& dev, const dedisp::Plan& plan,
                      const TrafficEstimate& traffic, const Occupancy& occ,
                      std::size_t total_groups, double instr_per_flop,
                      std::size_t work_group_size) {
  PerfEstimate p;
  p.traffic = traffic;
  p.occupancy = occ;

  const double cu = static_cast<double>(dev.compute_units);
  const double cus_used =
      std::min(cu, static_cast<double>(std::max<std::size_t>(total_groups, 1)));
  p.busy_fraction = cus_used / cu;

  // Parallelism actually resident on a busy CU: bounded both by occupancy
  // and by how many groups the grid can offer each CU.
  const double groups_available =
      std::ceil(static_cast<double>(total_groups) / cus_used);
  const double resident_groups = std::min(
      static_cast<double>(occ.groups_per_cu), std::max(1.0, groups_available));
  const double resident_items =
      resident_groups * static_cast<double>(occ.items_per_cu) /
      std::max<double>(1.0, static_cast<double>(occ.groups_per_cu));
  p.hiding_units = dev.serial_group_execution
                       ? resident_groups
                       : resident_items /
                             static_cast<double>(dev.simd_width);
  p.hiding_efficiency = hiding_efficiency(p.hiding_units, dev.hiding_half);

  const double flop = plan.total_flop();

  // DRAM: shared device-wide; partially-busy devices cannot saturate it.
  const double dram_rate = dev.peak_bandwidth_gbs * 1e9 * dev.bw_efficiency *
                           p.hiding_efficiency * p.busy_fraction;
  p.mem_seconds = traffic.total_bytes / dram_rate;

  // Instruction issue: ~2 streams per CU suffice to fill the pipelines.
  // Work-groups execute in SIMD bundles of simd_width lanes; a group whose
  // size is not a multiple wastes the tail bundle's idle lanes.
  const double simd = static_cast<double>(dev.simd_width);
  const double wg = static_cast<double>(std::max<std::size_t>(
      work_group_size, 1));
  const double lane_waste = std::ceil(wg / simd) * simd / wg;
  const double issue_fill = std::min(1.0, p.hiding_units / 2.0);
  const double issue_rate = dev.peak_instr_gops() * 1e9 *
                            dev.compute_efficiency * p.busy_fraction *
                            std::max(issue_fill, 1e-3);
  p.instr_seconds = flop * instr_per_flop * lane_waste / issue_rate;

  // Local-memory throughput (staged variant only).
  if (traffic.lds_bytes > 0.0) {
    const double lds_rate = dev.lds_bytes_per_cu_per_clock * dev.clock_ghz *
                            1e9 * cus_used;
    p.lds_seconds = traffic.lds_bytes / lds_rate;
  }

  // Launch + per-group scheduling overhead (groups dispatch per-CU).
  const double groups_per_cu_total =
      static_cast<double>(total_groups) / cus_used;
  p.overhead_seconds = dev.launch_overhead_us * 1e-6 +
                       groups_per_cu_total * dev.group_overhead_cycles /
                           (dev.clock_ghz * 1e9);

  const double ceiling =
      std::max({p.mem_seconds, p.instr_seconds, p.lds_seconds});
  p.memory_bound = p.mem_seconds >= std::max(p.instr_seconds, p.lds_seconds);

  // Phase serialization: the staged kernel alternates a DRAM-bound load
  // phase and an ALU/LDS-bound accumulate phase separated by barriers. With
  // a single resident group per CU nothing overlaps the other phase, so the
  // components add up; every extra resident group hides more of the
  // non-dominant phases behind the dominant one.
  double exec = ceiling;
  if (traffic.capture == ReuseCapture::kLocalMemory) {
    const double sum = p.mem_seconds + p.instr_seconds + p.lds_seconds;
    exec = ceiling + (sum - ceiling) / std::max(1.0, resident_groups);
  }
  p.seconds = exec + p.overhead_seconds;
  p.gflops = flop / p.seconds * 1e-9;
  return p;
}

}  // namespace

PerfEstimate estimate_performance(const DeviceModel& device,
                                  const PlanAnalysis& analysis,
                                  const dedisp::KernelConfig& config) {
  const dedisp::Plan& plan = analysis.plan();
  config.validate(plan);  // throws config_error on non-dividing tiles

  const sky::SpreadStats& spreads = analysis.spreads(config.tile_dm());
  const TrafficEstimate traffic =
      estimate_traffic(device, plan, config, spreads);

  if (traffic.capture == ReuseCapture::kLocalMemory &&
      traffic.staging_bytes_per_group > device.local_mem_per_group_bytes) {
    throw config_error(
        "staged rows need " + std::to_string(traffic.staging_bytes_per_group) +
        " bytes of local memory; device allows " +
        std::to_string(device.local_mem_per_group_bytes));
  }

  const Occupancy occ = compute_occupancy(
      device, config,
      traffic.capture == ReuseCapture::kLocalMemory
          ? traffic.staging_bytes_per_group
          : 0);
  if (!occ.valid()) {
    throw config_error("configuration " + config.to_string() +
                       " cannot be resident on " + device.name + " (" +
                       to_string(occ.limiter) + ")");
  }

  return assemble(device, plan, traffic, occ, config.total_groups(plan),
                  device.instr_per_flop, config.work_group_size());
}

PerfEstimate estimate_cpu_baseline(const DeviceModel& cpu,
                                   const dedisp::Plan& plan) {
  // The baseline processes (trial, time-block) units with no inter-trial
  // reuse: model it as a degenerate tiling of one trial by 512 samples,
  // executed by one "work-item" per core.
  constexpr std::size_t kBlock = 512;
  TrafficEstimate traffic;
  traffic.capture = ReuseCapture::kNone;
  const double d = static_cast<double>(plan.dms());
  const double s = static_cast<double>(plan.out_samples());
  const double c = static_cast<double>(plan.channels());
  const double blocks = std::ceil(s / static_cast<double>(kBlock));
  traffic.unique_input_floats =
      static_cast<double>(plan.channels()) *
      static_cast<double>(plan.in_samples());
  traffic.input_bytes =
      d * blocks * c *
      line_quantized_bytes(4.0 * static_cast<double>(kBlock),
                           cpu.cache_line_bytes);
  traffic.output_bytes = 4.0 * d * s;
  traffic.delay_bytes = 4.0 * d * c;
  traffic.total_bytes =
      traffic.input_bytes + traffic.output_bytes + traffic.delay_bytes;
  traffic.reuse_factor = 4.0 * d * s * c / traffic.input_bytes;

  Occupancy occ;
  occ.regs_per_item = 16;
  occ.groups_per_cu = cpu.max_groups_per_cu;
  occ.items_per_cu = cpu.max_groups_per_cu;
  occ.fraction = 1.0;
  occ.limiter = OccupancyLimiter::kGroupCap;

  const auto total_units = static_cast<std::size_t>(d * blocks);
  return assemble(cpu, plan, traffic, occ, total_units, cpu.instr_per_flop,
                  cpu.simd_width);
}

bool fits_in_memory(const DeviceModel& device, const dedisp::Plan& plan) {
  const double needed =
      plan.input_bytes() + plan.output_bytes() +
      4.0 * static_cast<double>(plan.dms()) *
          static_cast<double>(plan.channels());
  // Keep 10% headroom for the runtime, as a real deployment would.
  return needed <= 0.9 * device.memory_bytes();
}

double real_time_gflops(const sky::Observation& obs, std::size_t dms) {
  return static_cast<double>(dms) * obs.flop_per_dm_per_second() * 1e-9;
}

}  // namespace ddmc::ocl
