#include "ocl/device_presets.hpp"

#include <algorithm>
#include <cctype>

#include "common/expect.hpp"

namespace ddmc::ocl {

// ---------------------------------------------------------------------------
// Calibration note
//
// Architectural fields are public-spec values for the exact boards in
// Table I. Four constants per device are *calibration*, fitted once against
// the plateaus the paper reports in Figs. 6/7 and held fixed everywhere:
//
//  - instr_per_flop: issued instructions per accumulate (index arithmetic,
//    local-memory load, add, loop overhead). GCN's flat LDS addressing needs
//    fewer instructions than Kepler's shared-memory path, which is the
//    paper's observed HD7970 ≈ 2× NVIDIA gap on Apertif where everything is
//    issue-bound; the Phi's OpenCL stack ("immature" per §V-D) vectorizes
//    poorly, modeled as a large instruction count per accumulate.
//  - bw_efficiency: achievable fraction of peak DRAM bandwidth for the
//    streaming access pattern of this kernel.
//  - hiding_half: latency-hiding units (resident warps for GPUs, resident
//    groups for the Phi's serial cores) at which memory efficiency reaches
//    one half — smaller means the device saturates with less parallelism.
//  - launch/group overheads: fixed per-kernel and per-work-group costs that
//    dominate the smallest instances.
// ---------------------------------------------------------------------------

DeviceModel amd_hd7970() {
  DeviceModel d;
  d.name = "HD7970";
  d.vendor = "AMD";
  d.compute_units = 32;
  d.lanes_per_cu = 64;
  d.clock_ghz = 0.925;
  d.peak_gflops = 3788.0;  // Table I
  d.peak_bandwidth_gbs = 264.0;
  d.memory_gb = 3.0;
  d.max_work_group_size = 256;  // the limit the paper notes the tuner hits
  d.max_groups_per_cu = 40;
  d.max_items_per_cu = 2560;  // 40 wavefronts × 64 lanes
  d.register_file_per_cu = 65536;  // 256 KiB of VGPRs
  d.max_regs_per_item = 256;
  d.local_mem_per_group_bytes = 32768;
  d.local_mem_per_cu_bytes = 65536;  // 64 KiB LDS
  d.has_local_memory = true;
  d.serial_group_execution = false;
  d.simd_width = 64;
  d.cache_line_bytes = 64;
  d.cache_per_cu_bytes = 16384;  // 16 KiB L1 per CU
  d.cache_capture_eff = 0.3;
  d.lds_bytes_per_cu_per_clock = 128.0;
  d.instr_per_flop = 5.0;
  d.bw_efficiency = 0.85;
  d.compute_efficiency = 1.0;
  d.hiding_half = 6.0;
  d.launch_overhead_us = 8.0;
  d.group_overhead_cycles = 600.0;
  return d;
}

DeviceModel intel_xeon_phi() {
  DeviceModel d;
  d.name = "XeonPhi";
  d.vendor = "Intel";
  d.compute_units = 60;
  d.lanes_per_cu = 16;  // 512-bit SP vector units
  d.clock_ghz = 1.053;
  d.peak_gflops = 2022.0;  // Table I
  d.peak_bandwidth_gbs = 320.0;
  d.memory_gb = 8.0;
  d.max_work_group_size = 512;
  d.max_groups_per_cu = 4;  // four hardware threads per core
  d.max_items_per_cu = 64;  // 4 threads × 16 lanes resident
  d.register_file_per_cu = 1u << 20;  // not the binding constraint on KNC
  d.max_regs_per_item = 1024;
  d.local_mem_per_group_bytes = 0;  // "local" memory is emulated
  d.local_mem_per_cu_bytes = 0;
  d.has_local_memory = false;
  d.serial_group_execution = true;  // a group runs as one looping stream
  d.simd_width = 16;
  d.cache_line_bytes = 64;
  // 512 KiB L2 per core on paper, but four hardware threads' groups share
  // it and the shifted rows defeat the prefetchers: the budget that
  // effectively captures reuse is far smaller. Apertif spans (a few KiB)
  // fit; LOFAR spans (tens of KiB) do not — which is what §V-B observes.
  d.cache_per_cu_bytes = 32 * 1024;
  // Work-items of a Phi group advance in lockstep through the channel loop,
  // so when the span fits, nearly every revisit hits the L2.
  d.cache_capture_eff = 0.8;
  d.lds_bytes_per_cu_per_clock = 64.0;  // staging would go through L1
  d.instr_per_flop = 20.0;  // immature OpenCL stack: poor vectorization
  d.bw_efficiency = 0.35;  // §V-D: OpenCL leaves the ring bus badly underfed
  d.compute_efficiency = 1.0;
  d.hiding_half = 1.5;  // hiding units are resident groups (max 4)
  d.launch_overhead_us = 40.0;
  d.group_overhead_cycles = 2000.0;
  return d;
}

namespace {
DeviceModel kepler_base() {
  DeviceModel d;
  d.vendor = "NVIDIA";
  d.lanes_per_cu = 192;
  d.max_work_group_size = 1024;
  d.max_groups_per_cu = 16;
  d.max_items_per_cu = 2048;
  d.register_file_per_cu = 65536;
  d.local_mem_per_group_bytes = 49152;
  d.local_mem_per_cu_bytes = 49152;
  d.has_local_memory = true;
  d.serial_group_execution = false;
  d.simd_width = 32;
  d.cache_line_bytes = 128;  // L1/L2 line on Kepler
  d.cache_per_cu_bytes = 112 * 1024;  // L2 share per SMX, order of magnitude
  d.cache_capture_eff = 0.3;
  d.lds_bytes_per_cu_per_clock = 256.0;
  d.instr_per_flop = 9.0;  // shared-memory path costs more issue slots
  d.bw_efficiency = 0.78;
  d.compute_efficiency = 1.0;
  d.hiding_half = 8.0;
  d.launch_overhead_us = 10.0;
  d.group_overhead_cycles = 400.0;
  return d;
}
}  // namespace

DeviceModel nvidia_gtx680() {
  DeviceModel d = kepler_base();
  d.name = "GTX680";
  d.compute_units = 8;
  d.clock_ghz = 1.006;
  d.peak_gflops = 3090.0;  // Table I
  d.peak_bandwidth_gbs = 192.0;
  d.memory_gb = 2.0;
  d.max_regs_per_item = 63;  // GK104: the cap that forbids heavy work-items
  return d;
}

DeviceModel nvidia_k20() {
  DeviceModel d = kepler_base();
  d.name = "K20";
  d.compute_units = 13;
  d.clock_ghz = 0.706;
  d.peak_gflops = 3519.0;  // Table I
  d.peak_bandwidth_gbs = 208.0;
  d.memory_gb = 5.0;
  d.max_regs_per_item = 255;  // GK110 allows register-heavy work-items
  return d;
}

DeviceModel nvidia_gtx_titan() {
  DeviceModel d = kepler_base();
  d.name = "GTXTitan";
  d.compute_units = 14;
  d.clock_ghz = 0.876;
  d.peak_gflops = 4500.0;  // Table I
  d.peak_bandwidth_gbs = 288.0;
  d.memory_gb = 6.0;
  d.max_regs_per_item = 255;
  // The Titan sustains a lower fraction of its issue rate than the K20 on
  // this kernel (consumer board, aggressive boost clocks): Fig. 6 shows the
  // three NVIDIA GPUs clustered despite the Titan's higher paper peak.
  d.compute_efficiency = 0.82;
  return d;
}

std::vector<DeviceModel> table1_devices() {
  return {amd_hd7970(), intel_xeon_phi(), nvidia_gtx680(), nvidia_k20(),
          nvidia_gtx_titan()};
}

DeviceModel intel_xeon_e5_2620() {
  DeviceModel d;
  d.name = "E5-2620";
  d.vendor = "Intel";
  d.compute_units = 6;  // cores
  d.lanes_per_cu = 8;   // AVX single-precision lanes
  d.clock_ghz = 2.0;
  d.peak_gflops = 192.0;  // 6 cores × 8 lanes × 2 ports × 2.0 GHz
  d.peak_bandwidth_gbs = 42.6;
  d.memory_gb = 64.0;
  d.max_work_group_size = 1024;
  d.max_groups_per_cu = 2;  // two hyperthreads
  d.max_items_per_cu = 16;
  d.register_file_per_cu = 1u << 20;
  d.max_regs_per_item = 1024;
  d.local_mem_per_group_bytes = 0;
  d.local_mem_per_cu_bytes = 0;
  d.has_local_memory = false;
  d.serial_group_execution = true;
  d.simd_width = 8;
  d.cache_line_bytes = 64;
  d.cache_per_cu_bytes = 256 * 1024;  // L2 per core
  d.lds_bytes_per_cu_per_clock = 32.0;
  d.instr_per_flop = 3.0;  // mature compiler, simple loop
  d.bw_efficiency = 0.6;
  d.compute_efficiency = 1.0;
  d.hiding_half = 0.5;  // out-of-order cores barely need SMT to stream
  d.launch_overhead_us = 2.0;
  d.group_overhead_cycles = 200.0;
  return d;
}

DeviceModel device_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "hd7970") return amd_hd7970();
  if (key == "xeonphi" || key == "phi") return intel_xeon_phi();
  if (key == "gtx680" || key == "680") return nvidia_gtx680();
  if (key == "k20") return nvidia_k20();
  if (key == "titan" || key == "gtxtitan") return nvidia_gtx_titan();
  if (key == "e5-2620" || key == "cpu") return intel_xeon_e5_2620();
  throw invalid_argument("unknown device preset: " + name);
}

std::vector<std::string> preset_names() {
  return {"HD7970", "XeonPhi", "GTX680", "K20", "Titan", "E5-2620"};
}

}  // namespace ddmc::ocl
