#include "ocl/memory_model.hpp"

#include <string>

#include "common/expect.hpp"

namespace ddmc::ocl {

std::string to_string(ReuseCapture capture) {
  switch (capture) {
    case ReuseCapture::kLocalMemory: return "local-memory";
    case ReuseCapture::kCache: return "cache";
    case ReuseCapture::kNone: return "none";
  }
  return "unknown";
}

double line_quantized_bytes(double bytes, std::size_t line) {
  return bytes + static_cast<double>(line) - 1.0;
}

TrafficEstimate estimate_traffic(const DeviceModel& device,
                                 const dedisp::Plan& plan,
                                 const dedisp::KernelConfig& config,
                                 const sky::SpreadStats& spreads,
                                 std::size_t input_element_bytes) {
  config.validate(plan);
  TrafficEstimate t;

  const double d = static_cast<double>(plan.dms());
  const double s = static_cast<double>(plan.out_samples());
  const double c = static_cast<double>(plan.channels());
  const double elem = static_cast<double>(input_element_bytes);
  const double tile_time = static_cast<double>(config.tile_time());
  const double tiles_time = static_cast<double>(config.groups_time(plan));
  const std::size_t line = device.cache_line_bytes;
  const double naive_reads = d * s * c;

  // Distinct input elements under the tiling (independent of capture).
  t.unique_input_floats =
      tiles_time * (static_cast<double>(spreads.rows) * tile_time +
                    spreads.total_spread);

  const bool wants_staging = device.has_local_memory && config.tile_dm() > 1;
  if (wants_staging) {
    t.capture = ReuseCapture::kLocalMemory;
    t.staging_bytes_per_group =
        (config.tile_time() + static_cast<std::size_t>(spreads.max_spread)) *
        input_element_bytes;
  } else if (config.tile_dm() > 1) {
    // Direct variant: reuse only materializes if a tile's working set stays
    // resident in the CU's cache while its trials stream through it. We
    // require two spans of headroom so concurrent groups do not thrash.
    const double avg_spread =
        spreads.rows == 0 ? 0.0
                          : spreads.total_spread /
                                static_cast<double>(spreads.rows);
    const double span_bytes = (tile_time + avg_spread) * elem;
    t.capture = (2.0 * span_bytes <=
                 static_cast<double>(device.cache_per_cu_bytes))
                    ? ReuseCapture::kCache
                    : ReuseCapture::kNone;
  } else {
    t.capture = ReuseCapture::kNone;  // a single trial has nothing to reuse
  }

  // Streaming traffic: every (trial, time-tile, channel) fetches its own
  // row of tile_time contiguous floats, unaligned ⇒ line-quantized per row.
  const double streaming_bytes =
      d * tiles_time * c * line_quantized_bytes(elem * tile_time, line);
  // Captured traffic: each (channel, DM-tile, time-tile) row fetched once.
  const double captured_bytes =
      elem * t.unique_input_floats +
      tiles_time * static_cast<double>(spreads.rows) *
          (static_cast<double>(line) - 1.0);

  switch (t.capture) {
    case ReuseCapture::kNone:
      t.input_bytes = streaming_bytes;
      break;
    case ReuseCapture::kLocalMemory:
      t.input_bytes = captured_bytes;
      break;
    case ReuseCapture::kCache:
      // Caches capture reuse opportunistically: only a device-specific
      // fraction of the potential saving materializes.
      t.input_bytes = captured_bytes +
                      (1.0 - device.cache_capture_eff) *
                          std::max(0.0, streaming_bytes - captured_bytes);
      break;
  }

  if (t.capture == ReuseCapture::kLocalMemory) {
    // Staged traffic through local memory: one store per staged element and
    // one load per accumulate, both at the stored element size.
    t.lds_bytes = elem * (t.unique_input_floats + plan.total_flop());
  }

  // Output stores: a SIMD bundle writes wi_time consecutive samples per DM
  // row, so narrow wi_time scatters one instruction's stores across many
  // rows — each partial row costs a full line ((§III-B's coalescing
  // requirement). Traffic = 4·d·s · (1 + (L−1)/(4·wi_time)).
  t.output_bytes =
      4.0 * d * s *
      (1.0 + (static_cast<double>(line) - 1.0) /
                 (4.0 * static_cast<double>(config.wi_time)));
  // Δ table: read once (it stays cached across groups — it is tiny compared
  // to the signal data and shared by every group on the same DM tile).
  t.delay_bytes = 4.0 * d * c;

  t.total_bytes = t.input_bytes + t.output_bytes + t.delay_bytes;
  t.reuse_factor = elem * naive_reads / t.input_bytes;
  DDMC_ENSURE(t.reuse_factor > 0.0, "reuse factor must be positive");
  return t;
}

}  // namespace ddmc::ocl
