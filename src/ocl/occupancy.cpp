#include "ocl/occupancy.hpp"

#include <algorithm>

namespace ddmc::ocl {

std::string to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kGroupCap: return "group-cap";
    case OccupancyLimiter::kItemCap: return "item-cap";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kLocalMemory: return "local-memory";
    case OccupancyLimiter::kInvalid: return "invalid";
  }
  return "unknown";
}

Occupancy compute_occupancy(const DeviceModel& device,
                            const dedisp::KernelConfig& config,
                            std::size_t local_bytes_per_group) {
  Occupancy occ;
  occ.regs_per_item =
      config.accumulators_per_item() + device.reg_overhead_per_item;

  const std::size_t wg = config.work_group_size();
  if (wg == 0 || wg > device.max_work_group_size ||
      occ.regs_per_item > device.max_regs_per_item) {
    occ.limiter = OccupancyLimiter::kInvalid;
    return occ;
  }
  if (device.has_local_memory &&
      local_bytes_per_group > device.local_mem_per_group_bytes) {
    occ.limiter = OccupancyLimiter::kInvalid;
    return occ;
  }

  // Candidate limits, each paired with its limiter tag.
  struct Limit {
    std::size_t groups;
    OccupancyLimiter tag;
  };
  Limit limits[4] = {
      {device.max_groups_per_cu, OccupancyLimiter::kGroupCap},
      {device.max_items_per_cu / wg, OccupancyLimiter::kItemCap},
      {device.register_file_per_cu / (occ.regs_per_item * wg),
       OccupancyLimiter::kRegisters},
      {device.has_local_memory && local_bytes_per_group > 0
           ? device.local_mem_per_cu_bytes / local_bytes_per_group
           : device.max_groups_per_cu,
       OccupancyLimiter::kLocalMemory},
  };

  Limit binding = limits[0];
  for (const Limit& l : limits) {
    if (l.groups < binding.groups) binding = l;
  }
  occ.groups_per_cu = binding.groups;
  occ.limiter = binding.groups == 0 ? OccupancyLimiter::kInvalid : binding.tag;
  occ.items_per_cu = binding.groups * wg;
  occ.fraction = device.max_items_per_cu == 0
                     ? 0.0
                     : static_cast<double>(occ.items_per_cu) /
                           static_cast<double>(device.max_items_per_cu);
  occ.fraction = std::min(occ.fraction, 1.0);
  return occ;
}

}  // namespace ddmc::ocl
