#pragma once
/// \file device_presets.hpp
/// \brief The accelerators of Table I plus the §V-D comparison CPU.
///
/// Architectural numbers come from vendor documentation for the exact parts
/// the paper used; the calibration constants are fitted once against the
/// paper's measured plateaus (see the comment block in device_presets.cpp)
/// and are identical across every experiment in this repository.

#include <vector>

#include "ocl/device.hpp"

namespace ddmc::ocl {

DeviceModel amd_hd7970();        ///< AMD Radeon HD7970 (GCN Tahiti)
DeviceModel intel_xeon_phi();    ///< Intel Xeon Phi 5110P (KNC)
DeviceModel nvidia_gtx680();     ///< NVIDIA GTX 680 (GK104 Kepler)
DeviceModel nvidia_k20();        ///< NVIDIA K20 (GK110 Kepler)
DeviceModel nvidia_gtx_titan();  ///< NVIDIA GTX Titan (GK110 Kepler)

/// The five many-core accelerators of Table I, in the paper's order.
std::vector<DeviceModel> table1_devices();

/// Intel Xeon E5-2620 (Sandy Bridge, 6 cores, AVX) — the CPU of §V-D.
DeviceModel intel_xeon_e5_2620();

/// Look up a preset by (case-insensitive) name; throws ddmc::invalid_argument
/// for unknown names. Accepts "HD7970", "XeonPhi", "GTX680", "K20", "Titan",
/// "E5-2620".
DeviceModel device_by_name(const std::string& name);

/// Names accepted by device_by_name, for CLI help text.
std::vector<std::string> preset_names();

}  // namespace ddmc::ocl
