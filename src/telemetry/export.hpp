#pragma once
/// \file export.hpp
/// \brief Telemetry exporters: Prometheus text format, JSON snapshot, and
/// Chrome trace_event JSON.
///
/// Three consumers, three formats, one registry:
///
///   export_prometheus()    text exposition format for a scrape endpoint —
///                          dots become underscores, counters keep their
///                          `_total` suffix, histograms export as summaries
///                          with quantile labels;
///   snapshot_json()        one-call JSON dump of every metric (and the
///                          trace-buffer status) for logs and benches;
///   export_chrome_trace()  the recorded spans as a trace_event array that
///                          opens directly in chrome://tracing / Perfetto.
///
/// The LatencyReport round-trip helpers live here too: a streaming
/// session's report can be exported, shipped, and reconstructed without
/// losing the gap accounting that keeps the real-time margin honest.

#include <string>

#include "common/json.hpp"
#include "stream/latency.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace ddmc::telemetry {

/// Prometheus text exposition of \p metrics: one `# TYPE` line per metric
/// name, counters as-is (names should already end in `_total`), gauges
/// as-is, histograms as summaries (`{quantile="0.5"}`… plus `_sum` and
/// `_count` series). Dots in names map to underscores.
std::string export_prometheus(const std::vector<MetricSnapshot>& metrics);

/// Convenience: export the process-wide registry.
std::string export_prometheus();

/// JSON object with every metric keyed by its encoded id; histograms
/// expand to their full Snapshot fields.
json::Object metrics_to_json(const std::vector<MetricSnapshot>& metrics);

/// One-call export: {"metrics": {...}, "trace": {recorded, dropped,
/// enabled}} from the process-wide registry and tracer.
json::Object snapshot_json();

/// Chrome trace_event JSON (the {"traceEvents": [...]} envelope): complete
/// events as ph:"X", instants as ph:"i", timestamps/durations in µs.
std::string export_chrome_trace(const std::vector<TraceEvent>& events);

/// Convenience: export the process-wide tracer's buffer.
std::string export_chrome_trace();

/// LatencyReport → JSON and back. Every field round-trips exactly
/// (max_digits10 serialization), so gap seconds stay out of the real-time
/// margin after export/import.
json::Object latency_report_to_json(const stream::LatencyReport& report);
stream::LatencyReport latency_report_from_json(const json::Value& v);

}  // namespace ddmc::telemetry
