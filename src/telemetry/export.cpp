#include "telemetry/export.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace ddmc::telemetry {

namespace {

/// Prometheus metric name: dots → underscores; the registry already
/// restricts names to [a-z0-9_.].
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

/// Prometheus text-exposition label-value escaping. The format defines
/// exactly three escapes — backslash, double quote and newline — so this
/// is NOT json::escape: JSON would emit \uXXXX and \t sequences a
/// Prometheus scraper has no rule for and would ingest literally.
std::string prometheus_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// `{k="v",…}` with an optional extra label (the summary quantile).
std::string prometheus_labels(const Labels& labels, const std::string& extra_key = {},
                              const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prometheus_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  return out + "}";
}

const char* prometheus_kind(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "summary";
  }
  return "untyped";
}

}  // namespace

std::string export_prometheus(const std::vector<MetricSnapshot>& metrics) {
  std::ostringstream os;
  std::string last_typed;  // one # TYPE line per metric family
  for (const MetricSnapshot& m : metrics) {
    const std::string name = prometheus_name(m.name);
    if (name != last_typed) {
      os << "# TYPE " << name << " " << prometheus_kind(m.kind) << "\n";
      last_typed = name;
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        os << name << prometheus_labels(m.labels) << " "
           << json::number(m.value) << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        const struct {
          const char* q;
          double v;
        } quantiles[] = {{"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}};
        for (const auto& [q, v] : quantiles) {
          os << name << prometheus_labels(m.labels, "quantile", q) << " "
             << json::number(v) << "\n";
        }
        os << name << "_sum" << prometheus_labels(m.labels) << " "
           << json::number(h.sum) << "\n";
        os << name << "_count" << prometheus_labels(m.labels) << " "
           << h.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string export_prometheus() {
  return export_prometheus(MetricsRegistry::instance().snapshot());
}

json::Object metrics_to_json(const std::vector<MetricSnapshot>& metrics) {
  json::Object out;
  for (const MetricSnapshot& m : metrics) {
    const std::string id = encode_metric_id(m.name, m.labels);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        out.set(id, m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        json::Object hist;
        hist.set("count", h.count)
            .set("window", h.window)
            .set("sum", h.sum)
            .set("min", h.min)
            .set("max", h.max)
            .set("mean", h.mean)
            .set("p50", h.p50)
            .set("p95", h.p95)
            .set("p99", h.p99);
        out.set_raw(id, hist.dump());
        break;
      }
    }
  }
  return out;
}

json::Object snapshot_json() {
  json::Object out;
  out.set_raw("metrics",
              metrics_to_json(MetricsRegistry::instance().snapshot()).dump());
  const Tracer& tracer = Tracer::instance();
  json::Object trace;
  trace.set("enabled", tracer.enabled())
      .set("recorded", tracer.events().size())
      .set("dropped", tracer.dropped())
      .set("capacity", tracer.capacity());
  out.set_raw("trace", trace.dump());
  return out;
}

std::string export_chrome_trace(const std::vector<TraceEvent>& events) {
  // trace_event JSON object format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
  // ph:"X" complete events with ts/dur in microseconds; ph:"i" instants.
  // One pid (this process), tid = the tracer's sequential thread ids.
  json::Array trace_events;
  for (const TraceEvent& e : events) {
    std::ostringstream ev;
    ev << "{\"name\": \"" << json::escape(e.name) << "\", ";
    if (e.kind == TraceEvent::Kind::kComplete) {
      ev << "\"ph\": \"X\", \"ts\": " << json::number(
                static_cast<double>(e.start_ns) / 1000.0)
         << ", \"dur\": "
         << json::number(static_cast<double>(e.dur_ns) / 1000.0) << ", ";
    } else {
      ev << "\"ph\": \"i\", \"s\": \"t\", \"ts\": "
         << json::number(static_cast<double>(e.start_ns) / 1000.0) << ", ";
    }
    ev << "\"pid\": 1, \"tid\": " << e.tid;
    if (e.args[0] != '\0') {
      ev << ", \"args\": {" << e.args << "}";
    }
    ev << "}";
    trace_events.add_raw(ev.str());
  }
  json::Object root;
  root.set_raw("traceEvents", trace_events.dump());
  root.set("displayTimeUnit", "ms");
  return root.dump();
}

std::string export_chrome_trace() {
  return export_chrome_trace(Tracer::instance().events());
}

json::Object latency_report_to_json(const stream::LatencyReport& report) {
  json::Object out;
  out.set("chunks", report.chunks)
      .set("latency_window", report.latency_window)
      .set("data_seconds", report.data_seconds)
      .set("compute_seconds", report.compute_seconds)
      .set("p50_latency", report.p50_latency)
      .set("p95_latency", report.p95_latency)
      .set("p99_latency", report.p99_latency)
      .set("max_latency", report.max_latency)
      .set("mean_compute", report.mean_compute)
      .set("real_time_margin", report.real_time_margin)
      .set("seconds_per_data_second", report.seconds_per_data_second)
      .set("gap_chunks", report.gap_chunks)
      .set("gap_data_seconds", report.gap_data_seconds);
  return out;
}

stream::LatencyReport latency_report_from_json(const json::Value& v) {
  DDMC_REQUIRE(v.is_object(), "latency report JSON must be an object");
  stream::LatencyReport r;
  r.chunks = static_cast<std::size_t>(v.at("chunks").as_number());
  r.latency_window =
      static_cast<std::size_t>(v.at("latency_window").as_number());
  r.data_seconds = v.at("data_seconds").as_number();
  r.compute_seconds = v.at("compute_seconds").as_number();
  r.p50_latency = v.at("p50_latency").as_number();
  r.p95_latency = v.at("p95_latency").as_number();
  r.p99_latency = v.at("p99_latency").as_number();
  r.max_latency = v.at("max_latency").as_number();
  r.mean_compute = v.at("mean_compute").as_number();
  r.real_time_margin = v.at("real_time_margin").as_number();
  r.seconds_per_data_second = v.at("seconds_per_data_second").as_number();
  r.gap_chunks = static_cast<std::size_t>(v.at("gap_chunks").as_number());
  r.gap_data_seconds = v.at("gap_data_seconds").as_number();
  return r;
}

}  // namespace ddmc::telemetry
