#include "telemetry/tracing.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/json.hpp"

namespace ddmc::telemetry {

namespace {

/// Copy \p src into a fixed buffer, always NUL-terminated.
void copy_bounded(char* dst, std::size_t dst_size, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::snprintf(dst, dst_size, "%s", src);
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : slots_(capacity) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t Tracer::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

void Tracer::record(TraceEvent::Kind kind, const char* name,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    const char* args) {
  // fetch_add hands each event a unique slot; no CAS loop, no lock. Once
  // the buffer is exhausted the pipeline keeps running untraced — dropping
  // telemetry must never distort the timings it measures.
  const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[idx];
  copy_bounded(slot.event.name, TraceEvent::kNameSize, name);
  copy_bounded(slot.event.args, TraceEvent::kArgsSize, args);
  slot.event.start_ns = start_ns;
  slot.event.dur_ns = dur_ns;
  slot.event.tid = thread_id();
  slot.event.kind = kind;
  slot.ready.store(true, std::memory_order_release);
}

void Tracer::record_complete(const char* name, std::uint64_t start_ns,
                             std::uint64_t dur_ns, const char* args) {
  if (!enabled()) return;
  record(TraceEvent::Kind::kComplete, name, start_ns, dur_ns, args);
}

void Tracer::record_instant(const char* name, std::uint64_t at_ns,
                            const char* args) {
  if (!enabled()) return;
  record(TraceEvent::Kind::kInstant, name, at_ns, 0, args);
}

std::vector<TraceEvent> Tracer::events() const {
  const std::size_t claimed =
      std::min(cursor_.load(std::memory_order_relaxed), slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(claimed);
  for (std::size_t i = 0; i < claimed; ++i) {
    // acquire pairs with the writer's release: a ready slot's event fields
    // are fully written. A claimed-but-not-ready slot (writer mid-store) is
    // skipped rather than waited on.
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      out.push_back(slots_[i].event);
    }
  }
  return out;
}

void Tracer::clear() {
  const std::size_t claimed =
      std::min(cursor_.load(std::memory_order_relaxed), slots_.size());
  for (std::size_t i = 0; i < claimed; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
}

TraceSpan& TraceSpan::append_arg_raw(const char* key,
                                     const char* serialized_value) {
  // Build `"key": value` pairs in place; the exporter wraps them in braces.
  const std::size_t cap = sizeof(args_);
  const int written = std::snprintf(args_ + args_len_, cap - args_len_,
                                    "%s\"%s\": %s",
                                    args_len_ > 0 ? ", " : "", key,
                                    serialized_value);
  if (written > 0) {
    const std::size_t want = args_len_ + static_cast<std::size_t>(written);
    if (want < cap) {
      args_len_ = want;
    } else {
      args_[args_len_] = '\0';  // didn't fit: roll back to the last full pair
    }
  }
  return *this;
}

TraceSpan& TraceSpan::arg(const char* key, const char* value) {
  if (!active_) return *this;
  const std::string quoted = "\"" + json::escape(value) + "\"";
  return append_arg_raw(key, quoted.c_str());
}

TraceSpan& TraceSpan::arg(const char* key, double value) {
  if (!active_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return append_arg_raw(key, buf);
}

TraceSpan& TraceSpan::arg(const char* key, std::size_t value) {
  if (!active_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  return append_arg_raw(key, buf);
}

}  // namespace ddmc::telemetry
