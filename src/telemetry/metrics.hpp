#pragma once
/// \file metrics.hpp
/// \brief Process-wide metrics registry: counters, gauges, and bounded-ring
/// histograms with exact percentiles.
///
/// The paper's whole argument is quantitative — auto-tuning works because
/// every kernel execution is *measured* — yet the runtime's observability
/// was fragmented across per-subsystem structs (LatencyTracker saw only
/// streaming, ShardExecutionReport only shards, StreamHealth only
/// degradation). The MetricsRegistry is the one store they all publish
/// into: every hot seam increments named, labeled metrics, and the
/// subsystem reports (`LatencyReport`, `StreamHealth`,
/// `ShardExecutionReport`) become *views* assembled from registry-owned
/// objects, so a Prometheus scrape, a JSON snapshot and a session's own
/// report() can never disagree.
///
/// Metric identity is a dot-delimited name plus a sorted label set —
/// `ddmc.stream.chunk_latency_seconds{session="stream-3"}`. Names use only
/// [a-z0-9_.] so the Prometheus exporter's dot→underscore mapping yields
/// valid metric names; counters end in `_total` by convention (the format
/// checker in CI enforces it on the export).
///
/// Cost discipline: counters and gauges are single relaxed atomics (a
/// CAS-add for the double-valued ones), histograms take one short mutex.
/// Handles are shared_ptr so a `MetricsRegistry::reset()` (test/bench
/// isolation) never dangles a live session's handles — they just detach
/// from future exports.
///
/// The Histogram generalizes LatencyTracker's bounded ring: below
/// `capacity` recorded values the percentiles are exact over the whole
/// series; beyond it they cover a trailing window of the last `capacity`
/// values, while count / sum / min / max / mean always cover the whole
/// series. 4096 doubles = 32 KiB — hours of 1 s chunks, exact.

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ddmc::telemetry {

/// Sorted (key, value) label pairs; the registry sorts on first use so
/// `{a=1,b=2}` and `{b=2,a=1}` are one metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. add() is one relaxed CAS loop (doubles have no
/// fetch_add on every toolchain); negative increments are a contract
/// violation the caller must not make (the exporter declares it monotone).
class Counter {
 public:
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-value gauge (e.g. the most recent GFLOP/s figure, a queue depth).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bounded-ring histogram: exact nearest-rank percentiles below capacity,
/// a trailing window beyond it; whole-series count/sum/min/max regardless.
class Histogram {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Histogram(std::size_t capacity = kDefaultCapacity);

  void record(double v);

  struct Snapshot {
    std::size_t count = 0;   ///< whole-series recorded values
    std::size_t window = 0;  ///< values the percentiles cover
    double sum = 0.0;        ///< whole-series Σ
    double min = 0.0;        ///< whole-series min (0 when empty)
    double max = 0.0;        ///< whole-series max (0 when empty)
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t count() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> ring_;  ///< trailing window once count_ ≥ capacity_
  std::size_t next_ = 0;      ///< ring write cursor
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One exported metric: identity, kind, and the value(s) at snapshot time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0.0;              ///< counter / gauge
  Histogram::Snapshot histogram;   ///< kind == kHistogram
};

/// Thread-safe named-metric store. counter()/gauge()/histogram() create on
/// first use and return the existing object afterwards; requesting an
/// existing id as a different kind throws ddmc::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// The process-wide registry every instrumented seam publishes into.
  static MetricsRegistry& instance();

  std::shared_ptr<Counter> counter(const std::string& name,
                                   Labels labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name, Labels labels = {});
  std::shared_ptr<Histogram> histogram(
      const std::string& name, Labels labels = {},
      std::size_t capacity = Histogram::kDefaultCapacity);

  /// Metrics currently registered, sorted by (name, labels) so exports are
  /// stable; histogram snapshots are taken under each histogram's own lock.
  std::vector<MetricSnapshot> snapshot() const;

  std::size_t size() const;

  /// Drop every metric (test/bench isolation). Live handles stay valid —
  /// they keep counting into detached objects that no longer export.
  void reset();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    Labels labels;
    std::string name;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Labels labels,
                        MetricSnapshot::Kind kind, std::size_t capacity);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< keyed by encoded id
};

/// "name{k="v",…}" — the registry key and the debugging spelling.
std::string encode_metric_id(const std::string& name, const Labels& labels);

/// Process-unique session label value ("<prefix>-<n>"): every streaming /
/// batch session labels its metrics with one of these so concurrent
/// sessions stay distinguishable in one export.
std::string next_session_label(const std::string& prefix);

}  // namespace ddmc::telemetry
