#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdint>

#include "common/expect.hpp"
#include "common/statistics.hpp"

namespace ddmc::telemetry {

Histogram::Histogram(std::size_t capacity) : capacity_(capacity) {
  DDMC_REQUIRE(capacity_ > 0, "histogram needs a positive capacity");
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(v);
  } else {
    ring_[next_] = v;  // overwrite the oldest
  }
  next_ = (next_ + 1) % capacity_;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::vector<double> sorted;
  Snapshot s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    sorted = ring_;
  }
  if (s.count == 0) return s;
  s.mean = s.sum / static_cast<double>(s.count);
  // One bounded sort serves every percentile; the window never exceeds
  // capacity(), so a per-chunk snapshot poll stays cheap.
  std::sort(sorted.begin(), sorted.end());
  s.window = sorted.size();
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}

void check_name(const std::string& name) {
  DDMC_REQUIRE(!name.empty(), "metric name must not be empty");
  for (char c : name) {
    DDMC_REQUIRE(valid_name_char(c),
                 "metric name '" + name +
                     "' must match [a-z0-9_.] (Prometheus-mappable)");
  }
}

const char* kind_word(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string encode_metric_id(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string id = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) id += ",";
    id += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  return id + "}";
}

std::string next_session_label(const std::string& prefix) {
  static std::atomic<std::uint64_t> next{0};
  return prefix + "-" +
         std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, Labels labels, MetricSnapshot::Kind kind,
    std::size_t capacity) {
  check_name(name);
  std::sort(labels.begin(), labels.end());
  const std::string id = encode_metric_id(name, labels);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    DDMC_REQUIRE(it->second.kind == kind,
                 "metric '" + id + "' already registered as " +
                     kind_word(it->second.kind) + ", requested as " +
                     kind_word(kind));
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = std::move(labels);
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      entry.counter = std::make_shared<Counter>();
      break;
    case MetricSnapshot::Kind::kGauge:
      entry.gauge = std::make_shared<Gauge>();
      break;
    case MetricSnapshot::Kind::kHistogram:
      entry.histogram = std::make_shared<Histogram>(capacity);
      break;
  }
  return entries_.emplace(id, std::move(entry)).first->second;
}

std::shared_ptr<Counter> MetricsRegistry::counter(const std::string& name,
                                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(name, std::move(labels),
                        MetricSnapshot::Kind::kCounter, 0)
      .counter;
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(const std::string& name,
                                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(name, std::move(labels), MetricSnapshot::Kind::kGauge,
                        0)
      .gauge;
}

std::shared_ptr<Histogram> MetricsRegistry::histogram(const std::string& name,
                                                      Labels labels,
                                                      std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(name, std::move(labels),
                        MetricSnapshot::Kind::kHistogram, capacity)
      .histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  // Collect the shared_ptrs under the registry lock, then read each metric
  // outside it — a histogram snapshot takes the histogram's own lock and
  // must not nest inside ours while writers are recording.
  std::vector<Entry> copies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copies.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) copies.push_back(entry);
  }
  std::vector<MetricSnapshot> out;
  out.reserve(copies.size());
  for (const Entry& entry : copies) {
    MetricSnapshot m;
    m.name = entry.name;
    m.labels = entry.labels;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        m.value = entry.counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        m.value = entry.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.histogram = entry.histogram->snapshot();
        break;
    }
    out.push_back(std::move(m));
  }
  // std::map iteration already yields encoded-id order; keep it explicit so
  // exporters can rely on (name, labels) sorting even if storage changes.
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace ddmc::telemetry
