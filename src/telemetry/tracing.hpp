#pragma once
/// \file tracing.hpp
/// \brief Low-overhead pipeline tracing: RAII spans into a lock-free
/// bounded event buffer, exportable as Chrome trace_event JSON.
///
/// The streaming pipeline's behaviour under pressure — a chunk queueing
/// behind the previous one, a shard retry eating the real-time margin, a
/// tuner search blocking the first chunk — is a *timeline* problem, and
/// the right view of a timeline is a flamegraph. Every hot seam opens a
/// `TraceSpan`; `export_chrome_trace()` (telemetry/export.hpp) turns the
/// recorded events into a file that opens directly in chrome://tracing or
/// Perfetto with engine/shard/chunk spans nested by thread and time.
///
/// Cost discipline is the same as DDMC_FAILPOINT's disarmed path: tracing
/// is off by default and a disabled span is ONE relaxed atomic load (the
/// constructor reads `enabled()` and stores false; the destructor reads a
/// bool member). Enabled spans write into a preallocated slot vector with
/// an atomic cursor — no locks, no allocation, no syscalls on the record
/// path; when the buffer fills, further events are counted as dropped
/// rather than blocking the pipeline they are observing.
///
/// Span taxonomy (grep for TraceSpan to verify):
///
///   engine.execute   one kernel execution       (args: engine, gflops)
///   shard.plan       shard planning             (args: shards)
///   shard.task       one shard attempt          (args: shard, attempt)
///   shard.reacquire.task  reacquired sub-shard work  (args: shard)
///   stream.chunk     chunk compute              (args: chunk)
///   stream.sink      sink delivery              (args: chunk)
///   tuner.tune       guided tuning of an engine (args: engine, source)
///   ring.push.wait   producer blocked on a full ring
///   ring.pop.wait    consumer blocked on an empty ring
///
/// Instant events: stream.gap (skipped chunk), stream.degrade (watchdog
/// rung), stream.deadline (deadline overrun), shard.retry.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ddmc::telemetry {

/// One recorded event. Fixed-size char buffers keep the record path
/// allocation-free; names longer than the buffers are truncated, which for
/// the taxonomy above never happens.
struct TraceEvent {
  enum class Kind : std::uint8_t { kComplete, kInstant };

  static constexpr std::size_t kNameSize = 48;
  static constexpr std::size_t kArgsSize = 112;

  char name[kNameSize] = {};
  /// Pre-serialized JSON object body for the Chrome "args" field, without
  /// the braces: `"chunk": 3, "engine": "cpu_tiled"`. Empty = no args.
  char args[kArgsSize] = {};
  std::uint64_t start_ns = 0;  ///< steady-clock nanoseconds
  std::uint64_t dur_ns = 0;    ///< 0 for kInstant
  std::uint32_t tid = 0;       ///< sequential thread id (first-seen order)
  Kind kind = Kind::kComplete;
};

/// Process-wide bounded trace buffer. Disabled by default; the disabled
/// record path is one relaxed atomic load.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  ///< 64 Ki events

  static Tracer& instance();

  /// Turn recording on/off. Enabling does not clear prior events (a test
  /// can stitch phases); call clear() for a fresh timeline.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record a completed span [start_ns, start_ns + dur_ns). Lock-free;
  /// drops (and counts) when the buffer is full.
  void record_complete(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns, const char* args = nullptr);

  /// Record a zero-duration marker at \p at_ns.
  void record_instant(const char* name, std::uint64_t at_ns,
                      const char* args = nullptr);

  /// Events recorded so far, in slot order (≈ chronological per thread).
  /// Safe to call while recording continues: only slots whose ready flag
  /// was published (release/acquire) are returned.
  std::vector<TraceEvent> events() const;

  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

  /// Forget every event and the drop count. Not safe concurrently with
  /// recording; callers stop the pipeline (or disable tracing) first.
  void clear();

  /// Steady-clock nanoseconds; the common timebase of every event.
  static std::uint64_t now_ns();

  /// Sequential id of the calling thread (1, 2, … in first-seen order) —
  /// small stable lane numbers for the Chrome trace instead of opaque
  /// std::thread::id hashes.
  static std::uint32_t thread_id();

 private:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  struct Slot {
    TraceEvent event;
    std::atomic<bool> ready{false};
  };

  void record(TraceEvent::Kind kind, const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns, const char* args);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> dropped_{0};
  std::vector<Slot> slots_;
};

/// RAII span: stamps the start time at construction, records on
/// destruction. When tracing is disabled the constructor is one relaxed
/// atomic load and the destructor one bool test.
class TraceSpan {
 public:
  /// \p name must outlive the span (string literals in practice).
  explicit TraceSpan(const char* name)
      : active_(Tracer::instance().enabled()), name_(name) {
    if (active_) start_ns_ = Tracer::now_ns();
  }

  ~TraceSpan() {
    if (active_) {
      Tracer::instance().record_complete(
          name_, start_ns_, Tracer::now_ns() - start_ns_,
          args_len_ > 0 ? args_ : nullptr);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value to the span's Chrome "args" object. No-ops (and
  /// costs one bool test) while tracing is disabled; silently truncates
  /// beyond TraceEvent::kArgsSize.
  TraceSpan& arg(const char* key, const char* value);
  TraceSpan& arg(const char* key, const std::string& value) {
    return arg(key, value.c_str());
  }
  TraceSpan& arg(const char* key, double value);
  TraceSpan& arg(const char* key, std::size_t value);

  bool active() const { return active_; }

 private:
  TraceSpan& append_arg_raw(const char* key, const char* serialized_value);

  bool active_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::size_t args_len_ = 0;
  char args_[TraceEvent::kArgsSize] = {};
};

}  // namespace ddmc::telemetry
