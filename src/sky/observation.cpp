#include "sky/observation.hpp"

namespace ddmc::sky {

Observation::Observation(std::string name, double sampling_rate_hz,
                         std::size_t channels, double f_min_mhz,
                         double channel_bw_mhz, double dm_first,
                         double dm_step)
    : name_(std::move(name)),
      sampling_rate_(sampling_rate_hz),
      channels_(channels),
      f_min_(f_min_mhz),
      channel_bw_(channel_bw_mhz),
      dm_first_(dm_first),
      dm_step_(dm_step) {
  DDMC_REQUIRE(sampling_rate_ > 0.0, "sampling rate must be positive");
  DDMC_REQUIRE(channels_ > 0, "need at least one channel");
  DDMC_REQUIRE(f_min_ > 0.0, "frequencies must be positive");
  DDMC_REQUIRE(channel_bw_ > 0.0, "channel bandwidth must be positive");
  DDMC_REQUIRE(dm_first_ >= 0.0, "DM cannot be negative");
  DDMC_REQUIRE(dm_step_ >= 0.0, "DM step cannot be negative");
}

Observation Observation::zero_dm_variant() const {
  Observation copy = *this;
  copy.name_ = name_ + "-zeroDM";
  copy.dm_first_ = 0.0;
  copy.dm_step_ = 0.0;
  return copy;
}

Observation apertif() {
  // §IV: 20,000 samples/s; 300 MHz over 1,024 channels; 1420–1720 MHz.
  return Observation("Apertif", 20000.0, 1024, 1420.0, 300.0 / 1024.0, 0.0,
                     0.25);
}

Observation lofar() {
  // §IV: 200,000 samples/s; 6 MHz over 32 channels; band starting at 138 MHz.
  return Observation("LOFAR", 200000.0, 32, 138.0, 6.0 / 32.0, 0.0, 0.25);
}

std::vector<std::size_t> paper_instances(std::size_t max_pow2) {
  DDMC_REQUIRE(max_pow2 >= 2, "instance ladder starts at 2 DMs");
  std::vector<std::size_t> out;
  for (std::size_t d = 2; d <= max_pow2; d *= 2) out.push_back(d);
  return out;
}

}  // namespace ddmc::sky
