#pragma once
/// \file signal.hpp
/// \brief Synthetic channelized time series with dispersed pulsar signals.
///
/// Substitute for real telescope data streams (which we do not have): a
/// white-noise floor plus periodic pulses whose per-channel arrival times
/// follow Eq. (1) for a chosen true DM — exactly the structure incoherent
/// dedispersion is designed to invert. Generators are deterministic given a
/// seed so tests and examples are reproducible.

#include <cstdint>

#include "common/array2d.hpp"
#include "common/random.hpp"
#include "sky/observation.hpp"

namespace ddmc::sky {

/// Parameters of an injected pulsar.
struct PulsarParams {
  double dm = 0.0;              ///< true dispersion measure [pc/cm³]
  double period_s = 0.1;        ///< pulse period [s]
  double width_s = 0.001;       ///< pulse width (boxcar) [s]
  double amplitude = 1.0;       ///< per-channel pulse height above the floor
  double first_pulse_s = 0.01;  ///< emission time of the first pulse [s]
};

/// Noise model for the synthetic band.
struct NoiseParams {
  double sigma = 1.0;        ///< white-noise standard deviation
  double baseline = 0.0;     ///< constant offset per sample
  std::uint64_t seed = 42;   ///< RNG seed
};

/// Fill \p data (channels × time samples) with noise only.
void generate_noise(const Observation& obs, View2D<float> data,
                    const NoiseParams& noise);

/// Add a dispersed pulsar on top of existing data. Pulse energy in channel
/// \c ch is delayed by dispersion_delay_samples(dm, f_ch, f_top); pulses are
/// boxcars of width_s. Samples outside the matrix are silently clipped.
void inject_pulsar(const Observation& obs, View2D<float> data,
                   const PulsarParams& pulsar);

/// Convenience: noise + pulsar into a freshly allocated matrix of
/// \p time_samples per channel.
Array2D<float> make_observation_data(const Observation& obs,
                                     std::size_t time_samples,
                                     const PulsarParams& pulsar,
                                     const NoiseParams& noise);

}  // namespace ddmc::sky
