#pragma once
/// \file delay.hpp
/// \brief Dispersion delays (Eq. 1) and the per-(DM, channel) delay table.
///
/// The delay table is the Δ of Algorithm 1: Δ(channel, dm) is the shift, in
/// samples, applied to the input when accumulating channel \c channel for
/// trial \c dm. It is computed once per plan (the paper: "these delays can be
/// computed in advance, so they do not contribute to the algorithm's
/// complexity").
///
/// The table is also the source of the *data-reuse geometry*: two trials
/// share an input element on a channel exactly when their delays coincide
/// there. The tile-spread statistics exposed here quantify, for a tile of
/// consecutive trial DMs, how many extra input samples the tile needs beyond
/// a single trial — the quantity that drives the memory model and Eq. (3).

#include <cstdint>
#include <vector>

#include "common/array2d.hpp"
#include "sky/observation.hpp"

namespace ddmc::sky {

/// Dispersion delay in seconds between \p f_mhz and the reference (higher)
/// frequency \p f_ref_mhz, for dispersion measure \p dm (Eq. 1).
double dispersion_delay_seconds(double dm, double f_mhz, double f_ref_mhz);

/// Dispersion delay in whole samples (rounded to nearest).
std::int64_t dispersion_delay_samples(double dm, double f_mhz,
                                      double f_ref_mhz,
                                      double sampling_rate_hz);

/// Spread statistics for a partition of the DM grid into tiles of
/// \c tile_dm consecutive trials (see perf model §5 of DESIGN.md).
struct SpreadStats {
  /// Σ over (dm-tile, channel) of Δ(ch, dm_hi) − Δ(ch, dm_lo).
  double total_spread = 0.0;
  /// max over (dm-tile, channel) of the same — sizes the staging buffer.
  std::int64_t max_spread = 0;
  /// Number of (dm-tile, channel) rows the partition stages.
  std::size_t rows = 0;
};

/// Precomputed Δ table for a DM grid of \c dms trials over an observation.
class DelayTable {
 public:
  DelayTable(const Observation& obs, std::size_t dms);

  /// Contiguous trial slice [first_dm, first_dm + dms) of \p base. The rows
  /// are *copied bit-for-bit*, never recomputed: a sharded executor that
  /// recomputed delays from an offset DM grid could round a delay to a
  /// different sample (dm_first + step·k is not associative in floating
  /// point) and silently break bitwise equivalence with the parent plan.
  DelayTable(const DelayTable& base, std::size_t first_dm, std::size_t dms);

  std::size_t dms() const { return table_.rows(); }
  std::size_t channels() const { return table_.cols(); }

  /// Δ(channel, dm) in samples; non-negative, zero for the top of the band.
  std::int64_t delay(std::size_t dm, std::size_t channel) const {
    return table_(dm, channel);
  }

  /// Largest delay in the table (lowest channel, highest trial DM).
  std::int64_t max_delay() const { return max_delay_; }

  /// Spread statistics for tiles of \p tile_dm consecutive trials; requires
  /// dms() % tile_dm == 0 (the kernel's divisibility constraint).
  SpreadStats tile_spreads(std::size_t tile_dm) const;

  ConstView2D<std::int64_t> view() const { return table_.cview(); }

 private:
  Array2D<std::int64_t> table_;
  std::int64_t max_delay_ = 0;
};

}  // namespace ddmc::sky
