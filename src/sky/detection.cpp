#include "sky/detection.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/expect.hpp"
#include "common/statistics.hpp"

namespace ddmc::sky {

namespace {
/// Median of a scratch vector (partially sorts it in place). Even-length
/// sets average the two middle elements — taking only the upper-middle one
/// biases the baseline high, and with it the MAD·1.4826 σ estimate.
double median_inplace(std::vector<float>& values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = static_cast<double>(values[mid]);
  if (values.size() % 2 != 0) return upper;
  // nth_element left the lower half in [begin, mid); its max is the other
  // middle element.
  const double lower = static_cast<double>(
      *std::max_element(values.begin(), values.begin() + mid));
  return 0.5 * (lower + upper);
}
}  // namespace

double series_snr(std::span<const float> series) {
  DDMC_REQUIRE(!series.empty(), "empty series");
  // Robust baseline and noise estimate (median / MAD): the pulse itself
  // must not inflate the noise term, or the aligned trial gets penalized
  // for containing exactly the signal it recovered. MAD·1.4826 estimates σ
  // for Gaussian noise; fall back to the plain standard deviation when the
  // MAD degenerates (more than half the samples identical).
  std::vector<float> scratch(series.begin(), series.end());
  const double baseline = median_inplace(scratch);
  for (auto& v : scratch) {
    v = std::abs(v - static_cast<float>(baseline));
  }
  double sigma = 1.4826 * median_inplace(scratch);
  if (sigma <= 0.0) {
    RunningStats rs;
    for (float v : series) rs.add(static_cast<double>(v));
    sigma = rs.stddev();
  }
  if (sigma <= 0.0) return 0.0;
  const double peak = static_cast<double>(
      *std::max_element(series.begin(), series.end()));
  return (peak - baseline) / sigma;
}

DetectionResult detect_best_dm(ConstView2D<float> dedispersed) {
  DDMC_REQUIRE(dedispersed.rows() > 0 && dedispersed.cols() > 0,
               "empty dedispersed matrix");
  DetectionResult result;
  result.best_snr = -1.0;
  for (std::size_t trial = 0; trial < dedispersed.rows(); ++trial) {
    const auto row = dedispersed.row(trial);
    const double s = series_snr(row);
    if (s > result.best_snr) {
      result.best_snr = s;
      result.best_trial = trial;
      result.peak_sample = static_cast<std::size_t>(
          std::max_element(row.begin(), row.end()) - row.begin());
    }
  }
  return result;
}

}  // namespace ddmc::sky
