#pragma once
/// \file detection.hpp
/// \brief Single-pulse style detection statistics on dedispersed series.
///
/// After brute-force dedispersion, the search pipeline scans every trial's
/// time series for significant peaks. When the trial DM matches the source
/// the pulse energy re-aligns and the peak S/N is maximal; a slightly wrong
/// trial smears the pulse and the S/N collapses below the noise floor (§II —
/// the reason the DM space cannot be pruned).

#include <cstddef>

#include "common/array2d.hpp"

namespace ddmc::sky {

/// Peak signal-to-noise of one dedispersed time series: (max − mean)/σ with
/// mean and σ estimated from the series itself.
double series_snr(std::span<const float> series);

/// Result of scanning a (DMs × samples) dedispersed matrix.
struct DetectionResult {
  std::size_t best_trial = 0;  ///< trial index with the highest peak S/N
  double best_snr = 0.0;       ///< that trial's peak S/N
  std::size_t peak_sample = 0; ///< sample index of the peak in that trial
};

/// Scan every trial and report the strongest candidate.
DetectionResult detect_best_dm(ConstView2D<float> dedispersed);

}  // namespace ddmc::sky
