#include "sky/delay.hpp"

#include <algorithm>
#include <cmath>

namespace ddmc::sky {

double dispersion_delay_seconds(double dm, double f_mhz, double f_ref_mhz) {
  DDMC_REQUIRE(f_mhz > 0.0 && f_ref_mhz > 0.0, "frequencies must be positive");
  DDMC_REQUIRE(f_mhz <= f_ref_mhz, "reference must be the higher frequency");
  DDMC_REQUIRE(dm >= 0.0, "DM cannot be negative");
  const double inv_low = 1.0 / (f_mhz * f_mhz);
  const double inv_ref = 1.0 / (f_ref_mhz * f_ref_mhz);
  return kDispersionConstant * dm * (inv_low - inv_ref);
}

std::int64_t dispersion_delay_samples(double dm, double f_mhz,
                                      double f_ref_mhz,
                                      double sampling_rate_hz) {
  DDMC_REQUIRE(sampling_rate_hz > 0.0, "sampling rate must be positive");
  const double seconds = dispersion_delay_seconds(dm, f_mhz, f_ref_mhz);
  return static_cast<std::int64_t>(std::llround(seconds * sampling_rate_hz));
}

DelayTable::DelayTable(const Observation& obs, std::size_t dms)
    : table_(std::max<std::size_t>(dms, 1), obs.channels()) {
  DDMC_REQUIRE(dms > 0, "need at least one trial DM");
  const double f_ref = obs.f_max_mhz();
  for (std::size_t dm = 0; dm < dms; ++dm) {
    const double dm_value = obs.dm_value(dm);
    for (std::size_t ch = 0; ch < obs.channels(); ++ch) {
      const std::int64_t k = dispersion_delay_samples(
          dm_value, obs.channel_freq_mhz(ch), f_ref, obs.sampling_rate());
      table_(dm, ch) = k;
      max_delay_ = std::max(max_delay_, k);
    }
  }
}

DelayTable::DelayTable(const DelayTable& base, std::size_t first_dm,
                       std::size_t dms)
    : table_(std::max<std::size_t>(dms, 1), base.channels()) {
  DDMC_REQUIRE(dms > 0, "need at least one trial DM in the slice");
  DDMC_REQUIRE(first_dm + dms <= base.dms(),
               "delay-table slice exceeds the parent DM grid");
  for (std::size_t dm = 0; dm < dms; ++dm) {
    for (std::size_t ch = 0; ch < base.channels(); ++ch) {
      const std::int64_t k = base.table_(first_dm + dm, ch);
      table_(dm, ch) = k;
      max_delay_ = std::max(max_delay_, k);
    }
  }
}

SpreadStats DelayTable::tile_spreads(std::size_t tile_dm) const {
  DDMC_REQUIRE(tile_dm > 0, "tile size must be positive");
  DDMC_REQUIRE(dms() % tile_dm == 0,
               "tile size must divide the number of trial DMs");
  SpreadStats stats;
  const std::size_t tiles = dms() / tile_dm;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    const std::size_t lo = tile * tile_dm;
    const std::size_t hi = lo + tile_dm - 1;
    for (std::size_t ch = 0; ch < channels(); ++ch) {
      // Delays grow monotonically with DM, so the spread of a tile on a
      // channel is just the delta between its extreme trials.
      const std::int64_t spread = table_(hi, ch) - table_(lo, ch);
      DDMC_ENSURE(spread >= 0, "delay table must be monotone in DM");
      stats.total_spread += static_cast<double>(spread);
      stats.max_spread = std::max(stats.max_spread, spread);
    }
  }
  stats.rows = tiles * channels();
  return stats;
}

}  // namespace ddmc::sky
