#include "sky/signal.hpp"

#include <algorithm>
#include <cmath>

#include "sky/delay.hpp"

namespace ddmc::sky {

void generate_noise(const Observation& obs, View2D<float> data,
                    const NoiseParams& noise) {
  DDMC_REQUIRE(data.rows() == obs.channels(),
               "data rows must match channel count");
  Rng rng(noise.seed);
  for (std::size_t ch = 0; ch < data.rows(); ++ch) {
    auto row = data.row(ch);
    for (auto& v : row) {
      v = static_cast<float>(noise.baseline + noise.sigma * rng.next_normal());
    }
  }
}

void inject_pulsar(const Observation& obs, View2D<float> data,
                   const PulsarParams& pulsar) {
  DDMC_REQUIRE(data.rows() == obs.channels(),
               "data rows must match channel count");
  DDMC_REQUIRE(pulsar.period_s > 0.0, "period must be positive");
  DDMC_REQUIRE(pulsar.width_s > 0.0, "width must be positive");
  const double rate = obs.sampling_rate();
  const auto width_samples = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(pulsar.width_s * rate)));
  const double f_top = obs.f_max_mhz();
  const auto samples = static_cast<std::int64_t>(data.cols());

  for (std::size_t ch = 0; ch < obs.channels(); ++ch) {
    const std::int64_t delay = dispersion_delay_samples(
        pulsar.dm, obs.channel_freq_mhz(ch), f_top, rate);
    for (double t = pulsar.first_pulse_s;; t += pulsar.period_s) {
      const auto start =
          static_cast<std::int64_t>(std::llround(t * rate)) + delay;
      if (start >= samples) break;
      const std::int64_t stop = std::min(samples, start + width_samples);
      for (std::int64_t i = std::max<std::int64_t>(0, start); i < stop; ++i) {
        data(ch, static_cast<std::size_t>(i)) +=
            static_cast<float>(pulsar.amplitude);
      }
    }
  }
}

Array2D<float> make_observation_data(const Observation& obs,
                                     std::size_t time_samples,
                                     const PulsarParams& pulsar,
                                     const NoiseParams& noise) {
  Array2D<float> data(obs.channels(), time_samples);
  generate_noise(obs, data.view(), noise);
  inject_pulsar(obs, data.view(), pulsar);
  return data;
}

}  // namespace ddmc::sky
