#pragma once
/// \file observation.hpp
/// \brief Observational setups: frequency layout, time resolution, DM grid.
///
/// The paper evaluates two setups operated by ASTRON (§IV):
///  - **Apertif** (Westerbork): 20,000 samples/s, 300 MHz bandwidth split in
///    1,024 channels of 0.293 MHz, 1420–1720 MHz.
///  - **LOFAR**: 200,000 samples/s, 6 MHz bandwidth split in 32 channels of
///    0.1875 MHz, starting at 138 MHz. (The text quotes 0.19 MHz channels and
///    a 145 MHz top edge; 6 MHz / 32 channels is 0.1875 MHz and a 144 MHz top
///    edge — we use the self-consistent values.)
/// Both use a DM grid starting at 0 with a step of 0.25 pc/cm³.

#include <cstddef>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace ddmc::sky {

/// Dispersion constant of Eq. (1): delay[s] = 4,150 · DM · (f⁻² − f_h⁻²)
/// with frequencies in MHz and DM in pc/cm³.
inline constexpr double kDispersionConstant = 4150.0;

/// A channelized observing configuration plus the trial-DM grid.
///
/// Channel \c i covers [f_min + i·bw, f_min + (i+1)·bw); dispersion delays
/// are evaluated at the channel bottom edge against the top of the band, so
/// the delay of the highest frequency is exactly zero and all delays are
/// non-negative (the convention of Algorithm 1's Δ table).
class Observation {
 public:
  Observation(std::string name, double sampling_rate_hz, std::size_t channels,
              double f_min_mhz, double channel_bw_mhz, double dm_first,
              double dm_step);

  const std::string& name() const { return name_; }
  /// Time resolution in samples per second (the paper's \c s).
  double sampling_rate() const { return sampling_rate_; }
  /// Samples per second as an integral count.
  std::size_t samples_per_second() const {
    return static_cast<std::size_t>(sampling_rate_);
  }
  /// Number of frequency channels (the paper's \c c).
  std::size_t channels() const { return channels_; }
  double f_min_mhz() const { return f_min_; }
  double channel_bw_mhz() const { return channel_bw_; }
  /// Top edge of the band — the delay reference frequency f_h of Eq. (1).
  double f_max_mhz() const {
    return f_min_ + channel_bw_ * static_cast<double>(channels_);
  }
  /// Bottom edge frequency of channel \p ch.
  double channel_freq_mhz(std::size_t ch) const {
    DDMC_REQUIRE(ch < channels_, "channel out of range");
    return f_min_ + channel_bw_ * static_cast<double>(ch);
  }

  double dm_first() const { return dm_first_; }
  double dm_step() const { return dm_step_; }
  /// Trial DM value of grid index \p trial.
  double dm_value(std::size_t trial) const {
    return dm_first_ + dm_step_ * static_cast<double>(trial);
  }

  /// Floating point operations needed to dedisperse one second of data for a
  /// single DM: one accumulate per channel per output sample (§IV quotes
  /// 20 MFLOP for Apertif and 6 MFLOP for LOFAR per DM).
  double flop_per_dm_per_second() const {
    return sampling_rate_ * static_cast<double>(channels_);
  }

  /// Variant with every trial DM forced to zero (dm_first = dm_step = 0):
  /// the §IV-C "perfect data-reuse" experiment. All delays vanish, every
  /// dedispersed series is identical, and reuse becomes maximal.
  Observation zero_dm_variant() const;

 private:
  std::string name_;
  double sampling_rate_;
  std::size_t channels_;
  double f_min_;
  double channel_bw_;
  double dm_first_;
  double dm_step_;
};

/// The Apertif setup of §IV (computationally heavier, more reuse available).
Observation apertif();

/// The LOFAR setup of §IV (less compute, almost no reuse available).
Observation lofar();

/// The 12 input instances of the paper's experiments: #DMs = 2, 4, …, 4096.
/// \p max_pow2 allows tests to use a shorter ladder.
std::vector<std::size_t> paper_instances(std::size_t max_pow2 = 4096);

}  // namespace ddmc::sky
