#include "resilience/fault_injection.hpp"

#include <utility>

namespace ddmc::resilience {

namespace {

/// splitmix64: tiny, seedable, and plenty for fire/no-fire decisions —
/// faults must reproduce bit-for-bit from the spec's seed alone.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

[[noreturn]] void throw_fault(const std::string& name, const FaultSpec& spec,
                              std::optional<std::size_t> context,
                              std::size_t fire_ordinal) {
  std::string msg = "failpoint '" + name + "' fired";
  if (context) msg += " (context " + std::to_string(*context) + ")";
  msg += ", fire " + std::to_string(fire_ordinal);
  msg += ": " + (spec.message.empty() ? name : spec.message);
  switch (spec.error) {
    case ErrorClass::kConfig: throw ConfigError(msg);
    case ErrorClass::kData: throw DataError(msg);
    case ErrorClass::kTransient:
    case ErrorClass::kUnknown: break;
  }
  throw TransientError(msg);
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& name, FaultSpec spec) {
  DDMC_REQUIRE(!name.empty(), "failpoint name must not be empty");
  DDMC_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
               "failpoint probability out of [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  Armed armed;
  armed.rng_state = spec.seed;
  armed.spec = std::move(spec);
  if (failpoints_.find(name) == failpoints_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  failpoints_[name] = std::move(armed);
}

void FaultInjector::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failpoints_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  failpoints_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::armed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failpoints_.find(name) != failpoints_.end();
}

FaultStats FaultInjector::stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = failpoints_.find(name);
  return it == failpoints_.end() ? FaultStats{} : it->second.stats;
}

bool FaultInjector::evaluate(Armed& armed,
                             std::optional<std::size_t> context) {
  const FaultSpec& spec = armed.spec;
  if (spec.context && context != spec.context) return false;
  FaultStats& stats = armed.stats;
  ++stats.hits;
  if (spec.max_fires != 0 && stats.fires >= spec.max_fires) return false;
  bool fires = false;
  switch (spec.trigger) {
    case FaultSpec::Trigger::kCountdown:
      fires = stats.hits > spec.skip;
      break;
    case FaultSpec::Trigger::kProbability:
      fires = uniform01(armed.rng_state) < spec.probability;
      break;
  }
  if (fires) ++stats.fires;
  return fires;
}

void FaultInjector::fire(const std::string& name,
                         std::optional<std::size_t> context) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return;
  FaultSpec spec;
  std::size_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = failpoints_.find(name);
    if (it == failpoints_.end() || !evaluate(it->second, context)) return;
    spec = it->second.spec;
    ordinal = it->second.stats.fires;
  }
  // Throw outside the lock: the unwinding path may re-enter the injector
  // (a retry immediately hits the same failpoint).
  throw_fault(name, spec, context, ordinal);
}

bool FaultInjector::triggered(const std::string& name,
                              std::optional<std::size_t> context) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = failpoints_.find(name);
  return it != failpoints_.end() && evaluate(it->second, context);
}

}  // namespace ddmc::resilience
