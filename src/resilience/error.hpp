#pragma once
/// \file error.hpp
/// \brief Typed error taxonomy for supervised execution.
///
/// A survey pipeline that keeps emitting candidates through faults needs to
/// know *which* faults are worth another attempt. The taxonomy splits every
/// failure a supervisor can observe into three kinds:
///
///   TransientError  the operation may succeed if repeated — a worker died,
///                   an injected fault fired, an I/O rename lost a race.
///                   Retry policies act on exactly this type.
///   ConfigError     the setup is wrong (invalid plan/config/option); the
///                   same call can never succeed, so retrying burns the
///                   real-time margin for nothing. Fail fast.
///   DataError       the input itself is unusable (shape mismatch, corrupt
///                   stream); equally unretryable, but distinguishes "your
///                   request is wrong" from "your data is wrong" in reports.
///
/// classify() maps an arbitrary in-flight exception onto this ladder,
/// folding the library's pre-existing contract types (ddmc::config_error,
/// ddmc::invalid_argument) into kConfig so legacy throws get the right
/// policy without being rewritten. Anything unrecognized is kUnknown and
/// treated as fatal — a supervisor must never retry what it cannot name.

#include <exception>
#include <stdexcept>
#include <string>

#include "common/expect.hpp"

namespace ddmc::resilience {

/// Base of the taxonomy; supervised components throw only subtypes.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Retryable: the same operation may succeed on another attempt.
class TransientError : public Error {
 public:
  using Error::Error;
};

/// Fatal: the request (plan, config, option) is wrong; retrying cannot help.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Fatal: the input data is unusable; retrying cannot help.
class DataError : public Error {
 public:
  using Error::Error;
};

/// Classification a policy switches on.
enum class ErrorClass { kTransient, kConfig, kData, kUnknown };

inline const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kConfig: return "config";
    case ErrorClass::kData: return "data";
    case ErrorClass::kUnknown: return "unknown";
  }
  return "unknown";
}

/// Map an in-flight exception onto the taxonomy. The library's contract
/// exceptions count as configuration mistakes; everything unrecognized is
/// kUnknown, which every policy treats as fatal.
inline ErrorClass classify(const std::exception_ptr& error) {
  if (!error) return ErrorClass::kUnknown;
  try {
    std::rethrow_exception(error);
  } catch (const TransientError&) {
    return ErrorClass::kTransient;
  } catch (const DataError&) {
    return ErrorClass::kData;
  } catch (const ConfigError&) {
    return ErrorClass::kConfig;
  } catch (const ddmc::config_error&) {
    return ErrorClass::kConfig;
  } catch (const ddmc::invalid_argument&) {
    return ErrorClass::kConfig;
  } catch (...) {
    return ErrorClass::kUnknown;
  }
}

/// Message of an in-flight exception ("<non-std exception>" otherwise).
inline std::string describe(const std::exception_ptr& error) {
  if (!error) return "<no error>";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "<non-std exception>";
  }
}

}  // namespace ddmc::resilience
