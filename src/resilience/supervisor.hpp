#pragma once
/// \file supervisor.hpp
/// \brief Supervision policies and reports shared by the sharded executor
/// and the streaming watchdog.
///
/// The paper's real-time criterion (§V-D) makes dropped work a scientific
/// loss, not just an operational one: a worker that dies mid-survey takes
/// its DM shard's candidates with it. This header defines *policy* — how
/// many retries, what backoff, whether a dead worker's shard is reacquired,
/// how a streaming session degrades — separately from the executors that
/// enforce it, so every execution path (batch, sharded, streaming) reads
/// the same vocabulary:
///
///   RetryPolicy         bounded attempts with exponential backoff; only
///                       TransientErrors are retried (error.hpp taxonomy).
///   SupervisionPolicy   RetryPolicy + shard reacquisition: a shard whose
///                       retries exhaust is re-partitioned across the
///                       surviving workers via the DmShardPlanner cost
///                       model, so one dead worker degrades throughput, not
///                       coverage.
///   ShardExecutionReport  attempts / retries / reassignments per shard —
///                       the observability a heartbeat monitor would export.
///   StreamPolicy        the streaming watchdog's ordered ladder on chunk
///                       failure or deadline overrun:
///                       retry → skip-with-gap-accounting → degrade to a
///                       cheaper capable engine.
///   StreamHealth        session snapshot: gaps, retries, skips, the active
///                       (possibly degraded) engine.

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "resilience/error.hpp"

namespace ddmc::resilience {

/// Bounded retry with exponential backoff. Only transient failures are
/// retried; config/data/unknown errors fail the first attempt.
struct RetryPolicy {
  /// Total attempts (1 = no retry).
  std::size_t max_attempts = 1;
  /// Sleep before retry k (1-based): backoff_seconds × multiplier^(k−1),
  /// capped at max_backoff_seconds. Default is deliberately tiny — on one
  /// host a failed worker needs milliseconds, not the seconds a remote
  /// reconnect would; a multi-node executor raises it.
  double backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.050;

  /// Backoff before 1-based retry \p retry.
  double backoff_for(std::size_t retry) const;
};

/// Sleep for the policy's backoff before 1-based retry \p retry (no-op for
/// non-positive backoff).
void backoff_sleep(const RetryPolicy& policy, std::size_t retry);

/// Sharded-executor supervision. Defaults keep the historical behavior
/// (one attempt, no reacquisition) while still aggregating every worker
/// failure into one ShardExecutionError.
struct SupervisionPolicy {
  RetryPolicy retry;
  /// After a shard exhausts its retries on transient failures, declare its
  /// worker dead and re-partition the shard's DM range across the surviving
  /// workers (DmShardPlanner cost model on the shard plan). Sub-shard tasks
  /// get the same retry budget but are never re-reacquired — one level
  /// bounds the recursion, and a fault pattern that kills every split is
  /// reported as the shard's failure.
  bool reacquire = false;
  /// Sub-shards a reacquired range splits into; 0 = surviving worker count.
  std::size_t reacquire_splits = 0;
};

/// Per-shard supervision counters across one dedisperse/batch call.
struct ShardJobStats {
  std::size_t attempts = 0;    ///< executions tried (incl. sub-shards)
  std::size_t retries = 0;     ///< attempts beyond each job's first
  std::size_t reassignments = 0;  ///< times the shard's range was reacquired
  bool failed = false;         ///< still failed after the full policy
};

/// What one supervised sharded run did — the numbers a fleet monitor
/// aggregates (and the proof, in tests, that a fault pattern was absorbed).
struct ShardExecutionReport {
  std::size_t jobs = 0;      ///< beam × shard jobs submitted
  std::size_t attempts = 0;  ///< Σ shard attempts
  std::size_t retries = 0;
  std::size_t reassignments = 0;
  std::vector<ShardJobStats> shards;  ///< indexed by shard

  bool clean() const { return retries == 0 && reassignments == 0; }
};

/// One job's terminal failure inside a sharded run.
struct ShardFailure {
  std::size_t beam = 0;
  std::size_t shard = 0;
  std::size_t attempts = 0;
  ErrorClass kind = ErrorClass::kUnknown;
  std::string message;
};

/// Aggregate of *every* failed (beam, shard) job of a sharded run — not
/// just the first — so an operator sees the whole blast radius at once.
/// what() names each failed shard index and its cause.
class ShardExecutionError : public Error {
 public:
  explicit ShardExecutionError(std::vector<ShardFailure> failures);

  const std::vector<ShardFailure>& failures() const { return failures_; }

  /// Taxonomy class of the aggregate: kTransient when *every* failed job
  /// was transient (a retry of the whole run could succeed — the streaming
  /// watchdog's retry/skip rungs apply), else the first fatal kind.
  ErrorClass aggregate_class() const {
    for (const ShardFailure& f : failures_) {
      if (f.kind != ErrorClass::kTransient) return f.kind;
    }
    return failures_.empty() ? ErrorClass::kUnknown : ErrorClass::kTransient;
  }

 private:
  static std::string format(const std::vector<ShardFailure>& failures);
  std::vector<ShardFailure> failures_;
};

/// classify() with the sharded aggregate unwrapped: a ShardExecutionError
/// maps to its aggregate_class() (transient when every failed job was),
/// so a supervisor above a sharded executor can retry what is retryable.
/// Plain classify() cannot know the type — it lives below this header.
inline ErrorClass classify_supervised(const std::exception_ptr& error) {
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const ShardExecutionError& e) {
      return e.aggregate_class();
    } catch (...) {
    }
  }
  return classify(error);
}

/// The streaming watchdog's ladder. Disabled by default: an unsupervised
/// session latches the first error exactly as before.
struct StreamPolicy {
  /// Master switch for the ladder; false preserves fail-fast semantics.
  bool enabled = false;
  /// Rung 1 — retry: transient chunk failures are re-run up to this many
  /// times (fatal errors never retry).
  std::size_t max_chunk_retries = 1;
  /// Rung 2 — skip: when retries exhaust, drop the chunk, account the gap
  /// (surfaced in StreamHealth and the LatencyReport) and keep the session
  /// alive. False rethrows instead (retry-only supervision).
  bool skip_failed_chunks = true;
  /// Per-chunk compute deadline as a multiple of the chunk's data seconds —
  /// the real-time-margin criterion itself: a factor of 1 demands margin
  /// ≥ 1 on every chunk, which is exactly when the ring stops backing up.
  /// A chunk over deadline still delivers (late science beats no science)
  /// but counts as pressure toward degradation. 0 disables the deadline.
  double deadline_factor = 0.0;
  /// Rung 3 — degrade: after this many *consecutive* pressure events
  /// (skipped chunks or deadline overruns), switch to a cheaper capable
  /// engine. 0 disables degradation.
  std::size_t degrade_after = 2;
  /// Registry id to degrade to; empty auto-selects via the registry
  /// capability query (select_degrade_engine).
  std::string degrade_engine;
};

/// One skipped chunk's accounting: where the gap sits in the output stream.
struct ChunkGap {
  std::size_t index = 0;         ///< chunk sequence number never emitted
  std::size_t first_sample = 0;  ///< first missing output sample
  std::size_t out_samples = 0;   ///< missing output samples
  std::string reason;            ///< terminal failure message
};

/// Snapshot of a supervised streaming session's health.
struct StreamHealth {
  std::size_t chunks_emitted = 0;
  std::size_t chunks_retried = 0;  ///< chunks that needed ≥ 1 retry
  std::size_t retries = 0;         ///< total extra attempts
  std::size_t chunks_skipped = 0;
  std::size_t deadline_overruns = 0;
  std::size_t degradations = 0;  ///< engine switches taken
  std::string active_engine;     ///< registry id currently executing
  bool degraded = false;
  double gap_data_seconds = 0.0;  ///< observation time lost to gaps
  std::vector<ChunkGap> gaps;
};

/// Pick the degradation target for a session running \p current_engine:
/// \p policy.degrade_engine when set (validated for supports_streaming),
/// else the cheapest streaming-capable engine the registry offers, by
/// cost tier: exact → quantized (input_element_bytes < 4, traffic
/// savings only) → algorithmically approximate — the subband engine when
/// registered (its two-stage approximation trades bounded smearing for a
/// large flop reduction, the canonical "keep the survey alive"
/// fallback). Returns an empty string when nothing in a strictly cheaper
/// tier exists.
std::string select_degrade_engine(const std::string& current_engine,
                                  const StreamPolicy& policy);

}  // namespace ddmc::resilience
