#include "resilience/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "engine/registry.hpp"

namespace ddmc::resilience {

double RetryPolicy::backoff_for(std::size_t retry) const {
  if (backoff_seconds <= 0.0 || retry == 0) return 0.0;
  const double raw =
      backoff_seconds * std::pow(backoff_multiplier,
                                 static_cast<double>(retry - 1));
  return std::min(raw, max_backoff_seconds);
}

void backoff_sleep(const RetryPolicy& policy, std::size_t retry) {
  const double seconds = policy.backoff_for(retry);
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

ShardExecutionError::ShardExecutionError(std::vector<ShardFailure> failures)
    : Error(format(failures)), failures_(std::move(failures)) {}

std::string ShardExecutionError::format(
    const std::vector<ShardFailure>& failures) {
  std::string msg = std::to_string(failures.size()) +
                    " sharded worker job(s) failed:";
  for (const ShardFailure& f : failures) {
    msg += "\n  [beam " + std::to_string(f.beam) + " shard " +
           std::to_string(f.shard) + ", " + to_string(f.kind) + " after " +
           std::to_string(f.attempts) + " attempt(s)] " + f.message;
  }
  return msg;
}

std::string select_degrade_engine(const std::string& current_engine,
                                  const StreamPolicy& policy) {
  const engine::EngineRegistry& registry = engine::EngineRegistry::instance();
  const auto streaming_capable = [&](const std::string& id) {
    return registry.contains(id) &&
           engine::make_engine(id)->capabilities().supports_streaming;
  };
  if (!policy.degrade_engine.empty()) {
    if (policy.degrade_engine == current_engine) return {};
    DDMC_REQUIRE(streaming_capable(policy.degrade_engine),
                 "degrade engine '" + policy.degrade_engine +
                     "' is unknown or lacks the supports_streaming "
                     "capability");
    return policy.degrade_engine;
  }
  // Capability query, not an id test — with a cost ordering. An engine
  // gave up bitwise exactness one of two ways, and they are not equally
  // cheap: an *algorithmic* approximation (subband's two-stage split,
  // input_element_bytes still 4) removes additions outright, while a
  // *quantized* engine (input_element_bytes < 4) does every addition the
  // failing engine could not afford and saves only memory traffic. The
  // ladder exists to keep a drowning session alive, so it takes the
  // cheapest tier on offer: exact (tier 2) → quantized (tier 1) →
  // algorithmic (tier 0), never sideways or up.
  const auto cost_tier = [](const engine::EngineCapabilities& caps) {
    if (caps.bitwise_exact) return 2;
    return caps.input_element_bytes < sizeof(float) ? 1 : 0;
  };
  const int current_tier =
      registry.contains(current_engine)
          ? cost_tier(engine::make_engine(current_engine)->capabilities())
          : 2;
  std::string best;
  int best_tier = current_tier;
  for (const std::string& id : registry.ids()) {
    if (id == current_engine) continue;
    if (!streaming_capable(id)) continue;
    const int tier = cost_tier(engine::make_engine(id)->capabilities());
    if (tier < best_tier) {
      best = id;
      best_tier = tier;
    }
  }
  return best;
}

}  // namespace ddmc::resilience
