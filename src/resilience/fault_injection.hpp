#pragma once
/// \file fault_injection.hpp
/// \brief Deterministic fault-injection framework: named failpoints threaded
/// into the pipeline's hot seams.
///
/// None of the supervision machinery (retries, shard reacquisition, the
/// streaming degradation ladder) is testable against faults that only occur
/// when real hardware misbehaves. A failpoint is a named hook compiled into
/// a hot seam — `DDMC_FAILPOINT("shard.task", shard_index)` — that does
/// nothing until a test *arms* it with a FaultSpec, after which it throws a
/// taxonomy error (resilience/error.hpp) at a deterministic point:
///
///   countdown    fire on the (skip+1)-th matching hit — "fail shard 3's
///                second attempt", exactly once or forever (max_fires);
///   probability  fire each matching hit with probability p from a seeded
///                RNG — randomized soaks that reproduce bit-for-bit.
///
/// Hits can be filtered by an integer *context* (the shard index, the chunk
/// index), which is what lets a test inject a fault at every shard position
/// in turn and assert the supervised output never changes.
///
/// The disarmed fast path is one relaxed atomic load — cheap enough to keep
/// the hooks compiled into release builds, so the code that runs under test
/// is the code that ships. Arm via ScopedFault in tests: it disarms on
/// scope exit even when an assertion throws.
///
/// Registered failpoint names (grep for DDMC_FAILPOINT to verify):
///
///   engine.execute        every DedispEngine::execute (context: none)
///   shard.task            sharded executor worker task (context: shard)
///   shard.reacquire.task  reacquired sub-shard task (context: parent shard)
///   stream.chunk          streaming chunk compute   (context: chunk index)
///   ring.push             SampleRing::push/try_push (context: none)
///   ring.pop              SampleRing::pop           (context: none)
///   chunker.feed          OverlapChunker::feed      (context: chunk index)
///   tuning_cache.load     TuningCache file parse    (context: none)
///   tuning_cache.save     TuningCache file write    (context: none)
///   tuning_cache.rename   TuningCache atomic rename (context: none)

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "resilience/error.hpp"

namespace ddmc::resilience {

/// How an armed failpoint decides to fire, and what it throws.
struct FaultSpec {
  enum class Trigger { kCountdown, kProbability };

  Trigger trigger = Trigger::kCountdown;
  /// kCountdown: matching hits to let pass before firing (0 = first hit).
  std::size_t skip = 0;
  /// kProbability: per-hit fire probability in [0, 1].
  double probability = 0.0;
  /// Seed of the spec's private RNG (kProbability); same seed, same faults.
  std::uint64_t seed = 1;
  /// Total fires before the spec exhausts itself; 0 = unlimited (a
  /// permanently dead component, the reacquisition scenario).
  std::size_t max_fires = 1;
  /// Only hits carrying exactly this context match (e.g. one shard index);
  /// unset matches every hit, including context-free ones.
  std::optional<std::size_t> context;
  /// Which taxonomy error fire() throws; anything but kTransient lets a
  /// test prove that fatal errors are *not* retried.
  ErrorClass error = ErrorClass::kTransient;
  /// Appended to the thrown message (defaults to the failpoint name).
  std::string message;
};

/// Per-failpoint observability counters (for test assertions).
struct FaultStats {
  std::size_t hits = 0;   ///< matching evaluations while armed
  std::size_t fires = 0;  ///< times the failpoint threw / reported true
};

/// Process-wide registry of named failpoints. All operations are
/// thread-safe; the disarmed fire() path is a single relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arm \p name with \p spec, replacing any previous spec (and resetting
  /// its counters).
  void arm(const std::string& name, FaultSpec spec);

  /// Disarm \p name (keeps nothing); unknown names are a no-op.
  void disarm(const std::string& name);

  /// Disarm everything — test teardown.
  void disarm_all();

  bool armed(const std::string& name) const;

  /// Counters of \p name since it was last armed (zeros when never armed).
  FaultStats stats(const std::string& name) const;

  /// Evaluate a hit: if \p name is armed and the spec triggers, throw the
  /// spec's taxonomy error naming the failpoint, the context and the fire
  /// ordinal. The disarmed path costs one relaxed atomic load.
  void fire(const std::string& name,
            std::optional<std::size_t> context = std::nullopt);

  /// Non-throwing twin of fire() for seams that must *simulate* a failure
  /// (e.g. a failed std::rename) instead of unwinding: true when the spec
  /// triggered this hit.
  bool triggered(const std::string& name,
                 std::optional<std::size_t> context = std::nullopt);

 private:
  FaultInjector() = default;

  struct Armed {
    FaultSpec spec;
    FaultStats stats;
    std::uint64_t rng_state = 0;  ///< splitmix64 state (kProbability)
  };

  // Requires mutex_ held. True when this hit fires.
  bool evaluate(Armed& armed, std::optional<std::size_t> context);

  std::atomic<std::size_t> armed_count_{0};
  mutable std::mutex mutex_;
  std::map<std::string, Armed> failpoints_;
};

/// RAII arming for tests: arms at construction, disarms at scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string name, FaultSpec spec) : name_(std::move(name)) {
    FaultInjector::instance().arm(name_, std::move(spec));
  }
  ~ScopedFault() { FaultInjector::instance().disarm(name_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& name() const { return name_; }
  FaultStats stats() const { return FaultInjector::instance().stats(name_); }

 private:
  std::string name_;
};

}  // namespace ddmc::resilience

/// Failpoint hooks. Function-call syntax keeps them greppable; the disarmed
/// cost is one relaxed atomic load inside fire().
#define DDMC_FAILPOINT(name) \
  ::ddmc::resilience::FaultInjector::instance().fire((name))
#define DDMC_FAILPOINT_CTX(name, context) \
  ::ddmc::resilience::FaultInjector::instance().fire((name), (context))
