#pragma once
/// \file sharding.hpp
/// \brief DM-sharded execution: partition one plan's DM grid across a
/// worker pool.
///
/// The paper sizes real surveys by what one accelerator sustains (§V-D:
/// Apertif = 2,000 DMs × 450 beams); production deployments split that DM
/// range across many devices (Sclocco et al. 1601.01165; Barsdell et al.
/// 1201.5380 partition the DM space to fit device limits). This module is
/// the host-side architectural step those backends plug into:
///
///  - DmShardPlanner cuts a plan's DM grid into contiguous per-worker
///    ranges balanced by *modeled cost* (derived from ocl::PerfEstimate),
///    not equal trial counts: a high-DM shard drags a larger input window
///    through memory (its dispersion sweep is longer), so equal-count
///    splits systematically overload the top shard.
///  - ShardedDedisperser executes the shards across an owned worker pool,
///    through any engine whose capabilities report supports_sharding
///    (ShardedOptions::engine selects it by registry id; an engine without
///    the capability is rejected with an error naming it). Every shard runs
///    on its own worker with its own staging buffers and its own
///    engine-native config — either adapted from a caller config by the
///    engine itself (DedispEngine::adapt_config) or tuned per shard
///    through TuningCache::tune_guided (shard plans carry their own
///    PlanSignature, so neighboring shards answer each other's tuning by
///    nearest-neighbor transfer). Batched submission covers multiple beams
///    (beams × shards jobs in flight at once); results are assembled into
///    the full dms × out_samples matrix by writing each shard's rows at its
///    DM offset, which makes the output *bitwise identical* to the
///    single-engine batch path: shard delay tables are sliced, never
///    recomputed (Plan::dm_shard), and the sharding-capable engines are
///    bitwise identical across kernel configurations.
///  - Execution is *supervised* (ShardedOptions::supervision): a failing
///    shard job is retried with bounded backoff while its failures stay
///    transient; a shard whose retries exhaust is declared dead and its DM
///    range reacquired by the surviving workers — re-partitioned through
///    the same DmShardPlanner cost model and executed as sub-shards, so one
///    dead worker costs throughput, never coverage. Every recovery path
///    preserves the bitwise guarantee (sub-shard plans are slices of
///    slices), jobs that still fail are aggregated into one
///    resilience::ShardExecutionError naming each failed shard and cause,
///    and last_report() exposes attempts/retries/reassignments per shard.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/array2d.hpp"
#include "common/thread_pool.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine.hpp"
#include "ocl/device.hpp"
#include "resilience/supervisor.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::pipeline {

/// One contiguous DM range owned by one worker.
struct DmShard {
  std::size_t first_dm = 0;      ///< first trial of the range
  std::size_t dms = 0;           ///< trials in the range
  double modeled_seconds = 0.0;  ///< planner cost estimate for the range
};

/// A full partition of a plan's DM grid.
struct ShardLayout {
  std::vector<DmShard> shards;        ///< contiguous, in DM order
  double modeled_max_seconds = 0.0;   ///< slowest shard (the critical path)
  double modeled_total_seconds = 0.0; ///< Σ modeled_seconds

  /// max / mean modeled shard cost; 1 = perfectly balanced.
  double imbalance() const {
    if (shards.empty() || modeled_total_seconds <= 0.0) return 1.0;
    return modeled_max_seconds * static_cast<double>(shards.size()) /
           modeled_total_seconds;
  }
};

/// Partitions a plan's DM grid into per-worker shards, minimizing the
/// modeled cost of the slowest shard (the quantity that bounds wall time).
///
/// The cost model is anchored on ocl::estimate_cpu_baseline (a
/// PerfEstimate on \p cost_device): its per-trial execution time prices the
/// accumulate work, and a staging term prices reading the shard's unique
/// input window — channels × (out_samples + max delay of the shard's top
/// trial) floats — at the device's achievable bandwidth. The second term is
/// what makes high-DM shards more expensive than low-DM shards of equal
/// trial count.
class DmShardPlanner {
 public:
  explicit DmShardPlanner(const dedisp::Plan& plan,
                          const ocl::DeviceModel& cost_device);
  /// Costs on the §V-D comparison CPU model (the executor's default).
  explicit DmShardPlanner(const dedisp::Plan& plan);

  std::size_t dms() const { return max_delay_.size(); }

  /// Modeled wall seconds for one worker owning [first_dm, first_dm+dms).
  double shard_seconds(std::size_t first_dm, std::size_t dms) const;

  /// Optimal min-max contiguous partition into exactly
  /// min(\p workers, dms()) shards — every shard holds ≥ 1 trial, so more
  /// workers than trials idle the surplus. Shards cover [0, plan.dms())
  /// exactly, in order.
  ShardLayout partition(std::size_t workers) const;

 private:
  std::size_t out_samples_ = 0;
  std::size_t channels_ = 0;
  /// Running max over channels and trials ≤ d — monotone by construction,
  /// so shard cost is monotone in the range end and greedy packing against
  /// a cost threshold is optimal.
  std::vector<std::int64_t> max_delay_;
  double seconds_per_trial_ = 0.0;
  double seconds_per_input_float_ = 0.0;
  double shard_overhead_seconds_ = 0.0;
};

struct ShardedOptions {
  /// Worker threads owning shards; 0 = machine concurrency.
  std::size_t workers = 0;
  /// Registry id of the engine every worker runs; must report the
  /// supports_sharding capability.
  std::string engine = engine::kDefaultEngineId;
  /// Full factory options for the workers' engine (cpu knobs, subband
  /// split, simulator device — whatever the selected engine reads). The
  /// per-worker thread count is always forced to 1 — shards (× beams) are
  /// the parallel dimension.
  engine::EngineOptions engine_options;
  /// Device model pricing the planner's cost terms.
  ocl::DeviceModel cost_device;
  /// Supervision of the worker jobs: per-shard bounded retry with backoff
  /// and (optionally) reacquisition of a dead worker's DM range by the
  /// surviving workers. The default (one attempt, no reacquisition) keeps
  /// the historical fail-fast behavior — except that *all* worker failures
  /// are now aggregated into one resilience::ShardExecutionError naming
  /// each failed shard and its cause, instead of rethrowing only the first.
  resilience::SupervisionPolicy supervision;

  ShardedOptions();
};

/// Executes a plan as DM shards on an owned worker pool.
class ShardedDedisperser {
 public:
  /// Every shard derives its config from \p config through the engine's
  /// own adapt_config (the tiled engines gcd-shrink their DM tile where a
  /// shard breaks divisibility; the time tile is untouched). \p config
  /// must validate against \p plan on the selected engine.
  ShardedDedisperser(dedisp::Plan plan, engine::EngineConfig config,
                     ShardedOptions options = {});

  /// Kernel-shape convenience: \p config re-encoded as the kernel axes.
  ShardedDedisperser(dedisp::Plan plan, dedisp::KernelConfig config,
                     ShardedOptions options = {});

  /// Tune each shard through \p cache: shard plans carry their own
  /// PlanSignature, so the first shard's guided search seeds the cache and
  /// neighboring shards resolve by exact hit or nearest-neighbor transfer
  /// (zero measurements). When \p tuning.engines lists several ids, the
  /// engines race once on the *full* plan and the winner is adopted for
  /// every shard (per-shard races could crown different engines per shard
  /// and break the single-engine bitwise assembly guarantee); a winner
  /// without the supports_sharding capability is rejected with an error
  /// naming it. The engine knobs of \p tuning.host are overridden by
  /// \p options.cpu, matching what the workers will run.
  ShardedDedisperser(dedisp::Plan plan, tuner::TuningCache& cache,
                     ShardedOptions options = {},
                     tuner::GuidedTuningOptions tuning = {});

  const dedisp::Plan& plan() const { return plan_; }
  const engine::DedispEngine& engine() const { return *engine_; }
  const ShardLayout& layout() const { return layout_; }
  std::size_t workers() const { return pool_->worker_count(); }
  std::size_t shard_count() const { return shard_plans_.size(); }
  const dedisp::Plan& shard_plan(std::size_t shard) const {
    return shard_plans_.at(shard);
  }
  const engine::EngineConfig& shard_config(std::size_t shard) const {
    return shard_configs_.at(shard);
  }
  /// Per-shard tuning outcomes (cache constructor only; else empty).
  const std::vector<tuner::GuidedTuningOutcome>& tuning_outcomes() const {
    return tuning_outcomes_;
  }

  /// Dedisperse one beam into \p out (dms × ≥out_samples): all shards are
  /// submitted to the pool at once, each writing its own row range of
  /// \p out. Blocks until the matrix is fully assembled. Worker failures
  /// are retried/reacquired per ShardedOptions::supervision; jobs that
  /// still fail are aggregated into one resilience::ShardExecutionError
  /// naming every failed shard and its cause. Bitwise identical to the
  /// single-engine path — under any supervised recovery too, because a
  /// shard's rows are only ever written by the engine that finally
  /// succeeds on exactly that DM range.
  void dedisperse(ConstView2D<float> input, View2D<float> out) const;

  /// Convenience allocating the output matrix.
  Array2D<float> dedisperse(ConstView2D<float> input) const;

  /// Batched submission: every (beam, shard) job enters the pool together,
  /// so workers drain beams × shards work items without a per-beam barrier.
  /// outputs[b] is beam b's full dms × out_samples matrix.
  std::vector<Array2D<float>> dedisperse_batch(
      const std::vector<ConstView2D<float>>& beams) const;

  /// Supervision counters (attempts, retries and reassignments per shard).
  /// The report is mutated *live* under one mutex, so this is safe to call
  /// from a monitoring thread while a dedisperse/dedisperse_batch is in
  /// flight — it returns a consistent snapshot of the counters so far; a
  /// finished call's counters are final, even when the call threw. A new
  /// dedisperse call resets the report; two calls racing on one executor
  /// interleave their counters into it.
  resilience::ShardExecutionReport last_report() const;

  /// Whole-lifetime traffic aggregate across every dedisperse call:
  /// EngineRun counters and seconds summed over all shard jobs (including
  /// retried and reacquired ones — they do the work, so they count). Safe
  /// to call concurrently with in-flight work.
  engine::SessionTraffic telemetry() const;

 private:
  ShardedDedisperser(dedisp::Plan plan, ShardedOptions options);
  void run_batch(const std::vector<ConstView2D<float>>& beams,
                 const std::vector<View2D<float>>& outs) const;

  dedisp::Plan plan_;
  ShardedOptions options_;
  std::shared_ptr<const engine::DedispEngine> engine_;
  ShardLayout layout_;
  std::vector<dedisp::Plan> shard_plans_;
  std::vector<engine::EngineConfig> shard_configs_;
  std::vector<tuner::GuidedTuningOutcome> tuning_outcomes_;
  std::unique_ptr<ThreadPool> pool_;
  /// Guards last_report_ and traffic_; workers take it per counter bump,
  /// readers per snapshot — never across an engine call.
  mutable std::mutex report_mutex_;
  mutable resilience::ShardExecutionReport last_report_;
  mutable engine::SessionTraffic traffic_;
};

}  // namespace ddmc::pipeline
