#include "pipeline/multibeam.hpp"

#include <memory>
#include <string>
#include <utility>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"
#include "engine/registry.hpp"
#include "pipeline/sharding.hpp"

namespace ddmc::pipeline {

MultiBeamDedisperser::MultiBeamDedisperser(dedisp::Plan plan,
                                           engine::EngineConfig config,
                                           std::string engine,
                                           engine::EngineOptions options)
    : plan_(std::move(plan)),
      config_(std::move(config)),
      engine_id_(std::move(engine)),
      engine_options_(std::move(options)) {
  rebuild_engine();
  engine_->validate_config(plan_, config_);
}

MultiBeamDedisperser::MultiBeamDedisperser(dedisp::Plan plan,
                                           dedisp::KernelConfig config,
                                           std::string engine,
                                           engine::EngineOptions options)
    : plan_(std::move(plan)),
      config_(engine::encode_kernel_config(config)),
      engine_id_(std::move(engine)),
      engine_options_(std::move(options)) {
  config.validate(plan_);
  rebuild_engine();
  // A KernelConfig is the tiled engines' parameterization; another engine
  // keeps only the axes it declares (usually none) and runs its defaults.
  config_ = engine::restrict_to_axes(config_, engine_->config_axes(plan_));
}

void MultiBeamDedisperser::set_cpu_options(
    const dedisp::CpuKernelOptions& options) {
  engine_options_.cpu = options;
  rebuild_engine();
}

void MultiBeamDedisperser::set_engine_options(
    const engine::EngineOptions& options) {
  engine_options_ = options;
  rebuild_engine();
}

void MultiBeamDedisperser::rebuild_engine() {
  engine::EngineOptions options = engine_options_;
  options.cpu.threads = 1;  // beams are the parallel dimension
  engine_ = engine::make_engine(engine_id_, options);
}

std::vector<Array2D<float>> MultiBeamDedisperser::dedisperse(
    const std::vector<ConstView2D<float>>& beams, std::size_t threads) const {
  DDMC_REQUIRE(!beams.empty(), "need at least one beam");
  for (std::size_t b = 0; b < beams.size(); ++b) {
    DDMC_REQUIRE(beams[b].rows() == plan_.channels(),
                 "beam " + std::to_string(b) + " has " +
                     std::to_string(beams[b].rows()) + " rows, plan needs " +
                     std::to_string(plan_.channels()) + " channels");
    DDMC_REQUIRE(beams[b].cols() >= plan_.in_samples(),
                 "beam " + std::to_string(b) + " holds " +
                     std::to_string(beams[b].cols()) +
                     " samples, plan needs in_samples = " +
                     std::to_string(plan_.in_samples()));
  }
  std::vector<Array2D<float>> outputs;
  outputs.reserve(beams.size());
  for (std::size_t b = 0; b < beams.size(); ++b) {
    outputs.emplace_back(plan_.dms(), plan_.out_samples());
  }

  auto run_beam = [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      engine_->execute(plan_, config_, beams[b], outputs[b].view());
    }
  };

  if (threads == 1 || beams.size() == 1) {
    run_beam(0, beams.size());
    return outputs;
  }
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (threads == 0) {
    pool = &global_pool();
  } else {
    owned = std::make_unique<ThreadPool>(threads);
    pool = owned.get();
  }
  pool->parallel_for(0, beams.size(), 1, run_beam);
  return outputs;
}

std::vector<Array2D<float>> MultiBeamDedisperser::dedisperse_sharded(
    const std::vector<ConstView2D<float>>& beams, std::size_t workers) const {
  ShardedOptions options;
  options.workers = workers;
  options.engine = engine_id_;
  options.engine_options = engine_options_;
  const ShardedDedisperser sharded(plan_, config_, std::move(options));
  return sharded.dedisperse_batch(beams);
}

MultiBeamDedisperser::BeamCandidate MultiBeamDedisperser::search(
    const std::vector<ConstView2D<float>>& beams, std::size_t threads) const {
  const std::vector<Array2D<float>> outputs = dedisperse(beams, threads);
  BeamCandidate best;
  best.detection.best_snr = -1.0;
  for (std::size_t b = 0; b < outputs.size(); ++b) {
    const sky::DetectionResult res = sky::detect_best_dm(outputs[b].cview());
    if (res.best_snr > best.detection.best_snr) {
      best.beam = b;
      best.detection = res;
    }
  }
  return best;
}

}  // namespace ddmc::pipeline
