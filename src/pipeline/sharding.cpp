#include "pipeline/sharding.hpp"

#include <algorithm>
#include <exception>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

#include "common/expect.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace ddmc::pipeline {

// ---------------------------------------------------------------- planner --

DmShardPlanner::DmShardPlanner(const dedisp::Plan& plan,
                               const ocl::DeviceModel& cost_device)
    : out_samples_(plan.out_samples()), channels_(plan.channels()) {
  const sky::DelayTable& delays = plan.delays();
  max_delay_.resize(plan.dms());
  std::int64_t running = 0;
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t ch = 0; ch < channels_; ++ch) {
      running = std::max(running, delays.delay(dm, ch));
    }
    max_delay_[dm] = running;
  }

  // Anchor the per-trial term on the PerfEstimate of the whole instance:
  // (execution − fixed overhead) / trials. The staging term prices one
  // cold DRAM pass over a shard's unique input floats; launch overhead is
  // paid once per shard.
  const ocl::PerfEstimate est = ocl::estimate_cpu_baseline(cost_device, plan);
  seconds_per_trial_ = std::max(0.0, est.seconds - est.overhead_seconds) /
                       static_cast<double>(plan.dms());
  seconds_per_input_float_ =
      4.0 / (cost_device.peak_bandwidth_gbs * 1e9 * cost_device.bw_efficiency);
  shard_overhead_seconds_ = cost_device.launch_overhead_us * 1e-6;
}

DmShardPlanner::DmShardPlanner(const dedisp::Plan& plan)
    : DmShardPlanner(plan, ocl::intel_xeon_e5_2620()) {}

double DmShardPlanner::shard_seconds(std::size_t first_dm,
                                     std::size_t dms) const {
  DDMC_REQUIRE(dms > 0, "shard needs at least one trial");
  DDMC_REQUIRE(first_dm + dms <= max_delay_.size(),
               "shard exceeds the plan's DM grid");
  const double window = static_cast<double>(out_samples_) +
                        static_cast<double>(max_delay_[first_dm + dms - 1]);
  return shard_overhead_seconds_ +
         seconds_per_trial_ * static_cast<double>(dms) +
         seconds_per_input_float_ * static_cast<double>(channels_) * window;
}

ShardLayout DmShardPlanner::partition(std::size_t workers) const {
  const std::size_t n = max_delay_.size();
  const std::size_t target = std::min(std::max<std::size_t>(workers, 1), n);

  // Shards needed when no shard may exceed budget: greedy maximal packing.
  // Cost is monotone in both the trial count and the range end (running-max
  // delays), so packing as much as fits is optimal and per-shard extension
  // binary-searches the furthest affordable end.
  const auto shards_needed = [&](double budget) {
    std::size_t first = 0;
    std::size_t used = 0;
    while (first < n) {
      if (shard_seconds(first, 1) > budget) return n + 1;  // infeasible
      std::size_t lo = 1;
      std::size_t hi = n - first;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (shard_seconds(first, mid) <= budget) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      first += lo;
      ++used;
      if (used > n) break;  // defensive: cannot need more than n shards
    }
    return used;
  };

  // Binary search the min-max budget; `hi` stays feasible throughout, so
  // the final greedy pass is guaranteed to fit the worker count.
  double lo = shard_seconds(0, 1);
  for (std::size_t d = 1; d < n; ++d) {
    lo = std::max(lo, shard_seconds(d, 1));
  }
  double budget = lo;
  if (shards_needed(lo) > target) {
    double hi = shard_seconds(0, n);
    for (int iter = 0; iter < 48; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (shards_needed(mid) <= target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    budget = hi;
  }

  ShardLayout layout;
  std::size_t first = 0;
  while (first < n) {
    std::size_t lo_c = 1;
    std::size_t hi_c = n - first;
    while (lo_c < hi_c) {
      const std::size_t mid = lo_c + (hi_c - lo_c + 1) / 2;
      if (shard_seconds(first, mid) <= budget) {
        lo_c = mid;
      } else {
        hi_c = mid - 1;
      }
    }
    // Leave at least one trial for every remaining worker so the surplus
    // trials never pile onto a final over-budget shard; the last worker
    // takes whatever is left (≤ budget by the feasibility of `budget`).
    const std::size_t remaining_shards = target - layout.shards.size();
    std::size_t count = lo_c;
    if (remaining_shards == 1) {
      count = n - first;
    } else {
      count = std::max<std::size_t>(
          std::min(count, n - first - (remaining_shards - 1)), 1);
    }
    layout.shards.push_back(DmShard{first, count, 0.0});
    first += count;
  }

  for (DmShard& s : layout.shards) {
    s.modeled_seconds = shard_seconds(s.first_dm, s.dms);
    layout.modeled_max_seconds =
        std::max(layout.modeled_max_seconds, s.modeled_seconds);
    layout.modeled_total_seconds += s.modeled_seconds;
  }
  // The greedy pass reserves a trial for every remaining worker and hands
  // the last worker the remainder, so every worker owns exactly one shard.
  DDMC_ENSURE(layout.shards.size() == target,
              "partition must produce one shard per (clamped) worker");
  return layout;
}

// --------------------------------------------------------------- executor --

ShardedOptions::ShardedOptions() : cost_device(ocl::intel_xeon_e5_2620()) {}

ShardedDedisperser::ShardedDedisperser(dedisp::Plan plan,
                                       ShardedOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {
  // Shards × beams are the parallel dimension.
  options_.engine_options.cpu.threads = 1;
  engine_ = engine::make_engine(options_.engine, options_.engine_options);
  DDMC_REQUIRE(engine_->capabilities().supports_sharding,
               "engine '" + options_.engine +
                   "' cannot run DM-sharded execution: its capability "
                   "supports_sharding is false");
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  telemetry::TraceSpan span("shard.plan");
  const DmShardPlanner planner(plan_, options_.cost_device);
  layout_ = planner.partition(pool_->worker_count());
  span.arg("shards", layout_.shards.size()).arg("dms", plan_.dms());
  shard_plans_.reserve(layout_.shards.size());
  for (const DmShard& s : layout_.shards) {
    shard_plans_.push_back(plan_.dm_shard(s.first_dm, s.dms));
  }
}

ShardedDedisperser::ShardedDedisperser(dedisp::Plan plan,
                                       engine::EngineConfig config,
                                       ShardedOptions options)
    : ShardedDedisperser(std::move(plan), std::move(options)) {
  engine_->validate_config(plan_, config);
  // Only the engine knows how its axes bend onto a shard's trial count —
  // the tiled engines gcd-shrink their DM tile, the subband engine
  // re-divides its coarse step — so adaptation is the engine's call.
  shard_configs_.reserve(shard_plans_.size());
  for (const dedisp::Plan& shard : shard_plans_) {
    shard_configs_.push_back(engine_->adapt_config(shard, config));
  }
}

ShardedDedisperser::ShardedDedisperser(dedisp::Plan plan,
                                       dedisp::KernelConfig config,
                                       ShardedOptions options)
    // Plan and options passed by copy, not moved: the delegated arguments
    // are unsequenced and the restriction below reads both. A KernelConfig
    // is the tiled engines' parameterization — an engine that does not
    // declare those axes sheds them and runs its defaults.
    : ShardedDedisperser(
          plan,
          engine::restrict_to_axes(
              engine::encode_kernel_config(config),
              engine::make_engine(options.engine, options.engine_options)
                  ->config_axes(plan)),
          options) {}

ShardedDedisperser::ShardedDedisperser(dedisp::Plan plan,
                                       tuner::TuningCache& cache,
                                       ShardedOptions options,
                                       tuner::GuidedTuningOptions tuning)
    : ShardedDedisperser(std::move(plan), std::move(options)) {
  if (tuning.engines.empty()) tuning.engines = {options_.engine};
  tuning.engine_options = options_.engine_options;
  tuning.host.stage_rows = options_.engine_options.cpu.stage_rows;
  tuning.host.vectorize = options_.engine_options.cpu.vectorize;
  tuning.host.threads = options_.engine_options.cpu.threads;
  // Several engines race once on the *full* plan and every shard adopts
  // the winner: per-shard races could crown different engines on different
  // shards, breaking the single-engine bitwise assembly guarantee.
  if (tuning.engines.size() > 1) {
    const tuner::GuidedTuningOutcome race =
        tuner::tune_guided(plan_, cache, tuning);
    if (race.engine_id != options_.engine) {
      auto adopted =
          engine::make_engine(race.engine_id, options_.engine_options);
      DDMC_REQUIRE(adopted->capabilities().supports_sharding,
                   "tuned winner '" + race.engine_id +
                       "' cannot run DM-sharded execution: its capability "
                       "supports_sharding is false");
      options_.engine = race.engine_id;
      engine_ = std::move(adopted);
    }
    tuning.engines = {options_.engine};
  }
  shard_configs_.reserve(shard_plans_.size());
  tuning_outcomes_.reserve(shard_plans_.size());
  for (const dedisp::Plan& shard : shard_plans_) {
    tuner::GuidedTuningOutcome outcome =
        tuner::tune_guided(shard, cache, tuning);
    shard_configs_.push_back(engine_->adapt_config(shard, outcome.config));
    tuning_outcomes_.push_back(std::move(outcome));
  }
}

void ShardedDedisperser::run_batch(
    const std::vector<ConstView2D<float>>& beams,
    const std::vector<View2D<float>>& outs) const {
  const std::size_t shards = shard_plans_.size();
  const std::size_t jobs = beams.size() * shards;
  const resilience::SupervisionPolicy& policy = options_.supervision;

  // The report is mutated live in last_report_ under report_mutex_, which
  // is what makes last_report() safe to poll from a monitoring thread
  // while this call is in flight (a counter bump and a snapshot copy never
  // interleave mid-struct).
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    last_report_ = {};
    last_report_.jobs = jobs;
    last_report_.shards.assign(shards, {});
  }
  auto& registry = telemetry::MetricsRegistry::instance();
  const auto attempts_metric =
      registry.counter("ddmc.shard.attempts_total");
  const auto retries_metric = registry.counter("ddmc.shard.retries_total");
  const auto reassignments_metric =
      registry.counter("ddmc.shard.reassignments_total");
  const auto failures_metric = registry.counter("ddmc.shard.failures_total");
  std::vector<resilience::ShardFailure> failures;
  std::mutex state_mutex;  // guards failures from worker tasks

  /// Output row range a (beam, shard, sub-range) job owns. Rows are only
  /// ever written by the engine call that finally succeeds on exactly that
  /// DM range, which is what keeps every recovery path bitwise identical.
  const auto rows_of = [&](std::size_t beam, std::size_t first_dm,
                           std::size_t dms) {
    const View2D<float>& full = outs[beam];
    return View2D<float>(full.data() + first_dm * full.pitch(), dms,
                         full.cols(), full.pitch());
  };

  /// Execute one engine call with the policy's bounded retry. \p failpoint
  /// distinguishes first-assignment tasks from reacquired sub-shard tasks;
  /// \p shard keys both the failpoint context and the report counters.
  /// Returns the terminal failure, or nullopt on success.
  const auto attempt =
      [&](const char* failpoint, std::size_t beam, std::size_t shard,
          const dedisp::Plan& plan, const engine::EngineConfig& config,
          View2D<float> rows) -> std::optional<resilience::ShardFailure> {
    for (std::size_t attempts = 1;; ++attempts) {
      {
        std::lock_guard<std::mutex> lock(report_mutex_);
        ++last_report_.attempts;
        ++last_report_.shards[shard].attempts;
        if (attempts > 1) {
          ++last_report_.retries;
          ++last_report_.shards[shard].retries;
        }
      }
      attempts_metric->increment();
      if (attempts > 1) {
        retries_metric->increment();
        telemetry::Tracer::instance().record_instant(
            "shard.retry", telemetry::Tracer::now_ns());
      }
      try {
        telemetry::TraceSpan span(failpoint);
        span.arg("shard", shard).arg("beam", beam).arg("attempt", attempts);
        DDMC_FAILPOINT_CTX(failpoint, shard);
        const engine::EngineRun run =
            engine_->execute(plan, config, beams[beam], rows);
        {
          std::lock_guard<std::mutex> lock(report_mutex_);
          traffic_.add(run, plan);
        }
        return std::nullopt;
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        const resilience::ErrorClass kind = resilience::classify(error);
        if (kind == resilience::ErrorClass::kTransient &&
            attempts < policy.retry.max_attempts) {
          resilience::backoff_sleep(policy.retry, attempts);
          continue;  // a fresh attempt overwrites any partial rows
        }
        resilience::ShardFailure failure;
        failure.beam = beam;
        failure.shard = shard;
        failure.attempts = attempts;
        failure.kind = kind;
        failure.message = resilience::describe(error);
        return failure;
      }
    }
  };

  // Phase 1 — one batched submission: every (beam, shard) job enters the
  // pool queue now; parallel_for is the assembly barrier that completes
  // the matrices (each job fills its shard's row range, so assembly is
  // ordering-free). Jobs record failures instead of throwing, so one dead
  // worker never aborts the other shards' work mid-flight.
  pool_->parallel_for(0, jobs, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      const std::size_t beam = j / shards;
      const std::size_t shard = j % shards;
      const DmShard& range = layout_.shards[shard];
      const auto failure =
          attempt("shard.task", beam, shard, shard_plans_[shard],
                  shard_configs_[shard],
                  rows_of(beam, range.first_dm, range.dms));
      if (failure) {
        std::lock_guard<std::mutex> lock(state_mutex);
        failures.push_back(*failure);
      }
    }
  });

  // Phase 2 — reacquisition: a shard that exhausted its retries on
  // *transient* failures is a dead worker, not a poisoned request, so the
  // surviving workers take over its DM range. The range is re-partitioned
  // through the same DmShardPlanner cost model (on the shard's own plan —
  // a slice of a slice keeps the delay rows bit-for-bit) and the
  // sub-shards run with the same retry budget, one level deep.
  if (policy.reacquire && !failures.empty()) {
    std::vector<resilience::ShardFailure> remaining;
    for (const resilience::ShardFailure& failure : failures) {
      const std::size_t shard = failure.shard;
      if (failure.kind != resilience::ErrorClass::kTransient) {
        remaining.push_back(failure);  // fatal: reassignment cannot help
        continue;
      }
      const DmShard& range = layout_.shards[shard];
      const std::size_t survivors =
          std::max<std::size_t>(pool_->worker_count() - 1, 1);
      const std::size_t splits =
          policy.reacquire_splits > 0 ? policy.reacquire_splits : survivors;
      const DmShardPlanner sub_planner(shard_plans_[shard],
                                       options_.cost_device);
      const ShardLayout sub_layout = sub_planner.partition(splits);
      {
        std::lock_guard<std::mutex> lock(report_mutex_);
        ++last_report_.reassignments;
        ++last_report_.shards[shard].reassignments;
      }
      reassignments_metric->increment();
      std::optional<resilience::ShardFailure> sub_failure;
      pool_->parallel_for(
          0, sub_layout.shards.size(), 1,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
              const DmShard& sub = sub_layout.shards[s];
              const dedisp::Plan sub_plan =
                  shard_plans_[shard].dm_shard(sub.first_dm, sub.dms);
              const auto f = attempt(
                  "shard.reacquire.task", failure.beam, shard, sub_plan,
                  engine_->adapt_config(sub_plan, shard_configs_[shard]),
                  rows_of(failure.beam, range.first_dm + sub.first_dm,
                          sub.dms));
              if (f) {
                std::lock_guard<std::mutex> lock(state_mutex);
                if (!sub_failure) sub_failure = *f;
              }
            }
          });
      if (sub_failure) {
        sub_failure->message =
            "shard " + std::to_string(shard) + " reacquisition failed: " +
            sub_failure->message + " (original: " + failure.message + ")";
        remaining.push_back(*sub_failure);
      }
    }
    failures = std::move(remaining);
  }

  if (!failures.empty()) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    for (const resilience::ShardFailure& failure : failures) {
      last_report_.shards[failure.shard].failed = true;
    }
  }
  failures_metric->add(static_cast<double>(failures.size()));
  if (!failures.empty()) {
    throw resilience::ShardExecutionError(std::move(failures));
  }
}

resilience::ShardExecutionReport ShardedDedisperser::last_report() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return last_report_;
}

engine::SessionTraffic ShardedDedisperser::telemetry() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return traffic_;
}

void ShardedDedisperser::dedisperse(ConstView2D<float> input,
                                    View2D<float> out) const {
  DDMC_REQUIRE(out.rows() == plan_.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan_.out_samples(), "output too short");
  // Caller-side shape misuse fails synchronously; only *worker* failures
  // enter the supervision machinery (retry/reacquire/aggregate).
  DDMC_REQUIRE(input.rows() == plan_.channels(), "input rows != plan channels");
  DDMC_REQUIRE(input.cols() >= plan_.in_samples(),
               "input holds too few samples for the plan");
  run_batch({input}, {out});
}

Array2D<float> ShardedDedisperser::dedisperse(ConstView2D<float> input) const {
  Array2D<float> out(plan_.dms(), plan_.out_samples());
  dedisperse(input, out.view());
  return out;
}

std::vector<Array2D<float>> ShardedDedisperser::dedisperse_batch(
    const std::vector<ConstView2D<float>>& beams) const {
  DDMC_REQUIRE(!beams.empty(), "need at least one beam");
  for (std::size_t b = 0; b < beams.size(); ++b) {
    DDMC_REQUIRE(beams[b].rows() == plan_.channels(),
                 "beam " + std::to_string(b) + " rows != plan channels");
    DDMC_REQUIRE(beams[b].cols() >= plan_.in_samples(),
                 "beam " + std::to_string(b) +
                     " holds too few samples for the plan");
  }
  std::vector<Array2D<float>> outputs;
  std::vector<View2D<float>> views;
  outputs.reserve(beams.size());
  views.reserve(beams.size());
  for (std::size_t b = 0; b < beams.size(); ++b) {
    outputs.emplace_back(plan_.dms(), plan_.out_samples());
    views.push_back(outputs.back().view());
  }
  run_batch(beams, views);
  return outputs;
}

}  // namespace ddmc::pipeline
