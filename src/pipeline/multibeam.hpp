#pragma once
/// \file multibeam.hpp
/// \brief Multi-beam dedispersion (§II: "modern radio telescopes can point
/// simultaneously in different directions by forming different beams …
/// all trial DMs and beams can be processed independently").
///
/// One plan and one tuned configuration are shared by every beam (the
/// beams see the same band and DM grid); beams are dispatched in parallel
/// over the worker pool, each running the tiled kernel inline on its
/// worker — the same decomposition a production survey backend uses.

#include <vector>

#include "common/array2d.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "sky/detection.hpp"

namespace ddmc::pipeline {

class MultiBeamDedisperser {
 public:
  /// \p config must validate against \p plan.
  MultiBeamDedisperser(dedisp::Plan plan, dedisp::KernelConfig config);

  const dedisp::Plan& plan() const { return plan_; }
  const dedisp::KernelConfig& config() const { return config_; }

  /// Engine options shared by every beam. The per-beam thread count is
  /// always forced to 1 — beams are the parallel dimension — but staging
  /// and SIMD-vs-scalar selection pass through to the tiled kernel.
  void set_cpu_options(const dedisp::CpuKernelOptions& options) {
    cpu_options_ = options;
  }
  const dedisp::CpuKernelOptions& cpu_options() const { return cpu_options_; }

  /// Dedisperse every beam (each channels × ≥in_samples) into its own
  /// trial matrix. \p threads = 0 uses the machine-sized global pool.
  std::vector<Array2D<float>> dedisperse(
      const std::vector<ConstView2D<float>>& beams,
      std::size_t threads = 0) const;

  /// Same decomposition with the DM grid additionally sharded: all
  /// beams × shards jobs are batched onto one pool of \p workers threads
  /// (0 = machine concurrency), so a few beams still saturate many
  /// workers. Bitwise identical to dedisperse().
  std::vector<Array2D<float>> dedisperse_sharded(
      const std::vector<ConstView2D<float>>& beams,
      std::size_t workers = 0) const;

  /// Candidate found by scanning every beam's dedispersed matrix.
  struct BeamCandidate {
    std::size_t beam = 0;
    sky::DetectionResult detection;
  };

  /// Dedisperse and return the strongest candidate across all beams.
  /// Equal peak S/N ties break deterministically to the lowest beam index
  /// (candidates are compared with strict >, beams scanned in order).
  BeamCandidate search(const std::vector<ConstView2D<float>>& beams,
                       std::size_t threads = 0) const;

 private:
  dedisp::Plan plan_;
  dedisp::KernelConfig config_;
  dedisp::CpuKernelOptions cpu_options_;
};

}  // namespace ddmc::pipeline
