#pragma once
/// \file multibeam.hpp
/// \brief Multi-beam dedispersion (§II: "modern radio telescopes can point
/// simultaneously in different directions by forming different beams …
/// all trial DMs and beams can be processed independently").
///
/// One plan and one tuned configuration are shared by every beam (the
/// beams see the same band and DM grid); beams are dispatched in parallel
/// over the worker pool, each running the selected engine inline on its
/// worker — the same decomposition a production survey backend uses. The
/// engine is selected by registry id (engine/registry.hpp) and never
/// branched on: any engine runs beam-parallel, and dedisperse_sharded
/// additionally requires the supports_sharding capability.

#include <memory>
#include <string>
#include <vector>

#include "common/array2d.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine.hpp"
#include "sky/detection.hpp"

namespace ddmc::pipeline {

class MultiBeamDedisperser {
 public:
  /// \p config must validate against \p plan on the selected engine;
  /// \p engine is a registry id, created with \p options (subband split,
  /// simulator device, cpu knobs).
  MultiBeamDedisperser(dedisp::Plan plan, engine::EngineConfig config,
                       std::string engine = engine::kDefaultEngineId,
                       engine::EngineOptions options = {});

  /// Kernel-shape convenience: \p config re-encoded as the kernel axes.
  MultiBeamDedisperser(dedisp::Plan plan, dedisp::KernelConfig config,
                       std::string engine = engine::kDefaultEngineId,
                       engine::EngineOptions options = {});

  const dedisp::Plan& plan() const { return plan_; }
  const engine::EngineConfig& config() const { return config_; }
  const std::string& engine_id() const { return engine_id_; }
  const engine::DedispEngine& engine() const { return *engine_; }

  /// Host-execution knobs shared by every beam. The per-beam thread count
  /// is always forced to 1 — beams are the parallel dimension — but
  /// staging and SIMD-vs-scalar selection pass through to the engine
  /// factory.
  void set_cpu_options(const dedisp::CpuKernelOptions& options);
  const dedisp::CpuKernelOptions& cpu_options() const {
    return engine_options_.cpu;
  }

  /// Replace the whole factory-options struct (cpu knobs included).
  void set_engine_options(const engine::EngineOptions& options);
  const engine::EngineOptions& engine_options() const {
    return engine_options_;
  }

  /// Dedisperse every beam (each channels × ≥in_samples) into its own
  /// trial matrix. \p threads = 0 uses the machine-sized global pool.
  std::vector<Array2D<float>> dedisperse(
      const std::vector<ConstView2D<float>>& beams,
      std::size_t threads = 0) const;

  /// Same decomposition with the DM grid additionally sharded: all
  /// beams × shards jobs are batched onto one pool of \p workers threads
  /// (0 = machine concurrency), so a few beams still saturate many
  /// workers. Bitwise identical to dedisperse(); requires the engine's
  /// supports_sharding capability.
  std::vector<Array2D<float>> dedisperse_sharded(
      const std::vector<ConstView2D<float>>& beams,
      std::size_t workers = 0) const;

  /// Candidate found by scanning every beam's dedispersed matrix.
  struct BeamCandidate {
    std::size_t beam = 0;
    sky::DetectionResult detection;
  };

  /// Dedisperse and return the strongest candidate across all beams.
  /// Equal peak S/N ties break deterministically to the lowest beam index
  /// (candidates are compared with strict >, beams scanned in order).
  BeamCandidate search(const std::vector<ConstView2D<float>>& beams,
                       std::size_t threads = 0) const;

 private:
  /// Recreate the per-beam engine (thread count forced to 1).
  void rebuild_engine();

  dedisp::Plan plan_;
  engine::EngineConfig config_;
  std::string engine_id_;
  engine::EngineOptions engine_options_;
  std::shared_ptr<const engine::DedispEngine> engine_;
};

}  // namespace ddmc::pipeline
