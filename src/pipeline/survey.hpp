#pragma once
/// \file survey.hpp
/// \brief Real-time survey sizing (§V-D).
///
/// "Apertif will need to dedisperse in real-time 2,000 DMs, and do this for
/// 450 different beams. Using our best performing accelerator, the AMD
/// HD7970, it is possible to dedisperse 2,000 DMs in 0.106 seconds;
/// combining 9 beams per GPU … dedispersion for Apertif could be implemented
/// today with just 50 GPUs, instead of the 1,800 CPUs that would be
/// necessary otherwise."

#include <cstddef>

#include "ocl/device.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"

namespace ddmc::pipeline {

struct SurveySizing {
  double seconds_per_beam = 0.0;   ///< tuned time to dedisperse 1 s, 1 beam
  double tuned_gflops = 0.0;       ///< tuned kernel throughput
  /// Fractional real-time compute pressure, 1 / seconds_per_beam: 9.4 means
  /// one device sustains 9 whole beams; 0.25 means four devices share one
  /// beam (e.g. each owning a DM shard, pipeline/sharding.hpp).
  double beams_per_device_realtime = 0.0;
  std::size_t beams_per_device_compute = 0;  ///< floor of the above
  std::size_t beams_per_device_memory = 0;   ///< device-memory limit
  std::size_t beams_per_device = 0;          ///< min of the two
  std::size_t devices_needed = 0;  ///< for all beams, real-time
  bool feasible = false;           ///< a real-time deployment exists
};

/// Tune \p device on (obs, dms) and derive how many devices a survey with
/// \p beams beams needs to stay real-time. Devices faster than one beam per
/// second pack floor(beams_per_device) beams each; slower devices *share*
/// beams — devices_needed = ceil(seconds_per_beam × beams), the same
/// semantics cpus_needed() always had — instead of declaring the survey
/// infeasible. Only a beam that cannot fit device memory is infeasible.
SurveySizing size_survey(const ocl::DeviceModel& device,
                         const sky::Observation& obs, std::size_t dms,
                         std::size_t beams);

/// CPUs needed for the same survey with the §V-D baseline implementation.
std::size_t cpus_needed(const ocl::DeviceModel& cpu,
                        const sky::Observation& obs, std::size_t dms,
                        std::size_t beams);

}  // namespace ddmc::pipeline
