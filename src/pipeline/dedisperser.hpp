#pragma once
/// \file dedisperser.hpp
/// \brief High-level public API: plan, tune, execute.
///
/// The entry point a downstream pipeline uses:
///
/// \code{.cpp}
///   using namespace ddmc;
///   pipeline::Dedisperser dd(sky::apertif(), /*dms=*/256);
///   dd.tune_for(ocl::amd_hd7970());               // optional
///   Array2D<float> out = dd.dedisperse(input.cview());
/// \endcode
///
/// Backends:
///  - kReference: the sequential Algorithm 1 (ground truth).
///  - kCpuTiled: the tiled host kernel, honoring the tuned KernelConfig.
///  - kCpuBaseline: the §V-D OpenMP/AVX-style comparator.
///  - kSimulated: the MiniCL functional simulator with a device model
///    (bit-identical output, plus measured traffic counters).
///
/// For samples that *arrive* instead of sitting in memory, use the
/// streaming sessions in stream/streaming_dedisperser.hpp: they run the
/// same kCpuTiled kernel chunk-by-chunk (bitwise-identical output) with
/// bounded-ring ingest and latency accounting.

#include <memory>
#include <optional>

#include "common/array2d.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"
#include "ocl/sim_engine.hpp"
#include "tuner/tuner.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::pipeline {

enum class Backend { kReference, kCpuTiled, kCpuBaseline, kSimulated };

/// Execution mode, orthogonal to the Backend: kSingle runs one engine over
/// the whole plan; kDmSharded partitions the DM grid across a worker pool
/// (pipeline/sharding.hpp) with bitwise-identical output. Only the
/// kCpuTiled backend supports sharded execution — the other backends are
/// correctness/model references with no worker decomposition.
enum class Execution { kSingle, kDmSharded };

class ShardedDedisperser;  // pipeline/sharding.hpp

class Dedisperser {
 public:
  /// Plan a full-seconds instance (the paper's shape).
  Dedisperser(const sky::Observation& obs, std::size_t dms,
              Backend backend = Backend::kCpuTiled, std::size_t seconds = 1);

  /// Plan with an explicit output length (tests, small demos).
  static Dedisperser with_output_samples(const sky::Observation& obs,
                                         std::size_t dms,
                                         std::size_t out_samples,
                                         Backend backend = Backend::kCpuTiled);

  const dedisp::Plan& plan() const { return plan_; }
  Backend backend() const { return backend_; }

  /// Auto-tune the kernel configuration for \p device using the performance
  /// model; the chosen config drives kCpuTiled and kSimulated execution.
  /// Returns the full tuning result for inspection.
  tuner::TuningResult tune_for(const ocl::DeviceModel& device);

  /// Tune-on-first-use for the kCpuTiled backend (throws
  /// ddmc::invalid_argument on any other backend — the measured host
  /// optimum is meaningless to the device model): answer from \p cache
  /// when it holds this (host, plan) pair or a transferable neighbor —
  /// zero measurements — and otherwise run the guided search on the real
  /// kernels and store the winner. The engine knobs of \p options.host are
  /// overridden by this Dedisperser's cpu_options(), so the signature
  /// matches what dedisperse() will actually run.
  tuner::GuidedTuningOutcome tune_cached(
      tuner::TuningCache& cache, tuner::GuidedTuningOptions options = {});

  /// Set an explicit configuration (validated against the plan).
  void set_config(const dedisp::KernelConfig& config);
  const dedisp::KernelConfig& config() const { return config_; }

  /// Execution options of the kCpuTiled backend (engine selection, staging,
  /// threads) — the knobs of the SIMD host engine.
  void set_cpu_options(const dedisp::CpuKernelOptions& options) {
    cpu_options_ = options;
    sharded_.reset();
  }
  const dedisp::CpuKernelOptions& cpu_options() const { return cpu_options_; }

  /// Device used by the kSimulated backend (defaults to the HD7970 model).
  void set_device(const ocl::DeviceModel& device);

  /// Select the execution mode of dedisperse(). kDmSharded splits the DM
  /// grid into cost-balanced shards executed on \p workers pool threads
  /// (0 = machine concurrency); throws ddmc::invalid_argument on any
  /// backend other than kCpuTiled.
  void set_execution(Execution execution, std::size_t workers = 0);
  Execution execution() const { return execution_; }
  std::size_t shard_workers() const { return shard_workers_; }

  /// Execute the selected backend. Input must be channels × ≥in_samples.
  Array2D<float> dedisperse(ConstView2D<float> input);

  /// Traffic counters of the last kSimulated run (empty otherwise).
  const std::optional<ocl::MemCounters>& last_counters() const {
    return counters_;
  }

 private:
  Dedisperser(dedisp::Plan plan, Backend backend);

  dedisp::Plan plan_;
  Backend backend_;
  dedisp::KernelConfig config_{1, 1, 1, 1};
  dedisp::CpuKernelOptions cpu_options_;
  Execution execution_ = Execution::kSingle;
  std::size_t shard_workers_ = 0;
  /// Executor reused across dedisperse() calls in kDmSharded mode (built
  /// lazily: worker pool + planner + shard plans are per-(plan, config,
  /// workers), not per-call); invalidated by every setter that feeds it.
  std::shared_ptr<const ShardedDedisperser> sharded_;
  std::optional<ocl::DeviceModel> device_;
  std::optional<ocl::MemCounters> counters_;
};

}  // namespace ddmc::pipeline
