#pragma once
/// \file dedisperser.hpp
/// \brief High-level public API: plan, tune, execute.
///
/// The entry point a downstream pipeline uses:
///
/// \code{.cpp}
///   using namespace ddmc;
///   pipeline::Dedisperser dd(sky::apertif(), /*dms=*/256);   // cpu_tiled
///   dd.tune_for(ocl::amd_hd7970());               // optional
///   Array2D<float> out = dd.dedisperse(input.cview());
/// \endcode
///
/// Execution is delegated to a DedispEngine selected by registry id
/// (engine/registry.hpp): `cpu_tiled` (the tuned SIMD host kernel, the
/// default), `cpu_baseline`, `reference`, `subband`, `ocl_sim`, or any
/// engine registered by downstream code. The Dedisperser never branches on
/// the engine's identity — every mode decision (sharding, tuning) gates on
/// the engine's declared capabilities.
///
/// For samples that *arrive* instead of sitting in memory, use the
/// streaming sessions in stream/streaming_dedisperser.hpp: they run any
/// streaming-capable engine chunk-by-chunk with bounded-ring ingest and
/// latency accounting.

#include <memory>
#include <optional>
#include <string>

#include "common/array2d.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine.hpp"
#include "ocl/device.hpp"
#include "ocl/sim_engine.hpp"
#include "tuner/tuner.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::pipeline {

/// Execution mode, orthogonal to the engine: kSingle runs one engine call
/// over the whole plan; kDmSharded partitions the DM grid across a worker
/// pool (pipeline/sharding.hpp) with bitwise-identical output. Requires an
/// engine whose capabilities report supports_sharding.
enum class Execution { kSingle, kDmSharded };

class ShardedDedisperser;  // pipeline/sharding.hpp

class Dedisperser {
 public:
  /// Plan a full-seconds instance (the paper's shape) on engine \p engine.
  Dedisperser(const sky::Observation& obs, std::size_t dms,
              std::string engine = engine::kDefaultEngineId,
              std::size_t seconds = 1);

  /// Plan with an explicit output length (tests, small demos).
  static Dedisperser with_output_samples(
      const sky::Observation& obs, std::size_t dms, std::size_t out_samples,
      std::string engine = engine::kDefaultEngineId);

  const dedisp::Plan& plan() const { return plan_; }
  const std::string& engine_id() const { return engine_id_; }
  const engine::DedispEngine& engine() const { return *engine_; }

  /// Auto-tune the kernel configuration for \p device using the performance
  /// model; the chosen config drives tunable engines and the ocl_sim
  /// simulator. Returns the full tuning result for inspection.
  tuner::TuningResult tune_for(const ocl::DeviceModel& device);

  /// Tune-on-first-use by *measurement*: answer from \p cache when it
  /// holds a matching (engine, host, plan) tuple or a transferable
  /// neighbor — zero measurements — and otherwise run the guided search
  /// over the engine's declared config space and store the winner. When
  /// \p options.engines is empty (the default) only this Dedisperser's
  /// engine is tuned; listing several ids races them and this Dedisperser
  /// *adopts the winner* — subsequent dedisperse() calls run the winning
  /// engine under the winning config. Non-tunable engines race as
  /// single-candidate entries. Throws ddmc::invalid_argument when the
  /// winner cannot run the currently selected execution mode (a
  /// non-sharding engine under kDmSharded). The engine knobs of
  /// \p options.host are overridden by this Dedisperser's cpu_options(),
  /// so the signature matches what dedisperse() will actually run.
  tuner::GuidedTuningOutcome tune_cached(
      tuner::TuningCache& cache, tuner::GuidedTuningOptions options = {});

  /// Set an explicit kernel-shape configuration (validated against the
  /// plan; stored as its kernel-axes encoding).
  void set_config(const dedisp::KernelConfig& config);
  /// Set an explicit engine-native configuration (validated by the engine:
  /// unknown axes and plan-incompatible values throw ddmc::config_error).
  void set_config(const engine::EngineConfig& config);
  const engine::EngineConfig& config() const { return config_; }

  /// Host-execution knobs (engine selection, staging, threads) passed to
  /// the engine factory — the knobs of the cpu engines.
  void set_cpu_options(const dedisp::CpuKernelOptions& options);
  const dedisp::CpuKernelOptions& cpu_options() const {
    return engine_options_.cpu;
  }

  /// Device used by the ocl_sim engine (defaults to the HD7970 model).
  void set_device(const ocl::DeviceModel& device);

  /// Two-stage split of the subband engine (adapted to the plan by gcd).
  void set_subband_config(const dedisp::SubbandConfig& config);

  /// Select the execution mode of dedisperse(). kDmSharded splits the DM
  /// grid into cost-balanced shards executed on \p workers pool threads
  /// (0 = machine concurrency); throws ddmc::invalid_argument when the
  /// engine's capabilities report !supports_sharding.
  void set_execution(Execution execution, std::size_t workers = 0);
  Execution execution() const { return execution_; }
  std::size_t shard_workers() const { return shard_workers_; }

  /// Execute the selected engine. Input must be channels × ≥in_samples.
  Array2D<float> dedisperse(ConstView2D<float> input);

  /// Traffic counters of the last run on a counter-reporting engine
  /// (ocl_sim; empty otherwise).
  const std::optional<ocl::MemCounters>& last_counters() const {
    return counters_;
  }

  /// Whole-lifetime traffic aggregate across every dedisperse() call on
  /// this instance: runs, busy seconds, FLOP and bytes (exact counters
  /// where the engine reports them), including every shard job in
  /// kDmSharded mode.
  engine::SessionTraffic telemetry() const;

 private:
  Dedisperser(dedisp::Plan plan, std::string engine);
  /// Recreate the engine from engine_options_ (engines are immutable).
  void rebuild_engine();
  /// Fold the live sharded executor's traffic into traffic_ and drop it —
  /// called wherever sharded_ is invalidated so telemetry() never loses
  /// the runs a discarded executor did.
  void absorb_sharded();

  dedisp::Plan plan_;
  std::string engine_id_;
  engine::EngineOptions engine_options_;
  std::shared_ptr<const engine::DedispEngine> engine_;
  /// Engine-native config; empty = the engine's defaults.
  engine::EngineConfig config_;
  Execution execution_ = Execution::kSingle;
  std::size_t shard_workers_ = 0;
  /// Executor reused across dedisperse() calls in kDmSharded mode (built
  /// lazily: worker pool + planner + shard plans are per-(plan, config,
  /// workers), not per-call); invalidated by every setter that feeds it.
  std::shared_ptr<const ShardedDedisperser> sharded_;
  std::optional<ocl::MemCounters> counters_;
  /// Single-path runs aggregate here; sharded runs aggregate inside the
  /// executor (telemetry() merges both, surviving sharded_ invalidation).
  engine::SessionTraffic traffic_;
};

}  // namespace ddmc::pipeline
