#include "pipeline/dedisperser.hpp"

#include "common/expect.hpp"
#include "dedisp/reference.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/sim_dedisp.hpp"
#include "pipeline/sharding.hpp"

namespace ddmc::pipeline {

Dedisperser::Dedisperser(const sky::Observation& obs, std::size_t dms,
                         Backend backend, std::size_t seconds)
    : Dedisperser(dedisp::Plan(obs, dms, seconds), backend) {}

Dedisperser Dedisperser::with_output_samples(const sky::Observation& obs,
                                             std::size_t dms,
                                             std::size_t out_samples,
                                             Backend backend) {
  return Dedisperser(
      dedisp::Plan::with_output_samples(obs, dms, out_samples), backend);
}

Dedisperser::Dedisperser(dedisp::Plan plan, Backend backend)
    : plan_(std::move(plan)), backend_(backend) {}

tuner::TuningResult Dedisperser::tune_for(const ocl::DeviceModel& device) {
  ocl::PlanAnalysis analysis(plan_);
  tuner::TuningResult result = tuner::tune(device, analysis);
  config_ = result.best.config;
  sharded_.reset();
  device_ = device;
  return result;
}

tuner::GuidedTuningOutcome Dedisperser::tune_cached(
    tuner::TuningCache& cache, tuner::GuidedTuningOptions options) {
  DDMC_REQUIRE(backend_ == Backend::kCpuTiled,
               "tune_cached measures the host kernels and tunes the "
               "kCpuTiled backend; this Dedisperser runs another backend "
               "(use tune_for for the device model)");
  options.host.stage_rows = cpu_options_.stage_rows;
  options.host.vectorize = cpu_options_.vectorize;
  options.host.threads = cpu_options_.threads;
  tuner::GuidedTuningOutcome outcome = tuner::tune_guided(plan_, cache, options);
  config_ = outcome.config;
  sharded_.reset();
  return outcome;
}

void Dedisperser::set_config(const dedisp::KernelConfig& config) {
  config.validate(plan_);
  config_ = config;
  sharded_.reset();
}

void Dedisperser::set_device(const ocl::DeviceModel& device) {
  device_ = device;
}

void Dedisperser::set_execution(Execution execution, std::size_t workers) {
  DDMC_REQUIRE(execution == Execution::kSingle ||
                   backend_ == Backend::kCpuTiled,
               "sharded execution runs the tiled host engine; this "
               "Dedisperser uses another backend");
  execution_ = execution;
  shard_workers_ = workers;
  sharded_.reset();
}

Array2D<float> Dedisperser::dedisperse(ConstView2D<float> input) {
  Array2D<float> out(plan_.dms(), plan_.out_samples());
  counters_.reset();
  switch (backend_) {
    case Backend::kReference:
      dedisp::dedisperse_reference(plan_, input, out.view());
      break;
    case Backend::kCpuTiled:
      if (execution_ == Execution::kDmSharded) {
        if (!sharded_) {
          sharded_ = std::make_shared<const ShardedDedisperser>(
              plan_, config_, sharded_options(shard_workers_, cpu_options_));
        }
        sharded_->dedisperse(input, out.view());
      } else {
        dedisp::dedisperse_cpu(plan_, config_, input, out.view(),
                               cpu_options_);
      }
      break;
    case Backend::kCpuBaseline:
      dedisp::dedisperse_cpu_baseline(plan_, input, out.view());
      break;
    case Backend::kSimulated: {
      const ocl::DeviceModel device =
          device_.has_value() ? *device_ : ocl::amd_hd7970();
      const ocl::SimRunResult run =
          ocl::simulate_dedisp(device, plan_, config_, input, out.view());
      counters_ = run.counters;
      break;
    }
  }
  return out;
}

}  // namespace ddmc::pipeline
