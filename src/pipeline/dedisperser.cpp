#include "pipeline/dedisperser.hpp"

#include "common/expect.hpp"
#include "engine/registry.hpp"
#include "pipeline/sharding.hpp"

namespace ddmc::pipeline {

Dedisperser::Dedisperser(const sky::Observation& obs, std::size_t dms,
                         std::string engine, std::size_t seconds)
    : Dedisperser(dedisp::Plan(obs, dms, seconds), std::move(engine)) {}

Dedisperser Dedisperser::with_output_samples(const sky::Observation& obs,
                                             std::size_t dms,
                                             std::size_t out_samples,
                                             std::string engine) {
  return Dedisperser(dedisp::Plan::with_output_samples(obs, dms, out_samples),
                     std::move(engine));
}

Dedisperser::Dedisperser(dedisp::Plan plan, std::string engine)
    : plan_(std::move(plan)), engine_id_(std::move(engine)) {
  rebuild_engine();
}

void Dedisperser::rebuild_engine() {
  engine_ = engine::make_engine(engine_id_, engine_options_);
  absorb_sharded();
}

void Dedisperser::absorb_sharded() {
  if (sharded_) {
    traffic_.merge(sharded_->telemetry());
    sharded_.reset();
  }
}

engine::SessionTraffic Dedisperser::telemetry() const {
  engine::SessionTraffic total = traffic_;
  if (sharded_) total.merge(sharded_->telemetry());
  return total;
}

tuner::TuningResult Dedisperser::tune_for(const ocl::DeviceModel& device) {
  ocl::PlanAnalysis analysis(plan_);
  tuner::TuningResult result = tuner::tune(device, analysis);
  // The model tuner parameterizes the tiled kernel; an engine that does
  // not declare those axes keeps its defaults.
  config_ = engine::restrict_to_axes(
      engine::encode_kernel_config(result.best.config),
      engine_->config_axes(plan_));
  absorb_sharded();
  set_device(device);
  return result;
}

tuner::GuidedTuningOutcome Dedisperser::tune_cached(
    tuner::TuningCache& cache, tuner::GuidedTuningOptions options) {
  if (options.engines.empty()) options.engines = {engine_id_};
  options.engine_options = engine_options_;
  options.host.stage_rows = engine_options_.cpu.stage_rows;
  options.host.vectorize = engine_options_.cpu.vectorize;
  options.host.threads = engine_options_.cpu.threads;
  tuner::GuidedTuningOutcome outcome = tuner::tune_guided(plan_, cache, options);
  // Adopt the winner: the race's engine choice is part of the tuning
  // decision, so subsequent dedisperse() calls run it. The adoption must
  // honor the execution mode already selected — a winner that cannot
  // shard fails fast here, not inside a worker pool later.
  if (outcome.engine_id != engine_id_) {
    auto adopted = engine::make_engine(outcome.engine_id, engine_options_);
    DDMC_REQUIRE(execution_ == Execution::kSingle ||
                     adopted->capabilities().supports_sharding,
                 "tuned winner '" + outcome.engine_id +
                     "' cannot run the selected DM-sharded execution: its "
                     "capability supports_sharding is false");
    engine_id_ = outcome.engine_id;
    engine_ = std::move(adopted);
  }
  config_ = outcome.config;
  absorb_sharded();
  return outcome;
}

void Dedisperser::set_config(const dedisp::KernelConfig& config) {
  config.validate(plan_);
  // Legacy kernel-shaped configs degrade to the axes the engine declares.
  config_ = engine::restrict_to_axes(engine::encode_kernel_config(config),
                                     engine_->config_axes(plan_));
  absorb_sharded();
}

void Dedisperser::set_config(const engine::EngineConfig& config) {
  engine_->validate_config(plan_, config);
  config_ = config;
  absorb_sharded();
}

void Dedisperser::set_cpu_options(const dedisp::CpuKernelOptions& options) {
  engine_options_.cpu = options;
  rebuild_engine();
}

void Dedisperser::set_device(const ocl::DeviceModel& device) {
  engine_options_.device = device;
  rebuild_engine();
}

void Dedisperser::set_subband_config(const dedisp::SubbandConfig& config) {
  engine_options_.subband = config;
  rebuild_engine();
}

void Dedisperser::set_execution(Execution execution, std::size_t workers) {
  DDMC_REQUIRE(execution == Execution::kSingle ||
                   engine_->capabilities().supports_sharding,
               "engine '" + engine_id_ +
                   "' cannot run DM-sharded execution: its capability "
                   "supports_sharding is false");
  execution_ = execution;
  shard_workers_ = workers;
  absorb_sharded();
}

Array2D<float> Dedisperser::dedisperse(ConstView2D<float> input) {
  Array2D<float> out(plan_.dms(), plan_.out_samples());
  counters_.reset();
  if (execution_ == Execution::kDmSharded) {
    if (!sharded_) {
      ShardedOptions options;
      options.workers = shard_workers_;
      options.engine = engine_id_;
      options.engine_options = engine_options_;
      sharded_ = std::make_shared<const ShardedDedisperser>(
          plan_, config_, std::move(options));
    }
    sharded_->dedisperse(input, out.view());
  } else {
    engine::EngineRun run = engine_->execute(plan_, config_, input, out.view());
    counters_ = run.counters;
    traffic_.add(run, plan_);
  }
  return out;
}

}  // namespace ddmc::pipeline
