#include "pipeline/survey.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "dedisp/plan.hpp"
#include "tuner/tuner.hpp"

namespace ddmc::pipeline {

SurveySizing size_survey(const ocl::DeviceModel& device,
                         const sky::Observation& obs, std::size_t dms,
                         std::size_t beams) {
  DDMC_REQUIRE(beams > 0, "need at least one beam");
  const dedisp::Plan plan(obs, dms);
  ocl::PlanAnalysis analysis(plan);
  const tuner::TuningResult tuned = tuner::tune(device, analysis);

  SurveySizing s;
  s.seconds_per_beam = tuned.best.perf.seconds;
  s.tuned_gflops = tuned.best.perf.gflops;
  if (s.seconds_per_beam > 0.0) {
    s.beams_per_device_realtime = 1.0 / s.seconds_per_beam;
    s.beams_per_device_compute =
        static_cast<std::size_t>(std::floor(s.beams_per_device_realtime));
  }
  const double bytes_per_beam =
      plan.input_bytes() + plan.output_bytes() +
      4.0 * static_cast<double>(dms) * static_cast<double>(plan.channels());
  s.beams_per_device_memory = static_cast<std::size_t>(
      std::floor(0.9 * device.memory_bytes() / bytes_per_beam));
  s.beams_per_device =
      std::min(s.beams_per_device_compute, s.beams_per_device_memory);
  // A device slower than one beam-second per second is not infeasible —
  // several devices share one beam (cpus_needed's semantics; in practice
  // each owns a DM shard, pipeline/sharding.hpp). Only a beam whose data
  // cannot fit device memory has no deployment at all.
  s.feasible = s.beams_per_device_memory > 0;
  if (!s.feasible) return s;
  if (s.beams_per_device >= 1) {
    s.devices_needed = ceil_div(beams, s.beams_per_device);
  } else {
    s.devices_needed = static_cast<std::size_t>(
        std::ceil(s.seconds_per_beam * static_cast<double>(beams)));
  }
  return s;
}

std::size_t cpus_needed(const ocl::DeviceModel& cpu,
                        const sky::Observation& obs, std::size_t dms,
                        std::size_t beams) {
  const dedisp::Plan plan(obs, dms);
  const ocl::PerfEstimate perf = ocl::estimate_cpu_baseline(cpu, plan);
  // A CPU handles floor(1 / seconds) beams in real-time; when one beam
  // itself takes more than a second, several CPUs share a beam.
  if (perf.seconds <= 1.0) {
    const auto beams_per_cpu =
        static_cast<std::size_t>(std::floor(1.0 / perf.seconds));
    return ceil_div(beams, beams_per_cpu);
  }
  return static_cast<std::size_t>(
      std::ceil(perf.seconds * static_cast<double>(beams)));
}

}  // namespace ddmc::pipeline
