#include "codegen/opencl_codegen.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace ddmc::codegen {

namespace {

/// Accumulator identifier for output element (j = DM index, i = time index)
/// of a work-item — one named register per element, as in the paper.
std::string acc_name(std::size_t j, std::size_t i) {
  return "acc_" + std::to_string(j) + "_" + std::to_string(i);
}

void emit_header(std::ostringstream& os, const dedisp::Plan& plan,
                 const dedisp::KernelConfig& cfg, bool staged,
                 std::size_t span) {
  os << "// Auto-generated incoherent dedispersion kernel\n"
     << "// configuration: " << cfg.to_string() << "\n"
     << "// variant: " << (staged ? "local-memory staging" : "direct reads")
     << "\n\n"
     << "#define WI_TIME " << cfg.wi_time << "u\n"
     << "#define WI_DM " << cfg.wi_dm << "u\n"
     << "#define ELEM_TIME " << cfg.elem_time << "u\n"
     << "#define ELEM_DM " << cfg.elem_dm << "u\n"
     << "#define TILE_TIME " << cfg.tile_time() << "u\n"
     << "#define TILE_DM " << cfg.tile_dm() << "u\n"
     << "#define CHANNELS " << plan.channels() << "u\n"
     << "#define IN_PITCH " << plan.in_samples() << "u\n"
     << "#define OUT_PITCH " << plan.out_samples() << "u\n";
  if (staged) os << "#define STAGE_SPAN " << span << "u\n";
  os << "\n";
}

void emit_accumulator_decls(std::ostringstream& os,
                            const dedisp::KernelConfig& cfg) {
  for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
    os << "  float";
    for (std::size_t i = 0; i < cfg.elem_time; ++i) {
      os << (i == 0 ? " " : ", ") << acc_name(j, i) << " = 0.0f";
    }
    os << ";\n";
  }
}

void emit_store_block(std::ostringstream& os,
                      const dedisp::KernelConfig& cfg) {
  for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
    os << "  {\n"
       << "    const uint dm = dm0 + get_local_id(1) * ELEM_DM + " << j
       << "u;\n";
    for (std::size_t i = 0; i < cfg.elem_time; ++i) {
      os << "    output[dm * OUT_PITCH + t0 + get_local_id(0) + " << i
         << "u * WI_TIME] = " << acc_name(j, i) << ";\n";
    }
    os << "  }\n";
  }
}

}  // namespace

std::string kernel_name(const dedisp::KernelConfig& config) {
  std::ostringstream os;
  os << "dedisperse_wt" << config.wi_time << "_wd" << config.wi_dm << "_et"
     << config.elem_time << "_ed" << config.elem_dm;
  return os.str();
}

std::string generate_opencl_kernel(const dedisp::Plan& plan,
                                   const dedisp::KernelConfig& cfg,
                                   const CodegenOptions& options) {
  cfg.validate(plan);
  if (options.staged && cfg.tile_dm() == 1) {
    throw config_error(
        "staged variant needs tile_dm > 1; a single trial has no reuse");
  }

  std::size_t span = 0;
  if (options.staged) {
    const sky::SpreadStats spreads =
        plan.delays().tile_spreads(cfg.tile_dm());
    span = cfg.tile_time() + static_cast<std::size_t>(spreads.max_spread);
  }

  std::ostringstream os;
  emit_header(os, plan, cfg, options.staged, span);

  os << "__kernel\n"
     << "__attribute__((reqd_work_group_size(WI_TIME, WI_DM, 1)))\n"
     << "void " << kernel_name(cfg) << "(\n"
     << "    __global const float* restrict input,\n"
     << "    __global float* restrict output,\n"
     << "    __global const int* restrict delta) {\n"
     << "  const uint t0 = get_group_id(0) * TILE_TIME;\n"
     << "  const uint dm0 = get_group_id(1) * TILE_DM;\n";
  if (options.staged) {
    os << "  __local float staged[STAGE_SPAN];\n";
  }
  emit_accumulator_decls(os, cfg);
  os << "\n";

  if (options.staged) {
    os << "  const uint lid = get_local_id(1) * WI_TIME + get_local_id(0);\n"
       << "  for (uint ch = 0u; ch < CHANNELS; ++ch) {\n"
       << "    const uint base = (uint)delta[dm0 * CHANNELS + ch];\n"
       << "    const uint last = (uint)delta[(dm0 + TILE_DM - 1u) * CHANNELS"
          " + ch];\n"
       << "    const uint span = TILE_TIME + (last - base);\n"
       << "    // Collaborative load of the union of the tile's shifted "
          "spans.\n";
    if (options.unroll_hints) os << "    #pragma unroll 4\n";
    os << "    for (uint i = lid; i < span; i += WI_TIME * WI_DM) {\n"
       << "      staged[i] = input[ch * IN_PITCH + t0 + base + i];\n"
       << "    }\n"
       << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
    for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
      os << "    {\n"
         << "      const uint dm = dm0 + get_local_id(1) * ELEM_DM + " << j
         << "u;\n"
         << "      const uint shift = (uint)delta[dm * CHANNELS + ch] - "
            "base;\n";
      for (std::size_t i = 0; i < cfg.elem_time; ++i) {
        os << "      " << acc_name(j, i)
           << " += staged[shift + get_local_id(0) + " << i
           << "u * WI_TIME];\n";
      }
      os << "    }\n";
    }
    os << "    barrier(CLK_LOCAL_MEM_FENCE);\n"
       << "  }\n";
  } else {
    os << "  for (uint ch = 0u; ch < CHANNELS; ++ch) {\n";
    for (std::size_t j = 0; j < cfg.elem_dm; ++j) {
      os << "    {\n"
         << "      const uint dm = dm0 + get_local_id(1) * ELEM_DM + " << j
         << "u;\n"
         << "      const uint shift = (uint)delta[dm * CHANNELS + ch];\n";
      for (std::size_t i = 0; i < cfg.elem_time; ++i) {
        os << "      " << acc_name(j, i)
           << " += input[ch * IN_PITCH + t0 + get_local_id(0) + " << i
           << "u * WI_TIME + shift];\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }

  os << "\n  // Coalesced, aligned output writes (§III-B).\n";
  emit_store_block(os, cfg);
  os << "}\n";
  return os.str();
}

}  // namespace ddmc::codegen
