#pragma once
/// \file opencl_codegen.hpp
/// \brief Run-time OpenCL-C source generation for a kernel configuration.
///
/// §III-B: "The source code implementing a specific instance of the
/// algorithm is generated at run-time, after the configuration of these four
/// parameters." This module reproduces that artifact: given a plan and a
/// KernelConfig it emits a complete, self-contained OpenCL-C kernel with
///  - the four parameters baked in as compile-time constants,
///  - one explicitly named register accumulator per output element of a
///    work-item (fully unrolled, as the paper's generator does),
///  - the collaborative local-memory staging loop and barriers for the
///    staged variant, or direct global reads for the 1-D/no-local variant.
///
/// There is no OpenCL compiler in this environment; the functional simulator
/// executes the semantically identical C++ functor (ocl/sim_dedisp), and the
/// test suite checks the generated source structurally.

#include <string>

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::codegen {

struct CodegenOptions {
  /// Emit the local-memory staging variant (requires tile_dm > 1).
  bool staged = true;
  /// Emit "#pragma unroll"-style hints above the generated loops.
  bool unroll_hints = true;
};

/// Deterministic kernel name encoding the configuration, e.g.
/// "dedisperse_wt32_wd8_et4_ed2".
std::string kernel_name(const dedisp::KernelConfig& config);

/// Generate the full OpenCL-C source for \p config on \p plan's dimensions.
/// Throws ddmc::config_error when the config does not validate against the
/// plan or when staged is requested with tile_dm == 1.
std::string generate_opencl_kernel(const dedisp::Plan& plan,
                                   const dedisp::KernelConfig& config,
                                   const CodegenOptions& options = {});

}  // namespace ddmc::codegen
