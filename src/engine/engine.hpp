#pragma once
/// \file engine.hpp
/// \brief The unified execution-engine abstraction.
///
/// The paper's central result is that no single kernel shape — and, in the
/// follow-up survey work, no single *platform* — wins everywhere: platform
/// choice is itself a tuning decision. This library grew four de-facto
/// backends (tiled SIMD CPU, scalar baseline, two-stage subband, simulated
/// OpenCL) plus the sequential reference, each historically hardwired into
/// its consumers with special cases. A DedispEngine is the seam that makes
/// them interchangeable:
///
///  - every engine executes the same contract — `execute(plan, config, in,
///    out)` fills the dms × out_samples trial matrix from a channels ×
///    ≥in_samples input;
///  - a capabilities struct declares what a consumer may do with the engine
///    (shard its DM grid, stream it chunk-by-chunk, trust bitwise equality
///    with the reference, search its configuration space), so the pipeline,
///    streaming and tuning layers gate on *capabilities*, never on engine
///    identity;
///  - the engine declares its own tuning parameterization as named axes
///    (`config_axes()`, engine_config.hpp) and enumerates the EngineConfig
///    candidates worth measuring (`config_space()`), collapsing to the
///    single empty config for engines without tunable knobs — which is
///    exactly what lets `tune_guided` race arbitrary engines against each
///    other on equal footing. The tiled engines interpret the six kernel
///    axes (KernelConfig is their *encoding*); the subband engine's axes
///    are its channel split and coarse DM step; a KernelConfig never
///    reaches a layer above the engine boundary as "the" config shape.
///
/// Engines are created by name through the EngineRegistry
/// (engine/registry.hpp); consumers hold `std::shared_ptr<const
/// DedispEngine>` handles. An engine instance is immutable and cheap: it
/// captures its EngineOptions at construction and owns no buffers, so one
/// instance may execute concurrently from many worker threads.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/array2d.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine_config.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/subband.hpp"
#include "ocl/device.hpp"
#include "ocl/sim_engine.hpp"

namespace ddmc::engine {

/// The registry id consumers default to: the tiled SIMD host engine.
inline constexpr const char kDefaultEngineId[] = "cpu_tiled";

/// What a consumer may do with an engine. Consumers gate on these bits and
/// name the missing capability in their errors; they never test engine ids.
struct EngineCapabilities {
  /// The engine produces correct rows for Plan::dm_shard slices, so the
  /// sharded executor may split its DM grid across workers and assemble
  /// row ranges.
  bool supports_sharding = false;
  /// The engine produces correct output for chunk-window plans
  /// (Plan::with_chunk), so a streaming session may drive it.
  bool supports_streaming = false;
  /// Output is bit-identical to dedisp::dedisperse_reference (same float
  /// additions in the same order). False marks an approximation whose
  /// error is bounded, not zero (the subband engine).
  bool bitwise_exact = false;
  /// The engine's declared config axes change its execution, so its
  /// config_space() is worth searching. False collapses tuning to a single
  /// measured point (the empty config) — still a valid race entrant.
  bool tunable = false;
  /// Input columns the engine may read beyond Plan::in_samples() (the
  /// subband engine's split-delay rounding needs up to two). Consumers that
  /// can supply real samples for the padding should (the streaming chunker
  /// widens its overlap by this); the engine zero-pads otherwise.
  std::size_t input_padding = 0;
  /// Bytes per input sample the engine's kernel actually streams from
  /// memory: 4 for the float engines, 1 for cpu_tiled_u8. Traffic
  /// accounting (EngineRun::bytes, SessionTraffic, the benches) derives
  /// per-engine bytes-moved from this instead of assuming sizeof(float) —
  /// the number that makes the quantized engine's bandwidth win honest.
  std::size_t input_element_bytes = sizeof(float);

  friend bool operator==(const EngineCapabilities&,
                         const EngineCapabilities&) = default;
};

/// Construction-time knobs shared by every engine factory. Each engine
/// reads the fields it understands and ignores the rest, so one options
/// struct configures any registry id.
struct EngineOptions {
  /// Host-execution knobs (staging, SIMD-vs-scalar, worker threads) of the
  /// cpu engines; threads also drives the cpu_baseline pool.
  dedisp::CpuKernelOptions cpu;
  /// Two-stage split of the subband engine, and the default channel-split
  /// / coarse-step factorization of the fdmt engine (same divisibility
  /// rules, same smearing semantics). Engines adapt both fields to a plan
  /// by gcd (subbands must divide the channel count, coarse_step the
  /// trial count), so any plan runs.
  dedisp::SubbandConfig subband;
  /// Device model of the ocl_sim engine (default: the AMD HD7970 preset).
  std::optional<ocl::DeviceModel> device;
  /// Fixed quantization window of the cpu_tiled_u8 engine. Construction
  /// time only (like a telescope gain setting), never data-dependent —
  /// that is what keeps the u8 engine's streaming and sharded runs bitwise
  /// identical to its batch run.
  dedisp::QuantizationParams quant;
};

/// Per-execution artifacts beyond the output matrix.
struct EngineRun {
  /// Traffic counters of a simulated-device execution (ocl_sim only).
  std::optional<ocl::MemCounters> counters;
  /// Wall-clock seconds of this execution, stamped by the non-virtual
  /// execute() wrapper — every path gets it for free, which is what lets
  /// the sharded and streaming consumers aggregate per-session traffic.
  double seconds = 0.0;
  /// FLOP and global-memory bytes of this execution, stamped by execute():
  /// an execute_impl that knows its *algorithmic* operation count may
  /// pre-stamp flop (the fdmt engine reports its transform FLOPs, not the
  /// plan's canonical brute-force credit) and the wrapper preserves it;
  /// otherwise the simulator's exact counters where available, the
  /// analytic model elsewhere — with input bytes scaled by the engine's
  /// declared input_element_bytes, so a quantized engine reports its real
  /// traffic.
  double flop = 0.0;
  double bytes = 0.0;
};

/// Per-session aggregate of EngineRun artifacts. Every consumer that owns
/// a sequence of engine executions (Dedisperser, ShardedDedisperser,
/// StreamingDedisperser) accumulates one of these and exposes it via its
/// telemetry() accessor, so traffic counters survive the sharded and
/// streaming paths instead of being dropped at the first aggregation seam.
struct SessionTraffic {
  std::size_t runs = 0;          ///< engine executions aggregated
  std::size_t counter_runs = 0;  ///< runs that carried exact MemCounters
  double engine_seconds = 0.0;   ///< Σ EngineRun::seconds (busy time)
  /// Σ of the exact simulator counters over counter_runs.
  ocl::MemCounters counters;
  /// FLOP and global-memory bytes: exact where a run reported counters,
  /// the plan's analytic floor otherwise (2 FLOP per channel·trial·sample;
  /// input reads at the engine's declared element size + output-write
  /// floats), as stamped into each EngineRun by execute().
  double flop = 0.0;
  double bytes = 0.0;

  void add(const EngineRun& run, const dedisp::Plan& plan);
  void merge(const SessionTraffic& other);

  /// Aggregate throughput over the session's busy time; 0 when unmeasured.
  double gflops() const {
    return engine_seconds > 0.0 ? flop / engine_seconds / 1e9 : 0.0;
  }
};

/// One execution path for the dedispersion contract. Implementations are
/// immutable after construction and safe to execute concurrently.
class DedispEngine {
 public:
  virtual ~DedispEngine() = default;

  /// Registry id ("cpu_tiled", "subband", …) — the tuner's engine axis.
  virtual const std::string& id() const = 0;
  virtual const EngineCapabilities& capabilities() const = 0;
  virtual const EngineOptions& options() const = 0;

  /// Execution variant entering the tuning-cache host signature next to the
  /// id: the SIMD backend actually compiled in ("avx2", "sse2", "neon",
  /// "scalar") for the cpu engines, the device preset for ocl_sim. Never
  /// contains '|', ',' or newlines.
  virtual std::string variant() const = 0;

  /// The named axes this engine's execution depends on, with their search
  /// ladders and defaults for \p plan. Empty for engines without knobs.
  /// Axis *names* are the validity contract (validate_config rejects
  /// unknown names); the listed values are only the ladder a search walks.
  virtual std::vector<AxisSpec> config_axes(const dedisp::Plan& plan) const {
    (void)plan;
    return {};
  }

  /// EngineConfig candidates worth measuring on \p plan, valid and
  /// deduplicated. Engines without tunable knobs return the single empty
  /// config (their defaults), which is valid for every plan.
  virtual std::vector<EngineConfig> config_space(
      const dedisp::Plan& plan) const {
    (void)plan;
    return {EngineConfig{}};
  }

  /// Strict validity check of \p config for \p plan: throws
  /// ddmc::config_error naming the axis and engine when the config cannot
  /// run (an axis this engine does not declare, a tile that does not
  /// divide the plan, …). The empty config always passes.
  virtual void validate_config(const dedisp::Plan& plan,
                               const EngineConfig& config) const;

  /// Lenient adaptation: the closest config to \p config that is valid for
  /// \p plan. A valid config comes back unchanged; the tiled engines
  /// gcd-shrink their DM tile onto shard plans; anything unusable falls
  /// back to the empty config (engine defaults). Never throws.
  virtual EngineConfig adapt_config(const dedisp::Plan& plan,
                                    const EngineConfig& config) const;

  /// Deduplication key: two configs with the same key run the identical
  /// execution on \p plan, so a search measures only one of them. The
  /// default collapses declared-default axes; the tiled engines collapse
  /// tile splits that compile to the same host kernel.
  virtual std::string config_key(const dedisp::Plan& plan,
                                 const EngineConfig& config) const;

  /// Dedisperse \p in (channels × ≥in_samples) into \p out (dms ×
  /// ≥out_samples) under \p config, whose axes the engine interprets
  /// itself (unknown axes are ignored at execution time; absent axes take
  /// their defaults — the empty config runs the engine untuned).
  ///
  /// Non-virtual template method (engine.cpp): times the run, stamps
  /// EngineRun::seconds, opens an `engine.execute` trace span and publishes
  /// per-engine execution/seconds/FLOP/byte metrics, then delegates to the
  /// engine's execute_impl(). Instrumenting here — the one seam every
  /// consumer already dispatches through — is what makes the telemetry
  /// backend-orthogonal: a new engine is observable the moment it
  /// registers.
  EngineRun execute(const dedisp::Plan& plan, const EngineConfig& config,
                    ConstView2D<float> in, View2D<float> out) const;

  /// KernelConfig convenience: \p config re-encoded as the six kernel
  /// axes. Engines that do not interpret them ignore it, exactly as they
  /// ignored the KernelConfig before the axes became engine-native.
  EngineRun execute(const dedisp::Plan& plan,
                    const dedisp::KernelConfig& config, ConstView2D<float> in,
                    View2D<float> out) const;

 protected:
  /// The engine's actual execution path; contract as execute() above.
  virtual EngineRun execute_impl(const dedisp::Plan& plan,
                                 const EngineConfig& config,
                                 ConstView2D<float> in,
                                 View2D<float> out) const = 0;
};

}  // namespace ddmc::engine
