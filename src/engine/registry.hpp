#pragma once
/// \file registry.hpp
/// \brief String-keyed engine factory: the only place that knows every
/// execution path.
///
/// Consumers (pipeline, streaming, sharding, tuner, CLIs) select engines by
/// registry id and gate behaviour on EngineCapabilities; the registry is
/// where ids resolve to implementations. Built-ins:
///
///   cpu_tiled     tiled, SIMD-vectorized, cache-blocked host kernel
///   cpu_baseline  the §V-D OpenMP/AVX-style comparator structure
///   reference     sequential Algorithm 1 (the bitwise ground truth)
///   subband       two-stage (subband) approximation
///   ocl_sim       MiniCL functional device simulator (traffic counters)
///
/// Downstream code adds engines with `EngineRegistry::instance().add(...)`;
/// a duplicate id is rejected (ddmc::invalid_argument) and an unknown id in
/// create() names the registered alternatives.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace ddmc::engine {

class EngineRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const DedispEngine>(const EngineOptions&)>;

  /// The process-wide registry, with the built-ins pre-registered.
  static EngineRegistry& instance();

  /// Register \p factory under \p id. Throws ddmc::invalid_argument when
  /// the id is already taken — silent replacement would let two libraries
  /// fight over a name.
  void add(const std::string& id, Factory factory);

  bool contains(const std::string& id) const;

  /// Registered ids, sorted (stable across runs — CI iterates this).
  std::vector<std::string> ids() const;

  /// Create engine \p id with \p options. Unknown ids throw
  /// ddmc::invalid_argument listing every registered alternative.
  std::shared_ptr<const DedispEngine> create(
      const std::string& id, const EngineOptions& options = {}) const;

 private:
  EngineRegistry();  // registers the built-ins

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Convenience for the common call shape.
inline std::shared_ptr<const DedispEngine> make_engine(
    const std::string& id, const EngineOptions& options = {}) {
  return EngineRegistry::instance().create(id, options);
}

namespace detail {
/// Defined in builtin_engines.cpp; called once by instance().
void register_builtin_engines(EngineRegistry& registry);
}  // namespace detail

}  // namespace ddmc::engine
