/// \file engine.cpp
/// \brief The non-virtual DedispEngine::execute wrapper: the one
/// instrumentation seam every execution path passes through.

#include "engine/engine.hpp"

#include "common/expect.hpp"
#include "common/timer.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace ddmc::engine {

namespace {

/// FLOP count of one run: prefer the simulator's exact counter, fall back
/// to the plan's analytic count (one multiply-accumulate = 2 FLOP per
/// channel per trial per sample — the paper's GFLOP/s denominator).
double run_flop(const dedisp::Plan& plan,
                const std::optional<ocl::MemCounters>& counters) {
  if (counters.has_value()) return static_cast<double>(counters->flops);
  return 2.0 * static_cast<double>(plan.channels()) *
         static_cast<double>(plan.dms()) *
         static_cast<double>(plan.out_samples());
}

/// Bytes moved to/from global memory: exact for counter-reporting engines
/// (the simulator counts float elements), the analytic input-read +
/// output-write floor otherwise — input at the engine's declared element
/// size, output always float32.
double run_bytes(const dedisp::Plan& plan,
                 const std::optional<ocl::MemCounters>& counters,
                 std::size_t input_element_bytes) {
  if (counters.has_value()) {
    return 4.0 * static_cast<double>(counters->global_loads +
                                     counters->global_stores);
  }
  return static_cast<double>(input_element_bytes) *
             static_cast<double>(plan.channels()) *
             static_cast<double>(plan.in_samples()) +
         4.0 * static_cast<double>(plan.dms()) *
             static_cast<double>(plan.out_samples());
}

}  // namespace

void SessionTraffic::add(const EngineRun& run, const dedisp::Plan& plan) {
  ++runs;
  engine_seconds += run.seconds;
  // Prefer the per-run stamped numbers (element-size aware); fall back to
  // the float-element analytic model for hand-built EngineRuns.
  flop += run.flop > 0.0 ? run.flop : run_flop(plan, run.counters);
  bytes += run.bytes > 0.0 ? run.bytes
                           : run_bytes(plan, run.counters, sizeof(float));
  if (run.counters.has_value()) {
    ++counter_runs;
    counters += *run.counters;
  }
}

void SessionTraffic::merge(const SessionTraffic& other) {
  runs += other.runs;
  counter_runs += other.counter_runs;
  engine_seconds += other.engine_seconds;
  counters += other.counters;
  flop += other.flop;
  bytes += other.bytes;
}

void DedispEngine::validate_config(const dedisp::Plan& plan,
                                   const EngineConfig& config) const {
  const std::vector<AxisSpec> axes = config_axes(plan);
  for (const auto& [name, value] : config.axes) {
    (void)value;
    bool known = false;
    for (const AxisSpec& axis : axes) {
      if (axis.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw config_error("engine '" + id() + "' declares no config axis '" +
                         name + "'");
    }
  }
}

EngineConfig DedispEngine::adapt_config(const dedisp::Plan& plan,
                                        const EngineConfig& config) const {
  try {
    validate_config(plan, config);
    return config;
  } catch (const config_error&) {
    return EngineConfig{};  // the engine's defaults run on every plan
  }
}

std::string DedispEngine::config_key(const dedisp::Plan& plan,
                                     const EngineConfig& config) const {
  return normalized(config, config_axes(plan)).encode();
}

EngineRun DedispEngine::execute(const dedisp::Plan& plan,
                                const dedisp::KernelConfig& config,
                                ConstView2D<float> in,
                                View2D<float> out) const {
  // Legacy entry point: a KernelConfig is the tiled engines' shape. An
  // engine that does not declare those axes runs its defaults instead of
  // rejecting the foreign parameterization (restrict_to_axes keeps all
  // six axes — and strict validation — on the engines that declare them).
  return execute(plan,
                 restrict_to_axes(encode_kernel_config(config),
                                  config_axes(plan)),
                 in, out);
}

EngineRun DedispEngine::execute(const dedisp::Plan& plan,
                                const EngineConfig& config,
                                ConstView2D<float> in,
                                View2D<float> out) const {
  telemetry::TraceSpan span("engine.execute");
  Stopwatch watch;
  EngineRun run = execute_impl(plan, config, in, out);
  run.seconds = watch.seconds();
  // An engine that stamped its own algorithmic FLOP count (the fdmt
  // transform does — its operation count is not the plan's canonical
  // brute-force credit) keeps it; otherwise the wrapper fills in the
  // simulator counters or the plan's analytic model.
  if (run.flop <= 0.0) run.flop = run_flop(plan, run.counters);
  run.bytes =
      run_bytes(plan, run.counters, capabilities().input_element_bytes);

  auto& registry = telemetry::MetricsRegistry::instance();
  const telemetry::Labels labels = {{"engine", id()}};
  registry.counter("ddmc.engine.executions_total", labels)->increment();
  registry.counter("ddmc.engine.seconds_total", labels)->add(run.seconds);
  const double flop = run.flop;
  const double bytes = run.bytes;
  registry.counter("ddmc.engine.flop_total", labels)->add(flop);
  registry.counter("ddmc.engine.bytes_total", labels)->add(bytes);
  const double gflops =
      run.seconds > 0.0 ? flop / run.seconds / 1e9 : 0.0;
  registry.gauge("ddmc.engine.gflops", labels)->set(gflops);

  span.arg("engine", id().c_str())
      .arg("dms", plan.dms())
      .arg("gflops", gflops);
  return run;
}

}  // namespace ddmc::engine
