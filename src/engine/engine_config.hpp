#pragma once
/// \file engine_config.hpp
/// \brief Engine-native tuning configurations: named axes with declared
/// ranges, defined and interpreted by each engine itself.
///
/// The paper's central result is that the profitable tuning axes are
/// *kernel-specific*: the four work-item/element parameters of the
/// brute-force kernel mean nothing to the two-stage subband method, whose
/// real knobs are its channel split and coarse DM step. Forcing every
/// engine through the KernelConfig-shaped space therefore searched the
/// wrong space for every engine but the tiled ones. An EngineConfig is the
/// engine-agnostic currency instead: a small map of named integer axes
/// that only the declaring engine interprets. The tuner walks axes an
/// engine *declares* (AxisSpec), the cache and results files persist
/// "name=value" pairs, and KernelConfig survives as the tiled engines'
/// *encoding* of their six axes — converted at the boundary, never assumed
/// by the layers above.
///
/// This header is standalone (STL + kernel_config.hpp only) so the
/// persistence layer can speak EngineConfig without pulling in the engine
/// interface.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dedisp/kernel_config.hpp"

namespace ddmc::engine {

/// One declared tuning axis: the values a search may try and the value the
/// engine assumes when a config omits the axis. The values are the *search
/// ladder*, not the validity set — an engine's validate_config may accept
/// off-ladder values (e.g. any tile extent that divides the plan).
struct AxisSpec {
  std::string name;
  std::vector<std::int64_t> values;
  std::int64_t default_value = 0;
};

/// A point in an engine's configuration space: named integer axes. An
/// absent axis means "the engine's default"; the empty config is therefore
/// valid for every engine and selects its untuned behavior.
struct EngineConfig {
  std::map<std::string, std::int64_t> axes;

  bool has(const std::string& name) const { return axes.count(name) > 0; }
  std::int64_t get(const std::string& name, std::int64_t fallback) const {
    const auto it = axes.find(name);
    return it == axes.end() ? fallback : it->second;
  }
  EngineConfig& set(const std::string& name, std::int64_t value) {
    axes[name] = value;
    return *this;
  }

  bool empty() const { return axes.empty(); }

  /// "name=value;name=value" in axis-name order; "-" for the empty config.
  /// Contains no ',', '|' or whitespace, so the encoding is safe inside
  /// both the results CSV and the cache's '|'-delimited signatures.
  std::string encode() const;
  std::string to_string() const { return encode(); }
  static std::optional<EngineConfig> decode(const std::string& text);

  friend bool operator==(const EngineConfig&, const EngineConfig&) = default;
};

/// \p config with every axis that sits at its declared default removed, so
/// "explicitly default" and "omitted" collapse onto one canonical form —
/// the form dedup keys and cache entries should use.
EngineConfig normalized(const EngineConfig& config,
                        const std::vector<AxisSpec>& axes);

/// The subset of \p config on the declared \p axes. This is how a
/// parameterization shaped for one engine degrades when another engine
/// runs the plan: foreign axes drop away (pre-EngineConfig sessions
/// ignored them entirely), while axes the engine does declare survive
/// and stay subject to its strict validate_config. Converting a legacy
/// KernelConfig for an arbitrary engine is the canonical use —
/// restrict_to_axes(encode_kernel_config(c), engine.config_axes(plan))
/// keeps all six axes on the tiled engines and collapses to the empty
/// config (engine defaults) everywhere else.
EngineConfig restrict_to_axes(const EngineConfig& config,
                              const std::vector<AxisSpec>& axes);

/// The axis names of the tiled engines' KernelConfig encoding.
inline constexpr const char* kKernelAxisNames[] = {
    "wi_time", "wi_dm", "elem_time", "elem_dm", "channel_block", "unroll"};

/// Encode a KernelConfig as the six kernel axes, canonically omitting axes
/// at their neutral defaults (wi/elem = 1, channel_block = 0, unroll = 1).
/// A default-constructed KernelConfig therefore encodes as the empty
/// config — which is what lets pre-v3 cache rows tuned on untuned 1×1
/// shapes migrate as configs valid for *every* engine.
EngineConfig encode_kernel_config(const dedisp::KernelConfig& config);

/// Read the six kernel axes back out of \p config (absent axes take their
/// neutral defaults). Lenient on purpose: unknown axes are ignored, so a
/// config carrying engine-specific extras (the u8 quantization window)
/// still yields its tile shape.
dedisp::KernelConfig decode_kernel_config(const EngineConfig& config);

/// The six kernel AxisSpecs with ladders collected from \p candidates, in
/// the tiled engines' descent order (cache-behaviour knobs first). This is
/// how a caller holding a KernelConfig candidate list (the host tuner, the
/// strategy bench) declares the axes without an engine handle.
std::vector<AxisSpec> kernel_config_axes(
    const std::vector<dedisp::KernelConfig>& candidates);

}  // namespace ddmc::engine
