/// \file builtin_engines.cpp
/// \brief The built-in execution paths, wrapped as DedispEngines.
///
/// This file is deliberately the only place in the library that calls the
/// concrete kernels (dedisperse_cpu, dedisperse_cpu_u8,
/// dedisperse_cpu_baseline, dedisperse_reference, dedisperse_subband,
/// dedisperse_fdmt, simulate_dedisp): every
/// consumer above it dispatches through the DedispEngine interface, so a
/// grep for those symbols outside src/engine/ and src/dedisp/ should come
/// back empty — that is the refactor's invariant.
///
/// Each engine also *owns its tuning parameterization* here: the tiled
/// engines (and the simulator) interpret the six kernel axes of
/// engine_config.hpp, the subband engine declares its channel split and
/// coarse DM step, and the scalar engines declare nothing. No layer above
/// this file knows which axes exist — the tuner walks whatever
/// config_axes() returns.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/expect.hpp"
#include "common/simd.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/cpu_kernel_u8.hpp"
#include "dedisp/fdmt.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/reference.hpp"
#include "dedisp/subband.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/sim_dedisp.hpp"
#include "resilience/fault_injection.hpp"
#include "tuner/host_tuner.hpp"
#include "tuner/search_space.hpp"

namespace ddmc::engine {

namespace {

/// Shared state and shape checks; concrete engines add execute_impl() and
/// the odd override.
class EngineBase : public DedispEngine {
 public:
  EngineBase(std::string id, EngineCapabilities caps, EngineOptions options)
      : id_(std::move(id)), caps_(caps), options_(std::move(options)) {}

  const std::string& id() const override { return id_; }
  const EngineCapabilities& capabilities() const override { return caps_; }
  const EngineOptions& options() const override { return options_; }

 protected:
  void check_shapes(const dedisp::Plan& plan, ConstView2D<float> in,
                    View2D<float> out) const {
    DDMC_REQUIRE(in.rows() == plan.channels(),
                 "engine '" + id_ + "': input rows != plan channels");
    DDMC_REQUIRE(in.cols() >= plan.in_samples(),
                 "engine '" + id_ + "': input holds too few samples");
    DDMC_REQUIRE(out.rows() == plan.dms(),
                 "engine '" + id_ + "': output rows != trial DMs");
    DDMC_REQUIRE(out.cols() >= plan.out_samples(),
                 "engine '" + id_ + "': output too short");
    // Every builtin execute_impl() validates through here, making this the
    // engine-execute fault-injection seam: an armed "engine.execute"
    // failpoint fails the call before the kernel touches the output.
    DDMC_FAILPOINT("engine.execute");
  }

  const std::string id_;
  const EngineCapabilities caps_;
  const EngineOptions options_;
};

// --------------------------------------------------- kernel-axes engines --

bool is_kernel_axis(const std::string& name) {
  for (const char* axis : kKernelAxisNames) {
    if (name == axis) return true;
  }
  return false;
}

/// Kernel-axes adaptation: keep the time tile, gcd-shrink the DM tile to
/// divide \p plan (a shard's out_samples equals its parent's, so the time
/// dimension still divides); fall back to the untuned 1×1 shape when even
/// the shrunk tile cannot validate. For bitwise-exact engines adaptation
/// never changes results — only efficiency.
dedisp::KernelConfig adapt_kernel_config(const dedisp::Plan& plan,
                                         dedisp::KernelConfig cfg) {
  const std::size_t tile =
      std::gcd(std::max<std::size_t>(cfg.tile_dm(), 1), plan.dms());
  cfg.elem_dm = std::gcd(std::max<std::size_t>(cfg.elem_dm, 1), tile);
  cfg.wi_dm = tile / cfg.elem_dm;
  try {
    cfg.validate(plan);
    return cfg;
  } catch (const config_error&) {
  }
  cfg.wi_dm = 1;
  cfg.elem_dm = 1;
  try {
    cfg.validate(plan);
    return cfg;
  } catch (const config_error&) {
    return dedisp::KernelConfig{};  // 1×1 everywhere divides every plan
  }
}

/// Shared interpretation of the six kernel axes (engine_config.hpp) for
/// the engines whose execution is the tiled/work-group kernel: the two cpu
/// tiled engines and the device simulator.
class KernelAxesEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

  std::vector<AxisSpec> config_axes(
      const dedisp::Plan& plan) const override {
    return kernel_config_axes(kernel_candidates(plan));
  }

  std::vector<EngineConfig> config_space(
      const dedisp::Plan& plan) const override {
    std::vector<EngineConfig> space;
    const std::vector<dedisp::KernelConfig> candidates =
        kernel_candidates(plan);
    space.reserve(candidates.size());
    for (const dedisp::KernelConfig& cfg : candidates) {
      space.push_back(encode_kernel_config(cfg));
    }
    return space;
  }

  void validate_config(const dedisp::Plan& plan,
                       const EngineConfig& config) const override {
    for (const auto& [name, value] : config.axes) {
      if (!is_kernel_axis(name) && !is_extra_axis(name)) {
        throw config_error("engine '" + id_ +
                           "' declares no config axis '" + name + "'");
      }
      validate_extra_axis(name, value);
    }
    decode_kernel_config(config).validate(plan);
  }

  EngineConfig adapt_config(const dedisp::Plan& plan,
                            const EngineConfig& config) const override {
    EngineConfig adapted = encode_kernel_config(
        adapt_kernel_config(plan, decode_kernel_config(config)));
    copy_extra_axes(config, adapted);
    return adapted;
  }

  std::string config_key(const dedisp::Plan& plan,
                         const EngineConfig& config) const override {
    // Two configs that compile to the same host kernel (same tile extents,
    // register rows, effective channel block and unroll instantiation) are
    // one measurement; extra axes append so they stay distinguishing.
    const tuner::HostKernelKey key = tuner::host_kernel_key(
        decode_kernel_config(config), plan, options_.cpu.vectorize);
    std::string out = "tT=" + std::to_string(key.tile_time) +
                      ";tD=" + std::to_string(key.tile_dm) +
                      ";rr=" + std::to_string(key.reg_rows) +
                      ";cb=" + std::to_string(key.channel_block) +
                      ";u=" + std::to_string(key.unroll);
    EngineConfig extras;
    copy_extra_axes(config, extras);
    if (!extras.empty()) out += ";" + extras.encode();
    return out;
  }

 protected:
  /// The KernelConfig candidate ladder the six axes are collected from.
  virtual std::vector<dedisp::KernelConfig> kernel_candidates(
      const dedisp::Plan& plan) const {
    return {dedisp::KernelConfig{}};
  }

  /// Engine-specific axes beyond the six kernel ones (the u8 engine's
  /// quantization window). Base: none.
  virtual bool is_extra_axis(const std::string& name) const {
    (void)name;
    return false;
  }
  virtual void validate_extra_axis(const std::string& name,
                                   std::int64_t value) const {
    (void)name;
    (void)value;
  }
  void copy_extra_axes(const EngineConfig& from, EngineConfig& to) const {
    for (const auto& [name, value] : from.axes) {
      if (is_extra_axis(name)) to.set(name, value);
    }
  }
};

/// Shared host-sweep candidate enumeration of the two cpu tiled engines.
class CpuTiledBase : public KernelAxesEngine {
 public:
  using KernelAxesEngine::KernelAxesEngine;

  std::string variant() const override {
    return options_.cpu.vectorize ? simd::backend_name() : "scalar";
  }

 protected:
  std::vector<dedisp::KernelConfig> kernel_candidates(
      const dedisp::Plan& plan) const override {
    tuner::HostTuningOptions host;
    host.stage_rows = options_.cpu.stage_rows;
    host.vectorize = options_.cpu.vectorize;
    host.threads = options_.cpu.threads;
    return tuner::host_sweep_candidates(plan, host);
  }
};

// -------------------------------------------------------------- cpu_tiled --

class CpuTiledEngine final : public CpuTiledBase {
 public:
  explicit CpuTiledEngine(EngineOptions options)
      : CpuTiledBase("cpu_tiled",
                     EngineCapabilities{.supports_sharding = true,
                                        .supports_streaming = true,
                                        .bitwise_exact = true,
                                        .tunable = true},
                     std::move(options)) {}

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    dedisp::dedisperse_cpu(plan, decode_kernel_config(config), in, out,
                           options_.cpu);
    return {};
  }
};

// ----------------------------------------------------------- cpu_tiled_u8 --

/// The tiled kernel on quantized 8-bit samples: the sample plane is one
/// byte per element from staging into the register tile, so the streamed
/// input traffic is a quarter of cpu_tiled's — the decisive saving for a
/// memory-bandwidth-bound kernel, and why real surveys record 8-bit data.
///
/// bitwise_exact is false — each sample carries up to quant.scale()/2 of
/// rounding, so an output element is within
/// dedisp::quantization_error_bound(plan, options.quant) of the float
/// reference — but the engine is still *deterministic*: quantization is
/// pointwise with fixed construction-time parameters and the raw-code
/// accumulation is exact integer arithmetic below 2^24, so streaming ==
/// batch and sharded == single remain bitwise identities of this engine.
///
/// Beyond the six kernel axes, the engine declares its quantization window
/// as the `quant_window` axis (the symmetric clamp half-width: a value of
/// w quantizes over [-w, +w]). The default sweep holds it at the engine's
/// configured window — the window is an accuracy knob, not a speed knob,
/// so auto-tuning never trades precision silently — but a caller may pin
/// it per-config, and it round-trips through the cache like any axis.
class CpuTiledU8Engine final : public CpuTiledBase {
 public:
  explicit CpuTiledU8Engine(EngineOptions options)
      : CpuTiledBase(
            "cpu_tiled_u8",
            EngineCapabilities{.supports_sharding = true,
                               .supports_streaming = true,
                               .bitwise_exact = false,
                               .tunable = true,
                               .input_element_bytes = sizeof(std::uint8_t)},
            std::move(options)) {}

  std::vector<AxisSpec> config_axes(
      const dedisp::Plan& plan) const override {
    std::vector<AxisSpec> axes = CpuTiledBase::config_axes(plan);
    AxisSpec window;
    window.name = "quant_window";
    window.default_value = default_window();
    window.values = {window.default_value};
    axes.push_back(std::move(window));
    return axes;
  }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    // The engine contract hands samples as float, so quantize into the
    // byte plane the kernel consumes — an adapter for this library's float
    // front end; a survey recording 8-bit natively would feed the kernel
    // directly. The staging write is excluded from the engine's declared
    // traffic model, which counts the kernel's own streaming.
    //
    // The plane is thread-local scratch: a streaming session re-quantizes
    // every chunk, and a fresh allocation's page faults cost about as much
    // as the (vectorized) quantize pass itself. Thread-local keeps the
    // const engine shareable across shard workers without locking.
    static thread_local Array2D<std::uint8_t> plane;
    if (plane.rows() != plan.channels() ||
        plane.cols() != plan.in_samples()) {
      plane = Array2D<std::uint8_t>(plan.channels(), plan.in_samples());
    }
    const dedisp::QuantizationParams quant = quant_of(config);
    dedisp::quantize_plane(in, quant, plane.view());
    dedisp::dedisperse_cpu_u8(plan, decode_kernel_config(config),
                              plane.cview(), quant, out, options_.cpu);
    return {};
  }

 protected:
  bool is_extra_axis(const std::string& name) const override {
    return name == "quant_window";
  }
  void validate_extra_axis(const std::string& name,
                           std::int64_t value) const override {
    if (name == "quant_window" && value < 1) {
      throw config_error(
          "engine 'cpu_tiled_u8': axis 'quant_window' must be >= 1");
    }
  }

 private:
  std::int64_t default_window() const {
    const double half = (options_.quant.hi - options_.quant.lo) / 2.0;
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(half + 0.5));
  }
  dedisp::QuantizationParams quant_of(const EngineConfig& config) const {
    if (!config.has("quant_window")) return options_.quant;
    const auto w = static_cast<float>(
        std::max<std::int64_t>(config.get("quant_window", 0), 1));
    return dedisp::QuantizationParams{-w, w};
  }
};

// ----------------------------------------------------------- cpu_baseline --

class CpuBaselineEngine final : public EngineBase {
 public:
  explicit CpuBaselineEngine(EngineOptions options)
      : EngineBase("cpu_baseline",
                   EngineCapabilities{.supports_sharding = true,
                                      .supports_streaming = true,
                                      .bitwise_exact = true},
                   std::move(options)) {}

  std::string variant() const override { return "autovec"; }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    (void)config;  // no tunable knobs
    check_shapes(plan, in, out);
    dedisp::CpuBaselineOptions baseline;
    baseline.threads = options_.cpu.threads;
    dedisp::dedisperse_cpu_baseline(plan, in, out, baseline);
    return {};
  }
};

// -------------------------------------------------------------- reference --

class ReferenceEngine final : public EngineBase {
 public:
  explicit ReferenceEngine(EngineOptions options)
      : EngineBase("reference",
                   EngineCapabilities{.supports_sharding = true,
                                      .supports_streaming = true,
                                      .bitwise_exact = true},
                   std::move(options)) {}

  std::string variant() const override { return "serial"; }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    (void)config;
    check_shapes(plan, in, out);
    dedisp::dedisperse_reference(plan, in, out);
    return {};
  }
};

// ---------------------------------------------------------------- subband --

/// Divisors of \p n as an axis ladder, thinned to at most \p cap values
/// (evenly spaced through the sorted divisor list, endpoints kept) so a
/// highly composite channel count cannot explode the search space.
std::vector<std::int64_t> divisor_ladder(std::size_t n, std::size_t cap) {
  std::vector<std::int64_t> divisors;
  for (std::size_t d = 1; d <= n; ++d) {
    if (n % d == 0) divisors.push_back(static_cast<std::int64_t>(d));
  }
  if (divisors.size() <= cap || cap < 2) return divisors;
  std::vector<std::int64_t> out;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    out.push_back(divisors[i * (divisors.size() - 1) / (cap - 1)]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Two-stage engine. Its tuning axes are its *real* knobs — `subbands`
/// (how many adjacent-channel groups stage 1 dedisperses) and
/// `coarse_step` (fine trials reusing one coarse trial's shifts) — not the
/// tiled kernel's shape, which means nothing to it. The search space only
/// offers splits whose smearing bound does not exceed the configured
/// default split's: tuning may trade throughput within the accuracy the
/// caller already accepted, never loosen it silently.
class SubbandEngine final : public EngineBase {
 public:
  explicit SubbandEngine(EngineOptions options)
      : EngineBase("subband",
                   EngineCapabilities{.supports_streaming = true,
                                      .tunable = true,
                                      .input_padding = 2},
                   std::move(options)) {}

  std::string variant() const override { return simd::backend_name(); }

  std::vector<AxisSpec> config_axes(
      const dedisp::Plan& plan) const override {
    const dedisp::SubbandConfig def = options_.subband.adapted_to(plan);
    AxisSpec subbands;
    subbands.name = "subbands";
    subbands.values = divisor_ladder(plan.channels(), 12);
    subbands.default_value = static_cast<std::int64_t>(def.subbands);
    AxisSpec coarse;
    coarse.name = "coarse_step";
    coarse.values = divisor_ladder(plan.dms(), 12);
    coarse.default_value = static_cast<std::int64_t>(def.coarse_step);
    return {std::move(subbands), std::move(coarse)};
  }

  std::vector<EngineConfig> config_space(
      const dedisp::Plan& plan) const override {
    const std::vector<AxisSpec> axes = config_axes(plan);
    const dedisp::SubbandConfig def = options_.subband.adapted_to(plan);
    const std::int64_t budget = dedisp::subband_max_delay_error(plan, def);
    std::vector<EngineConfig> space;
    for (const std::int64_t sb : axes[0].values) {
      for (const std::int64_t cs : axes[1].values) {
        const dedisp::SubbandConfig split{static_cast<std::size_t>(sb),
                                          static_cast<std::size_t>(cs)};
        // Smearing budget: shrinking either knob only makes the
        // approximation more exact, so the filter keeps every split at
        // least as accurate as the configured default.
        if (dedisp::subband_max_delay_error(plan, split) > budget) continue;
        EngineConfig cfg;
        cfg.set("subbands", sb).set("coarse_step", cs);
        space.push_back(std::move(cfg));
      }
    }
    return space;
  }

  void validate_config(const dedisp::Plan& plan,
                       const EngineConfig& config) const override {
    for (const auto& [name, value] : config.axes) {
      if (name != "subbands" && name != "coarse_step") {
        throw config_error("engine 'subband' declares no config axis '" +
                           name + "'");
      }
      if (value < 1) {
        throw config_error("engine 'subband': axis '" + name +
                           "' must be >= 1");
      }
    }
    if (config.has("subbands") &&
        plan.channels() %
                static_cast<std::size_t>(config.get("subbands", 1)) !=
            0) {
      throw config_error(
          "engine 'subband': axis 'subbands' must divide the channel "
          "count " +
          std::to_string(plan.channels()));
    }
    if (config.has("coarse_step") &&
        plan.dms() %
                static_cast<std::size_t>(config.get("coarse_step", 1)) !=
            0) {
      throw config_error(
          "engine 'subband': axis 'coarse_step' must divide the trial "
          "count " +
          std::to_string(plan.dms()));
    }
  }

  EngineConfig adapt_config(const dedisp::Plan& plan,
                            const EngineConfig& config) const override {
    const dedisp::SubbandConfig split = split_of(config).adapted_to(plan);
    EngineConfig adapted;
    adapted.set("subbands", static_cast<std::int64_t>(split.subbands));
    adapted.set("coarse_step",
                static_cast<std::int64_t>(split.coarse_step));
    return adapted;
  }

  std::string config_key(const dedisp::Plan& plan,
                         const EngineConfig& config) const override {
    // gcd adaptation collapses off-plan splits, so two configs that adapt
    // onto the same effective split are one measurement.
    return adapt_config(plan, config).encode();
  }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    const dedisp::SubbandConfig sub = split_of(config).adapted_to(plan);
    // The split delays may read up to input_padding columns past
    // in_samples. Callers that provide the worst-case padding (the
    // streaming chunker and the tuning evaluator do) take the direct path
    // without any extra work; for shorter inputs, compute the *exact*
    // requirement — usually at or near in_samples — and only stage into a
    // zero-padded copy when the input is genuinely short, which bounds the
    // tail error by the padding width instead of rejecting the input.
    if (in.cols() >= plan.in_samples() + caps_.input_padding) {
      dedisp::dedisperse_subband(plan, sub, in, out);
      return {};
    }
    const std::size_t required = dedisp::subband_min_input_samples(plan, sub);
    if (in.cols() >= required) {
      dedisp::dedisperse_subband(plan, sub, in, out);
      return {};
    }
    Array2D<float> padded(plan.channels(), required);  // zero-initialized
    for (std::size_t ch = 0; ch < in.rows(); ++ch) {
      std::memcpy(&padded(ch, 0), &in(ch, 0), in.cols() * sizeof(float));
    }
    dedisp::dedisperse_subband(plan, sub, padded.cview(), out);
    return {};
  }

 private:
  /// The split a config selects: its axes where present, the engine's
  /// configured default where absent (so the empty config — and any
  /// kernel-shaped config another engine tuned — runs the configured
  /// split, exactly the pre-axes behavior).
  dedisp::SubbandConfig split_of(const EngineConfig& config) const {
    dedisp::SubbandConfig split = options_.subband;
    if (config.has("subbands")) {
      split.subbands = static_cast<std::size_t>(
          std::max<std::int64_t>(config.get("subbands", 1), 1));
    }
    if (config.has("coarse_step")) {
      split.coarse_step = static_cast<std::size_t>(
          std::max<std::int64_t>(config.get("coarse_step", 1), 1));
    }
    return split;
  }
};

// ------------------------------------------------------------------- fdmt --

/// Fourier-domain dedispersion (dedisp/fdmt.hpp): forward-FFT every
/// channel once, accumulate phase-rotated spectra through the subband
/// factorization, inverse-FFT once per trial. Its axes are the split the
/// factorization shares with the time-domain subband engine (`subbands`,
/// `coarse_step` — same divisibility, same smearing budget in the search
/// space) plus `block`, the frequency-accumulation block size in bins.
///
/// bitwise_exact is false: the composed integer shifts smear fine trials
/// by at most fdmt_max_delay_error samples, and the float transforms add
/// roundoff — both captured by dedisp::fdmt_error_bound, the documented
/// tolerance the equivalence tests enforce. Sharding is supported: a
/// shard plan's sliced DelayTable yields the shard's own phase tables, so
/// every shard's rows match a single run within the same bound. Streaming
/// stays unsupported (supports_streaming = false, named in the error)
/// until chunk-overlap semantics for the transform are worked out.
///
/// The engine stamps its *algorithmic* FLOPs into EngineRun::flop — an
/// asymptotically cheaper transform credited with the plan's canonical
/// brute-force count would fake a GFLOP/s number — which is exactly why
/// tune_guided races rank by measured wall seconds, never by throughput.
class FdmtEngine final : public EngineBase {
 public:
  explicit FdmtEngine(EngineOptions options)
      : EngineBase("fdmt",
                   EngineCapabilities{.supports_sharding = true,
                                      .tunable = true},
                   std::move(options)) {}

  std::string variant() const override { return simd::backend_name(); }

  std::vector<AxisSpec> config_axes(
      const dedisp::Plan& plan) const override {
    const dedisp::FdmtConfig def = default_config().adapted_to(plan);
    AxisSpec subbands;
    subbands.name = "subbands";
    subbands.values = divisor_ladder(plan.channels(), 8);
    subbands.default_value = static_cast<std::int64_t>(def.split.subbands);
    AxisSpec coarse;
    coarse.name = "coarse_step";
    coarse.values = divisor_ladder(plan.dms(), 8);
    coarse.default_value = static_cast<std::int64_t>(def.split.coarse_step);
    AxisSpec block;
    block.name = "block";
    block.values = {512, 2048, 8192};
    block.default_value = static_cast<std::int64_t>(def.block);
    return {std::move(subbands), std::move(coarse), std::move(block)};
  }

  std::vector<EngineConfig> config_space(
      const dedisp::Plan& plan) const override {
    const std::vector<AxisSpec> axes = config_axes(plan);
    const dedisp::FdmtConfig def = default_config().adapted_to(plan);
    const std::int64_t budget =
        dedisp::fdmt_max_delay_error(plan, def.split);
    std::vector<EngineConfig> space;
    for (const std::int64_t sb : axes[0].values) {
      for (const std::int64_t cs : axes[1].values) {
        const dedisp::SubbandConfig split{static_cast<std::size_t>(sb),
                                          static_cast<std::size_t>(cs)};
        // Same smearing-budget filter as the subband engine: tuning may
        // trade throughput within the accuracy the caller configured,
        // never loosen it silently.
        if (dedisp::fdmt_max_delay_error(plan, split) > budget) continue;
        for (const std::int64_t blk : axes[2].values) {
          EngineConfig cfg;
          cfg.set("subbands", sb).set("coarse_step", cs).set("block", blk);
          space.push_back(std::move(cfg));
        }
      }
    }
    return space;
  }

  void validate_config(const dedisp::Plan& plan,
                       const EngineConfig& config) const override {
    for (const auto& [name, value] : config.axes) {
      if (name != "subbands" && name != "coarse_step" && name != "block") {
        throw config_error("engine 'fdmt' declares no config axis '" +
                           name + "'");
      }
      if (value < 1) {
        throw config_error("engine 'fdmt': axis '" + name +
                           "' must be >= 1");
      }
    }
    if (config.has("subbands") &&
        plan.channels() %
                static_cast<std::size_t>(config.get("subbands", 1)) !=
            0) {
      throw config_error(
          "engine 'fdmt': axis 'subbands' must divide the channel count " +
          std::to_string(plan.channels()));
    }
    if (config.has("coarse_step") &&
        plan.dms() %
                static_cast<std::size_t>(config.get("coarse_step", 1)) !=
            0) {
      throw config_error(
          "engine 'fdmt': axis 'coarse_step' must divide the trial count " +
          std::to_string(plan.dms()));
    }
  }

  EngineConfig adapt_config(const dedisp::Plan& plan,
                            const EngineConfig& config) const override {
    const dedisp::FdmtConfig cfg = config_of(config).adapted_to(plan);
    EngineConfig adapted;
    adapted.set("subbands", static_cast<std::int64_t>(cfg.split.subbands));
    adapted.set("coarse_step",
                static_cast<std::int64_t>(cfg.split.coarse_step));
    adapted.set("block", static_cast<std::int64_t>(cfg.block));
    return adapted;
  }

  std::string config_key(const dedisp::Plan& plan,
                         const EngineConfig& config) const override {
    // gcd adaptation collapses off-plan splits, so two configs that adapt
    // onto the same effective execution are one measurement.
    return adapt_config(plan, config).encode();
  }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    const dedisp::FdmtConfig cfg = config_of(config).adapted_to(plan);
    dedisp::dedisperse_fdmt(plan, cfg, in, out);
    EngineRun run;
    run.flop = dedisp::fdmt_flop(plan, cfg);
    return run;
  }

 private:
  dedisp::FdmtConfig default_config() const {
    dedisp::FdmtConfig cfg;
    cfg.split = options_.subband;
    return cfg;
  }
  /// The config a point selects: its axes where present, the engine's
  /// configured defaults where absent — the empty config (and any
  /// kernel-shaped config another engine tuned) runs the defaults.
  dedisp::FdmtConfig config_of(const EngineConfig& config) const {
    dedisp::FdmtConfig cfg = default_config();
    if (config.has("subbands")) {
      cfg.split.subbands = static_cast<std::size_t>(
          std::max<std::int64_t>(config.get("subbands", 1), 1));
    }
    if (config.has("coarse_step")) {
      cfg.split.coarse_step = static_cast<std::size_t>(
          std::max<std::int64_t>(config.get("coarse_step", 1), 1));
    }
    if (config.has("block")) {
      cfg.block = static_cast<std::size_t>(
          std::max<std::int64_t>(config.get("block", 1), 1));
    }
    return cfg;
  }
};

// ---------------------------------------------------------------- ocl_sim --

class OclSimEngine final : public KernelAxesEngine {
 public:
  explicit OclSimEngine(EngineOptions options)
      : KernelAxesEngine("ocl_sim", EngineCapabilities{.bitwise_exact = true},
                         std::move(options)),
        device_(options_.device.has_value() ? *options_.device
                                            : ocl::amd_hd7970()) {}

  std::string variant() const override {
    std::string name = device_.name;
    for (char& c : name) {
      if (c == '|' || c == ',' || c == '\n' || c == '\r' || c == ' ') c = '_';
    }
    return name.empty() ? "device" : name;
  }

  EngineRun execute_impl(const dedisp::Plan& plan, const EngineConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    const ocl::SimRunResult run = ocl::simulate_dedisp(
        device_, plan, decode_kernel_config(config), in, out);
    EngineRun result;
    result.counters = run.counters;
    return result;
  }

 private:
  const ocl::DeviceModel device_;
};

}  // namespace

namespace detail {

void register_builtin_engines(EngineRegistry& registry) {
  registry.add("cpu_tiled", [](const EngineOptions& options) {
    return std::make_shared<const CpuTiledEngine>(options);
  });
  registry.add("cpu_tiled_u8", [](const EngineOptions& options) {
    return std::make_shared<const CpuTiledU8Engine>(options);
  });
  registry.add("cpu_baseline", [](const EngineOptions& options) {
    return std::make_shared<const CpuBaselineEngine>(options);
  });
  registry.add("reference", [](const EngineOptions& options) {
    return std::make_shared<const ReferenceEngine>(options);
  });
  registry.add("subband", [](const EngineOptions& options) {
    return std::make_shared<const SubbandEngine>(options);
  });
  registry.add("fdmt", [](const EngineOptions& options) {
    return std::make_shared<const FdmtEngine>(options);
  });
  registry.add("ocl_sim", [](const EngineOptions& options) {
    return std::make_shared<const OclSimEngine>(options);
  });
}

}  // namespace detail

}  // namespace ddmc::engine
