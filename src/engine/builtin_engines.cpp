/// \file builtin_engines.cpp
/// \brief The six built-in execution paths, wrapped as DedispEngines.
///
/// This file is deliberately the only place in the library that calls the
/// concrete kernels (dedisperse_cpu, dedisperse_cpu_u8,
/// dedisperse_cpu_baseline, dedisperse_reference, dedisperse_subband,
/// simulate_dedisp): every
/// consumer above it dispatches through the DedispEngine interface, so a
/// grep for those symbols outside src/engine/ and src/dedisp/ should come
/// back empty — that is the refactor's invariant.

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/expect.hpp"
#include "common/simd.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/cpu_kernel_u8.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/reference.hpp"
#include "dedisp/subband.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/sim_dedisp.hpp"
#include "resilience/fault_injection.hpp"
#include "tuner/host_tuner.hpp"

namespace ddmc::engine {

namespace {

/// Shared state and shape checks; concrete engines add execute_impl() and
/// the odd override.
class EngineBase : public DedispEngine {
 public:
  EngineBase(std::string id, EngineCapabilities caps, EngineOptions options)
      : id_(std::move(id)), caps_(caps), options_(std::move(options)) {}

  const std::string& id() const override { return id_; }
  const EngineCapabilities& capabilities() const override { return caps_; }
  const EngineOptions& options() const override { return options_; }

  std::vector<dedisp::KernelConfig> config_space(
      const dedisp::Plan& plan) const override {
    (void)plan;
    return {dedisp::KernelConfig{1, 1, 1, 1}};
  }

 protected:
  void check_shapes(const dedisp::Plan& plan, ConstView2D<float> in,
                    View2D<float> out) const {
    DDMC_REQUIRE(in.rows() == plan.channels(),
                 "engine '" + id_ + "': input rows != plan channels");
    DDMC_REQUIRE(in.cols() >= plan.in_samples(),
                 "engine '" + id_ + "': input holds too few samples");
    DDMC_REQUIRE(out.rows() == plan.dms(),
                 "engine '" + id_ + "': output rows != trial DMs");
    DDMC_REQUIRE(out.cols() >= plan.out_samples(),
                 "engine '" + id_ + "': output too short");
    // Every builtin execute_impl() validates through here, making this the
    // engine-execute fault-injection seam: an armed "engine.execute"
    // failpoint fails the call before the kernel touches the output.
    DDMC_FAILPOINT("engine.execute");
  }

  const std::string id_;
  const EngineCapabilities caps_;
  const EngineOptions options_;
};

// -------------------------------------------------------------- cpu_tiled --

class CpuTiledEngine final : public EngineBase {
 public:
  explicit CpuTiledEngine(EngineOptions options)
      : EngineBase("cpu_tiled",
                   EngineCapabilities{.supports_sharding = true,
                                      .supports_streaming = true,
                                      .bitwise_exact = true,
                                      .tunable = true},
                   std::move(options)) {}

  std::string variant() const override {
    return options_.cpu.vectorize ? simd::backend_name() : "scalar";
  }

  std::vector<dedisp::KernelConfig> config_space(
      const dedisp::Plan& plan) const override {
    tuner::HostTuningOptions host;
    host.stage_rows = options_.cpu.stage_rows;
    host.vectorize = options_.cpu.vectorize;
    host.threads = options_.cpu.threads;
    return tuner::host_sweep_candidates(plan, host);
  }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    dedisp::dedisperse_cpu(plan, config, in, out, options_.cpu);
    return {};
  }
};

// ----------------------------------------------------------- cpu_tiled_u8 --

/// The tiled kernel on quantized 8-bit samples: the sample plane is one
/// byte per element from staging into the register tile, so the streamed
/// input traffic is a quarter of cpu_tiled's — the decisive saving for a
/// memory-bandwidth-bound kernel, and why real surveys record 8-bit data.
///
/// bitwise_exact is false — each sample carries up to quant.scale()/2 of
/// rounding, so an output element is within
/// dedisp::quantization_error_bound(plan, options.quant) of the float
/// reference — but the engine is still *deterministic*: quantization is
/// pointwise with fixed construction-time parameters and the raw-code
/// accumulation is exact integer arithmetic below 2^24, so streaming ==
/// batch and sharded == single remain bitwise identities of this engine.
class CpuTiledU8Engine final : public EngineBase {
 public:
  explicit CpuTiledU8Engine(EngineOptions options)
      : EngineBase(
            "cpu_tiled_u8",
            EngineCapabilities{.supports_sharding = true,
                               .supports_streaming = true,
                               .bitwise_exact = false,
                               .tunable = true,
                               .input_element_bytes = sizeof(std::uint8_t)},
            std::move(options)) {}

  std::string variant() const override {
    return options_.cpu.vectorize ? simd::backend_name() : "scalar";
  }

  std::vector<dedisp::KernelConfig> config_space(
      const dedisp::Plan& plan) const override {
    // Same tiling axes as cpu_tiled — the u8 kernel compiles the same
    // (elem_dm, unroll) register-tile ladder — but the optimum generally
    // differs (4× the samples per vector shift the staging/cache
    // trade-offs), which is exactly why the engine id is a cache-signature
    // axis and tune_guided races the two engines.
    tuner::HostTuningOptions host;
    host.stage_rows = options_.cpu.stage_rows;
    host.vectorize = options_.cpu.vectorize;
    host.threads = options_.cpu.threads;
    return tuner::host_sweep_candidates(plan, host);
  }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    // The engine contract hands samples as float, so quantize into the
    // byte plane the kernel consumes — an adapter for this library's float
    // front end; a survey recording 8-bit natively would feed the kernel
    // directly. The staging write is excluded from the engine's declared
    // traffic model, which counts the kernel's own streaming.
    //
    // The plane is thread-local scratch: a streaming session re-quantizes
    // every chunk, and a fresh allocation's page faults cost about as much
    // as the (vectorized) quantize pass itself. Thread-local keeps the
    // const engine shareable across shard workers without locking.
    static thread_local Array2D<std::uint8_t> plane;
    if (plane.rows() != plan.channels() ||
        plane.cols() != plan.in_samples()) {
      plane = Array2D<std::uint8_t>(plan.channels(), plan.in_samples());
    }
    dedisp::quantize_plane(in, options_.quant, plane.view());
    dedisp::dedisperse_cpu_u8(plan, config, plane.cview(), options_.quant,
                              out, options_.cpu);
    return {};
  }
};

// ----------------------------------------------------------- cpu_baseline --

class CpuBaselineEngine final : public EngineBase {
 public:
  explicit CpuBaselineEngine(EngineOptions options)
      : EngineBase("cpu_baseline",
                   EngineCapabilities{.supports_sharding = true,
                                      .supports_streaming = true,
                                      .bitwise_exact = true},
                   std::move(options)) {}

  std::string variant() const override { return "autovec"; }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    (void)config;  // no tunable kernel shape
    check_shapes(plan, in, out);
    dedisp::CpuBaselineOptions baseline;
    baseline.threads = options_.cpu.threads;
    dedisp::dedisperse_cpu_baseline(plan, in, out, baseline);
    return {};
  }
};

// -------------------------------------------------------------- reference --

class ReferenceEngine final : public EngineBase {
 public:
  explicit ReferenceEngine(EngineOptions options)
      : EngineBase("reference",
                   EngineCapabilities{.supports_sharding = true,
                                      .supports_streaming = true,
                                      .bitwise_exact = true},
                   std::move(options)) {}

  std::string variant() const override { return "serial"; }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    (void)config;
    check_shapes(plan, in, out);
    dedisp::dedisperse_reference(plan, in, out);
    return {};
  }
};

// ---------------------------------------------------------------- subband --

class SubbandEngine final : public EngineBase {
 public:
  explicit SubbandEngine(EngineOptions options)
      : EngineBase("subband",
                   EngineCapabilities{.supports_streaming = true,
                                      .input_padding = 2},
                   std::move(options)) {}

  std::string variant() const override { return simd::backend_name(); }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    (void)config;  // the subband split, not the tile shape, is the knob
    check_shapes(plan, in, out);
    const dedisp::SubbandConfig sub = options_.subband.adapted_to(plan);
    // The split delays may read up to input_padding columns past
    // in_samples. Callers that provide the worst-case padding (the
    // streaming chunker and the tuning evaluator do) take the direct path
    // without any extra work; for shorter inputs, compute the *exact*
    // requirement — usually at or near in_samples — and only stage into a
    // zero-padded copy when the input is genuinely short, which bounds the
    // tail error by the padding width instead of rejecting the input.
    if (in.cols() >= plan.in_samples() + caps_.input_padding) {
      dedisp::dedisperse_subband(plan, sub, in, out);
      return {};
    }
    const std::size_t required = dedisp::subband_min_input_samples(plan, sub);
    if (in.cols() >= required) {
      dedisp::dedisperse_subband(plan, sub, in, out);
      return {};
    }
    Array2D<float> padded(plan.channels(), required);  // zero-initialized
    for (std::size_t ch = 0; ch < in.rows(); ++ch) {
      std::memcpy(&padded(ch, 0), &in(ch, 0), in.cols() * sizeof(float));
    }
    dedisp::dedisperse_subband(plan, sub, padded.cview(), out);
    return {};
  }

};

// ---------------------------------------------------------------- ocl_sim --

class OclSimEngine final : public EngineBase {
 public:
  explicit OclSimEngine(EngineOptions options)
      : EngineBase("ocl_sim", EngineCapabilities{.bitwise_exact = true},
                   std::move(options)),
        device_(options_.device.has_value() ? *options_.device
                                            : ocl::amd_hd7970()) {}

  std::string variant() const override {
    std::string name = device_.name;
    for (char& c : name) {
      if (c == '|' || c == ',' || c == '\n' || c == '\r' || c == ' ') c = '_';
    }
    return name.empty() ? "device" : name;
  }

  EngineRun execute_impl(const dedisp::Plan& plan,
                         const dedisp::KernelConfig& config,
                         ConstView2D<float> in,
                         View2D<float> out) const override {
    check_shapes(plan, in, out);
    const ocl::SimRunResult run =
        ocl::simulate_dedisp(device_, plan, config, in, out);
    EngineRun result;
    result.counters = run.counters;
    return result;
  }

 private:
  const ocl::DeviceModel device_;
};

}  // namespace

namespace detail {

void register_builtin_engines(EngineRegistry& registry) {
  registry.add("cpu_tiled", [](const EngineOptions& options) {
    return std::make_shared<const CpuTiledEngine>(options);
  });
  registry.add("cpu_tiled_u8", [](const EngineOptions& options) {
    return std::make_shared<const CpuTiledU8Engine>(options);
  });
  registry.add("cpu_baseline", [](const EngineOptions& options) {
    return std::make_shared<const CpuBaselineEngine>(options);
  });
  registry.add("reference", [](const EngineOptions& options) {
    return std::make_shared<const ReferenceEngine>(options);
  });
  registry.add("subband", [](const EngineOptions& options) {
    return std::make_shared<const SubbandEngine>(options);
  });
  registry.add("ocl_sim", [](const EngineOptions& options) {
    return std::make_shared<const OclSimEngine>(options);
  });
}

}  // namespace detail

}  // namespace ddmc::engine
