#include "engine/registry.hpp"

#include "common/expect.hpp"

namespace ddmc::engine {

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::EngineRegistry() { detail::register_builtin_engines(*this); }

void EngineRegistry::add(const std::string& id, Factory factory) {
  DDMC_REQUIRE(!id.empty(), "engine id must be non-empty");
  DDMC_REQUIRE(static_cast<bool>(factory),
               "engine '" + id + "' needs a factory");
  std::lock_guard<std::mutex> lock(mutex_);
  DDMC_REQUIRE(factories_.find(id) == factories_.end(),
               "engine '" + id + "' is already registered");
  factories_.emplace(id, std::move(factory));
}

bool EngineRegistry::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(id) != factories_.end();
}

std::vector<std::string> EngineRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [id, factory] : factories_) names.push_back(id);
  return names;  // std::map iterates sorted
}

std::shared_ptr<const DedispEngine> EngineRegistry::create(
    const std::string& id, const EngineOptions& options) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(id);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [name, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      DDMC_REQUIRE(false, "unknown engine '" + id +
                              "'; registered engines: " + known);
    }
    factory = it->second;
  }
  std::shared_ptr<const DedispEngine> engine = factory(options);
  DDMC_ENSURE(engine != nullptr, "engine factory '" + id + "' returned null");
  // The id is the tuning cache's engine axis: an engine that reports a
  // different id than it was registered under would share another engine's
  // cached optima (a wrapper returning the wrapped engine's id is the easy
  // mistake). Enforce the invariant at the only creation point.
  DDMC_REQUIRE(engine->id() == id,
               "engine factory registered as '" + id +
                   "' produced an engine reporting id '" + engine->id() +
                   "'");
  return engine;
}

}  // namespace ddmc::engine
