#include "engine/engine_config.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace ddmc::engine {

std::string EngineConfig::encode() const {
  if (axes.empty()) return "-";
  std::string out;
  for (const auto& [name, value] : axes) {
    if (!out.empty()) out += ';';
    out += name + "=" + std::to_string(value);
  }
  return out;
}

std::optional<EngineConfig> EngineConfig::decode(const std::string& text) {
  EngineConfig config;
  if (text == "-") return config;
  if (text.empty()) return std::nullopt;
  std::istringstream ss(text);
  std::string pair;
  while (std::getline(ss, pair, ';')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string name = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    // Axis names must stay safe inside the cache signatures and the CSV.
    for (const char c : name) {
      if (c == ',' || c == '|' || c == ';' || std::isspace(
              static_cast<unsigned char>(c))) {
        return std::nullopt;
      }
    }
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(value, &pos);
      if (pos != value.size() || value.empty()) return std::nullopt;
      config.axes[name] = static_cast<std::int64_t>(v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return config;
}

EngineConfig normalized(const EngineConfig& config,
                        const std::vector<AxisSpec>& axes) {
  EngineConfig out = config;
  for (const AxisSpec& axis : axes) {
    const auto it = out.axes.find(axis.name);
    if (it != out.axes.end() && it->second == axis.default_value) {
      out.axes.erase(it);
    }
  }
  return out;
}

EngineConfig restrict_to_axes(const EngineConfig& config,
                              const std::vector<AxisSpec>& axes) {
  EngineConfig out;
  for (const AxisSpec& axis : axes) {
    const auto it = config.axes.find(axis.name);
    if (it != config.axes.end()) out.axes[axis.name] = it->second;
  }
  return out;
}

namespace {

/// The neutral value of each kernel axis — the value a default-constructed
/// KernelConfig carries, omitted from the canonical encoding.
constexpr std::int64_t kKernelAxisDefaults[] = {1, 1, 1, 1, 0, 1};

std::size_t kernel_axis_value(const dedisp::KernelConfig& config,
                              std::size_t axis) {
  switch (axis) {
    case 0: return config.wi_time;
    case 1: return config.wi_dm;
    case 2: return config.elem_time;
    case 3: return config.elem_dm;
    case 4: return config.channel_block;
    default: return config.unroll;
  }
}

}  // namespace

EngineConfig encode_kernel_config(const dedisp::KernelConfig& config) {
  EngineConfig out;
  for (std::size_t a = 0; a < std::size(kKernelAxisNames); ++a) {
    const auto value =
        static_cast<std::int64_t>(kernel_axis_value(config, a));
    if (value != kKernelAxisDefaults[a]) {
      out.axes[kKernelAxisNames[a]] = value;
    }
  }
  return out;
}

dedisp::KernelConfig decode_kernel_config(const EngineConfig& config) {
  dedisp::KernelConfig kc;
  const auto axis = [&](std::size_t a) {
    return static_cast<std::size_t>(std::max<std::int64_t>(
        config.get(kKernelAxisNames[a], kKernelAxisDefaults[a]), 0));
  };
  kc.wi_time = axis(0);
  kc.wi_dm = axis(1);
  kc.elem_time = axis(2);
  kc.elem_dm = axis(3);
  kc.channel_block = axis(4);
  kc.unroll = axis(5);
  return kc;
}

std::vector<AxisSpec> kernel_config_axes(
    const std::vector<dedisp::KernelConfig>& candidates) {
  // Descent order of the tiled engines: the cheap cache-behaviour knobs
  // first (they move performance the most, so the incumbent drops early
  // and later axis sweeps abort more repetitions).
  constexpr std::size_t kOrder[] = {4, 5, 3, 2, 0, 1};
  std::vector<AxisSpec> axes;
  axes.reserve(std::size(kOrder));
  for (const std::size_t a : kOrder) {
    AxisSpec spec;
    spec.name = kKernelAxisNames[a];
    spec.default_value = kKernelAxisDefaults[a];
    std::set<std::int64_t> values;
    for (const dedisp::KernelConfig& cfg : candidates) {
      values.insert(static_cast<std::int64_t>(kernel_axis_value(cfg, a)));
    }
    spec.values.assign(values.begin(), values.end());
    axes.push_back(std::move(spec));
  }
  return axes;
}

}  // namespace ddmc::engine
