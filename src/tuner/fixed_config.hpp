#pragma once
/// \file fixed_config.hpp
/// \brief The best "fixed" (manually tuned) configuration of §V-D.
///
/// "This manually optimized version uses a 'fixed' configuration, i.e. it
/// uses the configuration that, working on all input instances, maximizes
/// the sum of achieved GFLOP/s. We find the best possible fixed version with
/// auto-tuning. This configuration is different for each accelerator and
/// observational setup." Figures 13/14 then report tuned/fixed speedups.

#include <vector>

#include "dedisp/kernel_config.hpp"
#include "ocl/perf_model.hpp"

namespace ddmc::tuner {

struct FixedConfigResult {
  dedisp::KernelConfig config;
  double total_gflops = 0.0;              ///< Σ GFLOP/s across instances
  std::vector<double> per_instance_gflops; ///< aligned with the input plans
};

/// Select the configuration maximizing the summed GFLOP/s across all
/// \p instances (each a PlanAnalysis for one #DMs), among configurations
/// valid on *every* instance. Throws ddmc::config_error if none exists.
FixedConfigResult best_fixed_config(
    const ocl::DeviceModel& device,
    const std::vector<const ocl::PlanAnalysis*>& instances);

}  // namespace ddmc::tuner
