#include "tuner/strategy.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/expect.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "engine/registry.hpp"
#include "tuner/search_space.hpp"

namespace ddmc::tuner {

namespace {

/// Fill best/stats/chebyshev from the completed timings. The winner is the
/// lowest *measured seconds* (a non-positive seconds — possible only in
/// synthetic evaluators — never wins); the GFLOP/s statistics stay for the
/// paper's population analysis.
void finalize(StrategyResult& result) {
  DDMC_ENSURE(!result.timings.empty(), "search measured no configuration");
  const auto rank = [](const ConfigTiming& t) {
    return t.seconds > 0.0 ? t.seconds
                           : std::numeric_limits<double>::infinity();
  };
  RunningStats stats;
  const ConfigTiming* best = &result.timings.front();
  for (const ConfigTiming& t : result.timings) {
    stats.add(t.gflops);
    if (rank(t) < rank(*best)) best = &t;
  }
  result.best = *best;
  result.stats.count = stats.count();
  result.stats.mean = stats.mean();
  result.stats.stddev = stats.stddev();
  result.stats.min = stats.min();
  result.stats.max = stats.max();
  result.stats.snr_of_max =
      snr(result.stats.max, result.stats.mean, result.stats.stddev);
  result.chebyshev_p = chebyshev_bound(result.stats.snr_of_max);
}

ConfigTiming to_timing(const dedisp::Plan& plan,
                       const engine::EngineConfig& config, double seconds) {
  ConfigTiming t;
  t.config = config;
  t.seconds = seconds;
  t.gflops = plan.total_flop() / seconds * 1e-9;
  return t;
}

}  // namespace

// ------------------------------------------------------------- evaluator --

namespace {

/// The engine the single-plan constructor measures: the tiled host kernel
/// under the caller's host-execution flags.
std::shared_ptr<const engine::DedispEngine> default_tuning_engine(
    const HostTuningOptions& options) {
  engine::EngineOptions engine_options;
  engine_options.cpu.stage_rows = options.stage_rows;
  engine_options.cpu.vectorize = options.vectorize;
  engine_options.cpu.threads = options.threads;
  return engine::make_engine(engine::kDefaultEngineId, engine_options);
}

}  // namespace

HostKernelEvaluator::HostKernelEvaluator(const dedisp::Plan& plan,
                                         const HostTuningOptions& options,
                                         std::uint64_t seed)
    : HostKernelEvaluator(default_tuning_engine(options), plan, options,
                          seed) {}

HostKernelEvaluator::HostKernelEvaluator(
    std::shared_ptr<const engine::DedispEngine> engine,
    const dedisp::Plan& plan, const HostTuningOptions& options,
    std::uint64_t seed)
    : engine_(std::move(engine)),
      plan_(plan),
      options_(options),
      input_(plan.channels(),
             plan.in_samples() + engine_->capabilities().input_padding),
      output_(plan.dms(), plan.out_samples()) {
  DDMC_REQUIRE(options_.repetitions > 0, "need at least one timed run");
  Rng rng(seed);
  for (std::size_t ch = 0; ch < input_.rows(); ++ch) {
    for (auto& v : input_.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
}

ConfigEvaluator::Measurement HostKernelEvaluator::measure(
    const engine::EngineConfig& config, double incumbent_seconds) {
  ++measurements_;
  for (std::size_t i = 0; i < options_.warmup_runs; ++i) {
    engine_->execute(plan_, config, input_.cview(), output_.view());
  }
  Measurement m;
  double total = 0.0;
  const auto reps = static_cast<double>(options_.repetitions);
  for (std::size_t i = 0; i < options_.repetitions; ++i) {
    Stopwatch clock;
    engine_->execute(plan_, config, input_.cview(), output_.view());
    total += clock.seconds();
    ++m.repetitions;
    // Even if every remaining repetition took zero time, the mean over the
    // full repetition count would already exceed the incumbent: this config
    // cannot win, stop burning time on it.
    if (total / reps > incumbent_seconds &&
        m.repetitions < options_.repetitions) {
      m.aborted = true;
      break;
    }
  }
  m.seconds = total / static_cast<double>(m.repetitions);
  m.lower_bound_seconds = m.aborted ? total / reps : m.seconds;
  return m;
}

std::string HostKernelEvaluator::key(const engine::EngineConfig& config) {
  return engine_->config_key(plan_, config);
}

// ------------------------------------------------------------ exhaustive --

StrategyResult ExhaustiveSearch::search(
    const dedisp::Plan& plan, const std::vector<engine::AxisSpec>& axes,
    const std::vector<engine::EngineConfig>& candidates,
    ConfigEvaluator& evaluator) const {
  (void)axes;
  DDMC_REQUIRE(!candidates.empty(), "no candidate configurations");
  StrategyResult result;
  result.candidates = candidates.size();
  result.timings.reserve(candidates.size());
  for (const engine::EngineConfig& cfg : candidates) {
    const auto m = evaluator.measure(cfg, ConfigEvaluator::kNoIncumbent);
    ++result.evaluated;
    result.timings.push_back(to_timing(plan, cfg, m.seconds));
  }
  finalize(result);
  return result;
}

// ---------------------------------------------------------------- random --

StrategyResult RandomSearch::search(
    const dedisp::Plan& plan, const std::vector<engine::AxisSpec>& axes,
    const std::vector<engine::EngineConfig>& candidates,
    ConfigEvaluator& evaluator) const {
  (void)axes;
  DDMC_REQUIRE(!candidates.empty(), "no candidate configurations");
  DDMC_REQUIRE(samples_ > 0, "RandomSearch needs at least one sample");
  StrategyResult result;
  result.candidates = candidates.size();

  // Partial Fisher–Yates: the first n slots of `order` become a uniform
  // sample without replacement, deterministically from the seed.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed_);
  const std::size_t n = std::min(samples_, candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(order.size() - i));
    std::swap(order[i], order[j]);
  }

  result.timings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const engine::EngineConfig& cfg = candidates[order[i]];
    const auto m = evaluator.measure(cfg, ConfigEvaluator::kNoIncumbent);
    ++result.evaluated;
    result.timings.push_back(to_timing(plan, cfg, m.seconds));
  }
  finalize(result);
  return result;
}

// --------------------------------------------------- coordinate descent --

StrategyResult CoordinateDescent::search(
    const dedisp::Plan& plan, const std::vector<engine::AxisSpec>& axes,
    const std::vector<engine::EngineConfig>& candidates,
    ConfigEvaluator& evaluator) const {
  DDMC_REQUIRE(!candidates.empty(), "no candidate configurations");
  StrategyResult result;
  result.candidates = candidates.size();

  // Membership is by the evaluator's dedup key (the engine's config_key),
  // so an axis move that lands on a config whose execution we already
  // measured under a different encoding resolves to that measurement
  // instead of a duplicate timing.
  std::map<std::string, std::size_t> by_key;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    by_key.emplace(evaluator.key(candidates[i]), i);
  }

  // Per-axis ladders: the engine's declared values, extended with any
  // value the candidate list actually uses (caller-supplied candidates
  // may sit off the declared ladder).
  std::vector<std::vector<std::int64_t>> ladders(axes.size());
  for (std::size_t a = 0; a < axes.size(); ++a) {
    std::set<std::int64_t> values(axes[a].values.begin(),
                                  axes[a].values.end());
    for (const engine::EngineConfig& cfg : candidates) {
      values.insert(cfg.get(axes[a].name, axes[a].default_value));
    }
    ladders[a].assign(values.begin(), values.end());
  }

  // Memo: candidate index -> last measurement, so no execution is timed
  // twice — unless an earlier early-abort proved too little. An aborted
  // entry only records a *floor* on the true mean; when a later restart
  // asks whether the config beats a threshold above that floor, the
  // question is genuinely open and the config is re-measured against the
  // new threshold.
  struct Memoized {
    double seconds = 0.0;
    double lower_bound = 0.0;
    bool aborted = false;
  };
  std::map<std::size_t, Memoized> memo;

  // Measure candidate i against \p threshold (the current point of the
  // descent asking the question).
  auto measure_index = [&](std::size_t i, double threshold) -> Memoized {
    auto it = memo.find(i);
    if (it != memo.end() &&
        (!it->second.aborted || it->second.lower_bound >= threshold)) {
      return it->second;
    }
    const auto m = evaluator.measure(candidates[i], threshold);
    ++result.evaluated;
    if (it != memo.end()) --result.evaluated;  // re-measure, not a new config
    Memoized entry{m.seconds, m.lower_bound_seconds, m.aborted};
    if (m.aborted) {
      if (it == memo.end()) ++result.aborted;
    } else {
      if (it != memo.end() && it->second.aborted) --result.aborted;
      result.timings.push_back(to_timing(plan, candidates[i], m.seconds));
    }
    memo.insert_or_assign(i, entry);
    return entry;
  };

  // One hill-climb from the best of `probes` fresh seeded probes; restarts
  // rerun it to escape local optima, sharing rng, memo and stats.
  Rng rng(seed_);
  std::size_t best_index = candidates.size();
  double best_seconds = ConfigEvaluator::kNoIncumbent;
  const std::size_t probes =
      std::max<std::size_t>(1, std::min(probes_, candidates.size()));

  auto descend_once = [&] {
    std::size_t cur = 0;
    double cur_seconds = ConfigEvaluator::kNoIncumbent;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto i =
          static_cast<std::size_t>(rng.next_below(candidates.size()));
      const Memoized m = measure_index(i, cur_seconds);
      if (!m.aborted && m.seconds < cur_seconds) {
        cur = i;
        cur_seconds = m.seconds;
      }
    }
    if (cur_seconds >= ConfigEvaluator::kNoIncumbent) return;

    // Cycle the axes; line-search each along its ladder while improving.
    for (std::size_t round = 0; round < max_rounds_; ++round) {
      bool improved = false;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        const std::vector<std::int64_t>& ladder = ladders[a];
        if (ladder.size() < 2) continue;
        for (int dir : {+1, -1}) {
          bool moved = true;
          while (moved) {
            moved = false;
            const std::int64_t cur_value =
                candidates[cur].get(axes[a].name, axes[a].default_value);
            const auto pos = static_cast<std::size_t>(
                std::lower_bound(ladder.begin(), ladder.end(), cur_value) -
                ladder.begin());
            // Step outward along the ladder until a value yields a valid
            // candidate (intermediate values may be invalid for this plan
            // with the other axes fixed).
            for (std::size_t step = 1;; ++step) {
              const std::ptrdiff_t j =
                  static_cast<std::ptrdiff_t>(pos) +
                  dir * static_cast<std::ptrdiff_t>(step);
              if (j < 0 || j >= static_cast<std::ptrdiff_t>(ladder.size())) {
                break;
              }
              engine::EngineConfig neighbor = candidates[cur];
              neighbor.set(axes[a].name,
                           ladder[static_cast<std::size_t>(j)]);
              const auto it = by_key.find(evaluator.key(neighbor));
              if (it == by_key.end()) continue;  // invalid; keep stepping
              const Memoized m = measure_index(it->second, cur_seconds);
              if (!m.aborted && m.seconds < cur_seconds) {
                cur = it->second;
                cur_seconds = m.seconds;
                improved = true;
                moved = true;  // keep walking this direction from here
              }
              break;  // measured (or rejected) the nearest valid neighbor
            }
          }
        }
      }
      if (!improved) break;
    }
    if (cur_seconds < best_seconds) {
      best_index = cur;
      best_seconds = cur_seconds;
    }
  };

  for (std::size_t start = 0; start < 1 + restarts_; ++start) {
    descend_once();
  }
  DDMC_ENSURE(best_index < candidates.size(),
              "coordinate descent failed to measure a starting point");

  finalize(result);
  return result;
}

std::unique_ptr<SearchStrategy> make_strategy(StrategyKind kind,
                                              std::size_t random_samples,
                                              std::uint64_t seed) {
  switch (kind) {
    case StrategyKind::kExhaustive:
      return std::make_unique<ExhaustiveSearch>();
    case StrategyKind::kRandom:
      return std::make_unique<RandomSearch>(random_samples, seed);
    case StrategyKind::kCoordinateDescent:
      return std::make_unique<CoordinateDescent>(seed);
  }
  throw invalid_argument("unknown strategy kind");
}

}  // namespace ddmc::tuner
