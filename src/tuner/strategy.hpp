#pragma once
/// \file strategy.hpp
/// \brief Guided search strategies over the measured configuration space.
///
/// The paper's method is exhaustive: every meaningful configuration is
/// timed and the fastest kept (§IV-A). That is minutes of CPU time for a
/// full host sweep — too slow for a streaming session that wants to
/// self-tune at startup. Sclocco et al.'s follow-up work and Novotný et
/// al. both observe that the optima live in a small structured region of
/// the space, so a guided search recovers a near-optimal configuration at
/// a fraction of the sweep cost. This module separates the two concerns:
///
///  - a ConfigEvaluator measures one configuration (the real
///    HostKernelEvaluator times a DedispEngine; tests plug in
///    deterministic synthetic evaluators);
///  - a SearchStrategy decides *which* configurations to measure:
///    ExhaustiveSearch (the paper's method), RandomSearch (N sampled
///    configs, quality bounded via Chebyshev over the sampled population)
///    and CoordinateDescent (hill-climb each declared axis with
///    early-abort repetitions that stop timing a config as soon as its
///    partial mean proves it cannot beat the incumbent).
///
/// Strategies are engine-agnostic: they walk whatever axes the engine
/// declares (engine::AxisSpec) over whatever candidates it enumerates, and
/// rank by *measured seconds* — the only scale on which configurations of
/// different engines are comparable. GFLOP/s is derived for display.
///
/// Strategies measure each distinct execution at most once: membership and
/// memoization are keyed by ConfigEvaluator::key(), which the real
/// evaluator delegates to the engine's config_key() — so axis moves that
/// collapse onto an already-measured execution are free.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/array2d.hpp"
#include "common/statistics.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine_config.hpp"
#include "tuner/host_tuner.hpp"

namespace ddmc::engine {
class DedispEngine;
}  // namespace ddmc::engine

namespace ddmc::tuner {

/// Measurement backend: times one configuration on one plan.
class ConfigEvaluator {
 public:
  struct Measurement {
    /// Mean seconds over the *completed* repetitions. When aborted, this is
    /// an optimistic estimate of a config already proven slower than the
    /// incumbent, not a final figure.
    double seconds = 0.0;
    /// Proven floor on the true mean: equal to `seconds` for a completed
    /// measurement; for an aborted one, the partial total divided by the
    /// full repetition count (the bound that triggered the abort). A
    /// config whose floor exceeds a threshold can be rejected against that
    /// threshold without re-measuring.
    double lower_bound_seconds = 0.0;
    std::size_t repetitions = 0;  ///< repetitions actually timed
    bool aborted = false;         ///< stopped early against the incumbent
  };

  virtual ~ConfigEvaluator() = default;

  /// Measure \p config. \p incumbent_seconds is the best mean seen so far
  /// (infinity disables early abort): implementations may stop timing once
  /// the repetitions already spent prove the mean over the full repetition
  /// count must exceed the incumbent.
  virtual Measurement measure(const engine::EngineConfig& config,
                              double incumbent_seconds) = 0;

  /// Deduplication key of \p config: two configs with equal keys run the
  /// identical execution, so strategies time only one of them. The real
  /// evaluator delegates to the engine's config_key().
  virtual std::string key(const engine::EngineConfig& config) {
    return config.encode();
  }

  static constexpr double kNoIncumbent =
      std::numeric_limits<double>::infinity();
};

/// The real evaluator: wall-clock timing of a DedispEngine, one shared
/// deterministic input/output pair for the whole search (exactly the
/// measurement loop of the paper's method). The input is sized for the
/// engine's declared input_padding, and GFLOP/s is always credited on
/// plan.total_flop(), so measurements of *different* engines on one plan
/// rank them by wall time.
class HostKernelEvaluator : public ConfigEvaluator {
 public:
  /// Measure the default tiled host engine under \p options.
  HostKernelEvaluator(const dedisp::Plan& plan,
                      const HostTuningOptions& options,
                      std::uint64_t seed = 42);

  /// Measure \p engine (any registry engine).
  HostKernelEvaluator(std::shared_ptr<const engine::DedispEngine> engine,
                      const dedisp::Plan& plan,
                      const HostTuningOptions& options,
                      std::uint64_t seed = 42);

  Measurement measure(const engine::EngineConfig& config,
                      double incumbent_seconds) override;

  std::string key(const engine::EngineConfig& config) override;

  std::size_t measurements() const { return measurements_; }

 private:
  std::shared_ptr<const engine::DedispEngine> engine_;
  const dedisp::Plan& plan_;
  HostTuningOptions options_;
  Array2D<float> input_;
  Array2D<float> output_;
  std::size_t measurements_ = 0;
};

/// One completed measurement: an engine-native config and its timing.
struct ConfigTiming {
  engine::EngineConfig config;
  double seconds = 0.0;  ///< mean of the timed repetitions
  double gflops = 0.0;   ///< paper metric on the mean time (display only)
};

/// Outcome of one strategy run over one candidate space.
struct StrategyResult {
  /// The candidate with the lowest measured seconds — *wall time*, not
  /// GFLOP/s, decides: on one plan the two rank identically within one
  /// engine, but seconds is the scale that stays comparable across
  /// engines (and across differently-credited cache entries).
  ConfigTiming best;
  std::size_t candidates = 0;  ///< size of the (deduplicated) search space
  std::size_t evaluated = 0;   ///< distinct configs timed (incl. aborted)
  std::size_t aborted = 0;     ///< of which stopped by early abort
  StatsSummary stats;          ///< over GFLOP/s of the completed timings
  std::vector<ConfigTiming> timings;  ///< completed measurements only
  /// Chebyshev upper bound on the probability that a uniformly guessed
  /// configuration performs at least as far above the population mean as
  /// the found optimum (the paper's guessing argument, §IV-C).
  double chebyshev_p = 1.0;
};

/// A search policy over a fixed candidate list. \p axes is the engine's
/// declared parameterization (CoordinateDescent walks their ladders;
/// space-sampling strategies ignore it). Candidates must already be valid
/// for the plan and deduplicated (engines enumerate them so); strategies
/// never re-measure a configuration they have seen.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual std::string name() const = 0;
  virtual StrategyResult search(
      const dedisp::Plan& plan, const std::vector<engine::AxisSpec>& axes,
      const std::vector<engine::EngineConfig>& candidates,
      ConfigEvaluator& evaluator) const = 0;
};

/// The paper's method: measure every candidate, keep the fastest. Retains
/// the full population (histograms, SNR-of-optimum, Chebyshev).
class ExhaustiveSearch : public SearchStrategy {
 public:
  std::string name() const override { return "exhaustive"; }
  StrategyResult search(const dedisp::Plan& plan,
                        const std::vector<engine::AxisSpec>& axes,
                        const std::vector<engine::EngineConfig>& candidates,
                        ConfigEvaluator& evaluator) const override;
};

/// Measure \p samples candidates drawn uniformly without replacement
/// (seeded, deterministic). The sampled population's statistics bound the
/// chance that an unseen configuration beats the sampled optimum by the
/// same margin (StrategyResult::chebyshev_p).
class RandomSearch : public SearchStrategy {
 public:
  explicit RandomSearch(std::size_t samples, std::uint64_t seed = 42)
      : samples_(samples), seed_(seed) {}

  std::string name() const override { return "random"; }
  StrategyResult search(const dedisp::Plan& plan,
                        const std::vector<engine::AxisSpec>& axes,
                        const std::vector<engine::EngineConfig>& candidates,
                        ConfigEvaluator& evaluator) const override;

 private:
  std::size_t samples_;
  std::uint64_t seed_;
};

/// Hill-climb each declared axis in turn: from a seeded random probe of
/// the space, line-search every axis along its ladder of values, moving
/// while the measured time improves, until a full round over all axes
/// finds nothing better. Every non-probe measurement passes the current
/// point's time to the evaluator as the abort threshold, so hopeless
/// configs are abandoned after a partial repetition count (early abort).
/// `restarts` additional descents from fresh seeded probes escape local
/// optima; all restarts share the measurement memo, so re-entering an
/// explored basin costs nothing.
class CoordinateDescent : public SearchStrategy {
 public:
  explicit CoordinateDescent(std::uint64_t seed = 42,
                             std::size_t probes = 6,
                             std::size_t max_rounds = 16,
                             std::size_t restarts = 2)
      : seed_(seed),
        probes_(probes),
        max_rounds_(max_rounds),
        restarts_(restarts) {}

  std::string name() const override { return "coordinate-descent"; }
  StrategyResult search(const dedisp::Plan& plan,
                        const std::vector<engine::AxisSpec>& axes,
                        const std::vector<engine::EngineConfig>& candidates,
                        ConfigEvaluator& evaluator) const override;

 private:
  std::uint64_t seed_;
  std::size_t probes_;
  std::size_t max_rounds_;
  std::size_t restarts_;
};

/// Factory used by the cache-guided entry point and the strategy bench.
enum class StrategyKind { kExhaustive, kRandom, kCoordinateDescent };

std::unique_ptr<SearchStrategy> make_strategy(StrategyKind kind,
                                              std::size_t random_samples = 64,
                                              std::uint64_t seed = 42);

}  // namespace ddmc::tuner
