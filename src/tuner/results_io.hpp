#pragma once
/// \file results_io.hpp
/// \brief Persistence of tuning results (CSV), so pipelines can reuse the
/// tuples found by a sweep instead of re-tuning — the paper's "output of
/// this experiment is a set of tuples representing the optimal configuration
/// … for every combination of platform, observational setup and input
/// instance" (§IV-A).

#include <iosfwd>
#include <string>
#include <vector>

#include "tuner/tuner.hpp"

namespace ddmc::tuner {

/// One persisted row: the optimal tuple plus its headline statistics.
struct ResultRow {
  std::string device;
  std::string observation;
  std::size_t dms = 0;
  dedisp::KernelConfig config;
  double gflops = 0.0;
  double seconds = 0.0;
  double snr = 0.0;
  std::size_t evaluated = 0;

  friend bool operator==(const ResultRow&, const ResultRow&) = default;
};

ResultRow to_row(const TuningResult& result);

/// Write rows as CSV, led by a schema line ("# ddmc-tuner-results v2
/// cols=13") and a fixed column header.
void save_results(std::ostream& os, const std::vector<ResultRow>& rows);

/// Parse rows written by save_results. Throws ddmc::invalid_argument with a
/// precise diagnosis on malformed input: a missing or version-mismatched
/// schema line (a file written by an older build), a column count that does
/// not match this build's schema, or non-numeric fields.
std::vector<ResultRow> load_results(std::istream& is);

}  // namespace ddmc::tuner
