#pragma once
/// \file results_io.hpp
/// \brief Persistence of tuning results (CSV), so pipelines can reuse the
/// tuples found by a sweep instead of re-tuning — the paper's "output of
/// this experiment is a set of tuples representing the optimal configuration
/// … for every combination of platform, observational setup and input
/// instance" (§IV-A).

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/engine_config.hpp"
#include "tuner/tuner.hpp"

namespace ddmc::tuner {

/// One persisted row: the optimal tuple plus its headline statistics. The
/// config is engine-native (named axis=value pairs), so a row can carry a
/// subband split or a quantization window as naturally as a kernel shape.
struct ResultRow {
  std::string device;
  std::string observation;
  std::size_t dms = 0;
  engine::EngineConfig config;
  double gflops = 0.0;
  double seconds = 0.0;
  double snr = 0.0;
  std::size_t evaluated = 0;

  friend bool operator==(const ResultRow&, const ResultRow&) = default;
};

ResultRow to_row(const TuningResult& result);

/// Write rows as CSV, led by a schema line ("# ddmc-tuner-results v3
/// cols=8") and a fixed column header. The config cell is the
/// EngineConfig encoding ("name=value;…", "-" when empty) — ','-free by
/// construction, so it stays a single CSV cell.
void save_results(std::ostream& os, const std::vector<ResultRow>& rows);

/// Parse rows written by save_results. v2 files (13 columns, one column
/// per kernel axis) still load: their six axis columns migrate into an
/// EngineConfig as the kernel axes, with neutral values omitted — a legacy
/// untuned row becomes the empty config, valid for every engine. Throws
/// ddmc::invalid_argument with a precise diagnosis on malformed input: a
/// missing schema line (a file written by a pre-v2 build), an unknown
/// schema version, a column count that does not match the declared schema,
/// or non-numeric fields.
std::vector<ResultRow> load_results(std::istream& is);

}  // namespace ddmc::tuner
