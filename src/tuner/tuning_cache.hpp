#pragma once
/// \file tuning_cache.hpp
/// \brief Persistent cache of tuned configurations, keyed by host and plan
/// signatures, with nearest-neighbor transfer across plans.
///
/// The paper's tuples — "the optimal configuration … for every combination
/// of platform, observational setup and input instance" (§IV-A) — are worth
/// keeping: Sclocco et al.'s follow-up shows tuned configurations transfer
/// across observational setups, so a cache answers most tuning requests
/// without measuring anything. The lookup ladder of tune_guided:
///
///   1. exact hit   — same host signature, same plan signature: reuse the
///                    stored config, zero measurements;
///   2. transfer    — same host signature, *closest* cached plan by
///                    log-space distance over (channels, samples/s, output
///                    samples, DMs, DM span) whose config validates against
///                    the requested plan: reuse its config, zero
///                    measurements;
///   3. guided search — fall back to a SearchStrategy (CoordinateDescent
///                    by default) over the engine's declared config space,
///                    and store the winner for next time.
///
/// Persistence is layered on results_io's v3 CSV: the host signature is
/// encoded in the `device` column, the plan signature in the
/// `observation` column and the engine-native config in the `config`
/// column, so a cache file is an ordinary results file that the existing
/// diagnostics (schema line, column counts, v2 migration) already cover.

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine.hpp"
#include "tuner/strategy.hpp"

namespace ddmc::tuner {

/// What the tuned numbers were measured *on*: the registry engine id (a
/// first-class tuning axis — platform choice is itself a tuning decision),
/// its execution variant (the compiled SIMD backend, the scalar loop, a
/// device preset), the staging mode and the thread count. Configs tuned
/// under a different engine do not transfer — an AVX optimum says little
/// about the scalar loop, and nothing about the subband split — so every
/// cache operation filters on this first.
struct HostSignature {
  std::string engine_id = engine::kDefaultEngineId;  ///< registry id
  std::string variant;     ///< DedispEngine::variant() of the measured run
  std::size_t threads = 0; ///< CpuKernelOptions::threads (0 = machine pool)
  bool stage_rows = true;

  /// Signature of \p engine as configured (id, variant, thread count and
  /// staging mode from its options).
  static HostSignature of(const engine::DedispEngine& engine);

  /// Signature of the default cpu_tiled engine under \p options.
  static HostSignature of(const dedisp::CpuKernelOptions& options);

  /// "engine_id|variant|t<threads>|staged" — the cache's `device` column.
  /// decode() also accepts the legacy three-part "variant|t<threads>|staged"
  /// form (caches written before the engine axis existed), which maps to
  /// the cpu_tiled engine.
  std::string encode() const;
  static std::optional<HostSignature> decode(const std::string& text);

  friend bool operator==(const HostSignature&, const HostSignature&) =
      default;
};

/// The instance parameters a tuned config depends on: channel count,
/// sampling time, output window, and the trial-DM grid.
struct PlanSignature {
  std::string observation;  ///< setup name (informational, not a key field)
  std::size_t channels = 0;
  std::size_t out_samples = 0;
  std::size_t dms = 0;
  double sampling_rate = 0.0;  ///< samples per second (1 / sampling time)
  double dm_first = 0.0;
  double dm_step = 0.0;

  static PlanSignature of(const dedisp::Plan& plan);

  /// "name|ch=…|sps=…|out=…|dms=…|dm0=…|ddm=…" — the `observation` column.
  std::string encode() const;
  static std::optional<PlanSignature> decode(const std::string& text);

  friend bool operator==(const PlanSignature&, const PlanSignature&) =
      default;
};

/// Squared log-space distance between two plan signatures over (channels,
/// sampling rate, output samples, DMs, DM span). Log-space because every
/// quantity matters multiplicatively: 512→1024 channels is as big a move
/// as 1024→2048.
double plan_distance(const PlanSignature& a, const PlanSignature& b);

/// One cached tuple. The config is engine-native: named axis=value pairs
/// that only the entry's engine (host.engine_id) interprets — a kernel
/// shape for the tiled engines, a channel split for the subband engine.
struct CacheEntry {
  HostSignature host;
  PlanSignature plan;
  engine::EngineConfig config;
  double gflops = 0.0;
  double seconds = 0.0;
  std::size_t evaluated = 0;  ///< configs the producing search measured
};

/// In-memory or file-backed store of tuned tuples. File-backed caches load
/// eagerly at construction and rewrite the file on every store (caches are
/// small — one row per (host, plan) pair).
///
/// Thread-safe for concurrent lookups and stores on one instance: the
/// sharded executor's workers tune per-shard plans against a shared cache,
/// so every operation holds an internal mutex, and the file is rewritten
/// via a temp file + atomic rename — a concurrent reader (or a crash
/// mid-write) sees either the old or the new complete file, never an
/// interleaved/truncated CSV. Distinct *processes* writing one path still
/// last-writer-win whole files, but can no longer corrupt them.
class TuningCache {
 public:
  /// In-memory cache (tests, one-process pipelines).
  TuningCache() = default;

  /// File-backed cache at \p path. A missing file is an empty cache. A
  /// malformed (corrupt, partially written, wrong-schema) one is
  /// *quarantined*: renamed aside to "<path>.quarantined" with a stderr
  /// warning carrying the results_io diagnostics, and the cache starts
  /// empty — a damaged cache file must never prevent a tuned run from
  /// starting, since every entry is recomputable by measurement.
  explicit TuningCache(std::string path);

  const std::string& path() const { return path_; }
  std::size_t size() const;
  /// Snapshot of the current entries (copied under the lock).
  std::vector<CacheEntry> entries() const;

  /// Exact hit: same host signature and plan signature.
  std::optional<CacheEntry> find_exact(const HostSignature& host,
                                       const PlanSignature& plan) const;

  /// Nearest-neighbor transfer: the entry with the same host signature
  /// closest to \p plan (plan_distance ≤ \p max_distance) whose config
  /// passes \p usable (callers pass the engine's validate_config; an empty
  /// predicate accepts everything). The cache itself cannot judge a
  /// config's validity — only the engine that declares the axes can.
  /// Exact hits are also found by this.
  std::optional<CacheEntry> find_nearest(
      const HostSignature& host, const dedisp::Plan& plan,
      double max_distance = kDefaultMaxTransferDistance,
      const std::function<bool(const engine::EngineConfig&)>& usable =
          {}) const;

  /// Insert or replace the entry with \p entry's (host, plan) key; rewrites
  /// the backing file when file-backed.
  void store(const CacheEntry& entry);

  /// Rewrite the backing file now (no-op for in-memory caches).
  void save() const;

  /// Transfer radius: generous enough to cover e.g. a 16× DM-count change
  /// (log²16 ≈ 7.7) but not an entirely different telescope in every axis.
  static constexpr double kDefaultMaxTransferDistance = 12.0;

 private:
  void load();
  void save_locked() const;

  std::string path_;
  std::vector<CacheEntry> entries_;
  mutable std::mutex mutex_;
};

/// Options of the cache-guided tuning entry point.
struct GuidedTuningOptions {
  /// Registry ids of the engines to tune over. One id reproduces the
  /// classic single-engine ladder; several make the engine itself a search
  /// axis — each engine resolves through its own hit → transfer → search
  /// ladder and the fastest result wins (platform choice as a tuning
  /// decision). Empty means "the caller decides": consumers (the
  /// pipeline, sharded and streaming layers) substitute their configured
  /// engine, and a bare tune_guided call substitutes the default engine.
  std::vector<std::string> engines;
  /// Measurement knobs (repetitions, host-execution flags, threads) — also
  /// the source of the host signature.
  HostTuningOptions host;
  /// Factory knobs beyond the host flags for engines that need them (the
  /// subband split, the ocl_sim device); the cpu field is overridden from
  /// \p host.
  engine::EngineOptions engine_options;
  /// Strategy for the search fallback.
  StrategyKind strategy = StrategyKind::kCoordinateDescent;
  std::size_t random_samples = 64;  ///< for StrategyKind::kRandom
  std::uint64_t seed = 42;
  /// Allow answering a miss from the closest cached plan.
  bool allow_transfer = true;
  double max_transfer_distance = TuningCache::kDefaultMaxTransferDistance;
};

/// Where a guided tuning's config came from.
struct GuidedTuningOutcome {
  enum class Source { kCacheHit, kTransfer, kSearch };
  Source source = Source::kSearch;
  /// Registry id of the winning engine (the engine axis of the search).
  /// The consumer that requested the tuning *adopts* this engine — it may
  /// differ from the engine the consumer was constructed with.
  std::string engine_id = engine::kDefaultEngineId;
  engine::EngineConfig config;
  /// Measured wall seconds (search), or the stored figure of the reused
  /// entry (hit/transfer — measured on the *source* plan, an estimate
  /// here). This — not GFLOP/s — is what ranks engines against each other:
  /// seconds is the only scale still comparable when entries credit
  /// different flop counts. Non-positive means unmeasured and never wins
  /// a multi-engine race.
  double seconds = 0.0;
  /// The paper's GFLOP/s figure on the same measurement, for display.
  double gflops = 0.0;
  std::size_t configs_evaluated = 0;  ///< 0 on a hit or transfer
  /// Distance of the transfer source (0 for exact hits, unset for search).
  std::optional<double> transfer_distance;
  /// Full search result when source == kSearch.
  std::optional<StrategyResult> search;
};

/// Tune-on-first-use: for every engine in \p options.engines (the default
/// engine when empty), answer from \p cache when possible (exact hit, then
/// nearest-neighbor transfer), otherwise run the configured guided search
/// over the engine's declared config space and store the winner under its
/// (engine, host, plan) signature; the outcome with the lowest measured
/// seconds is returned. Engines without tunable knobs race as
/// single-candidate entries (their empty config). The returned config
/// always validates against \p plan on the returned engine.
GuidedTuningOutcome tune_guided(const dedisp::Plan& plan, TuningCache& cache,
                                const GuidedTuningOptions& options = {});

}  // namespace ddmc::tuner
