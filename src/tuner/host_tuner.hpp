#pragma once
/// \file host_tuner.hpp
/// \brief Auto-tuning by *measurement* on the real host kernels.
///
/// The paper's tuner measures every meaningful configuration on real
/// hardware and keeps the fastest (§IV: "the algorithm is executed ten
/// times, and the average of these ten executions is used"). The model
/// tuner (tuner.hpp) reproduces the paper's figures; this one reproduces
/// the paper's *method* on the machine you are running on, driving the
/// tiled host kernel with real wall-clock timing. The default sweep covers
/// the host engine's widened space: the paper's four parameters crossed
/// with the channel_block and unroll axes (see search_space.hpp).
///
/// Use a reduced plan (Plan::with_output_samples) for interactive runs —
/// a full sweep on a one-second Apertif instance is minutes of CPU time.

#include <cstddef>
#include <vector>

#include "common/array2d.hpp"
#include "common/statistics.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::tuner {

struct HostTuningOptions {
  std::size_t repetitions = 3;   ///< timed runs per configuration (paper: 10)
  std::size_t warmup_runs = 1;   ///< untimed cache-warming runs
  bool stage_rows = true;        ///< staged (local-memory-style) kernel path
  bool vectorize = true;         ///< SIMD engine; false sweeps the scalar loop
  std::size_t threads = 0;       ///< 0 = machine-sized pool
  /// Skip configurations whose tile covers the whole instance more than
  /// once over (they cannot win and waste sweep time).
  std::size_t max_work_group_size = 1024;
};

struct HostConfigTiming {
  dedisp::KernelConfig config;
  double seconds = 0.0;  ///< mean of the timed repetitions
  double gflops = 0.0;   ///< paper metric on the mean time
};

struct HostTuningResult {
  HostConfigTiming best;
  StatsSummary stats;                    ///< over GFLOP/s of all configs
  std::vector<HostConfigTiming> timings; ///< every measured configuration
};

/// The candidate list a host sweep actually times: \p configs (or the
/// default ladder restricted to the plan, when empty), minus configs that
/// fail validation, minus host-execution duplicates — the default ladder
/// crossed with the divisor candidates reaches the same host kernel under
/// many (wi, elem) splits, and timing a kernel twice only wastes sweep
/// time (see tuner::host_kernel_key).
std::vector<dedisp::KernelConfig> host_sweep_candidates(
    const dedisp::Plan& plan, const HostTuningOptions& options = {},
    const std::vector<dedisp::KernelConfig>& configs = {});

/// Measure every candidate configuration of \p configs (or a default
/// ladder restricted to the plan, when empty) on \p plan with real input
/// data, and return the fastest. Deterministic input is generated
/// internally from \p seed. Identical host executions are timed once
/// (host_sweep_candidates). Equivalent to ExhaustiveSearch over a
/// HostKernelEvaluator; use the strategies in strategy.hpp for guided
/// (sub-exhaustive) searches and tuning_cache.hpp for persistent reuse.
HostTuningResult tune_host(const dedisp::Plan& plan,
                           const HostTuningOptions& options = {},
                           const std::vector<dedisp::KernelConfig>& configs =
                               {},
                           std::uint64_t seed = 42);

}  // namespace ddmc::tuner
