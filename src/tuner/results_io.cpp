#include "tuner/results_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace ddmc::tuner {

namespace {
// The column schema grew from 11 to 13 columns when PR 1 added the
// channel_block/unroll tuner axes, which made stale files fail with an
// unhelpful "unexpected header" message. Since v2 the CSV leads with an
// explicit schema line so version/column mismatches are diagnosed clearly.
constexpr const char* kSchemaPrefix = "# ddmc-tuner-results ";
constexpr int kSchemaVersion = 2;
constexpr std::size_t kColumns = 13;

/// Built from the two constants above so save and load can never disagree
/// about what the schema line says.
const std::string& schema_line() {
  static const std::string line = std::string(kSchemaPrefix) + "v" +
                                  std::to_string(kSchemaVersion) +
                                  " cols=" + std::to_string(kColumns);
  return line;
}

constexpr const char* kHeader =
    "device,observation,dms,wi_time,wi_dm,elem_time,elem_dm,channel_block,"
    "unroll,gflops,seconds,snr,evaluated";

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    DDMC_REQUIRE(pos == s.size(), "malformed numeric field: " + s);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument("malformed numeric field: " + s);
  }
}

std::size_t parse_size(const std::string& s) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    DDMC_REQUIRE(pos == s.size(), "malformed integer field: " + s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw invalid_argument("malformed integer field: " + s);
  }
}
}  // namespace

ResultRow to_row(const TuningResult& result) {
  ResultRow row;
  row.device = result.device_name;
  row.observation = result.observation_name;
  row.dms = result.dms;
  row.config = result.best.config;
  row.gflops = result.best.perf.gflops;
  row.seconds = result.best.perf.seconds;
  row.snr = result.snr_of_optimum();
  row.evaluated = result.evaluated;
  return row;
}

void save_results(std::ostream& os, const std::vector<ResultRow>& rows) {
  // max_digits10: doubles survive save→load bitwise, so a reloaded sweep
  // (or TuningCache file) compares exactly equal to the one that wrote it.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << schema_line() << "\n" << kHeader << "\n";
  for (const ResultRow& r : rows) {
    os << r.device << ',' << r.observation << ',' << r.dms << ','
       << r.config.wi_time << ',' << r.config.wi_dm << ','
       << r.config.elem_time << ',' << r.config.elem_dm << ','
       << r.config.channel_block << ',' << r.config.unroll << ','
       << r.gflops << ',' << r.seconds << ',' << r.snr << ','
       << r.evaluated << "\n";
  }
  os.precision(old_precision);
}

std::vector<ResultRow> load_results(std::istream& is) {
  std::string line;
  DDMC_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty results stream");
  DDMC_REQUIRE(
      line.rfind(kSchemaPrefix, 0) == 0,
      "results file has no schema line (expected '" + schema_line() +
          "' as the first line, got '" + line +
          "'); the file was written by a pre-v2 build — re-run the sweep");
  {
    int version = 0;
    std::size_t cols = 0;
    std::istringstream tag(line.substr(std::string(kSchemaPrefix).size()));
    char v = '\0';
    tag >> v >> version;
    std::string cols_field;
    tag >> cols_field;
    if (cols_field.rfind("cols=", 0) == 0) {
      cols = parse_size(cols_field.substr(5));
    }
    DDMC_REQUIRE(v == 'v' && version == kSchemaVersion,
                 "results schema version mismatch: file says '" + line +
                     "', this build reads v" +
                     std::to_string(kSchemaVersion) +
                     " — re-run the sweep to regenerate");
    DDMC_REQUIRE(cols == kColumns,
                 "results schema has " + std::to_string(cols) +
                     " columns, this build expects " +
                     std::to_string(kColumns) + " ('" + line + "')");
  }
  DDMC_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "results stream ends after the schema line");
  const std::size_t header_cols = split_csv(line).size();
  DDMC_REQUIRE(line == kHeader,
               "unexpected results header (" +
                   std::to_string(header_cols) + " columns, expected " +
                   std::to_string(kColumns) + "): " + line);
  std::vector<ResultRow> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    DDMC_REQUIRE(cells.size() == kColumns,
                 "results row has " + std::to_string(cells.size()) +
                     " columns, expected " + std::to_string(kColumns) +
                     ": " + line);
    ResultRow r;
    r.device = cells[0];
    r.observation = cells[1];
    r.dms = parse_size(cells[2]);
    r.config.wi_time = parse_size(cells[3]);
    r.config.wi_dm = parse_size(cells[4]);
    r.config.elem_time = parse_size(cells[5]);
    r.config.elem_dm = parse_size(cells[6]);
    r.config.channel_block = parse_size(cells[7]);
    r.config.unroll = parse_size(cells[8]);
    r.gflops = parse_double(cells[9]);
    r.seconds = parse_double(cells[10]);
    r.snr = parse_double(cells[11]);
    r.evaluated = parse_size(cells[12]);
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace ddmc::tuner
