#include "tuner/results_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace ddmc::tuner {

namespace {
// The column schema grew from 11 to 13 columns when PR 1 added the
// channel_block/unroll tuner axes, which made stale files fail with an
// unhelpful "unexpected header" message. Since v2 the CSV leads with an
// explicit schema line so version/column mismatches are diagnosed clearly.
// v3 replaced the six per-kernel-axis columns with one engine-native
// config cell ("name=value;…"), so a row can persist any engine's axes;
// v2 files still load, their kernel-axis columns migrating into the
// config cell.
constexpr const char* kSchemaPrefix = "# ddmc-tuner-results ";
constexpr int kSchemaVersion = 3;
constexpr std::size_t kColumns = 8;
constexpr int kLegacyVersion = 2;
constexpr std::size_t kLegacyColumns = 13;

/// Built from the two constants above so save and load can never disagree
/// about what the schema line says.
const std::string& schema_line() {
  static const std::string line = std::string(kSchemaPrefix) + "v" +
                                  std::to_string(kSchemaVersion) +
                                  " cols=" + std::to_string(kColumns);
  return line;
}

constexpr const char* kHeader =
    "device,observation,dms,config,gflops,seconds,snr,evaluated";
constexpr const char* kLegacyHeader =
    "device,observation,dms,wi_time,wi_dm,elem_time,elem_dm,channel_block,"
    "unroll,gflops,seconds,snr,evaluated";

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    DDMC_REQUIRE(pos == s.size(), "malformed numeric field: " + s);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument("malformed numeric field: " + s);
  }
}

std::size_t parse_size(const std::string& s) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    DDMC_REQUIRE(pos == s.size(), "malformed integer field: " + s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw invalid_argument("malformed integer field: " + s);
  }
}

/// Shared tail of a v2 and a v3 row: everything after the config cell(s).
void parse_row_tail(ResultRow& r, const std::vector<std::string>& cells,
                    std::size_t first) {
  r.gflops = parse_double(cells[first]);
  r.seconds = parse_double(cells[first + 1]);
  r.snr = parse_double(cells[first + 2]);
  r.evaluated = parse_size(cells[first + 3]);
}

ResultRow parse_v3_row(const std::vector<std::string>& cells,
                       const std::string& line) {
  ResultRow r;
  r.device = cells[0];
  r.observation = cells[1];
  r.dms = parse_size(cells[2]);
  const auto config = engine::EngineConfig::decode(cells[3]);
  DDMC_REQUIRE(config.has_value(),
               "malformed config field '" + cells[3] + "': " + line);
  r.config = *config;
  parse_row_tail(r, cells, 4);
  return r;
}

/// A v2 row's six kernel-axis columns become the kernel axes of an
/// EngineConfig; encode_kernel_config omits neutral values, so a legacy
/// untuned (1×1) row migrates to the *empty* config — valid for every
/// engine, not just the tiled ones.
ResultRow parse_v2_row(const std::vector<std::string>& cells) {
  ResultRow r;
  r.device = cells[0];
  r.observation = cells[1];
  r.dms = parse_size(cells[2]);
  dedisp::KernelConfig kc;
  kc.wi_time = parse_size(cells[3]);
  kc.wi_dm = parse_size(cells[4]);
  kc.elem_time = parse_size(cells[5]);
  kc.elem_dm = parse_size(cells[6]);
  kc.channel_block = parse_size(cells[7]);
  kc.unroll = parse_size(cells[8]);
  r.config = engine::encode_kernel_config(kc);
  parse_row_tail(r, cells, 9);
  return r;
}
}  // namespace

ResultRow to_row(const TuningResult& result) {
  ResultRow row;
  row.device = result.device_name;
  row.observation = result.observation_name;
  row.dms = result.dms;
  row.config = engine::encode_kernel_config(result.best.config);
  row.gflops = result.best.perf.gflops;
  row.seconds = result.best.perf.seconds;
  row.snr = result.snr_of_optimum();
  row.evaluated = result.evaluated;
  return row;
}

void save_results(std::ostream& os, const std::vector<ResultRow>& rows) {
  // max_digits10: doubles survive save→load bitwise, so a reloaded sweep
  // (or TuningCache file) compares exactly equal to the one that wrote it.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << schema_line() << "\n" << kHeader << "\n";
  for (const ResultRow& r : rows) {
    os << r.device << ',' << r.observation << ',' << r.dms << ','
       << r.config.encode() << ',' << r.gflops << ',' << r.seconds << ','
       << r.snr << ',' << r.evaluated << "\n";
  }
  os.precision(old_precision);
}

std::vector<ResultRow> load_results(std::istream& is) {
  std::string line;
  DDMC_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty results stream");
  DDMC_REQUIRE(
      line.rfind(kSchemaPrefix, 0) == 0,
      "results file has no schema line (expected '" + schema_line() +
          "' as the first line, got '" + line +
          "'); the file was written by a pre-v2 build — re-run the sweep");
  int version = 0;
  std::size_t cols = 0;
  {
    std::istringstream tag(line.substr(std::string(kSchemaPrefix).size()));
    char v = '\0';
    tag >> v >> version;
    std::string cols_field;
    tag >> cols_field;
    if (cols_field.rfind("cols=", 0) == 0) {
      cols = parse_size(cols_field.substr(5));
    }
    DDMC_REQUIRE(
        v == 'v' && (version == kSchemaVersion || version == kLegacyVersion),
        "results schema version mismatch: file says '" + line +
            "', this build reads v" + std::to_string(kSchemaVersion) +
            " (and migrates v" + std::to_string(kLegacyVersion) +
            ") — re-run the sweep to regenerate");
    const std::size_t expected =
        version == kLegacyVersion ? kLegacyColumns : kColumns;
    DDMC_REQUIRE(cols == expected,
                 "results schema has " + std::to_string(cols) +
                     " columns, this build expects " +
                     std::to_string(expected) + " for v" +
                     std::to_string(version) + " ('" + line + "')");
  }
  const bool legacy = version == kLegacyVersion;
  const std::size_t columns = legacy ? kLegacyColumns : kColumns;
  DDMC_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "results stream ends after the schema line");
  const std::size_t header_cols = split_csv(line).size();
  DDMC_REQUIRE(line == (legacy ? kLegacyHeader : kHeader),
               "unexpected results header (" +
                   std::to_string(header_cols) + " columns, expected " +
                   std::to_string(columns) + "): " + line);
  std::vector<ResultRow> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    DDMC_REQUIRE(cells.size() == columns,
                 "results row has " + std::to_string(cells.size()) +
                     " columns, expected " + std::to_string(columns) +
                     ": " + line);
    rows.push_back(legacy ? parse_v2_row(cells)
                          : parse_v3_row(cells, line));
  }
  return rows;
}

}  // namespace ddmc::tuner
