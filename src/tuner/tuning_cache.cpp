#include "tuner/tuning_cache.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <random>
#include <sstream>

#include "common/expect.hpp"
#include "engine/registry.hpp"
#include "resilience/error.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"
#include "tuner/host_tuner.hpp"
#include "tuner/results_io.hpp"

namespace ddmc::tuner {

namespace {

std::string format_double(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream ss(text);
  while (std::getline(ss, part, sep)) parts.push_back(part);
  return parts;
}

/// "key=value" field accessor over parts[1..] — parts[0] is the free-form
/// observation name and must never be mistaken for a key, even when it
/// happens to look like one (e.g. an observation named "ch=12").
std::optional<std::string> field(const std::vector<std::string>& parts,
                                 const std::string& key) {
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].rfind(key + "=", 0) == 0) {
      return parts[i].substr(key.size() + 1);
    }
  }
  return std::nullopt;
}

/// The observation name is free-form user input headed for two layered
/// text formats: the '|'-delimited signature inside a comma-delimited
/// results_io CSV cell. Map every delimiter to '_' so no name can corrupt
/// a cache file the library itself writes. (Lossy, but the name is
/// informational — the numeric fields are the key.)
std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ',' || c == '|' || c == '\n' || c == '\r') c = '_';
  }
  if (out.empty()) out = "_";  // decode treats an empty name as malformed
  return out;
}

std::optional<double> parse_double_opt(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::size_t> parse_size_opt(const std::string& s) {
  const auto v = parse_double_opt(s);
  if (!v || *v < 0.0) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

/// Log of a positive ratio; zero-vs-zero counts as equal, zero-vs-nonzero
/// as a large move (a plan with no DM spread is genuinely far from one
/// with thousands of trials).
double log_ratio(double a, double b) {
  constexpr double kEps = 1e-9;
  return std::log(std::max(a, kEps) / std::max(b, kEps));
}

ResultRow to_result_row(const CacheEntry& entry) {
  ResultRow row;
  row.device = entry.host.encode();
  row.observation = entry.plan.encode();
  row.dms = entry.plan.dms;
  row.config = entry.config;
  row.gflops = entry.gflops;
  row.seconds = entry.seconds;
  row.snr = 0.0;
  row.evaluated = entry.evaluated;
  return row;
}

CacheEntry from_result_row(const ResultRow& row, const std::string& path) {
  const auto host = HostSignature::decode(row.device);
  const auto plan = PlanSignature::decode(row.observation);
  DDMC_REQUIRE(host.has_value() && plan.has_value(),
               "tuning cache '" + path +
                   "' row is not a cache signature (device='" + row.device +
                   "', observation='" + row.observation +
                   "'); this looks like a plain results file");
  CacheEntry entry;
  entry.host = *host;
  entry.plan = *plan;
  entry.config = row.config;
  entry.gflops = row.gflops;
  entry.seconds = row.seconds;
  entry.evaluated = row.evaluated;
  return entry;
}

}  // namespace

// ------------------------------------------------------------ signatures --

HostSignature HostSignature::of(const engine::DedispEngine& engine) {
  HostSignature sig;
  sig.engine_id = engine.id();
  sig.variant = engine.variant();
  sig.threads = engine.options().cpu.threads;
  sig.stage_rows = engine.options().cpu.stage_rows;
  return sig;
}

HostSignature HostSignature::of(const dedisp::CpuKernelOptions& options) {
  engine::EngineOptions engine_options;
  engine_options.cpu = options;
  return of(*engine::make_engine(engine::kDefaultEngineId, engine_options));
}

std::string HostSignature::encode() const {
  return engine_id + "|" + variant + "|t" + std::to_string(threads) + "|" +
         (stage_rows ? "staged" : "direct");
}

std::optional<HostSignature> HostSignature::decode(const std::string& text) {
  const auto parts = split(text, '|');
  // Legacy three-part form ("variant|tN|staged") predates the engine axis:
  // everything it describes ran the tiled host engine.
  if (parts.size() != 3 && parts.size() != 4) return std::nullopt;
  const std::size_t base = parts.size() - 3;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) return std::nullopt;
  }
  if (parts[base + 1].size() < 2 || parts[base + 1][0] != 't') {
    return std::nullopt;
  }
  const auto threads = parse_size_opt(parts[base + 1].substr(1));
  if (!threads) return std::nullopt;
  if (parts[base + 2] != "staged" && parts[base + 2] != "direct") {
    return std::nullopt;
  }
  HostSignature sig;
  sig.engine_id = base == 1 ? parts[0] : std::string(engine::kDefaultEngineId);
  sig.variant = parts[base];
  sig.threads = *threads;
  sig.stage_rows = parts[base + 2] == "staged";
  return sig;
}

PlanSignature PlanSignature::of(const dedisp::Plan& plan) {
  const sky::Observation& obs = plan.observation();
  PlanSignature sig;
  sig.observation = sanitize_name(obs.name());
  sig.channels = plan.channels();
  sig.out_samples = plan.out_samples();
  sig.dms = plan.dms();
  sig.sampling_rate = obs.sampling_rate();
  sig.dm_first = obs.dm_first();
  sig.dm_step = obs.dm_step();
  return sig;
}

std::string PlanSignature::encode() const {
  return sanitize_name(observation) + "|ch=" + std::to_string(channels) +
         "|sps=" + format_double(sampling_rate) +
         "|out=" + std::to_string(out_samples) +
         "|dms=" + std::to_string(dms) + "|dm0=" + format_double(dm_first) +
         "|ddm=" + format_double(dm_step);
}

std::optional<PlanSignature> PlanSignature::decode(const std::string& text) {
  const auto parts = split(text, '|');
  if (parts.size() != 7 || parts[0].empty()) return std::nullopt;
  const auto ch = field(parts, "ch");
  const auto sps = field(parts, "sps");
  const auto out = field(parts, "out");
  const auto dms_field = field(parts, "dms");
  const auto dm0 = field(parts, "dm0");
  const auto ddm = field(parts, "ddm");
  if (!ch || !sps || !out || !dms_field || !dm0 || !ddm) return std::nullopt;
  PlanSignature sig;
  sig.observation = parts[0];
  const auto channels = parse_size_opt(*ch);
  const auto rate = parse_double_opt(*sps);
  const auto out_samples = parse_size_opt(*out);
  const auto dms = parse_size_opt(*dms_field);
  const auto dm_first = parse_double_opt(*dm0);
  const auto dm_step = parse_double_opt(*ddm);
  if (!channels || !rate || !out_samples || !dms || !dm_first || !dm_step) {
    return std::nullopt;
  }
  sig.channels = *channels;
  sig.sampling_rate = *rate;
  sig.out_samples = *out_samples;
  sig.dms = *dms;
  sig.dm_first = *dm_first;
  sig.dm_step = *dm_step;
  return sig;
}

double plan_distance(const PlanSignature& a, const PlanSignature& b) {
  const double d_ch =
      log_ratio(static_cast<double>(a.channels), static_cast<double>(b.channels));
  const double d_sps = log_ratio(a.sampling_rate, b.sampling_rate);
  const double d_out = log_ratio(static_cast<double>(a.out_samples),
                                 static_cast<double>(b.out_samples));
  const double d_dms =
      log_ratio(static_cast<double>(a.dms), static_cast<double>(b.dms));
  // The DM *span* (step × trials) sets the delay spread, which is what the
  // kernel's memory behaviour actually feels.
  const double d_span = log_ratio(a.dm_step * static_cast<double>(a.dms),
                                  b.dm_step * static_cast<double>(b.dms));
  return d_ch * d_ch + d_sps * d_sps + d_out * d_out + d_dms * d_dms +
         d_span * d_span;
}

// ----------------------------------------------------------------- cache --

TuningCache::TuningCache(std::string path) : path_(std::move(path)) {
  DDMC_REQUIRE(!path_.empty(), "file-backed cache needs a path");
  load();
}

void TuningCache::load() {
  std::ifstream is(path_);
  if (!is.good() || is.peek() == std::ifstream::traits_type::eof()) {
    return;  // missing or empty file: empty cache
  }
  // A corrupt or partially-written cache must never stop a tuned run from
  // starting: the cache is an optimization, and every entry is recomputable
  // by measurement. Quarantine the damaged file aside (so the evidence
  // survives for diagnosis and the next save() cannot be blocked by it),
  // warn, and start empty.
  std::vector<CacheEntry> loaded;
  try {
    DDMC_FAILPOINT("tuning_cache.load");
    for (const ResultRow& row : load_results(is)) {
      loaded.push_back(from_result_row(row, path_));
    }
  } catch (const std::exception& e) {
    is.close();  // release the handle before renaming the file
    const std::string quarantine = path_ + ".quarantined";
    std::string disposition = "quarantined to '" + quarantine + "'";
    if (std::rename(path_.c_str(), quarantine.c_str()) != 0) {
      disposition = "left in place (quarantine rename failed)";
    }
    std::cerr << "ddmc: tuning cache '" << path_ << "' is unreadable ("
              << e.what() << "); " << disposition
              << ", starting with an empty cache\n";
    return;
  }
  entries_ = std::move(loaded);
}

std::size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<CacheEntry> TuningCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::optional<CacheEntry> TuningCache::find_exact(
    const HostSignature& host, const PlanSignature& plan) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const CacheEntry& entry : entries_) {
    if (entry.host == host && entry.plan == plan) return entry;
  }
  return std::nullopt;
}

std::optional<CacheEntry> TuningCache::find_nearest(
    const HostSignature& host, const dedisp::Plan& plan, double max_distance,
    const std::function<bool(const engine::EngineConfig&)>& usable) const {
  const PlanSignature target = PlanSignature::of(plan);
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<CacheEntry> best;
  double best_distance = max_distance;
  for (const CacheEntry& entry : entries_) {
    if (entry.host != host) continue;
    const double d = plan_distance(entry.plan, target);
    if (d > best_distance || (best && d >= best_distance)) continue;
    if (usable && !usable(entry.config)) {
      continue;  // not valid for the target plan; try the next-closest
    }
    best = entry;
    best_distance = d;
  }
  return best;
}

void TuningCache::store(const CacheEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool replaced = false;
  for (CacheEntry& existing : entries_) {
    if (existing.host == entry.host && existing.plan == entry.plan) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries_.push_back(entry);
  save_locked();
}

void TuningCache::save() const {
  std::lock_guard<std::mutex> lock(mutex_);
  save_locked();
}

void TuningCache::save_locked() const {
  if (path_.empty()) return;
  // Write-to-temp + atomic rename: a results CSV must never be observable
  // half-written — two workers' interleaved appends were exactly the
  // corruption mode this replaces. The temp name embeds the instance
  // address (distinct caches in this process) *and* a per-process random
  // token (two processes running the same binary can place objects at the
  // same address), so no two writers share a temp file; the rename itself
  // is atomic per POSIX.
  static const unsigned process_token = std::random_device{}();
  const std::string tmp =
      path_ + ".tmp." + std::to_string(process_token) + "." +
      std::to_string(reinterpret_cast<std::uintptr_t>(this));
  {
    DDMC_FAILPOINT("tuning_cache.save");
    std::ofstream os(tmp);
    DDMC_REQUIRE(os.good(), "cannot write tuning cache: " + tmp);
    std::vector<ResultRow> rows;
    rows.reserve(entries_.size());
    for (const CacheEntry& entry : entries_) {
      rows.push_back(to_result_row(entry));
    }
    save_results(os, rows);
    os.flush();
    DDMC_REQUIRE(os.good(), "short write to tuning cache: " + tmp);
  }
  // The "tuning_cache.rename" failpoint simulates a failed rename (short
  // device, crossed filesystems) without touching the real file, so the
  // cleanup branch — remove the temp, keep the old cache intact, throw a
  // retryable error — stays testable.
  const bool rename_failed =
      resilience::FaultInjector::instance().triggered("tuning_cache.rename") ||
      std::rename(tmp.c_str(), path_.c_str()) != 0;
  if (rename_failed) {
    std::remove(tmp.c_str());
    throw resilience::TransientError("cannot replace tuning cache: " + path_);
  }
}

// ---------------------------------------------------------- tune_guided --

namespace {

/// The single-engine ladder: exact hit → nearest-neighbor transfer →
/// guided search (stored for next time). \p validate_transfers re-measures
/// a transferred config once on the *target* plan (and stores the result):
/// a transfer's stored GFLOP/s was measured on a different plan, which is a
/// fine 0-measurement answer when one engine tunes alone, but ranking
/// engines against each other by figures from different plans could crown
/// the wrong engine — e.g. the subband engine's effective GFLOP/s scales
/// with the source plan's flop-reduction ratio, which gcd adaptation may
/// collapse on the target plan.
GuidedTuningOutcome tune_one_engine(
    const dedisp::Plan& plan, TuningCache& cache,
    const GuidedTuningOptions& options,
    const std::shared_ptr<const engine::DedispEngine>& engine,
    bool validate_transfers) {
  const HostSignature host = HostSignature::of(*engine);
  const PlanSignature target = PlanSignature::of(plan);

  telemetry::TraceSpan span("tuner.tune");
  span.arg("engine", engine->id().c_str());
  // One ladder resolution = one outcome sample: the hit/transfer/search mix
  // over a session is the cache's effectiveness, scrape-able as
  // ddmc.tuner.outcomes_total{source=...}.
  const auto note = [&](const char* source, std::size_t evaluated,
                        double gflops) {
    auto& registry = telemetry::MetricsRegistry::instance();
    registry
        .counter("ddmc.tuner.outcomes_total",
                 {{"engine", engine->id()}, {"source", source}})
        ->increment();
    registry
        .counter("ddmc.tuner.configs_evaluated_total",
                 {{"engine", engine->id()}})
        ->add(static_cast<double>(evaluated));
    span.arg("source", source).arg("evaluated", evaluated);
    span.arg("gflops", gflops);
  };

  // Only the engine can judge its configs: the same predicate gates the
  // exact hit (a stale or hand-seeded entry must not crash the ladder —
  // an unusable hit falls through to transfer/search) and the
  // nearest-neighbor scan.
  const auto usable = [&](const engine::EngineConfig& config) {
    try {
      engine->validate_config(plan, config);
      return true;
    } catch (const config_error&) {
      return false;
    }
  };

  GuidedTuningOutcome outcome;
  outcome.engine_id = engine->id();
  if (const auto hit = cache.find_exact(host, target);
      hit && usable(hit->config)) {
    outcome.source = GuidedTuningOutcome::Source::kCacheHit;
    outcome.config = hit->config;
    outcome.seconds = hit->seconds;
    outcome.gflops = hit->gflops;
    outcome.transfer_distance = 0.0;
    note("hit", 0, outcome.gflops);
    return outcome;
  }
  if (options.allow_transfer) {
    if (const auto near = cache.find_nearest(
            host, plan, options.max_transfer_distance, usable)) {
      outcome.source = GuidedTuningOutcome::Source::kTransfer;
      outcome.config = near->config;
      outcome.seconds = near->seconds;
      outcome.gflops = near->gflops;
      outcome.transfer_distance = plan_distance(near->plan, target);
      if (validate_transfers) {
        HostKernelEvaluator evaluator(engine, plan, options.host,
                                      options.seed);
        const auto m = evaluator.measure(outcome.config,
                                         ConfigEvaluator::kNoIncumbent);
        outcome.seconds = m.seconds;
        outcome.gflops = plan.total_flop() / m.seconds * 1e-9;
        outcome.configs_evaluated = 1;
        CacheEntry entry;
        entry.host = host;
        entry.plan = target;
        entry.config = outcome.config;
        entry.gflops = outcome.gflops;
        entry.seconds = m.seconds;
        entry.evaluated = 1;
        cache.store(entry);  // next cross-engine call is an exact hit
      }
      note("transfer", outcome.configs_evaluated, outcome.gflops);
      return outcome;
    }
  }

  const std::vector<engine::EngineConfig> candidates =
      engine->config_space(plan);
  DDMC_REQUIRE(!candidates.empty(),
               "engine '" + engine->id() +
                   "' enumerated no candidate configurations for this plan");
  HostKernelEvaluator evaluator(engine, plan, options.host, options.seed);
  const auto strategy =
      make_strategy(options.strategy, options.random_samples, options.seed);
  StrategyResult searched = strategy->search(plan, engine->config_axes(plan),
                                             candidates, evaluator);

  CacheEntry entry;
  entry.host = host;
  entry.plan = target;
  entry.config = searched.best.config;
  entry.gflops = searched.best.gflops;
  entry.seconds = searched.best.seconds;
  entry.evaluated = searched.evaluated;
  cache.store(entry);

  outcome.source = GuidedTuningOutcome::Source::kSearch;
  outcome.config = searched.best.config;
  outcome.seconds = searched.best.seconds;
  outcome.gflops = searched.best.gflops;
  outcome.configs_evaluated = searched.evaluated;
  outcome.search = std::move(searched);
  note("search", outcome.configs_evaluated, outcome.gflops);
  return outcome;
}

}  // namespace

GuidedTuningOutcome tune_guided(const dedisp::Plan& plan, TuningCache& cache,
                                const GuidedTuningOptions& options) {
  const std::vector<std::string> engines =
      options.engines.empty()
          ? std::vector<std::string>{engine::kDefaultEngineId}
          : options.engines;
  engine::EngineOptions engine_options = options.engine_options;
  engine_options.cpu.stage_rows = options.host.stage_rows;
  engine_options.cpu.vectorize = options.host.vectorize;
  engine_options.cpu.threads = options.host.threads;

  // Resolve every engine's ladder independently; each search winner is
  // stored under its own (engine, host, plan) signature, so the cross-
  // engine comparison is itself answered from the cache on the next call.
  // The race is decided on *measured wall seconds* — engines' GFLOP/s
  // figures may credit different flop counts (stored entries, the subband
  // engine's flop reduction), so the derived metric can rank in the wrong
  // order while seconds cannot. Figures must come from this plan for the
  // comparison to hold, which is why multi-engine runs validate
  // transferred configs with one measurement.
  const bool validate_transfers = engines.size() > 1;
  const auto rank = [](const GuidedTuningOutcome& o) {
    return o.seconds > 0.0 ? o.seconds
                           : std::numeric_limits<double>::infinity();
  };
  std::optional<GuidedTuningOutcome> best;
  std::size_t evaluated = 0;
  for (const std::string& id : engines) {
    GuidedTuningOutcome outcome =
        tune_one_engine(plan, cache, options,
                        engine::make_engine(id, engine_options),
                        validate_transfers);
    evaluated += outcome.configs_evaluated;
    if (!best || rank(outcome) < rank(*best)) {
      best = std::move(outcome);
    }
  }
  best->configs_evaluated = evaluated;
  return std::move(*best);
}

}  // namespace ddmc::tuner
