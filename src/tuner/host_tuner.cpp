#include "tuner/host_tuner.hpp"

#include "common/expect.hpp"
#include "engine/engine_config.hpp"
#include "tuner/search_space.hpp"
#include "tuner/strategy.hpp"

namespace ddmc::tuner {

std::vector<dedisp::KernelConfig> host_sweep_candidates(
    const dedisp::Plan& plan, const HostTuningOptions& options,
    const std::vector<dedisp::KernelConfig>& configs) {
  std::vector<dedisp::KernelConfig> valid;
  const std::vector<dedisp::KernelConfig>& space =
      configs.empty()
          ? enumerate_host_configs(plan, options.max_work_group_size)
          : configs;
  valid.reserve(space.size());
  for (const dedisp::KernelConfig& cfg : space) {
    try {
      cfg.validate(plan);
    } catch (const config_error&) {
      continue;
    }
    valid.push_back(cfg);
  }
  // The ladder crossed with the divisor candidates reaches many configs
  // that run the identical host kernel (the engine only sees tile extents,
  // register rows, channel block and unroll); time each kernel once.
  return dedupe_host_configs(plan, valid, options.vectorize);
}

HostTuningResult tune_host(const dedisp::Plan& plan,
                           const HostTuningOptions& options,
                           const std::vector<dedisp::KernelConfig>& configs,
                           std::uint64_t seed) {
  const std::vector<dedisp::KernelConfig> candidates =
      host_sweep_candidates(plan, options, configs);
  DDMC_REQUIRE(!candidates.empty(),
               "no candidate configurations for this plan");

  // The strategy layer is engine-native: hand it the candidates as encoded
  // kernel axes, translate the timings back to this module's KernelConfig
  // vocabulary at the boundary.
  std::vector<engine::EngineConfig> encoded;
  encoded.reserve(candidates.size());
  for (const dedisp::KernelConfig& cfg : candidates) {
    encoded.push_back(engine::encode_kernel_config(cfg));
  }
  HostKernelEvaluator evaluator(plan, options, seed);
  const StrategyResult swept = ExhaustiveSearch().search(
      plan, engine::kernel_config_axes(candidates), encoded, evaluator);

  const auto to_host = [](const ConfigTiming& t) {
    HostConfigTiming host;
    host.config = engine::decode_kernel_config(t.config);
    host.seconds = t.seconds;
    host.gflops = t.gflops;
    return host;
  };
  HostTuningResult result;
  result.best = to_host(swept.best);
  result.stats = swept.stats;
  result.timings.reserve(swept.timings.size());
  for (const ConfigTiming& t : swept.timings) {
    result.timings.push_back(to_host(t));
  }
  return result;
}

}  // namespace ddmc::tuner
