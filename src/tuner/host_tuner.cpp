#include "tuner/host_tuner.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "tuner/search_space.hpp"

namespace ddmc::tuner {

HostTuningResult tune_host(const dedisp::Plan& plan,
                           const HostTuningOptions& options,
                           const std::vector<dedisp::KernelConfig>& configs,
                           std::uint64_t seed) {
  DDMC_REQUIRE(options.repetitions > 0, "need at least one timed run");

  const std::vector<dedisp::KernelConfig> space =
      configs.empty()
          ? enumerate_host_configs(plan, options.max_work_group_size)
          : configs;
  DDMC_REQUIRE(!space.empty(), "no candidate configurations for this plan");

  // One shared input/output pair for the whole sweep.
  Array2D<float> input(plan.channels(), plan.in_samples());
  Rng rng(seed);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  Array2D<float> output(plan.dms(), plan.out_samples());

  dedisp::CpuKernelOptions kernel_options;
  kernel_options.stage_rows = options.stage_rows;
  kernel_options.vectorize = options.vectorize;
  kernel_options.threads = options.threads;

  HostTuningResult result;
  RunningStats stats;
  bool have_best = false;
  for (const dedisp::KernelConfig& cfg : space) {
    try {
      cfg.validate(plan);
    } catch (const config_error&) {
      continue;
    }
    for (std::size_t i = 0; i < options.warmup_runs; ++i) {
      dedisp::dedisperse_cpu(plan, cfg, input.cview(), output.view(),
                             kernel_options);
    }
    double total = 0.0;
    for (std::size_t i = 0; i < options.repetitions; ++i) {
      Stopwatch clock;
      dedisp::dedisperse_cpu(plan, cfg, input.cview(), output.view(),
                             kernel_options);
      total += clock.seconds();
    }
    HostConfigTiming timing;
    timing.config = cfg;
    timing.seconds = total / static_cast<double>(options.repetitions);
    timing.gflops = plan.total_flop() / timing.seconds * 1e-9;
    stats.add(timing.gflops);
    if (!have_best || timing.gflops > result.best.gflops) {
      result.best = timing;
      have_best = true;
    }
    result.timings.push_back(timing);
  }
  DDMC_ENSURE(have_best, "host sweep measured no configuration");
  result.stats.count = stats.count();
  result.stats.mean = stats.mean();
  result.stats.stddev = stats.stddev();
  result.stats.min = stats.min();
  result.stats.max = stats.max();
  result.stats.snr_of_max =
      snr(result.stats.max, result.stats.mean, result.stats.stddev);
  return result;
}

}  // namespace ddmc::tuner
