#include "tuner/host_tuner.hpp"

#include "common/expect.hpp"
#include "tuner/search_space.hpp"
#include "tuner/strategy.hpp"

namespace ddmc::tuner {

std::vector<dedisp::KernelConfig> host_sweep_candidates(
    const dedisp::Plan& plan, const HostTuningOptions& options,
    const std::vector<dedisp::KernelConfig>& configs) {
  std::vector<dedisp::KernelConfig> valid;
  const std::vector<dedisp::KernelConfig>& space =
      configs.empty()
          ? enumerate_host_configs(plan, options.max_work_group_size)
          : configs;
  valid.reserve(space.size());
  for (const dedisp::KernelConfig& cfg : space) {
    try {
      cfg.validate(plan);
    } catch (const config_error&) {
      continue;
    }
    valid.push_back(cfg);
  }
  // The ladder crossed with the divisor candidates reaches many configs
  // that run the identical host kernel (the engine only sees tile extents,
  // register rows, channel block and unroll); time each kernel once.
  return dedupe_host_configs(plan, valid, options.vectorize);
}

HostTuningResult tune_host(const dedisp::Plan& plan,
                           const HostTuningOptions& options,
                           const std::vector<dedisp::KernelConfig>& configs,
                           std::uint64_t seed) {
  const std::vector<dedisp::KernelConfig> candidates =
      host_sweep_candidates(plan, options, configs);
  DDMC_REQUIRE(!candidates.empty(),
               "no candidate configurations for this plan");

  HostKernelEvaluator evaluator(plan, options, seed);
  const StrategyResult swept =
      ExhaustiveSearch().search(plan, candidates, evaluator);

  HostTuningResult result;
  result.best = swept.best;
  result.stats = swept.stats;
  result.timings = swept.timings;
  return result;
}

}  // namespace ddmc::tuner
