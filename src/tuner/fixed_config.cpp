#include "tuner/fixed_config.hpp"

#include "common/expect.hpp"
#include "tuner/search_space.hpp"

namespace ddmc::tuner {

FixedConfigResult best_fixed_config(
    const ocl::DeviceModel& device,
    const std::vector<const ocl::PlanAnalysis*>& instances) {
  DDMC_REQUIRE(!instances.empty(), "need at least one instance");

  // Candidates: configurations meaningful on the *smallest* instance are the
  // ones that can divide every instance of the power-of-two ladder.
  const ocl::PlanAnalysis* smallest = instances.front();
  for (const auto* a : instances) {
    if (a->plan().dms() < smallest->plan().dms()) smallest = a;
  }
  const std::vector<dedisp::KernelConfig> candidates =
      enumerate_configs(device, smallest->plan());

  FixedConfigResult best;
  bool have_best = false;
  for (const dedisp::KernelConfig& cfg : candidates) {
    double total = 0.0;
    std::vector<double> per_instance;
    per_instance.reserve(instances.size());
    bool valid_everywhere = true;
    for (const auto* analysis : instances) {
      try {
        const ocl::PerfEstimate perf =
            ocl::estimate_performance(device, *analysis, cfg);
        per_instance.push_back(perf.gflops);
        total += perf.gflops;
      } catch (const config_error&) {
        valid_everywhere = false;
        break;
      }
    }
    if (!valid_everywhere) continue;
    if (!have_best || total > best.total_gflops) {
      best.config = cfg;
      best.total_gflops = total;
      best.per_instance_gflops = std::move(per_instance);
      have_best = true;
    }
  }
  if (!have_best) {
    throw config_error("no configuration is valid on every instance for " +
                       device.name);
  }
  return best;
}

}  // namespace ddmc::tuner
