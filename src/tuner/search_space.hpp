#pragma once
/// \file search_space.hpp
/// \brief Enumeration of the "meaningful" kernel configurations.
///
/// §IV-A: "The algorithm is executed for every meaningful combination of the
/// four parameters … A configuration is considered meaningful if it fulfills
/// all the constraints posed by a specific platform, setup and input
/// instance." This module enumerates candidates from a candidate ladder per
/// parameter (powers of two plus the divisors of the paper's sampling rates,
/// which is how configurations like 250×4 arise on LOFAR) and filters them
/// against the cheap constraints: tile divisibility, the device work-group
/// limit and the per-thread register cap. Deeper constraints (local-memory
/// capacity, residency) are enforced by the performance model / simulator,
/// which throw ddmc::config_error — the tuner counts those as skipped.
///
/// The host engine widens the space with two further axes, `channel_block`
/// and `unroll` (see dedisp::KernelConfig). The device-model enumeration
/// (enumerate_configs) leaves them at their neutral defaults — the OpenCL
/// model has no notion of them — while the measured host tuner sweeps them
/// through enumerate_host_configs.

#include <vector>

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"

namespace ddmc::tuner {

struct SearchSpace {
  std::vector<std::size_t> wi_time;
  std::vector<std::size_t> wi_dm;
  std::vector<std::size_t> elem_time;
  std::vector<std::size_t> elem_dm;
  /// Host-engine axes; 0 in channel_block means "all channels in one pass".
  std::vector<std::size_t> channel_block;
  std::vector<std::size_t> unroll;
};

/// The default ladder used by every experiment in this repository.
SearchSpace default_search_space();

/// All candidate configurations of \p space that pass the cheap validity
/// checks for (device, plan). Deterministic order (lexicographic in the
/// parameter ladders). Host-only axes stay at their defaults here.
std::vector<dedisp::KernelConfig> enumerate_configs(
    const ocl::DeviceModel& device, const dedisp::Plan& plan,
    const SearchSpace& space = default_search_space());

/// Candidate configurations for the measured host sweep: the four paper
/// axes filtered by divisibility and \p max_work_group_size (host kernels
/// have no register or local-memory limits worth enforcing), crossed with
/// every meaningful channel_block (values ≥ the channel count collapse onto
/// the "all channels" pass and are dropped) and every unroll ladder value.
std::vector<dedisp::KernelConfig> enumerate_host_configs(
    const dedisp::Plan& plan, std::size_t max_work_group_size,
    const SearchSpace& space = default_search_space());

}  // namespace ddmc::tuner
