#pragma once
/// \file search_space.hpp
/// \brief Enumeration of the "meaningful" kernel configurations.
///
/// §IV-A: "The algorithm is executed for every meaningful combination of the
/// four parameters … A configuration is considered meaningful if it fulfills
/// all the constraints posed by a specific platform, setup and input
/// instance." This module enumerates candidates from a candidate ladder per
/// parameter (powers of two plus the divisors of the paper's sampling rates,
/// which is how configurations like 250×4 arise on LOFAR) and filters them
/// against the cheap constraints: tile divisibility, the device work-group
/// limit and the per-thread register cap. Deeper constraints (local-memory
/// capacity, residency) are enforced by the performance model / simulator,
/// which throw ddmc::config_error — the tuner counts those as skipped.
///
/// The host engine widens the space with two further axes, `channel_block`
/// and `unroll` (see dedisp::KernelConfig). The device-model enumeration
/// (enumerate_configs) leaves them at their neutral defaults — the OpenCL
/// model has no notion of them — while the measured host tuner sweeps them
/// through enumerate_host_configs.

#include <vector>

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device.hpp"

namespace ddmc::tuner {

struct SearchSpace {
  std::vector<std::size_t> wi_time;
  std::vector<std::size_t> wi_dm;
  std::vector<std::size_t> elem_time;
  std::vector<std::size_t> elem_dm;
  /// Host-engine axes; 0 in channel_block means "all channels in one pass".
  std::vector<std::size_t> channel_block;
  std::vector<std::size_t> unroll;
};

/// The default ladder used by every experiment in this repository.
SearchSpace default_search_space();

/// All candidate configurations of \p space that pass the cheap validity
/// checks for (device, plan). Deterministic order (lexicographic in the
/// parameter ladders). Host-only axes stay at their defaults here.
std::vector<dedisp::KernelConfig> enumerate_configs(
    const ocl::DeviceModel& device, const dedisp::Plan& plan,
    const SearchSpace& space = default_search_space());

/// Candidate configurations for the measured host sweep: the four paper
/// axes filtered by divisibility and \p max_work_group_size (host kernels
/// have no register or local-memory limits worth enforcing), crossed with
/// every meaningful channel_block (values ≥ the channel count collapse onto
/// the "all channels" pass and are dropped) and every unroll ladder value.
std::vector<dedisp::KernelConfig> enumerate_host_configs(
    const dedisp::Plan& plan, std::size_t max_work_group_size,
    const SearchSpace& space = default_search_space());

/// The parameters that actually distinguish two host-kernel executions.
/// The host engine has no work-groups: a config reaches it only through its
/// tile extents, its register-tile rows (elem_dm, collapsed onto the
/// compiled {1,2,4,8} instantiations), the effective channel block and the
/// unroll instantiation — so e.g. {wi_time=8, elem_time=2} and
/// {wi_time=4, elem_time=4} run the identical kernel. The scalar engine
/// ignores the register-tile and unroll knobs entirely.
struct HostKernelKey {
  std::size_t tile_time = 0;
  std::size_t tile_dm = 0;
  std::size_t reg_rows = 1;       ///< compiled DR (1 when not vectorizing)
  std::size_t channel_block = 0;  ///< effective block for the plan
  std::size_t unroll = 1;         ///< compiled U (1 when not vectorizing)

  friend bool operator==(const HostKernelKey&, const HostKernelKey&) = default;
  friend auto operator<=>(const HostKernelKey&, const HostKernelKey&) = default;
};

HostKernelKey host_kernel_key(const dedisp::KernelConfig& config,
                              const dedisp::Plan& plan, bool vectorize);

/// Drop candidates that are host-execution duplicates of an earlier one
/// (same HostKernelKey), keeping the first representative in \p configs
/// order. The default ladder crossed with the divisor candidates produces
/// many such duplicates; timing them again only wastes sweep minutes.
std::vector<dedisp::KernelConfig> dedupe_host_configs(
    const dedisp::Plan& plan, const std::vector<dedisp::KernelConfig>& configs,
    bool vectorize = true);

}  // namespace ddmc::tuner
