#include "tuner/tuner.hpp"

#include "common/expect.hpp"
#include "tuner/search_space.hpp"

namespace ddmc::tuner {

TuningResult tune(const ocl::DeviceModel& device,
                  const ocl::PlanAnalysis& analysis,
                  const TuningOptions& options,
                  const std::vector<dedisp::KernelConfig>& configs) {
  const dedisp::Plan& plan = analysis.plan();
  const std::vector<dedisp::KernelConfig> space =
      configs.empty() ? enumerate_configs(device, plan) : configs;

  TuningResult result;
  result.device_name = device.name;
  result.observation_name = plan.observation().name();
  result.dms = plan.dms();

  RunningStats stats;
  bool have_best = false;
  for (const dedisp::KernelConfig& cfg : space) {
    ocl::PerfEstimate perf;
    try {
      perf = ocl::estimate_performance(device, analysis, cfg);
    } catch (const config_error&) {
      ++result.skipped;
      continue;
    }
    ++result.evaluated;
    stats.add(perf.gflops);
    if (options.keep_population) {
      result.population.push_back({cfg, perf});
    }
    if (!have_best || perf.gflops > result.best.perf.gflops) {
      result.best = {cfg, perf};
      have_best = true;
    }
  }
  if (!have_best) {
    throw config_error("no meaningful configuration for device " +
                       device.name + " on " + plan.observation().name() +
                       " with " + std::to_string(plan.dms()) + " DMs");
  }
  result.stats.count = stats.count();
  result.stats.mean = stats.mean();
  result.stats.stddev = stats.stddev();
  result.stats.min = stats.min();
  result.stats.max = stats.max();
  result.stats.snr_of_max =
      snr(result.stats.max, result.stats.mean, result.stats.stddev);
  return result;
}

}  // namespace ddmc::tuner
