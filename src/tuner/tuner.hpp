#pragma once
/// \file tuner.hpp
/// \brief The auto-tuner: sweep every meaningful configuration, keep the best.
///
/// §IV-A: "The optimal configuration is chosen as the one that produces the
/// highest number of single precision floating point operations per second."
/// The sweep also retains the whole performance population, from which the
/// paper's impact statistics are derived: the SNR of the optimum (Figs. 8–9),
/// the configuration histogram (Fig. 10) and the Chebyshev guessing bound.

#include <optional>
#include <vector>

#include "common/statistics.hpp"
#include "dedisp/kernel_config.hpp"
#include "ocl/perf_model.hpp"

namespace ddmc::tuner {

struct ConfigPerf {
  dedisp::KernelConfig config;
  ocl::PerfEstimate perf;
};

struct TuningOptions {
  /// Retain every evaluated configuration (needed for histograms); the
  /// optimum and the summary statistics are always computed.
  bool keep_population = false;
};

struct TuningResult {
  std::string device_name;
  std::string observation_name;
  std::size_t dms = 0;
  ConfigPerf best;
  StatsSummary stats;              ///< over GFLOP/s of all valid configs
  std::size_t evaluated = 0;       ///< valid configurations measured
  std::size_t skipped = 0;         ///< configurations rejected as invalid
  std::vector<ConfigPerf> population;  ///< filled iff keep_population

  /// SNR of the optimum: (best − mean) / σ of the population.
  double snr_of_optimum() const {
    return snr(best.perf.gflops, stats.mean, stats.stddev);
  }
};

/// Sweep \p configs (or the default enumerated space when empty) on the
/// performance model and return the optimum plus population statistics.
/// Throws ddmc::config_error only if *no* configuration is valid.
TuningResult tune(const ocl::DeviceModel& device,
                  const ocl::PlanAnalysis& analysis,
                  const TuningOptions& options = {},
                  const std::vector<dedisp::KernelConfig>& configs = {});

}  // namespace ddmc::tuner
