#include "tuner/search_space.hpp"

#include <set>

namespace ddmc::tuner {

SearchSpace default_search_space() {
  SearchSpace s;
  // Powers of two up to the largest work-group any Table I device accepts,
  // plus the decimal divisors of the setups' samples-per-second — the paper
  // finds optima like 250×4 (LOFAR, GTX 680) that are not powers of two.
  s.wi_time = {1,  2,  4,  8,  10, 16,  20,  25,  32,  50,  64,
               100, 125, 128, 200, 250, 256, 500, 512, 1000, 1024};
  s.wi_dm = {1, 2, 4, 8, 16, 32};
  s.elem_time = {1, 2, 4, 5, 8, 10, 16, 20, 25, 32, 50};
  s.elem_dm = {1, 2, 4, 8};
  // Host-engine axes. The channel blocks bracket the L1/L2 residency
  // sweet spots of the setups' channel counts (Apertif/LOFAR: 1024 and
  // 2048 channels); 0 is the unblocked single pass.
  s.channel_block = {0, 32, 128, 512};
  s.unroll = {1, 2, 4};
  return s;
}

std::vector<dedisp::KernelConfig> enumerate_configs(
    const ocl::DeviceModel& device, const dedisp::Plan& plan,
    const SearchSpace& space) {
  std::vector<dedisp::KernelConfig> out;
  for (std::size_t wt : space.wi_time) {
    for (std::size_t wd : space.wi_dm) {
      if (wt * wd > device.max_work_group_size) continue;
      for (std::size_t et : space.elem_time) {
        if (plan.out_samples() % (wt * et) != 0) continue;
        for (std::size_t ed : space.elem_dm) {
          if (plan.dms() % (wd * ed) != 0) continue;
          const dedisp::KernelConfig cfg{wt, wd, et, ed};
          if (cfg.accumulators_per_item() + device.reg_overhead_per_item >
              device.max_regs_per_item) {
            continue;
          }
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<dedisp::KernelConfig> enumerate_host_configs(
    const dedisp::Plan& plan, std::size_t max_work_group_size,
    const SearchSpace& space) {
  std::vector<dedisp::KernelConfig> out;
  for (std::size_t wt : space.wi_time) {
    for (std::size_t wd : space.wi_dm) {
      if (wt * wd > max_work_group_size) continue;
      for (std::size_t et : space.elem_time) {
        if (plan.out_samples() % (wt * et) != 0) continue;
        for (std::size_t ed : space.elem_dm) {
          if (plan.dms() % (wd * ed) != 0) continue;
          for (std::size_t cb : space.channel_block) {
            if (cb >= plan.channels() && cb != 0) continue;
            for (std::size_t un : space.unroll) {
              if (un == 0) continue;
              out.push_back(dedisp::KernelConfig{wt, wd, et, ed, cb, un});
            }
          }
        }
      }
    }
  }
  return out;
}

HostKernelKey host_kernel_key(const dedisp::KernelConfig& config,
                              const dedisp::Plan& plan, bool vectorize) {
  HostKernelKey key;
  key.tile_time = config.tile_time();
  key.tile_dm = config.tile_dm();
  key.channel_block = config.effective_channel_block(plan);
  if (vectorize) {
    // Mirror the compiled-instantiation dispatch of cpu_kernel.cpp: values
    // outside the ladder fall back to the narrowest kernel.
    key.reg_rows = (config.elem_dm == 2 || config.elem_dm == 4 ||
                    config.elem_dm == 8)
                       ? config.elem_dm
                       : 1;
    key.unroll = (config.unroll == 2 || config.unroll == 4 ||
                  config.unroll == 8)
                     ? config.unroll
                     : 1;
  }
  return key;
}

std::vector<dedisp::KernelConfig> dedupe_host_configs(
    const dedisp::Plan& plan, const std::vector<dedisp::KernelConfig>& configs,
    bool vectorize) {
  std::vector<dedisp::KernelConfig> out;
  std::set<HostKernelKey> seen;
  for (const dedisp::KernelConfig& cfg : configs) {
    if (seen.insert(host_kernel_key(cfg, plan, vectorize)).second) {
      out.push_back(cfg);
    }
  }
  return out;
}

}  // namespace ddmc::tuner
