#include "tuner/search_space.hpp"

namespace ddmc::tuner {

SearchSpace default_search_space() {
  SearchSpace s;
  // Powers of two up to the largest work-group any Table I device accepts,
  // plus the decimal divisors of the setups' samples-per-second — the paper
  // finds optima like 250×4 (LOFAR, GTX 680) that are not powers of two.
  s.wi_time = {1,  2,  4,  8,  10, 16,  20,  25,  32,  50,  64,
               100, 125, 128, 200, 250, 256, 500, 512, 1000, 1024};
  s.wi_dm = {1, 2, 4, 8, 16, 32};
  s.elem_time = {1, 2, 4, 5, 8, 10, 16, 20, 25, 32, 50};
  s.elem_dm = {1, 2, 4, 8};
  return s;
}

std::vector<dedisp::KernelConfig> enumerate_configs(
    const ocl::DeviceModel& device, const dedisp::Plan& plan,
    const SearchSpace& space) {
  std::vector<dedisp::KernelConfig> out;
  for (std::size_t wt : space.wi_time) {
    for (std::size_t wd : space.wi_dm) {
      if (wt * wd > device.max_work_group_size) continue;
      for (std::size_t et : space.elem_time) {
        if (plan.out_samples() % (wt * et) != 0) continue;
        for (std::size_t ed : space.elem_dm) {
          if (plan.dms() % (wd * ed) != 0) continue;
          const dedisp::KernelConfig cfg{wt, wd, et, ed};
          if (cfg.accumulators_per_item() + device.reg_overhead_per_item >
              device.max_regs_per_item) {
            continue;
          }
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

}  // namespace ddmc::tuner
