#pragma once
/// \file intensity.hpp
/// \brief Arithmetic-intensity analysis (§III-A, Eq. 2 and Eq. 3).
///
/// The paper's central analytical claim: dedispersion performs one floating
/// point operation per 4-byte input element (AI < 1/4, Eq. 2), data reuse
/// across neighbouring trial DMs can raise the bound to
/// 1 / (4·(1/d + 1/s + 1/c)) (Eq. 3), but the reachable reuse is dictated by
/// the delay geometry of the observation — and in realistic setups it never
/// approaches Eq. 3. This module computes both bounds and the *actual* AI a
/// tiling achieves on a concrete plan, from the delay table itself.

#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

/// Eq. 2 — AI without data reuse: 1/(4+ε). ε ≥ 0 models the delay-table
/// reads and the output writes.
double ai_no_reuse_eq2(double epsilon = 0.0);

/// Eq. 3 — AI upper bound with perfect data reuse for an instance d×s×c.
double ai_upper_bound_eq3(double dms, double samples, double channels);

/// Arithmetic-intensity accounting for a concrete (plan, tiling).
struct IntensityReport {
  double flop = 0.0;          ///< d·s·c accumulates
  double naive_bytes = 0.0;   ///< input bytes with zero reuse + outputs + Δ
  double unique_bytes = 0.0;  ///< distinct input bytes the tiling stages
  double ai_naive = 0.0;      ///< flop / naive_bytes (≈ Eq. 2's 1/(4+ε))
  double ai_tiled = 0.0;      ///< flop / unique_bytes
  double reuse_factor = 1.0;  ///< naive input reads / unique input reads
};

/// Analyze \p config on \p plan. The unique-read count follows the staging
/// geometry: per (channel, DM-tile, time-tile), tile_time + spread distinct
/// samples. \p config must validate against \p plan.
IntensityReport analyze_intensity(const Plan& plan,
                                  const KernelConfig& config);

}  // namespace ddmc::dedisp
