#pragma once
/// \file reference.hpp
/// \brief Algorithm 1 — the sequential reference dedispersion.
///
/// Every other implementation in this library (tiled host kernel, simulator
/// kernel, generated OpenCL mirror) is tested for bit-identical output
/// against this triple loop. Accumulation order is channel-major for every
/// implementation, so float results match exactly, not just approximately.

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

/// out(dm, t) = Σ_ch in(ch, t + Δ(ch, dm)), for every trial and sample.
/// \pre in is channels × in_samples, out is dms × out_samples.
void dedisperse_reference(const Plan& plan, ConstView2D<float> in,
                          View2D<float> out);

/// Convenience allocating the output matrix.
Array2D<float> dedisperse_reference(const Plan& plan, ConstView2D<float> in);

}  // namespace ddmc::dedisp
