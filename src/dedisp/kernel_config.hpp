#pragma once
/// \file kernel_config.hpp
/// \brief The four user-controlled parameters of the many-core kernel.
///
/// §III-B: "The general structure of the algorithm can be specifically
/// instantiated by configuring four user-controlled parameters. Two
/// parameters control the number of work-items per work-group in the time
/// and DM dimensions, regulating the amount of available parallelism. The
/// other two control the number of elements a single work-item computes,
/// also in the time and DM dimensions, regulating the amount of work per
/// work-item."
///
/// A work-group owns a tile of `tile_dm() = wi_dm*elem_dm` trial DMs by
/// `tile_time() = wi_time*elem_time` output samples; each work-item keeps
/// its `elem_dm*elem_time` accumulators in registers.
///
/// The host engine adds two knobs on top of the paper's four, both
/// defaulted so that every device-model consumer keeps its semantics:
///  - `channel_block`: channels accumulated per pass over a tile before
///    moving to the next block (0 = all channels in one pass). Blocking
///    keeps the staged input rows and the tile's accumulators resident in
///    L1/L2 — the host analogue of sizing local memory on a device.
///  - `unroll`: SIMD vectors per inner-loop iteration of the vectorized
///    accumulate (1 = no unrolling).

#include <cstddef>
#include <string>

#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

struct KernelConfig {
  std::size_t wi_time = 1;    ///< work-items per work-group, time dimension
  std::size_t wi_dm = 1;      ///< work-items per work-group, DM dimension
  std::size_t elem_time = 1;  ///< output samples computed per work-item
  std::size_t elem_dm = 1;    ///< trial DMs computed per work-item
  /// Host-engine knob: channels per accumulation pass (0 = all channels).
  std::size_t channel_block = 0;
  /// Host-engine knob: SIMD vectors per inner-loop step (1 = none).
  std::size_t unroll = 1;

  /// Output samples covered by one work-group.
  std::size_t tile_time() const { return wi_time * elem_time; }
  /// Trial DMs covered by one work-group.
  std::size_t tile_dm() const { return wi_dm * elem_dm; }
  /// Work-items per work-group (the quantity plotted in Figs. 2–3).
  std::size_t work_group_size() const { return wi_time * wi_dm; }
  /// Accumulator registers per work-item (the quantity plotted in
  /// Figs. 4–5): one register per output element a work-item produces.
  std::size_t accumulators_per_item() const { return elem_time * elem_dm; }

  /// Grid extent for a plan (work-groups in each dimension).
  std::size_t groups_time(const Plan& plan) const {
    return plan.out_samples() / tile_time();
  }
  std::size_t groups_dm(const Plan& plan) const {
    return plan.dms() / tile_dm();
  }
  std::size_t total_groups(const Plan& plan) const {
    return groups_time(plan) * groups_dm(plan);
  }

  /// True when both tile dimensions evenly divide the plan (the generated
  /// kernel has no remainder handling, as in the paper's implementation).
  bool divides(const Plan& plan) const {
    return tile_time() != 0 && tile_dm() != 0 &&
           plan.out_samples() % tile_time() == 0 &&
           plan.dms() % tile_dm() == 0;
  }

  /// Channels accumulated per pass for \p plan: `channel_block` clamped to
  /// the channel count, with 0 meaning "all channels in one pass".
  std::size_t effective_channel_block(const Plan& plan) const {
    const std::size_t channels = plan.channels();
    return (channel_block == 0 || channel_block > channels) ? channels
                                                            : channel_block;
  }

  /// Throws ddmc::config_error with a precise reason when the config cannot
  /// run on \p plan (zero parameter or non-dividing tiles).
  void validate(const Plan& plan) const;

  std::string to_string() const;

  friend bool operator==(const KernelConfig&, const KernelConfig&) = default;
};

}  // namespace ddmc::dedisp
