#pragma once
/// \file cpu_kernel_u8.hpp
/// \brief The tiled host kernel on quantized 8-bit samples.
///
/// Structurally the twin of cpu_kernel.hpp — the same tile_dm × tile_time
/// work-groups, channel blocking, staged rows and register-blocked
/// accumulate — but the sample plane is one byte per element from DRAM all
/// the way into the register tile, where simd::vload_u8 widens it to float
/// lanes. Dedispersion is memory-bandwidth-bound (the paper's central
/// premise), so streaming a quarter of the input bytes is worth more than
/// any ALU trick.
///
/// The kernel accumulates *raw u8 codes* in float lanes — exact as long as
/// the running sum stays below 2^24, i.e. for any channel count up to
/// 65 793 — and applies the affine dequantization once per output element
/// at writeback: out = C·lo + scale·Σq. Per output element the channels
/// are summed in channel order and the sum is an exact integer, so every
/// tile shape, channel block, unroll, SIMD backend and thread count
/// produces bitwise-identical output. Only the quantization itself is
/// approximate (see quantize.hpp for the bound).

#include <cstdint>

#include "common/array2d.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "dedisp/quantize.hpp"

namespace ddmc::dedisp {

/// Execute the tiled kernel on a quantized byte plane (channels ×
/// ≥in_samples codes under \p params). \p config must validate against
/// \p plan; options are the same host-execution knobs as the float kernel.
void dedisperse_cpu_u8(const Plan& plan, const KernelConfig& config,
                       ConstView2D<std::uint8_t> in,
                       const QuantizationParams& params, View2D<float> out,
                       const CpuKernelOptions& options = {});

/// Convenience allocating the output matrix.
Array2D<float> dedisperse_cpu_u8(const Plan& plan, const KernelConfig& config,
                                 ConstView2D<std::uint8_t> in,
                                 const QuantizationParams& params,
                                 const CpuKernelOptions& options = {});

}  // namespace ddmc::dedisp
