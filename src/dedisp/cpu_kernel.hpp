#pragma once
/// \file cpu_kernel.hpp
/// \brief SIMD-vectorized, cache-blocked, threaded host twin of the
/// many-core kernel.
///
/// The iteration space is tiled exactly like the device work-groups of
/// §III-B (tile_dm × tile_time), and the engine adds the two optimizations
/// that Barsdell et al. and Novotný et al. identify as decisive on CPUs:
///
///  - the time dimension of every accumulate is explicitly vectorized
///    through the portable layer of common/simd.hpp (AVX/SSE2/NEON with a
///    scalar fallback), with a tunable unroll factor;
///  - the channel loop is blocked (`KernelConfig::channel_block`) so the
///    staged input rows and the tile's accumulators stay L1/L2-resident,
///    and the per-(tile, channel-block) delay/shift tables are precomputed
///    once so no delay lookup remains in the hot loops.
///
/// Every output element still accumulates its channels in channel order,
/// so scalar, vectorized, blocked and threaded runs are all bit-identical
/// to dedisp::reference — which is what the equivalence test suite checks.
/// Tiles are independent and are distributed over a thread pool.

#include "common/array2d.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

struct CpuKernelOptions {
  /// Stage each (channel, dm-tile) input span into a thread-local buffer
  /// before accumulating (mirrors the device local-memory path).
  bool stage_rows = true;
  /// Use the explicit SIMD engine; false runs the seed's scalar inner loop
  /// (the baseline the benchmarks compare against).
  bool vectorize = true;
  /// Worker threads; 0 = use the global pool sized to the machine,
  /// 1 = run inline on the calling thread (deterministic profiling).
  std::size_t threads = 0;
};

/// Execute the tiled kernel. \p config must validate against \p plan.
void dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                    ConstView2D<float> in, View2D<float> out,
                    const CpuKernelOptions& options = {});

/// Convenience allocating the output matrix.
Array2D<float> dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                              ConstView2D<float> in,
                              const CpuKernelOptions& options = {});

}  // namespace ddmc::dedisp
