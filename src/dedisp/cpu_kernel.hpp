#pragma once
/// \file cpu_kernel.hpp
/// \brief Tiled, threaded host implementation of the many-core kernel.
///
/// This is the host-side twin of the OpenCL kernel of §III-B: the iteration
/// space is tiled exactly like the device work-groups (tile_dm × tile_time),
/// accumulators are register-resident scalars, and an optional staging path
/// copies each (channel, DM-tile) input row span into a local buffer first —
/// the moral equivalent of collaborative local-memory loading. Tiles are
/// independent and are distributed over a thread pool.
///
/// Running the same KernelConfig here and on the simulator produces
/// bit-identical output, which is what the equivalence test suite checks.

#include "common/array2d.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

struct CpuKernelOptions {
  /// Stage each (channel, dm-tile) input span into a thread-local buffer
  /// before accumulating (mirrors the device local-memory path).
  bool stage_rows = true;
  /// Worker threads; 0 = use the global pool sized to the machine,
  /// 1 = run inline on the calling thread (deterministic profiling).
  std::size_t threads = 0;
};

/// Execute the tiled kernel. \p config must validate against \p plan.
void dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                    ConstView2D<float> in, View2D<float> out,
                    const CpuKernelOptions& options = {});

/// Convenience allocating the output matrix.
Array2D<float> dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                              ConstView2D<float> in,
                              const CpuKernelOptions& options = {});

}  // namespace ddmc::dedisp
