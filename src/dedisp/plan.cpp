#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

Plan::Plan(const sky::Observation& obs, std::size_t dms, std::size_t seconds)
    : Plan(obs, dms, obs.samples_per_second() * seconds,
           /*round_to_seconds=*/true) {
  DDMC_REQUIRE(seconds > 0, "need at least one second of output");
}

Plan Plan::with_output_samples(const sky::Observation& obs, std::size_t dms,
                               std::size_t out_samples) {
  return Plan(obs, dms, out_samples, /*round_to_seconds=*/false);
}

Plan Plan::with_chunk(std::size_t out_chunk) const {
  return Plan(*this, out_chunk);
}

Plan Plan::dm_shard(std::size_t first_dm, std::size_t dms) const {
  // Checked here, before the delegated ctor's member initializers slice
  // the delay table, so the caller sees the plan-level error.
  DDMC_REQUIRE(dms > 0, "need at least one trial DM per shard");
  DDMC_REQUIRE(first_dm + dms <= dms_,
               "shard exceeds the parent plan's DM grid");
  return Plan(*this, first_dm, dms);
}

Plan::Plan(const Plan& base, std::size_t first_dm, std::size_t dms)
    : obs_(sky::Observation(base.obs_.name(), base.obs_.sampling_rate(),
                            base.obs_.channels(), base.obs_.f_min_mhz(),
                            base.obs_.channel_bw_mhz(),
                            base.obs_.dm_value(first_dm),
                            base.obs_.dm_step())),
      dms_(dms),
      out_samples_(base.out_samples_),
      in_samples_(0),
      delays_(std::make_shared<const sky::DelayTable>(*base.delays_, first_dm,
                                                      dms)) {
  // The shard observation's dm_first is informational (it keys the shard's
  // PlanSignature in the tuning cache); the sliced table carries the delays.
  in_samples_ = out_samples_ + static_cast<std::size_t>(delays_->max_delay());
}

Plan::Plan(const Plan& base, std::size_t out_chunk)
    : obs_(base.obs_),
      dms_(base.dms_),
      out_samples_(out_chunk),
      in_samples_(0),
      delays_(base.delays_) {
  DDMC_REQUIRE(out_chunk > 0, "need at least one output sample per chunk");
  in_samples_ = out_samples_ + base.max_delay();
}

Plan::Plan(const sky::Observation& obs, std::size_t dms,
           std::size_t out_samples, bool round_to_seconds)
    : obs_(obs),
      dms_(dms),
      out_samples_(out_samples),
      in_samples_(0),
      delays_(std::make_shared<const sky::DelayTable>(obs, dms)) {
  DDMC_REQUIRE(dms > 0, "need at least one trial DM");
  DDMC_REQUIRE(out_samples > 0, "need at least one output sample");
  const auto max_delay = static_cast<std::size_t>(delays_->max_delay());
  in_samples_ = out_samples_ + max_delay;
  if (round_to_seconds) {
    in_samples_ = round_up(in_samples_, obs.samples_per_second());
  }
  DDMC_ENSURE(in_samples_ >= out_samples_ + max_delay,
              "input must cover the largest shifted read");
}

}  // namespace ddmc::dedisp
