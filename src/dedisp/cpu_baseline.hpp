#pragma once
/// \file cpu_baseline.hpp
/// \brief The paper's CPU comparator (§V-D), re-created in portable C++.
///
/// "This CPU version of the algorithm is parallelized using OpenMP, with
/// different threads computing different DM values and blocks of time
/// samples. Chunks of 8 time samples are computed at once using Intel's
/// Advanced Vector Extensions (AVX)."
///
/// We reproduce the same structure with the library thread pool (threads
/// over DM × time-block pairs) and an 8-wide inner loop written so the
/// compiler's auto-vectorizer emits AVX on x86. No intrinsics: the point of
/// the baseline is the *algorithm structure*, and portable code keeps the
/// suite runnable everywhere.

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

struct CpuBaselineOptions {
  std::size_t threads = 0;      ///< 0 = machine-sized pool, 1 = inline
  std::size_t time_block = 512; ///< samples per work unit (multiple of 8)
};

/// Dedisperse with the baseline structure (threads over DMs and time blocks,
/// 8-sample inner chunks). Output is bit-identical to the reference.
void dedisperse_cpu_baseline(const Plan& plan, ConstView2D<float> in,
                             View2D<float> out,
                             const CpuBaselineOptions& options = {});

Array2D<float> dedisperse_cpu_baseline(const Plan& plan,
                                       ConstView2D<float> in,
                                       const CpuBaselineOptions& options = {});

}  // namespace ddmc::dedisp
