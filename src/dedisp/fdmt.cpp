#include "dedisp/fdmt.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <vector>

#include "common/expect.hpp"
#include "common/fft.hpp"
#include "common/simd.hpp"
#include "sky/delay.hpp"

namespace ddmc::dedisp {

namespace {

constexpr double kTau = 6.283185307179586476925286766559;

void check_split(const Plan& plan, const SubbandConfig& split) {
  DDMC_REQUIRE(split.subbands > 0 && split.coarse_step > 0,
               "fdmt split parameters must be positive");
  DDMC_REQUIRE(plan.channels() % split.subbands == 0,
               "fdmt subband count must divide the channel count");
  DDMC_REQUIRE(plan.dms() % split.coarse_step == 0,
               "fdmt coarse step must divide the trial count");
}

/// The split's composed shifts, read straight from the plan's DelayTable
/// (never recomputed from frequencies, so shard plans — whose tables are
/// sliced bit-for-bit — compose exactly the shifts their parent would).
/// Each subband is referenced to its highest channel (smallest delay in
/// the band), making both shift families non-negative:
///   intra(ci, ch) = delay(c, ch) - delay(c, ref(band))   at coarse trial c
///   inter(dm, b)  = delay(dm, ref(b))
/// and the shift stage-1 + stage-2 apply to channel ch for fine trial dm
/// is intra + inter, approximating the exact delay(dm, ch).
struct SplitDelays {
  std::size_t subbands = 1;
  std::size_t coarse_step = 1;
  std::size_t n_coarse = 1;
  std::size_t chans_per_band = 1;
  std::vector<std::int64_t> intra;  ///< n_coarse x channels
  std::vector<std::int64_t> inter;  ///< dms x subbands
  std::int64_t max_intra = 0;
  std::int64_t max_inter = 0;
};

SplitDelays split_delays(const Plan& plan, const SubbandConfig& split) {
  check_split(plan, split);
  const sky::DelayTable& delays = plan.delays();
  const std::size_t channels = plan.channels();
  const std::size_t dms = plan.dms();
  SplitDelays sd;
  sd.subbands = split.subbands;
  sd.coarse_step = split.coarse_step;
  sd.n_coarse = dms / split.coarse_step;
  sd.chans_per_band = channels / split.subbands;
  auto ref_channel = [&](std::size_t band) {
    return (band + 1) * sd.chans_per_band - 1;
  };
  sd.intra.resize(sd.n_coarse * channels);
  for (std::size_t ci = 0; ci < sd.n_coarse; ++ci) {
    const std::size_t coarse = ci * sd.coarse_step;
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const std::int64_t k =
          delays.delay(coarse, ch) -
          delays.delay(coarse, ref_channel(ch / sd.chans_per_band));
      sd.intra[ci * channels + ch] = k;
      sd.max_intra = std::max(sd.max_intra, k);
    }
  }
  sd.inter.resize(dms * sd.subbands);
  for (std::size_t dm = 0; dm < dms; ++dm) {
    for (std::size_t band = 0; band < sd.subbands; ++band) {
      const std::int64_t k = delays.delay(dm, ref_channel(band));
      sd.inter[dm * sd.subbands + band] = k;
      sd.max_inter = std::max(sd.max_inter, k);
    }
  }
  return sd;
}

std::size_t fft_size_of(const Plan& plan, const SplitDelays& sd) {
  const std::size_t reach =
      plan.out_samples() +
      static_cast<std::size_t>(sd.max_intra + sd.max_inter);
  return fft::next_pow2(std::max(plan.in_samples(), reach));
}

/// Accumulate the spectrum (xr, xi) rotated by e^{+i*2*pi*k*shift/n} into
/// (ar, ai) over bins [k0, k0 + count); all four pointers are pre-offset
/// to bin k0. A left cyclic shift by \p shift samples under the
/// negative-exponent DFT is exactly this positive rotation.
///
/// Twiddles come from a vector-lane phase recurrence: one float rotor per
/// SIMD lane advances by a per-vector-width rotor inside a 128-bin chunk
/// and all lanes are refreshed from a double-precision base rotor at every
/// chunk boundary, so float drift never accumulates past a chunk while the
/// hot loop stays pure vfloat arithmetic (simd.hpp — the same layer the
/// tiled kernel's accumulate uses). All reference angles use the exact
/// (k*shift mod n) reduction.
void rotate_accumulate(const float* __restrict xr, const float* __restrict xi,
                       float* __restrict ar, float* __restrict ai,
                       std::size_t k0, std::size_t count, std::uint64_t shift,
                       std::size_t n) {
  shift %= n;
  if (shift == 0) {
    for (std::size_t i = 0; i < count; ++i) ar[i] += xr[i];
    for (std::size_t i = 0; i < count; ++i) ai[i] += xi[i];
    return;
  }
  constexpr std::size_t kLanes = simd::kFloatLanes;
  constexpr std::size_t kChunk = 128;  // multiple of every backend's lanes
  static_assert(kChunk % kLanes == 0);
  const double dn = static_cast<double>(n);
  auto bin_angle = [&](std::uint64_t k) {
    return kTau * static_cast<double>((k * shift) % n) / dn;
  };
  // Setup is two sincos per call (the unit step and the exact base angle);
  // lane offsets, the per-kLanes rotor and the per-chunk rotor all derive
  // from the unit step by double-precision multiplication — the call count
  // is bins/block per (channel|subband, trial) pair, so trigonometric
  // setup would otherwise rival the rotation work itself.
  const double step_a = bin_angle(1);
  const double step_r = std::cos(step_a);
  const double step_i = std::sin(step_a);
  double offr[kLanes], offi[kLanes];
  offr[0] = 1.0;
  offi[0] = 0.0;
  for (std::size_t l = 1; l < kLanes; ++l) {
    offr[l] = offr[l - 1] * step_r - offi[l - 1] * step_i;
    offi[l] = offr[l - 1] * step_i + offi[l - 1] * step_r;
  }
  const double lane_r = offr[kLanes - 1] * step_r - offi[kLanes - 1] * step_i;
  const double lane_i = offr[kLanes - 1] * step_i + offi[kLanes - 1] * step_r;
  const simd::vfloat lane_cr = simd::vbroadcast(static_cast<float>(lane_r));
  const simd::vfloat lane_ci = simd::vbroadcast(static_cast<float>(lane_i));
  double chunk_cr = lane_r;
  double chunk_ci = lane_i;
  for (std::size_t p = kLanes; p < kChunk; p <<= 1) {  // chunk = lane^(2^q)
    const double sq = chunk_cr * chunk_cr - chunk_ci * chunk_ci;
    chunk_ci = 2.0 * chunk_cr * chunk_ci;
    chunk_cr = sq;
  }
  const double base_a = bin_angle(k0);
  double base_r = std::cos(base_a);
  double base_i = std::sin(base_a);

  std::size_t i = 0;
  while (i < count) {
    const std::size_t chunk_end = std::min(i + kChunk, count);
    alignas(64) float fwr[kLanes], fwi[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      fwr[l] = static_cast<float>(base_r * offr[l] - base_i * offi[l]);
      fwi[l] = static_cast<float>(base_r * offi[l] + base_i * offr[l]);
    }
    simd::vfloat wr = simd::vload_aligned(fwr);
    simd::vfloat wi = simd::vload_aligned(fwi);
    std::size_t j = i;
    for (; j + kLanes <= chunk_end; j += kLanes) {
      const simd::vfloat re = simd::vload(xr + j);
      const simd::vfloat im = simd::vload(xi + j);
      // a += x * w (complex): ar += re*wr - im*wi; ai += re*wi + im*wr.
      simd::vfloat accr = simd::vload(ar + j);
      simd::vfloat acci = simd::vload(ai + j);
      accr = simd::vfma(re, wr, simd::vsub(accr, simd::vmul(im, wi)));
      acci = simd::vfma(re, wi, simd::vfma(im, wr, acci));
      simd::vstore(ar + j, accr);
      simd::vstore(ai + j, acci);
      // w *= lane rotor: advance every lane's phase by kLanes bins.
      const simd::vfloat t =
          simd::vsub(simd::vmul(wr, lane_cr), simd::vmul(wi, lane_ci));
      wi = simd::vfma(wr, lane_ci, simd::vmul(wi, lane_cr));
      wr = t;
    }
    for (; j < chunk_end; ++j) {  // ragged last bins: exact angles
      const double a = bin_angle(k0 + j);
      const float cr = static_cast<float>(std::cos(a));
      const float ci = static_cast<float>(std::sin(a));
      ar[j] += xr[j] * cr - xi[j] * ci;
      ai[j] += xr[j] * ci + xi[j] * cr;
    }
    const double t = base_r * chunk_cr - base_i * chunk_ci;
    base_i = base_r * chunk_ci + base_i * chunk_cr;
    base_r = t;
    i = chunk_end;
  }
}

}  // namespace

FdmtConfig FdmtConfig::adapted_to(const Plan& plan) const {
  FdmtConfig adapted = *this;
  adapted.split = split.adapted_to(plan);
  adapted.block = std::max<std::size_t>(block, 1);
  return adapted;
}

std::size_t fdmt_fft_size(const Plan& plan, const SubbandConfig& split) {
  return fft_size_of(plan, split_delays(plan, split));
}

std::int64_t fdmt_max_delay_error(const Plan& plan,
                                  const SubbandConfig& split) {
  const SplitDelays sd = split_delays(plan, split);
  const sky::DelayTable& delays = plan.delays();
  const std::size_t channels = plan.channels();
  std::int64_t worst = 0;
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    const std::size_t ci = dm / sd.coarse_step;
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const std::int64_t composed =
          sd.intra[ci * channels + ch] +
          sd.inter[dm * sd.subbands + ch / sd.chans_per_band];
      worst = std::max(worst, std::abs(composed - delays.delay(dm, ch)));
    }
  }
  return worst;
}

double fdmt_error_bound(const Plan& plan, const SubbandConfig& split,
                        double max_abs) {
  const SubbandConfig adapted = split.adapted_to(plan);
  const std::int64_t smear = fdmt_max_delay_error(plan, adapted);
  const double channels = static_cast<double>(plan.channels());
  // Smearing: a channel whose composed shift is off by >= 1 sample
  // contributes a neighbouring sample instead of the exact one — at most
  // 2*max_abs per channel. Roundoff: float FFTs and rotations carry a
  // relative error of order log2(N)*eps through an accumulation of
  // `channels` unit-bounded series; 64x is the safety margin that keeps
  // the bound a guarantee rather than an estimate.
  const double n = static_cast<double>(fdmt_fft_size(plan, adapted));
  const double eps = std::numeric_limits<float>::epsilon();
  const double roundoff =
      64.0 * eps * channels * (std::log2(n) + 8.0) * max_abs;
  const double smearing = smear > 0 ? 2.0 * max_abs * channels : 0.0;
  return smearing + roundoff;
}

double fdmt_flop(const Plan& plan, const FdmtConfig& config) {
  check_split(plan, config.split);
  const std::size_t n = fdmt_fft_size(plan, config.split);
  const double bins = static_cast<double>(fft::rfft_bins(n));
  const double d = static_cast<double>(plan.dms());
  const double c = static_cast<double>(plan.channels());
  // A real FFT is one half-size complex transform: ~2.5*N*log2(N) real
  // operations; each rotation stage is one complex multiply-accumulate
  // (8 real operations) per bin.
  const double rfft =
      2.5 * static_cast<double>(n) * std::log2(static_cast<double>(n));
  const double stage1 =
      (d / static_cast<double>(config.split.coarse_step)) * c * bins * 8.0;
  const double stage2 =
      d * static_cast<double>(config.split.subbands) * bins * 8.0;
  return c * rfft + stage1 + stage2 + d * rfft;
}

void dedisperse_fdmt(const Plan& plan, const FdmtConfig& config,
                     ConstView2D<float> in, View2D<float> out) {
  check_split(plan, config.split);
  const std::size_t channels = plan.channels();
  const std::size_t dms = plan.dms();
  const std::size_t samples = plan.out_samples();
  DDMC_REQUIRE(in.rows() == channels, "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(), "input too short");
  DDMC_REQUIRE(out.rows() == dms, "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= samples, "output too short");

  const SplitDelays sd = split_delays(plan, config.split);
  const std::size_t n = fft_size_of(plan, sd);
  const std::size_t nb = fft::rfft_bins(n);
  const std::size_t block =
      std::min(std::max<std::size_t>(config.block, 1), nb);

  // Forward transform every channel once. Split re/im planes instead of
  // interleaved complex: the rotation kernel then streams independent
  // float arrays the compiler autovectorizes without shuffles.
  fft::RealFft rf(n);
  Array2D<float> spec_re(channels, nb);
  Array2D<float> spec_im(channels, nb);
  std::vector<std::complex<float>> bins(nb);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    rf.forward(&in(ch, 0), plan.in_samples(), bins.data());
    float* re = &spec_re(ch, 0);
    float* im = &spec_im(ch, 0);
    for (std::size_t k = 0; k < nb; ++k) {
      re[k] = bins[k].real();
      im[k] = bins[k].imag();
    }
  }

  // Loop order is bin-blocks outermost, every coarse group inside: the
  // channel spectra slice of the current block (channels x block floats x2)
  // is re-read by all n_coarse stage-1 passes while it is still
  // cache-resident, so the 2x channels x bins spectrum crosses DRAM once
  // per call instead of once per coarse trial — with the groups innermost
  // the spectrum re-reads dominated the wall time. The cost is one
  // accumulator row per *fine* trial held live across the whole block loop
  // (2 x dms x bins floats, on the order of the output matrix itself).
  // `block` is the cache-blocking width in bins: small enough that the
  // spectra slice plus the collapsed subband planes fit in last-level
  // cache, large enough to amortize the per-block rotor setup.
  Array2D<float> sb_re(sd.n_coarse * sd.subbands, block);
  Array2D<float> sb_im(sd.n_coarse * sd.subbands, block);
  Array2D<float> acc_re(dms, nb);
  Array2D<float> acc_im(dms, nb);
  acc_re.fill(0.0f);
  acc_im.fill(0.0f);
  std::vector<float> series(n);

  for (std::size_t k0 = 0; k0 < nb; k0 += block) {
    const std::size_t cnt = std::min(block, nb - k0);
    // Stage 1: collapse each subband's channels at each coarse trial's
    // intra-subband rotations.
    for (std::size_t ci = 0; ci < sd.n_coarse; ++ci) {
      const std::int64_t* intra_row = &sd.intra[ci * channels];
      for (std::size_t band = 0; band < sd.subbands; ++band) {
        float* br = &sb_re(ci * sd.subbands + band, 0);
        float* bi = &sb_im(ci * sd.subbands + band, 0);
        std::fill(br, br + cnt, 0.0f);
        std::fill(bi, bi + cnt, 0.0f);
        for (std::size_t ch = band * sd.chans_per_band;
             ch < (band + 1) * sd.chans_per_band; ++ch) {
          rotate_accumulate(&spec_re(ch, k0), &spec_im(ch, k0), br, bi, k0,
                            cnt, static_cast<std::uint64_t>(intra_row[ch]),
                            n);
        }
      }
    }
    // Stage 2: every fine trial combines its coarse group's collapsed
    // subband spectra with its own inter-subband rotations.
    for (std::size_t dm = 0; dm < dms; ++dm) {
      const std::size_t ci = dm / sd.coarse_step;
      const std::int64_t* inter_row = &sd.inter[dm * sd.subbands];
      for (std::size_t band = 0; band < sd.subbands; ++band) {
        rotate_accumulate(&sb_re(ci * sd.subbands + band, 0),
                          &sb_im(ci * sd.subbands + band, 0), &acc_re(dm, k0),
                          &acc_im(dm, k0), k0, cnt,
                          static_cast<std::uint64_t>(inter_row[band]), n);
      }
    }
  }
  // One inverse transform per fine trial.
  for (std::size_t dm = 0; dm < dms; ++dm) {
    for (std::size_t k = 0; k < nb; ++k) {
      bins[k] = {acc_re(dm, k), acc_im(dm, k)};
    }
    rf.inverse(bins.data(), series.data());
    std::memcpy(&out(dm, 0), series.data(), samples * sizeof(float));
  }
}

Array2D<float> dedisperse_fdmt(const Plan& plan, const FdmtConfig& config,
                               ConstView2D<float> in) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_fdmt(plan, config, in, out.view());
  return out;
}

}  // namespace ddmc::dedisp
