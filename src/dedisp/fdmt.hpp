#pragma once
/// \file fdmt.hpp
/// \brief Fourier-domain dedispersion: shifts as phase rotations.
///
/// Every time-domain engine in this library pays O(dms * channels *
/// samples) for the shifted accumulations of Algorithm 1. In the Fourier
/// domain a shift is a phase rotation (Bassa et al., arXiv:2110.03482):
/// forward-FFT each channel's series once, multiply by per-(channel, DM)
/// twiddles e^{+2*pi*i*k*delay/N} derived from the plan's DelayTable,
/// accumulate spectra, and inverse-FFT once per DM trial. The per-sample
/// shift cost moves into precomputed twiddle tables and the asymptotic
/// cost becomes O(channels*S*log S + dms*channels*S) complex work.
///
/// On its own that trades 1 real accumulate per (dm, channel, sample) for
/// 1 complex multiply-accumulate per (dm, channel, bin) — more arithmetic,
/// not less. The implementation therefore factors the rotation work the
/// same way the time-domain subband engine factors its shifts: channels
/// are grouped into subbands collapsed with intra-subband rotations once
/// per *coarse* DM trial (every coarse_step fine trials), then each fine
/// trial combines the collapsed subband spectra with inter-subband
/// rotations. The rotation count drops from dms*channels to
/// (dms/coarse_step)*channels + dms*subbands per bin — the asymptotic
/// win that beats brute force at high trial counts.
///
/// Accuracy: all shifts are integers from the plan's own DelayTable, and a
/// cyclic shift by an integer delay is *exact* under the DFT, so the only
/// error sources are (a) the subband approximation — a fine trial reuses
/// its coarse trial's intra-subband delays, off by at most
/// fdmt_max_delay_error() samples (zero when subbands == channels and
/// coarse_step == 1) — and (b) float FFT/rotation roundoff.
/// fdmt_error_bound() documents both terms; the engine tests enforce it
/// against the exact reference.

#include <cstddef>
#include <cstdint>

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"
#include "dedisp/subband.hpp"

namespace ddmc::dedisp {

/// Tuning knobs of the Fourier-domain method.
struct FdmtConfig {
  /// Channel-split / coarse-DM-step factorization of the rotation work —
  /// the same decomposition, divisibility rules and smearing semantics as
  /// the time-domain subband engine (subbands must divide the channel
  /// count, coarse_step the trial count; gcd-adapt via adapted_to).
  SubbandConfig split;
  /// Frequency-accumulation blocking: spectrum bins are processed in
  /// blocks of this many complex bins so one block of every per-group
  /// accumulator stays cache-resident across its rotation passes. Any
  /// value >= 1 is valid; execution clamps it to the spectrum length.
  std::size_t block = 2048;

  /// This config adapted to \p plan: the split collapses by gcd exactly as
  /// SubbandConfig::adapted_to, the block is clamped to >= 1.
  FdmtConfig adapted_to(const Plan& plan) const;
};

/// The FFT length shared by every series of the transform for \p plan:
/// next_pow2 of the largest sample index any composed (intra + inter)
/// shift can read, so the cyclic shifts of the DFT never wrap nonzero
/// data back into the output window. Always >= in_samples.
std::size_t fdmt_fft_size(const Plan& plan, const SubbandConfig& split);

/// Largest |composed - exact| delay error in samples over every
/// (trial, channel): the smearing introduced by reusing each coarse
/// trial's intra-subband delays, scanned directly from the plan's
/// DelayTable. Zero when subbands == channels and coarse_step == 1.
std::int64_t fdmt_max_delay_error(const Plan& plan,
                                  const SubbandConfig& split);

/// Documented absolute error bound of dedisperse_fdmt versus the exact
/// reference, per output element, for inputs bounded by |x| <= max_abs.
/// Two terms: delay smearing (each channel whose composed shift is off
/// reads a neighbouring sample — worth at most 2*max_abs per channel,
/// zero when fdmt_max_delay_error is zero) plus float FFT/rotation
/// roundoff proportional to channels * log2(fft size) * machine epsilon.
/// The split is gcd-adapted internally, mirroring execution.
double fdmt_error_bound(const Plan& plan, const SubbandConfig& split,
                        double max_abs = 1.0);

/// Algorithmic floating-point operations of the transform for \p plan:
/// forward real FFTs (channels), the two rotation stages over the half
/// spectrum, and one inverse real FFT per trial. This is what the fdmt
/// engine stamps into EngineRun::flop — the plan's canonical
/// 2*dms*channels*samples stays the cross-engine display denominator.
double fdmt_flop(const Plan& plan, const FdmtConfig& config);

/// Fourier-domain dedispersion into \p out (dms x out_samples). Reads
/// exactly in_samples columns of \p in; shifts beyond that window read
/// the transform's zero padding. Requires the config's divisibility
/// (use FdmtConfig::adapted_to).
void dedisperse_fdmt(const Plan& plan, const FdmtConfig& config,
                     ConstView2D<float> in, View2D<float> out);

/// Convenience allocating the output.
Array2D<float> dedisperse_fdmt(const Plan& plan, const FdmtConfig& config,
                               ConstView2D<float> in);

}  // namespace ddmc::dedisp
