#include "dedisp/cpu_kernel.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"

namespace ddmc::dedisp {

namespace {

/// Process one work-group tile: trials [dm0, dm0+tile_dm) × samples
/// [t0, t0+tile_time). Channel-major accumulation matches the reference.
void process_tile(const Plan& plan, const KernelConfig& config,
                  ConstView2D<float> in, View2D<float> out, std::size_t dm0,
                  std::size_t t0, bool stage_rows,
                  std::vector<float>& staging) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t tile_dm = config.tile_dm();
  const std::size_t tile_time = config.tile_time();
  const std::size_t channels = plan.channels();

  // Accumulators for the whole tile — the union of every work-item's
  // register file in this group.
  std::vector<float> acc(tile_dm * tile_time, 0.0f);

  for (std::size_t ch = 0; ch < channels; ++ch) {
    const auto base = static_cast<std::size_t>(delays.delay(dm0, ch));
    if (stage_rows) {
      // Collaborative load: the span [t0+Δ(ch,dm0), t0+Δ(ch,dm_hi)+tile_time)
      // covers every read any work-item in this group performs for ch.
      const auto last =
          static_cast<std::size_t>(delays.delay(dm0 + tile_dm - 1, ch));
      const std::size_t span = (last - base) + tile_time;
      staging.resize(span);
      const float* src = &in(ch, t0 + base);
      std::copy(src, src + span, staging.begin());
      for (std::size_t dm = 0; dm < tile_dm; ++dm) {
        const auto shift =
            static_cast<std::size_t>(delays.delay(dm0 + dm, ch)) - base;
        float* a = &acc[dm * tile_time];
        const float* s = &staging[shift];
        for (std::size_t t = 0; t < tile_time; ++t) a[t] += s[t];
      }
    } else {
      for (std::size_t dm = 0; dm < tile_dm; ++dm) {
        const auto shift =
            static_cast<std::size_t>(delays.delay(dm0 + dm, ch));
        float* a = &acc[dm * tile_time];
        const float* s = &in(ch, t0 + shift);
        for (std::size_t t = 0; t < tile_time; ++t) a[t] += s[t];
      }
    }
  }

  for (std::size_t dm = 0; dm < tile_dm; ++dm) {
    float* dst = &out(dm0 + dm, t0);
    const float* a = &acc[dm * tile_time];
    std::copy(a, a + tile_time, dst);
  }
}

void check_shapes(const Plan& plan, ConstView2D<float> in,
                  View2D<float> out) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(),
               "input too short for the plan's largest delay");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
}

}  // namespace

void dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                    ConstView2D<float> in, View2D<float> out,
                    const CpuKernelOptions& options) {
  config.validate(plan);
  check_shapes(plan, in, out);

  const std::size_t groups_dm = config.groups_dm(plan);
  const std::size_t groups_time = config.groups_time(plan);
  const std::size_t total = groups_dm * groups_time;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    std::vector<float> staging;  // reused across tiles on this worker
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t gd = g / groups_time;
      const std::size_t gt = g % groups_time;
      process_tile(plan, config, in, out, gd * config.tile_dm(),
                   gt * config.tile_time(), options.stage_rows, staging);
    }
  };

  if (options.threads == 1) {
    run_range(0, total);
    return;
  }
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (options.threads == 0) {
    pool = &global_pool();
  } else {
    owned = std::make_unique<ThreadPool>(options.threads);
    pool = owned.get();
  }
  const std::size_t block =
      std::max<std::size_t>(1, total / (pool->worker_count() * 4));
  pool->parallel_for(0, total, block, run_range);
}

Array2D<float> dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                              ConstView2D<float> in,
                              const CpuKernelOptions& options) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_cpu(plan, config, in, out.view(), options);
  return out;
}

}  // namespace ddmc::dedisp
