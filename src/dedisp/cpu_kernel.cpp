#include "dedisp/cpu_kernel.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/expect.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace ddmc::dedisp {

namespace {

/// Per-worker scratch, reused across tiles so the hot loop never allocates.
struct TileScratch {
  /// Tile accumulators, tile_dm rows of acc_pitch floats each — the union
  /// of every work-item's register file in this group. Rows are padded to
  /// the SIMD width so vector loads never cross into the next row.
  std::vector<float, AlignedAllocator<float>> acc;
  std::size_t acc_pitch = 0;
  /// Staged input rows of the current (tile, channel-block), one pitched
  /// row per channel — the engine's "local memory".
  std::vector<float, AlignedAllocator<float>> staging;
  /// Per-channel base pointer of the current block (staged row or a
  /// pointer straight into the input matrix).
  std::vector<const float*> src;
  /// Delay/shift table of the current DM tile, all channels:
  /// shifts[ch * tile_dm + dm] = Δ(dm0+dm, ch) − lo[ch].
  std::vector<std::size_t> shifts;
  /// Per-channel smallest delay over the tile's trials.
  std::vector<std::size_t> lo;
  /// Per-channel staging span (largest − smallest delay + tile_time).
  std::vector<std::size_t> span;
  /// DM tile the table was built for. The table depends on dm0 only, so
  /// consecutive time tiles of one DM row (workers sweep gt innermost)
  /// reuse it instead of rescanning the delay table.
  std::size_t shifts_dm0 = static_cast<std::size_t>(-1);
  bool shifts_valid = false;
};

/// Precompute the shift table of every channel for the DM tile
/// [dm0, dm0+tile_dm), unless the scratch already holds it. The smallest
/// and largest delay are scanned exactly (no monotonicity-in-DM
/// assumption), so a pathological delay table sizes the staging buffer
/// correctly instead of reading past it.
void build_shift_table(const sky::DelayTable& delays, std::size_t dm0,
                       std::size_t tile_dm, std::size_t tile_time,
                       std::size_t channels, TileScratch& s) {
  if (s.shifts_valid && s.shifts_dm0 == dm0) return;
  s.shifts.resize(channels * tile_dm);
  s.lo.resize(channels);
  s.span.resize(channels);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    std::size_t lo = static_cast<std::size_t>(delays.delay(dm0, ch));
    std::size_t hi = lo;
    std::size_t* row = &s.shifts[ch * tile_dm];
    for (std::size_t dm = 0; dm < tile_dm; ++dm) {
      const auto d = static_cast<std::size_t>(delays.delay(dm0 + dm, ch));
      row[dm] = d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    for (std::size_t dm = 0; dm < tile_dm; ++dm) row[dm] -= lo;
    s.lo[ch] = lo;
    s.span[ch] = (hi - lo) + tile_time;
  }
  s.shifts_dm0 = dm0;
  s.shifts_valid = true;
}

/// Register-blocked SIMD accumulate of one channel block into the tile
/// accumulators: the host twin of the paper's work-item, holding a
/// DR × (U·kFloatLanes) patch of output elements in vector registers while
/// the channel loop runs innermost. Accumulator traffic is paid once per
/// channel block instead of once per channel, and every add is a packed
/// vector op. Per output element the channels are still added in ascending
/// order, so results are bitwise identical to the scalar engine for every
/// (DR, U) instantiation.
template <std::size_t DR, std::size_t U>
void accumulate_block_simd(const TileScratch& s, std::size_t cb0,
                           std::size_t nch, std::size_t tile_dm,
                           std::size_t tile_time, float* acc,
                           std::size_t acc_pitch) {
  constexpr std::size_t kW = simd::kFloatLanes;
  constexpr std::size_t kStep = U * kW;
  for (std::size_t dm0 = 0; dm0 < tile_dm; dm0 += DR) {
    std::size_t t = 0;
    for (; t + kStep <= tile_time; t += kStep) {
      simd::vfloat regs[DR][U];
      for (std::size_t d = 0; d < DR; ++d) {
        for (std::size_t u = 0; u < U; ++u) {
          regs[d][u] =
              simd::vload(acc + (dm0 + d) * acc_pitch + t + u * kW);
        }
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const float* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) {
          const float* p = base + shift[d];
          for (std::size_t u = 0; u < U; ++u) {
            regs[d][u] = simd::vadd(regs[d][u], simd::vload(p + u * kW));
          }
        }
      }
      for (std::size_t d = 0; d < DR; ++d) {
        for (std::size_t u = 0; u < U; ++u) {
          simd::vstore(acc + (dm0 + d) * acc_pitch + t + u * kW,
                       regs[d][u]);
        }
      }
    }
    // Remainder: single-vector steps, then scalar lanes.
    for (; t + kW <= tile_time; t += kW) {
      simd::vfloat regs[DR];
      for (std::size_t d = 0; d < DR; ++d) {
        regs[d] = simd::vload(acc + (dm0 + d) * acc_pitch + t);
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const float* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) {
          regs[d] = simd::vadd(regs[d], simd::vload(base + shift[d]));
        }
      }
      for (std::size_t d = 0; d < DR; ++d) {
        simd::vstore(acc + (dm0 + d) * acc_pitch + t, regs[d]);
      }
    }
    for (; t < tile_time; ++t) {
      float regs[DR];
      for (std::size_t d = 0; d < DR; ++d) {
        regs[d] = acc[(dm0 + d) * acc_pitch + t];
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const float* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) regs[d] += base[shift[d]];
      }
      for (std::size_t d = 0; d < DR; ++d) {
        acc[(dm0 + d) * acc_pitch + t] = regs[d];
      }
    }
  }
}

/// Map the config's register-tile knobs onto compiled instantiations: DR is
/// elem_dm when the ladder covers it (it always divides tile_dm), U is the
/// unroll knob. Unsupported values fall back to the narrowest kernel.
template <std::size_t U>
void dispatch_dr(std::size_t dr, const TileScratch& s, std::size_t cb0,
                 std::size_t nch, std::size_t tile_dm,
                 std::size_t tile_time, float* acc, std::size_t acc_pitch) {
  switch (dr) {
    case 8:
      accumulate_block_simd<8, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                  acc_pitch);
      break;
    case 4:
      accumulate_block_simd<4, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                  acc_pitch);
      break;
    case 2:
      accumulate_block_simd<2, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                  acc_pitch);
      break;
    default:
      accumulate_block_simd<1, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                  acc_pitch);
      break;
  }
}

void dispatch_block_simd(std::size_t dr, std::size_t unroll,
                         const TileScratch& s, std::size_t cb0,
                         std::size_t nch, std::size_t tile_dm,
                         std::size_t tile_time, float* acc,
                         std::size_t acc_pitch) {
  switch (unroll) {
    case 8:
      dispatch_dr<8>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    case 4:
      dispatch_dr<4>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    case 2:
      dispatch_dr<2>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    default:
      dispatch_dr<1>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
  }
}

/// The seed's scalar inner loop, kept verbatim as the engine baseline.
inline void accumulate_span_scalar(float* a, const float* s, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) a[t] += s[t];
}

/// Process one work-group tile: trials [dm0, dm0+tile_dm) × samples
/// [t0, t0+tile_time). Channel-major accumulation matches the reference;
/// channel blocking only re-chunks the (ordered) channel loop, so results
/// are bitwise identical for every block size.
void process_tile(const Plan& plan, const KernelConfig& config,
                  ConstView2D<float> in, View2D<float> out, std::size_t dm0,
                  std::size_t t0, const CpuKernelOptions& options,
                  TileScratch& scratch) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t tile_dm = config.tile_dm();
  const std::size_t tile_time = config.tile_time();
  const std::size_t channels = plan.channels();
  const std::size_t block = config.effective_channel_block(plan);

  // DM rows per register tile: elem_dm where an instantiation exists (it
  // divides tile_dm by construction), else the narrowest kernel.
  const std::size_t dr =
      (config.elem_dm == 2 || config.elem_dm == 4 || config.elem_dm == 8)
          ? config.elem_dm
          : 1;

  scratch.acc_pitch = round_up(tile_time, simd::kFloatLanes);
  scratch.acc.assign(tile_dm * scratch.acc_pitch, 0.0f);
  build_shift_table(delays, dm0, tile_dm, tile_time, channels, scratch);

  for (std::size_t cb0 = 0; cb0 < channels; cb0 += block) {
    const std::size_t cb1 = std::min(channels, cb0 + block);
    const std::size_t nch = cb1 - cb0;

    // Resolve per-channel source rows; the staged path copies each span
    // into the block-local staging buffer first (collaborative load: the
    // span covers every read any work-item performs for that channel).
    scratch.src.resize(nch);
    if (options.stage_rows) {
      const std::size_t max_span = *std::max_element(
          scratch.span.begin() + cb0, scratch.span.begin() + cb1);
      const std::size_t pitch = round_up(max_span, simd::kFloatLanes);
      scratch.staging.resize(nch * pitch);
      for (std::size_t c = 0; c < nch; ++c) {
        float* dst = &scratch.staging[c * pitch];
        const float* row = &in(cb0 + c, t0 + scratch.lo[cb0 + c]);
        std::copy(row, row + scratch.span[cb0 + c], dst);
        scratch.src[c] = dst;
      }
    } else {
      for (std::size_t c = 0; c < nch; ++c) {
        scratch.src[c] = &in(cb0 + c, t0 + scratch.lo[cb0 + c]);
      }
    }

    if (options.vectorize) {
      dispatch_block_simd(dr, config.unroll, scratch, cb0, nch, tile_dm,
                          tile_time, scratch.acc.data(), scratch.acc_pitch);
    } else {
      // Seed engine: channel-outer scalar accumulate.
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &scratch.shifts[(cb0 + c) * tile_dm];
        for (std::size_t dm = 0; dm < tile_dm; ++dm) {
          accumulate_span_scalar(&scratch.acc[dm * scratch.acc_pitch],
                                 scratch.src[c] + shift[dm], tile_time);
        }
      }
    }
  }

  for (std::size_t dm = 0; dm < tile_dm; ++dm) {
    float* dst = &out(dm0 + dm, t0);
    const float* a = &scratch.acc[dm * scratch.acc_pitch];
    std::copy(a, a + tile_time, dst);
  }
}

void check_shapes(const Plan& plan, ConstView2D<float> in,
                  View2D<float> out) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(),
               "input too short for the plan's largest delay");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
}

}  // namespace

void dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                    ConstView2D<float> in, View2D<float> out,
                    const CpuKernelOptions& options) {
  config.validate(plan);
  check_shapes(plan, in, out);

  const std::size_t groups_dm = config.groups_dm(plan);
  const std::size_t groups_time = config.groups_time(plan);
  const std::size_t total = groups_dm * groups_time;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    TileScratch scratch;  // reused across tiles on this worker
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t gd = g / groups_time;
      const std::size_t gt = g % groups_time;
      process_tile(plan, config, in, out, gd * config.tile_dm(),
                   gt * config.tile_time(), options, scratch);
    }
  };

  if (options.threads == 1) {
    run_range(0, total);
    return;
  }
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (options.threads == 0) {
    pool = &global_pool();
  } else {
    owned = std::make_unique<ThreadPool>(options.threads);
    pool = owned.get();
  }
  const std::size_t block =
      std::max<std::size_t>(1, total / (pool->worker_count() * 4));
  pool->parallel_for(0, total, block, run_range);
}

Array2D<float> dedisperse_cpu(const Plan& plan, const KernelConfig& config,
                              ConstView2D<float> in,
                              const CpuKernelOptions& options) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_cpu(plan, config, in, out.view(), options);
  return out;
}

}  // namespace ddmc::dedisp
