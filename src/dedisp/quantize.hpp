#pragma once
/// \file quantize.hpp
/// \brief Fixed-parameter 8-bit sample quantization for the u8 engine.
///
/// Real surveys record 8-bit (or narrower) filterbank samples; this module
/// maps the library's float sample plane onto that representation so the
/// quantized engine can move a quarter of the input bytes. The parameters
/// are *fixed at construction* (a gain setting, like a telescope's), never
/// derived from the data: quantization is therefore a pure pointwise
/// function, which is what keeps the u8 engine deterministic — streaming
/// chunks, DM shards and the batch path all quantize a given sample to the
/// same code, so streaming==batch and sharded==single remain bitwise
/// identities of the engine even though its output is only approximately
/// equal to the float reference.
///
/// The error budget is explicit: one sample carries at most scale()/2 of
/// rounding (half a quantization step), so an output element summing C
/// channels is within C·scale()/2 of the exact float sum —
/// quantization_error_bound() below, the bound the engine documents and
/// the equivalence tests enforce.

#include <cstdint>

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

/// The affine u8 code map: x ≈ lo + scale()·q with q ∈ [0, 255]. Values
/// outside [lo, hi] clamp (a telescope's ADC saturates the same way). The
/// default ±8 window comfortably covers unit-variance noise plus bright
/// pulses without saturating.
struct QuantizationParams {
  float lo = -8.0f;
  float hi = 8.0f;

  float scale() const { return (hi - lo) / 255.0f; }

  /// Pointwise, deterministic: round-half-up, then clamp — written as
  /// branch-free float math (add 0.5, clamp, truncate) so the plane pass
  /// below auto-vectorizes; for the non-negative post-clamp range this is
  /// exactly std::lround's rounding. Inline and header-defined on purpose:
  /// the quantizing loop is the u8 engine's per-execute staging cost.
  std::uint8_t quantize(float x) const {
    float t = (x - lo) / scale() + 0.5f;
    t = t < 0.0f ? 0.0f : t;
    t = t > 255.0f ? 255.0f : t;
    return static_cast<std::uint8_t>(t);
  }
  float dequantize(std::uint8_t q) const {
    return lo + scale() * static_cast<float>(q);
  }

  friend bool operator==(const QuantizationParams&,
                         const QuantizationParams&) = default;
};

/// Quantize \p in element-wise into \p out (same shape or smaller; the
/// out view's dimensions drive the loop, so a wider float input — e.g. one
/// carrying another engine's padding columns — stages only what the u8
/// kernel will read).
void quantize_plane(ConstView2D<float> in, const QuantizationParams& params,
                    View2D<std::uint8_t> out);

/// Convenience allocating the byte plane: channels × in_samples of \p plan.
Array2D<std::uint8_t> quantize_plane(const dedisp::Plan& plan,
                                     ConstView2D<float> in,
                                     const QuantizationParams& params);

/// The documented per-output-element error bound of the u8 engine vs the
/// exact float sum: C channels × scale()/2 of per-sample rounding, plus a
/// slack term for the float accumulation rounding on *both* sides of the
/// comparison (the reference engine rounds too). The quantization term
/// dominates by orders of magnitude at survey channel counts.
double quantization_error_bound(const Plan& plan,
                                const QuantizationParams& params);

}  // namespace ddmc::dedisp
