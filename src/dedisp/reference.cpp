#include "dedisp/reference.hpp"

#include "common/expect.hpp"

namespace ddmc::dedisp {

namespace {
void check_shapes(const Plan& plan, ConstView2D<float> in,
                  View2D<float> out) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(),
               "input too short for the plan's largest delay");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
}
}  // namespace

void dedisperse_reference(const Plan& plan, ConstView2D<float> in,
                          View2D<float> out) {
  check_shapes(plan, in, out);
  const sky::DelayTable& delays = plan.delays();
  const std::size_t dms = plan.dms();
  const std::size_t samples = plan.out_samples();
  const std::size_t channels = plan.channels();

  for (std::size_t dm = 0; dm < dms; ++dm) {
    for (std::size_t t = 0; t < samples; ++t) {
      float acc = 0.0f;
      for (std::size_t ch = 0; ch < channels; ++ch) {
        const auto shift = static_cast<std::size_t>(delays.delay(dm, ch));
        acc += in(ch, t + shift);
      }
      out(dm, t) = acc;
    }
  }
}

Array2D<float> dedisperse_reference(const Plan& plan, ConstView2D<float> in) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_reference(plan, in, out.view());
  return out;
}

}  // namespace ddmc::dedisp
