#include "dedisp/intensity.hpp"

#include "common/expect.hpp"

namespace ddmc::dedisp {

double ai_no_reuse_eq2(double epsilon) {
  DDMC_REQUIRE(epsilon >= 0.0, "epsilon cannot be negative");
  return 1.0 / (4.0 + epsilon);
}

double ai_upper_bound_eq3(double dms, double samples, double channels) {
  DDMC_REQUIRE(dms > 0 && samples > 0 && channels > 0,
               "instance dimensions must be positive");
  return 1.0 / (4.0 * (1.0 / dms + 1.0 / samples + 1.0 / channels));
}

IntensityReport analyze_intensity(const Plan& plan,
                                  const KernelConfig& config) {
  config.validate(plan);
  const double d = static_cast<double>(plan.dms());
  const double s = static_cast<double>(plan.out_samples());
  const double c = static_cast<double>(plan.channels());

  IntensityReport report;
  report.flop = plan.total_flop();

  // Ancillary traffic shared by both accountings: one float store per output
  // element and one delay-table entry per (trial, channel).
  const double output_bytes = 4.0 * d * s;
  const double delay_bytes = 4.0 * d * c;

  const double naive_reads = d * s * c;  // one input read per accumulate
  report.naive_bytes = 4.0 * naive_reads + output_bytes + delay_bytes;

  // Unique reads under the staging geometry: every (channel, dm-tile) row of
  // a time tile spans tile_time + spread distinct samples.
  const sky::SpreadStats spreads =
      plan.delays().tile_spreads(config.tile_dm());
  const double tiles_time = static_cast<double>(config.groups_time(plan));
  const double tile_time = static_cast<double>(config.tile_time());
  const double unique_reads =
      tiles_time * (static_cast<double>(spreads.rows) * tile_time +
                    spreads.total_spread);
  report.unique_bytes = 4.0 * unique_reads + output_bytes + delay_bytes;

  report.ai_naive = report.flop / report.naive_bytes;
  report.ai_tiled = report.flop / report.unique_bytes;
  // Note: the staged span is the contiguous hull [Δ(lo), Δ(hi)+tile_time);
  // when delays diverge faster than the tile reuses them (LOFAR-like bands),
  // the hull exceeds the naive reads and the factor drops below one — the
  // regime where the tuner abandons DM tiling (§V-A).
  report.reuse_factor = naive_reads / unique_reads;
  DDMC_ENSURE(report.reuse_factor > 0.0, "reuse factor must be positive");
  return report;
}

}  // namespace ddmc::dedisp
