#include "dedisp/subband.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "common/simd.hpp"
#include "sky/delay.hpp"

namespace ddmc::dedisp {

namespace {

void check_config(const Plan& plan, const SubbandConfig& config) {
  DDMC_REQUIRE(config.subbands > 0 && config.coarse_step > 0,
               "subband parameters must be positive");
  DDMC_REQUIRE(plan.channels() % config.subbands == 0,
               "subband count must divide the channel count");
  DDMC_REQUIRE(plan.dms() % config.coarse_step == 0,
               "coarse step must divide the trial count");
}

}  // namespace

SubbandConfig SubbandConfig::adapted_to(const Plan& plan) const {
  SubbandConfig adapted = *this;
  adapted.subbands =
      std::gcd(std::max<std::size_t>(subbands, 1), plan.channels());
  adapted.coarse_step =
      std::gcd(std::max<std::size_t>(coarse_step, 1), plan.dms());
  return adapted;
}

double subband_flop(const Plan& plan, const SubbandConfig& config) {
  check_config(plan, config);
  const double d = static_cast<double>(plan.dms());
  const double s = static_cast<double>(plan.out_samples());
  const double c = static_cast<double>(plan.channels());
  const double coarse = d / static_cast<double>(config.coarse_step);
  return coarse * s * c + d * s * static_cast<double>(config.subbands);
}

std::int64_t subband_max_delay_error(const Plan& plan,
                                     const SubbandConfig& config) {
  check_config(plan, config);
  const sky::Observation& obs = plan.observation();
  const std::size_t cs = plan.channels() / config.subbands;
  const double rate = obs.sampling_rate();
  std::int64_t worst = 0;
  // For every fine trial, the reused coarse shift differs from the exact
  // intra-subband shift by at most the shift at |dm_fine - dm_coarse| over
  // the subband's own bandwidth; scan the exact maximum.
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    const std::size_t coarse = (dm / config.coarse_step) * config.coarse_step;
    const double fine_dm = obs.dm_value(dm);
    const double coarse_dm = obs.dm_value(coarse);
    for (std::size_t band = 0; band < config.subbands; ++band) {
      const double f_lo = obs.channel_freq_mhz(band * cs);
      const double f_hi = obs.channel_freq_mhz(band * cs + cs - 1) +
                          obs.channel_bw_mhz();
      const std::int64_t fine =
          sky::dispersion_delay_samples(fine_dm, f_lo, f_hi, rate);
      const std::int64_t used =
          sky::dispersion_delay_samples(coarse_dm, f_lo, f_hi, rate);
      worst = std::max(worst, std::abs(fine - used));
    }
  }
  return worst;
}

std::size_t subband_min_input_samples(const Plan& plan,
                                      const SubbandConfig& config) {
  check_config(plan, config);
  const sky::Observation& obs = plan.observation();
  const std::size_t channels = plan.channels();
  const std::size_t cs = channels / config.subbands;
  const double rate = obs.sampling_rate();
  const double f_top = obs.f_max_mhz();
  auto subband_top = [&](std::size_t band) {
    return obs.channel_freq_mhz(band * cs + cs - 1) + obs.channel_bw_mhz();
  };
  // Same maxima the execution computes: worst inter-subband shift over
  // (trial, band) plus worst intra-subband shift over (coarse trial,
  // channel) — the two stages' reads compose additively.
  std::int64_t max_inter = 0;
  for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
    for (std::size_t band = 0; band < config.subbands; ++band) {
      max_inter = std::max(max_inter, sky::dispersion_delay_samples(
                                          obs.dm_value(dm),
                                          subband_top(band), f_top, rate));
    }
  }
  std::int64_t max_intra = 0;
  const std::size_t n_coarse = plan.dms() / config.coarse_step;
  for (std::size_t ci = 0; ci < n_coarse; ++ci) {
    const double coarse_dm = obs.dm_value(ci * config.coarse_step);
    for (std::size_t ch = 0; ch < channels; ++ch) {
      max_intra = std::max(max_intra, sky::dispersion_delay_samples(
                                          coarse_dm, obs.channel_freq_mhz(ch),
                                          subband_top(ch / cs), rate));
    }
  }
  return plan.out_samples() + static_cast<std::size_t>(max_inter + max_intra);
}

void dedisperse_subband(const Plan& plan, const SubbandConfig& config,
                        ConstView2D<float> in, View2D<float> out) {
  check_config(plan, config);
  const sky::Observation& obs = plan.observation();
  const std::size_t channels = plan.channels();
  const std::size_t samples = plan.out_samples();
  const std::size_t dms = plan.dms();
  const std::size_t cs = channels / config.subbands;
  const double rate = obs.sampling_rate();
  const double f_top = obs.f_max_mhz();

  DDMC_REQUIRE(in.rows() == channels, "input rows != channels");
  DDMC_REQUIRE(out.rows() == dms, "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= samples, "output too short");

  // Inter-subband delays: subband b is referenced to its own top edge.
  auto subband_top = [&](std::size_t band) {
    return obs.channel_freq_mhz(band * cs + cs - 1) + obs.channel_bw_mhz();
  };
  std::vector<std::int64_t> inter(dms * config.subbands);
  std::int64_t max_inter = 0;
  for (std::size_t dm = 0; dm < dms; ++dm) {
    for (std::size_t band = 0; band < config.subbands; ++band) {
      const std::int64_t k = sky::dispersion_delay_samples(
          obs.dm_value(dm), subband_top(band), f_top, rate);
      inter[dm * config.subbands + band] = k;
      max_inter = std::max(max_inter, k);
    }
  }

  // Intra-subband delays per coarse trial.
  const std::size_t n_coarse = dms / config.coarse_step;
  std::vector<std::int64_t> intra(n_coarse * channels);
  std::int64_t max_intra = 0;
  for (std::size_t ci = 0; ci < n_coarse; ++ci) {
    const double coarse_dm = obs.dm_value(ci * config.coarse_step);
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const std::int64_t k = sky::dispersion_delay_samples(
          coarse_dm, obs.channel_freq_mhz(ch), subband_top(ch / cs), rate);
      intra[ci * channels + ch] = k;
      max_intra = std::max(max_intra, k);
    }
  }

  const std::size_t needed =
      samples + static_cast<std::size_t>(max_inter + max_intra);
  DDMC_REQUIRE(in.cols() >= needed,
               "input too short for the split delays: need " +
                   std::to_string(needed) + " columns, have " +
                   std::to_string(in.cols()));

  // Stage 1: per coarse trial, collapse each subband to one series long
  // enough for every stage-2 shift. A subband is exactly a channel block of
  // the tiled engine: the intra-subband shifts are precomputed above, the
  // per-band accumulator row stays cache-resident across its cs channels,
  // and the accumulate over time is SIMD-vectorized. Channel order within a
  // band and band order within a trial are unchanged, so results match the
  // scalar implementation bitwise.
  const std::size_t inter_span = samples + static_cast<std::size_t>(max_inter);
  Array2D<float> stage1(config.subbands, inter_span);
  for (std::size_t ci = 0; ci < n_coarse; ++ci) {
    stage1.fill(0.0f);
    const std::int64_t* intra_row = &intra[ci * channels];
    for (std::size_t band = 0; band < config.subbands; ++band) {
      float* dst = &stage1(band, 0);
      for (std::size_t ch = band * cs; ch < (band + 1) * cs; ++ch) {
        const auto shift = static_cast<std::size_t>(intra_row[ch]);
        simd::accumulate_span(dst, &in(ch, shift), inter_span);
      }
    }
    // Stage 2: every fine trial of this coarse bucket combines the same
    // subband series with its own inter-subband shifts.
    for (std::size_t j = 0; j < config.coarse_step; ++j) {
      const std::size_t dm = ci * config.coarse_step + j;
      const std::int64_t* inter_row = &inter[dm * config.subbands];
      float* dst = &out(dm, 0);
      std::fill(dst, dst + samples, 0.0f);
      for (std::size_t band = 0; band < config.subbands; ++band) {
        const auto shift = static_cast<std::size_t>(inter_row[band]);
        simd::accumulate_span(dst, &stage1(band, shift), samples);
      }
    }
  }
}

Array2D<float> dedisperse_subband(const Plan& plan,
                                  const SubbandConfig& config,
                                  ConstView2D<float> in) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_subband(plan, config, in, out.view());
  return out;
}

}  // namespace ddmc::dedisp
