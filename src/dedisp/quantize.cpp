#include "dedisp/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ddmc::dedisp {

void quantize_plane(ConstView2D<float> in, const QuantizationParams& params,
                    View2D<std::uint8_t> out) {
  DDMC_REQUIRE(params.hi > params.lo,
               "quantization window must be non-empty (hi > lo)");
  DDMC_REQUIRE(in.rows() >= out.rows() && in.cols() >= out.cols(),
               "quantize_plane: float input smaller than the byte plane");
  for (std::size_t ch = 0; ch < out.rows(); ++ch) {
    const float* src = &in(ch, 0);
    std::uint8_t* dst = &out(ch, 0);
    // Tight call to the inline branch-free quantizer: the compiler turns
    // this into vectorized convert+pack, which matters because this pass
    // runs once per engine execute over the whole sample plane.
    for (std::size_t t = 0; t < out.cols(); ++t) {
      dst[t] = params.quantize(src[t]);
    }
  }
}

Array2D<std::uint8_t> quantize_plane(const dedisp::Plan& plan,
                                     ConstView2D<float> in,
                                     const QuantizationParams& params) {
  Array2D<std::uint8_t> out(plan.channels(), plan.in_samples());
  quantize_plane(in, params, out.view());
  return out;
}

double quantization_error_bound(const Plan& plan,
                                const QuantizationParams& params) {
  const double c = static_cast<double>(plan.channels());
  const double quant = 0.5 * static_cast<double>(params.scale()) * c;
  // Float-accumulation rounding slack, covering both the u8 engine's sum
  // and the reference's: each side performs ~c additions of values bounded
  // by max(|lo|, |hi|), each contributing at most one ulp of the running
  // sum (≤ c·bound magnitude).
  const double mag =
      std::max(std::abs(static_cast<double>(params.lo)),
               std::abs(static_cast<double>(params.hi)));
  const double rounding = 2.0 * c * c * mag * 1.2e-7;
  return quant + rounding;
}

}  // namespace ddmc::dedisp
