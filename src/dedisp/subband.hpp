#pragma once
/// \file subband.hpp
/// \brief Two-stage (subband) dedispersion.
///
/// The standard algorithmic optimization in this family of codes (used by
/// PRESTO and the authors' later AMBER pipeline, and the natural "future
/// work" extension of the paper's brute-force kernel): instead of shifting
/// every channel for every trial DM (O(d·s·c)), first dedisperse groups of
/// adjacent channels ("subbands") at a coarse grid of DMs — within a narrow
/// subband the delay varies slowly — then combine the subband series with
/// inter-subband shifts for every fine trial (O(d_coarse·s·c + d·s·n_sub)).
///
/// The result is an approximation: each fine trial reuses the intra-subband
/// shifts of its nearest coarse trial, smearing the signal by at most the
/// intra-subband delay error. With one channel per subband and a coarse
/// step of one the method degenerates to exact brute force, which is the
/// equivalence anchor the tests use.

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::dedisp {

struct SubbandConfig {
  /// Number of subbands; must divide the observation's channel count.
  std::size_t subbands = 32;
  /// Fine trials per coarse trial; must divide the plan's trial count.
  std::size_t coarse_step = 16;

  /// This split adapted to \p plan: subbands collapses to its gcd with the
  /// channel count and coarse_step to its gcd with the trial count (both
  /// ≥ 1), so any plan runs. Shrinking either only makes the approximation
  /// *more* exact.
  SubbandConfig adapted_to(const Plan& plan) const;
};

/// Floating point operations of the two-stage method for \p plan
/// (stage 1: d/coarse_step · s · c; stage 2: d · s · subbands).
double subband_flop(const Plan& plan, const SubbandConfig& config);

/// Largest intra-subband delay error in samples introduced by reusing a
/// coarse trial's shifts — the smearing bound of the approximation.
std::int64_t subband_max_delay_error(const Plan& plan,
                                     const SubbandConfig& config);

/// Exact input columns dedisperse_subband reads for \p plan under
/// \p config: out_samples + the worst split delay (max intra + max inter,
/// each rounded separately). Bounded by in_samples + 2; often equal to
/// in_samples, in which case no padding is needed at all.
std::size_t subband_min_input_samples(const Plan& plan,
                                      const SubbandConfig& config);

/// Two-stage dedispersion into \p out (dms × out_samples). The input must
/// provide in_samples + 2 columns of padding (delay splitting rounds the
/// intra and inter shifts separately, costing up to two extra samples).
void dedisperse_subband(const Plan& plan, const SubbandConfig& config,
                        ConstView2D<float> in, View2D<float> out);

/// Convenience allocating the output.
Array2D<float> dedisperse_subband(const Plan& plan,
                                  const SubbandConfig& config,
                                  ConstView2D<float> in);

}  // namespace ddmc::dedisp
