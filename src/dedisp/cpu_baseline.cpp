#include "dedisp/cpu_baseline.hpp"

#include <algorithm>
#include <memory>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"

namespace ddmc::dedisp {

namespace {

/// Dedisperse one trial over samples [t0, t1), 8 samples at a time. The
/// chunk loop bodies are independent across lanes, which is exactly the
/// shape auto-vectorizers turn into packed AVX adds.
void process_block(const Plan& plan, ConstView2D<float> in,
                   View2D<float> out, std::size_t dm, std::size_t t0,
                   std::size_t t1) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t channels = plan.channels();
  constexpr std::size_t kLanes = 8;

  std::size_t t = t0;
  for (; t + kLanes <= t1; t += kLanes) {
    float acc[kLanes] = {};
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const auto shift = static_cast<std::size_t>(delays.delay(dm, ch));
      const float* src = &in(ch, t + shift);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        acc[lane] += src[lane];
      }
    }
    float* dst = &out(dm, t);
    for (std::size_t lane = 0; lane < kLanes; ++lane) dst[lane] = acc[lane];
  }
  // Scalar tail for block lengths that are not a multiple of 8.
  for (; t < t1; ++t) {
    float acc = 0.0f;
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const auto shift = static_cast<std::size_t>(delays.delay(dm, ch));
      acc += in(ch, t + shift);
    }
    out(dm, t) = acc;
  }
}

}  // namespace

void dedisperse_cpu_baseline(const Plan& plan, ConstView2D<float> in,
                             View2D<float> out,
                             const CpuBaselineOptions& options) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(), "input too short");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
  DDMC_REQUIRE(options.time_block > 0, "time block must be positive");

  const std::size_t samples = plan.out_samples();
  const std::size_t blocks_per_dm = ceil_div(samples, options.time_block);
  const std::size_t total = plan.dms() * blocks_per_dm;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t unit = begin; unit < end; ++unit) {
      const std::size_t dm = unit / blocks_per_dm;
      const std::size_t block = unit % blocks_per_dm;
      const std::size_t t0 = block * options.time_block;
      const std::size_t t1 = std::min(samples, t0 + options.time_block);
      process_block(plan, in, out, dm, t0, t1);
    }
  };

  if (options.threads == 1) {
    run_range(0, total);
    return;
  }
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (options.threads == 0) {
    pool = &global_pool();
  } else {
    owned = std::make_unique<ThreadPool>(options.threads);
    pool = owned.get();
  }
  const std::size_t chunk =
      std::max<std::size_t>(1, total / (pool->worker_count() * 4));
  pool->parallel_for(0, total, chunk, run_range);
}

Array2D<float> dedisperse_cpu_baseline(const Plan& plan,
                                       ConstView2D<float> in,
                                       const CpuBaselineOptions& options) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_cpu_baseline(plan, in, out.view(), options);
  return out;
}

}  // namespace ddmc::dedisp
