#pragma once
/// \file plan.hpp
/// \brief Dedispersion plan: dimensions + precomputed delay table.
///
/// A plan fixes the problem instance of Algorithm 1:
///  - input: channels × in_samples matrix (the paper's c × t; t is a
///    multiple of the samples-per-second and covers the largest trial delay),
///  - output: dms × out_samples matrix (the paper's d × s),
///  - Δ: the DelayTable.
/// The plan never allocates the data matrices themselves — instances with
/// thousands of DMs are analyzed by the tuner without touching gigabytes.

#include <cstddef>
#include <memory>

#include "common/aligned.hpp"
#include "sky/delay.hpp"
#include "sky/observation.hpp"

namespace ddmc::dedisp {

class Plan {
 public:
  /// Plan for dedispersing \p seconds of data (default: the paper's one
  /// second) into \p dms trial series.
  ///
  /// in_samples = out_samples + max_delay, rounded up to a whole multiple of
  /// the samples-per-second (the paper: "t is always a multiple of the
  /// number of samples per second").
  Plan(const sky::Observation& obs, std::size_t dms, std::size_t seconds = 1);

  /// Plan with an explicit output length in samples (used by tests and the
  /// real host benchmarks, where a full second would be needlessly large).
  /// in_samples = out_samples + max_delay (no rounding).
  static Plan with_output_samples(const sky::Observation& obs,
                                  std::size_t dms,
                                  std::size_t out_samples);

  const sky::Observation& observation() const { return obs_; }
  const sky::DelayTable& delays() const { return *delays_; }

  std::size_t dms() const { return dms_; }
  std::size_t channels() const { return obs_.channels(); }
  std::size_t out_samples() const { return out_samples_; }
  std::size_t in_samples() const { return in_samples_; }

  /// Largest delay in the table, in samples. This is the overlap a
  /// streaming chunker must carry between consecutive chunk windows: input
  /// window k covers samples [k·out, k·out + out + max_delay).
  std::size_t max_delay() const {
    return static_cast<std::size_t>(delays_->max_delay());
  }

  /// Chunk-window plan of this same instance: identical observation, DM
  /// grid and delay table (shared, not recomputed — cheap enough to build
  /// per chunk), out_samples = \p out_chunk, in_samples = out_chunk +
  /// max_delay with no rounding. Dedispersing consecutive overlapping
  /// windows with chunk plans is bitwise identical to one batch run.
  Plan with_chunk(std::size_t out_chunk) const;

  /// Shard plan for the contiguous trial range [first_dm, first_dm + dms):
  /// same observation band and output window, a DM grid starting at trial
  /// first_dm, and a delay table *sliced bit-for-bit* from this plan's —
  /// never recomputed, so dedispersing every shard writes exactly the rows
  /// a single-plan run would (the executor's bitwise-identity guarantee).
  /// in_samples = out_samples + the slice's own max delay (no rounding), so
  /// low-DM shards carry smaller input windows; any input matrix valid for
  /// the parent plan is valid for every shard.
  Plan dm_shard(std::size_t first_dm, std::size_t dms) const;

  /// Total single-precision FLOPs the paper credits this instance with:
  /// one accumulate per (dm, sample, channel).
  double total_flop() const {
    return static_cast<double>(dms_) * static_cast<double>(out_samples_) *
           static_cast<double>(channels());
  }

  /// Bytes of the (unpadded) input/output matrices, for device-memory checks.
  double input_bytes() const {
    return static_cast<double>(channels()) *
           static_cast<double>(in_samples_) * sizeof(float);
  }
  double output_bytes() const {
    return static_cast<double>(dms_) * static_cast<double>(out_samples_) *
           sizeof(float);
  }

 private:
  Plan(const sky::Observation& obs, std::size_t dms, std::size_t out_samples,
       bool round_to_seconds);
  /// Chunk variant sharing \p base's delay table.
  Plan(const Plan& base, std::size_t out_chunk);
  /// Shard variant slicing \p base's delay table.
  Plan(const Plan& base, std::size_t first_dm, std::size_t dms);

  sky::Observation obs_;
  std::size_t dms_;
  std::size_t out_samples_;
  std::size_t in_samples_;
  std::shared_ptr<const sky::DelayTable> delays_;  // immutable, shared
};

}  // namespace ddmc::dedisp
