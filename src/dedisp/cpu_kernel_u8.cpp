#include "dedisp/cpu_kernel_u8.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/expect.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace ddmc::dedisp {

namespace {

/// Per-worker scratch, reused across tiles so the hot loop never allocates.
/// Mirror of the float kernel's TileScratch with a byte staging buffer:
/// staged rows cost 1 byte per sample instead of 4.
struct U8TileScratch {
  /// Tile accumulators (raw-code sums), tile_dm rows of acc_pitch floats,
  /// rows padded to the SIMD width.
  std::vector<float, AlignedAllocator<float>> acc;
  std::size_t acc_pitch = 0;
  /// Staged input rows of the current (tile, channel-block), one pitched
  /// byte row per channel — the engine's "local memory".
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> staging;
  /// Per-channel base pointer of the current block (staged row or a
  /// pointer straight into the byte plane).
  std::vector<const std::uint8_t*> src;
  /// shifts[ch * tile_dm + dm] = Δ(dm0+dm, ch) − lo[ch].
  std::vector<std::size_t> shifts;
  std::vector<std::size_t> lo;    ///< per-channel smallest delay in the tile
  std::vector<std::size_t> span;  ///< largest − smallest delay + tile_time
  std::size_t shifts_dm0 = static_cast<std::size_t>(-1);
  bool shifts_valid = false;
};

/// Precompute the shift table for the DM tile [dm0, dm0+tile_dm) unless the
/// scratch already holds it; exact min/max scan, same as the float kernel.
void build_shift_table(const sky::DelayTable& delays, std::size_t dm0,
                       std::size_t tile_dm, std::size_t tile_time,
                       std::size_t channels, U8TileScratch& s) {
  if (s.shifts_valid && s.shifts_dm0 == dm0) return;
  s.shifts.resize(channels * tile_dm);
  s.lo.resize(channels);
  s.span.resize(channels);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    std::size_t lo = static_cast<std::size_t>(delays.delay(dm0, ch));
    std::size_t hi = lo;
    std::size_t* row = &s.shifts[ch * tile_dm];
    for (std::size_t dm = 0; dm < tile_dm; ++dm) {
      const auto d = static_cast<std::size_t>(delays.delay(dm0 + dm, ch));
      row[dm] = d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    for (std::size_t dm = 0; dm < tile_dm; ++dm) row[dm] -= lo;
    s.lo[ch] = lo;
    s.span[ch] = (hi - lo) + tile_time;
  }
  s.shifts_dm0 = dm0;
  s.shifts_valid = true;
}

/// Register-blocked widening accumulate of one channel block: identical
/// loop structure to the float kernel's accumulate_block_simd, but the
/// source loads are vload_u8 — samples widen to float lanes only here, in
/// the register file. The raw-code sums are exact integers, so every
/// (DR, U) instantiation is bitwise identical.
template <std::size_t DR, std::size_t U>
void accumulate_block_u8(const U8TileScratch& s, std::size_t cb0,
                         std::size_t nch, std::size_t tile_dm,
                         std::size_t tile_time, float* acc,
                         std::size_t acc_pitch) {
  constexpr std::size_t kW = simd::kFloatLanes;
  constexpr std::size_t kStep = U * kW;
  for (std::size_t dm0 = 0; dm0 < tile_dm; dm0 += DR) {
    std::size_t t = 0;
    for (; t + kStep <= tile_time; t += kStep) {
      simd::vfloat regs[DR][U];
      for (std::size_t d = 0; d < DR; ++d) {
        for (std::size_t u = 0; u < U; ++u) {
          regs[d][u] =
              simd::vload(acc + (dm0 + d) * acc_pitch + t + u * kW);
        }
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const std::uint8_t* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) {
          const std::uint8_t* p = base + shift[d];
          for (std::size_t u = 0; u < U; ++u) {
            regs[d][u] = simd::vadd(regs[d][u], simd::vload_u8(p + u * kW));
          }
        }
      }
      for (std::size_t d = 0; d < DR; ++d) {
        for (std::size_t u = 0; u < U; ++u) {
          simd::vstore(acc + (dm0 + d) * acc_pitch + t + u * kW,
                       regs[d][u]);
        }
      }
    }
    // Remainder: single-vector steps, then scalar lanes.
    for (; t + kW <= tile_time; t += kW) {
      simd::vfloat regs[DR];
      for (std::size_t d = 0; d < DR; ++d) {
        regs[d] = simd::vload(acc + (dm0 + d) * acc_pitch + t);
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const std::uint8_t* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) {
          regs[d] = simd::vadd(regs[d], simd::vload_u8(base + shift[d]));
        }
      }
      for (std::size_t d = 0; d < DR; ++d) {
        simd::vstore(acc + (dm0 + d) * acc_pitch + t, regs[d]);
      }
    }
    for (; t < tile_time; ++t) {
      float regs[DR];
      for (std::size_t d = 0; d < DR; ++d) {
        regs[d] = acc[(dm0 + d) * acc_pitch + t];
      }
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &s.shifts[(cb0 + c) * tile_dm + dm0];
        const std::uint8_t* base = s.src[c] + t;
        for (std::size_t d = 0; d < DR; ++d) {
          regs[d] += static_cast<float>(base[shift[d]]);
        }
      }
      for (std::size_t d = 0; d < DR; ++d) {
        acc[(dm0 + d) * acc_pitch + t] = regs[d];
      }
    }
  }
}

template <std::size_t U>
void dispatch_dr_u8(std::size_t dr, const U8TileScratch& s, std::size_t cb0,
                    std::size_t nch, std::size_t tile_dm,
                    std::size_t tile_time, float* acc,
                    std::size_t acc_pitch) {
  switch (dr) {
    case 8:
      accumulate_block_u8<8, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                acc_pitch);
      break;
    case 4:
      accumulate_block_u8<4, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                acc_pitch);
      break;
    case 2:
      accumulate_block_u8<2, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                acc_pitch);
      break;
    default:
      accumulate_block_u8<1, U>(s, cb0, nch, tile_dm, tile_time, acc,
                                acc_pitch);
      break;
  }
}

void dispatch_block_u8(std::size_t dr, std::size_t unroll,
                       const U8TileScratch& s, std::size_t cb0,
                       std::size_t nch, std::size_t tile_dm,
                       std::size_t tile_time, float* acc,
                       std::size_t acc_pitch) {
  switch (unroll) {
    case 8:
      dispatch_dr_u8<8>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    case 4:
      dispatch_dr_u8<4>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    case 2:
      dispatch_dr_u8<2>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
    default:
      dispatch_dr_u8<1>(dr, s, cb0, nch, tile_dm, tile_time, acc, acc_pitch);
      break;
  }
}

/// Process one work-group tile on the byte plane. Accumulates raw codes,
/// then applies the affine dequantization exactly once per output element
/// at writeback; both steps are order-independent, so the result does not
/// depend on the tiling.
void process_tile_u8(const Plan& plan, const KernelConfig& config,
                     ConstView2D<std::uint8_t> in,
                     const QuantizationParams& params, View2D<float> out,
                     std::size_t dm0, std::size_t t0,
                     const CpuKernelOptions& options, U8TileScratch& scratch) {
  const sky::DelayTable& delays = plan.delays();
  const std::size_t tile_dm = config.tile_dm();
  const std::size_t tile_time = config.tile_time();
  const std::size_t channels = plan.channels();
  const std::size_t block = config.effective_channel_block(plan);

  const std::size_t dr =
      (config.elem_dm == 2 || config.elem_dm == 4 || config.elem_dm == 8)
          ? config.elem_dm
          : 1;

  scratch.acc_pitch = round_up(tile_time, simd::kFloatLanes);
  scratch.acc.assign(tile_dm * scratch.acc_pitch, 0.0f);
  build_shift_table(delays, dm0, tile_dm, tile_time, channels, scratch);

  for (std::size_t cb0 = 0; cb0 < channels; cb0 += block) {
    const std::size_t cb1 = std::min(channels, cb0 + block);
    const std::size_t nch = cb1 - cb0;

    scratch.src.resize(nch);
    if (options.stage_rows) {
      const std::size_t max_span = *std::max_element(
          scratch.span.begin() + cb0, scratch.span.begin() + cb1);
      const std::size_t pitch = round_up(max_span, simd::kFloatLanes);
      scratch.staging.resize(nch * pitch);
      for (std::size_t c = 0; c < nch; ++c) {
        std::uint8_t* dst = &scratch.staging[c * pitch];
        const std::uint8_t* row = &in(cb0 + c, t0 + scratch.lo[cb0 + c]);
        std::copy(row, row + scratch.span[cb0 + c], dst);
        scratch.src[c] = dst;
      }
    } else {
      for (std::size_t c = 0; c < nch; ++c) {
        scratch.src[c] = &in(cb0 + c, t0 + scratch.lo[cb0 + c]);
      }
    }

    if (options.vectorize) {
      dispatch_block_u8(dr, config.unroll, scratch, cb0, nch, tile_dm,
                        tile_time, scratch.acc.data(), scratch.acc_pitch);
    } else {
      // Scalar widening accumulate, channel-outer like the seed engine.
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t* shift = &scratch.shifts[(cb0 + c) * tile_dm];
        for (std::size_t dm = 0; dm < tile_dm; ++dm) {
          float* a = &scratch.acc[dm * scratch.acc_pitch];
          const std::uint8_t* s = scratch.src[c] + shift[dm];
          for (std::size_t t = 0; t < tile_time; ++t) {
            a[t] += static_cast<float>(s[t]);
          }
        }
      }
    }
  }

  // Writeback with the affine dequantization: Σ dequant(q) over C channels
  // = C·lo + scale·Σq. One multiply-add per output element, computed from
  // the exact integer code sum — the same floats on every code path.
  const float base = static_cast<float>(channels) * params.lo;
  const float scale = params.scale();
  for (std::size_t dm = 0; dm < tile_dm; ++dm) {
    float* dst = &out(dm0 + dm, t0);
    const float* a = &scratch.acc[dm * scratch.acc_pitch];
    for (std::size_t t = 0; t < tile_time; ++t) {
      dst[t] = base + scale * a[t];
    }
  }
}

void check_shapes(const Plan& plan, ConstView2D<std::uint8_t> in,
                  View2D<float> out) {
  DDMC_REQUIRE(in.rows() == plan.channels(), "input rows != channels");
  DDMC_REQUIRE(in.cols() >= plan.in_samples(),
               "input too short for the plan's largest delay");
  DDMC_REQUIRE(out.rows() == plan.dms(), "output rows != trial DMs");
  DDMC_REQUIRE(out.cols() >= plan.out_samples(), "output too short");
}

}  // namespace

void dedisperse_cpu_u8(const Plan& plan, const KernelConfig& config,
                       ConstView2D<std::uint8_t> in,
                       const QuantizationParams& params, View2D<float> out,
                       const CpuKernelOptions& options) {
  config.validate(plan);
  check_shapes(plan, in, out);

  const std::size_t groups_dm = config.groups_dm(plan);
  const std::size_t groups_time = config.groups_time(plan);
  const std::size_t total = groups_dm * groups_time;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    U8TileScratch scratch;  // reused across tiles on this worker
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t gd = g / groups_time;
      const std::size_t gt = g % groups_time;
      process_tile_u8(plan, config, in, params, out, gd * config.tile_dm(),
                      gt * config.tile_time(), options, scratch);
    }
  };

  if (options.threads == 1) {
    run_range(0, total);
    return;
  }
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (options.threads == 0) {
    pool = &global_pool();
  } else {
    owned = std::make_unique<ThreadPool>(options.threads);
    pool = owned.get();
  }
  const std::size_t block =
      std::max<std::size_t>(1, total / (pool->worker_count() * 4));
  pool->parallel_for(0, total, block, run_range);
}

Array2D<float> dedisperse_cpu_u8(const Plan& plan, const KernelConfig& config,
                                 ConstView2D<std::uint8_t> in,
                                 const QuantizationParams& params,
                                 const CpuKernelOptions& options) {
  Array2D<float> out(plan.dms(), plan.out_samples());
  dedisperse_cpu_u8(plan, config, in, params, out.view(), options);
  return out;
}

}  // namespace ddmc::dedisp
