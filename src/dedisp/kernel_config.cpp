#include "dedisp/kernel_config.hpp"

#include <sstream>

#include "common/expect.hpp"
#include "common/simd.hpp"

namespace ddmc::dedisp {

void KernelConfig::validate(const Plan& plan) const {
  if (wi_time == 0 || wi_dm == 0 || elem_time == 0 || elem_dm == 0) {
    throw config_error("kernel parameters must all be positive: " +
                       to_string());
  }
  if (plan.out_samples() % tile_time() != 0) {
    throw config_error("time tile " + std::to_string(tile_time()) +
                       " does not divide output samples " +
                       std::to_string(plan.out_samples()));
  }
  if (plan.dms() % tile_dm() != 0) {
    throw config_error("DM tile " + std::to_string(tile_dm()) +
                       " does not divide trial count " +
                       std::to_string(plan.dms()));
  }
  if (!simd::is_supported_unroll(unroll)) {
    // The accumulate kernels compile exactly the {1,2,4,8} instantiations;
    // any other hint would silently run the un-unrolled loop while timings
    // and the tuning cache credit the requested unroll. Fail fast instead.
    throw config_error(
        "unroll must be one of {1, 2, 4, 8} (the compiled accumulate "
        "instantiations): " +
        to_string());
  }
}

std::string KernelConfig::to_string() const {
  std::ostringstream ss;
  ss << "{wi_time=" << wi_time << ", wi_dm=" << wi_dm
     << ", elem_time=" << elem_time << ", elem_dm=" << elem_dm;
  // Host-engine knobs are printed only when they deviate from the defaults,
  // so the four-parameter identity of a paper config stays compact.
  if (channel_block != 0) ss << ", channel_block=" << channel_block;
  if (unroll != 1) ss << ", unroll=" << unroll;
  ss << "}";
  return ss.str();
}

}  // namespace ddmc::dedisp
