#pragma once
/// \file latency.hpp
/// \brief Per-chunk latency/throughput accounting for streaming sessions.
///
/// A streaming backend is judged by one number: the real-time margin — how
/// many seconds of sky it processes per second of wall time. Margin > 1
/// means the session keeps up (the paper's §V-D criterion, where the tuned
/// HD7970 dedisperses one second of Apertif in 0.106 s, a margin of ~9.4);
/// margin < 1 means the ring backs up and data is eventually lost. The
/// tracker also keeps the per-chunk delivery-latency distribution
/// (p50/p95/p99), which is what an alerting pipeline (e.g. triggering
/// follow-up on an FRB candidate) actually cares about.
///
/// `seconds_per_data_second` is the measured twin of the model-predicted
/// `pipeline::SurveySizing::seconds_per_beam` — both are "wall seconds to
/// dedisperse one second of one beam".

#include <cstddef>
#include <span>
#include <vector>

#include "common/statistics.hpp"

namespace ddmc::stream {

/// Wall-clock accounting of one emitted chunk.
struct ChunkTiming {
  double data_seconds = 0.0;     ///< observation time the chunk emitted
  double compute_seconds = 0.0;  ///< kernel (+ detection) wall time
  double latency_seconds = 0.0;  ///< window-assembled → results ready (this
                                 ///< is what the sink receives; it includes
                                 ///< queueing behind the previous chunk)
};

/// Aggregated view of a session's chunk timings.
struct LatencyReport {
  std::size_t chunks = 0;
  double data_seconds = 0.0;     ///< Σ data_seconds
  double compute_seconds = 0.0;  ///< Σ compute_seconds (busy time)
  double p50_latency = 0.0;      ///< percentiles of latency_seconds
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  double mean_compute = 0.0;
  /// data_seconds / compute_seconds: > 1 keeps up in real time.
  double real_time_margin = 0.0;
  /// compute_seconds / data_seconds — comparable to the model-predicted
  /// pipeline::SurveySizing::seconds_per_beam.
  double seconds_per_data_second = 0.0;
};

/// Nearest-rank percentile of \p values (p in [0, 100]); values need not be
/// sorted. Throws ddmc::invalid_argument when empty or p out of range.
double percentile(std::span<const double> values, double p);

/// Accumulates ChunkTimings; cheap enough to record every chunk of a long
/// session (stores one double per chunk for the percentile scan).
class LatencyTracker {
 public:
  void record(const ChunkTiming& timing);
  std::size_t chunks() const { return latencies_.size(); }
  LatencyReport report() const;

 private:
  std::vector<double> latencies_;
  RunningStats compute_;
  double data_seconds_ = 0.0;
  double compute_seconds_ = 0.0;
};

}  // namespace ddmc::stream
