#pragma once
/// \file latency.hpp
/// \brief Per-chunk latency/throughput accounting for streaming sessions.
///
/// A streaming backend is judged by one number: the real-time margin — how
/// many seconds of sky it processes per second of wall time. Margin > 1
/// means the session keeps up (the paper's §V-D criterion, where the tuned
/// HD7970 dedisperses one second of Apertif in 0.106 s, a margin of ~9.4);
/// margin < 1 means the ring backs up and data is eventually lost. The
/// tracker also keeps the per-chunk delivery-latency distribution
/// (p50/p95/p99), which is what an alerting pipeline (e.g. triggering
/// follow-up on an FRB candidate) actually cares about.
///
/// Since the telemetry subsystem landed, the tracker stores nothing of its
/// own: it is a *view* over session-labeled metrics in the process-wide
/// MetricsRegistry (`ddmc.stream.chunk_latency_seconds{session=…}` and
/// friends), so `latency()` on the session, a Prometheus scrape and
/// `telemetry::snapshot_json()` all read the same numbers. The percentile
/// semantics are the registry Histogram's: exact below the bounded
/// capacity, a trailing window beyond it; scalar aggregates (margin, busy
/// time, max latency) always cover the whole session.
///
/// `seconds_per_data_second` is the measured twin of the model-predicted
/// `pipeline::SurveySizing::seconds_per_beam` — both are "wall seconds to
/// dedisperse one second of one beam".

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "telemetry/metrics.hpp"

namespace ddmc::stream {

/// Wall-clock accounting of one emitted chunk.
struct ChunkTiming {
  double data_seconds = 0.0;     ///< observation time the chunk emitted
  double compute_seconds = 0.0;  ///< kernel (+ detection) wall time
  double latency_seconds = 0.0;  ///< window-assembled → results ready (this
                                 ///< is what the sink receives; it includes
                                 ///< queueing behind the previous chunk)
};

/// Aggregated view of a session's chunk timings.
struct LatencyReport {
  std::size_t chunks = 0;
  /// Chunks the latency percentiles cover: chunks while the tracker is
  /// below its capacity, the trailing-window size afterwards.
  std::size_t latency_window = 0;
  double data_seconds = 0.0;     ///< Σ data_seconds
  double compute_seconds = 0.0;  ///< Σ compute_seconds (busy time)
  double p50_latency = 0.0;      ///< percentiles of latency_seconds
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;      ///< whole-session max, never windowed
  double mean_compute = 0.0;
  /// data_seconds / compute_seconds: > 1 keeps up in real time.
  double real_time_margin = 0.0;
  /// compute_seconds / data_seconds — comparable to the model-predicted
  /// pipeline::SurveySizing::seconds_per_beam.
  double seconds_per_data_second = 0.0;
  /// Chunks the supervised session dropped (watchdog skip rung) — their
  /// observation time is in gap_data_seconds, *not* in data_seconds, so the
  /// margin stays an honest measure of the work actually done.
  std::size_t gap_chunks = 0;
  double gap_data_seconds = 0.0;  ///< observation time lost to gaps
};

/// Nearest-rank percentiles now live in common/statistics (the telemetry
/// Histogram shares them); these forwarders keep the historical
/// stream::percentile spelling used throughout the stream tests.
inline double percentile(std::span<const double> values, double p) {
  return ddmc::percentile(values, p);
}
inline double percentile_sorted(std::span<const double> sorted, double p) {
  return ddmc::percentile_sorted(sorted, p);
}

/// Accumulates ChunkTimings into session-labeled registry metrics and
/// assembles LatencyReports from them. Thread-safe (the underlying metrics
/// are). Each tracker gets a process-unique `session` label unless the
/// caller names one, so concurrent sessions stay distinguishable in one
/// export.
class LatencyTracker {
 public:
  /// 4096 doubles = 32 KiB — hours of 1 s chunks, exact; far beyond that
  /// the percentiles become a trailing window, which is what a long-running
  /// session's alerting actually watches.
  static constexpr std::size_t kDefaultCapacity =
      telemetry::Histogram::kDefaultCapacity;

  explicit LatencyTracker(std::size_t capacity = kDefaultCapacity,
                          std::string session = {});

  void record(const ChunkTiming& timing);
  /// Account a chunk that was never emitted (supervised skip): \p
  /// data_seconds of observation time are lost, reported separately from
  /// the emitted chunks' aggregates.
  void record_gap(double data_seconds);
  std::size_t chunks() const { return latency_->count(); }
  std::size_t capacity() const { return latency_->capacity(); }
  /// The session label all this tracker's metrics carry.
  const std::string& session() const { return session_; }
  LatencyReport report() const;

 private:
  std::string session_;
  std::shared_ptr<telemetry::Histogram> latency_;
  std::shared_ptr<telemetry::Histogram> compute_;
  std::shared_ptr<telemetry::Counter> data_seconds_;
  std::shared_ptr<telemetry::Counter> gap_chunks_;
  std::shared_ptr<telemetry::Counter> gap_data_seconds_;
};

}  // namespace ddmc::stream
