#include "stream/chunker.hpp"

#include <algorithm>
#include <cstring>

#include "common/expect.hpp"
#include "resilience/fault_injection.hpp"

namespace ddmc::stream {

OverlapChunker::OverlapChunker(const dedisp::Plan& chunk_plan,
                               std::size_t extra_overlap)
    : window_(chunk_plan.channels(), chunk_plan.in_samples() + extra_overlap),
      chunk_out_(chunk_plan.out_samples()),
      overlap_(chunk_plan.max_delay() + extra_overlap),
      data_overlap_(chunk_plan.max_delay()) {
  DDMC_REQUIRE(chunk_plan.in_samples() == chunk_out_ + chunk_plan.max_delay(),
               "chunk plan must be unrounded: in = out + max_delay "
               "(use Plan::with_chunk or Plan::with_output_samples)");
}

std::size_t OverlapChunker::feed(ConstView2D<float> samples,
                                 std::size_t offset) {
  DDMC_REQUIRE(samples.rows() == channels(), "sample block rows != channels");
  DDMC_REQUIRE(offset <= samples.cols(), "feed offset out of range");
  // Context = chunk being assembled, so a test can corrupt one window feed.
  DDMC_FAILPOINT_CTX("chunker.feed", chunk_index_);
  const std::size_t n =
      std::min(samples.cols() - offset, window_.cols() - filled_);
  for (std::size_t ch = 0; ch < channels(); ++ch) {
    std::memcpy(&window_(ch, filled_), &samples(ch, offset),
                n * sizeof(float));
  }
  filled_ += n;
  return n;
}

ConstView2D<float> OverlapChunker::chunk_input() const {
  DDMC_REQUIRE(ready(), "chunk window is not fully assembled");
  return window_.cview();
}

void OverlapChunker::advance() {
  DDMC_REQUIRE(ready(), "cannot advance before the window is full");
  for (std::size_t ch = 0; ch < channels(); ++ch) {
    std::memmove(&window_(ch, 0), &window_(ch, chunk_out_),
                 overlap_ * sizeof(float));
  }
  filled_ = overlap_;
  ++chunk_index_;
}

void OverlapChunker::skip_chunk() {
  filled_ = 0;
  ++chunk_index_;
}

std::size_t OverlapChunker::pending_out() const {
  return filled_ > data_overlap_ ? filled_ - data_overlap_ : 0;
}

ConstView2D<float> OverlapChunker::partial_input() const {
  DDMC_REQUIRE(pending_out() > 0, "no partial chunk is buffered");
  return ConstView2D<float>(window_.cview().data(), channels(), filled_,
                            window_.pitch());
}

}  // namespace ddmc::stream
